#![warn(missing_docs)]

//! # gcs-clocks
//!
//! Time representation and hardware-clock modelling for the gradient clock
//! synchronization library (Kuhn, Locher, Oshman: *Gradient Clock
//! Synchronization in Dynamic Networks*, SPAA 2009).
//!
//! The paper's model gives every node a continuous hardware clock `H_u(t)`
//! whose rate always lies in `[1−ρ, 1+ρ]` relative to real time. This crate
//! provides:
//!
//! * [`Time`] and [`Duration`] — thin, totally-ordered newtypes over `f64`
//!   real time (NaN is rejected at construction).
//! * [`RateSchedule`] — an *exact* piecewise-constant rate function with
//!   forward evaluation (`H(t)`) and inversion (`H⁻¹(h)`), the primitive
//!   that lets the simulator fire subjective timers (`set_timer` in the
//!   paper's Algorithm 2) at exactly the right real time.
//! * [`HardwareClock`] — a rate schedule anchored at `H(0) = 0`, matching
//!   the paper's convention that all hardware clocks start at zero.
//! * [`drift`] — generators for drift patterns: constant, random-walk,
//!   two-phase adversarial, and the layered schedules used by the paper's
//!   lower-bound executions (Lemma 4.2).
//! * [`source`] — the **lazy drift plane**: [`DriftSource`] evaluates any
//!   drift pattern on demand through an O(1) per-node [`DriftCursor`]
//!   (bit-identical to the materialized schedule), with [`ModelDrift`]
//!   generating every [`DriftModel`] from per-node keyed streams and
//!   [`ScheduleDrift`] adapting explicit eager clocks.
//! * [`ClockVar`] — the offset-from-hardware representation of algorithm
//!   variables (`L_u`, `Lmax_u`, `L^v_u`) that grow at the hardware rate
//!   between discrete events.
//!
//! # Example
//!
//! A clock that runs slow then fast, read forward and inverted exactly —
//! the primitive behind subjective timers:
//!
//! ```
//! use gcs_clocks::time::at;
//! use gcs_clocks::{HardwareClock, RateSchedule};
//!
//! // Rate 0.99 until t = 10, then 1.01 (both within rho = 0.01).
//! let schedule = RateSchedule::from_pairs(&[(0.0, 0.99), (10.0, 1.01)]);
//! let clock = HardwareClock::new(schedule, 0.01);
//!
//! // H(10) = 9.9; H(20) = 9.9 + 10.1 = 20.0.
//! assert!((clock.read(at(20.0)) - 20.0).abs() < 1e-12);
//!
//! // A timer set at t = 5 for subjective duration 10 fires when H has
//! // advanced by exactly 10: 4.95 at rate 0.99, then 5.05 at 1.01.
//! let fire = clock.fire_time(at(5.0), 10.0);
//! assert!((clock.read(fire) - (clock.read(at(5.0)) + 10.0)).abs() < 1e-9);
//! ```

pub mod drift;
pub mod hardware;
pub mod rate;
pub mod source;
pub mod time;
pub mod var;

pub use drift::DriftModel;
pub use hardware::HardwareClock;
pub use rate::{RateSchedule, RateSegment};
pub use source::{drift_stream_seed, DriftCursor, DriftSource, ModelDrift, ScheduleDrift};
pub use time::{Duration, Time};
pub use var::ClockVar;

/// Maximum drift `ρ` values accepted by this library.
///
/// The paper requires the logical clock rate to be at least `1/2`; since the
/// algorithm never slows the logical clock below the hardware rate `1−ρ`,
/// any `ρ ≤ 1/2` is sound. We cap at `0.5`.
pub const MAX_RHO: f64 = 0.5;

/// Validates a drift bound `ρ`, panicking with a descriptive message if the
/// value is outside `(0, MAX_RHO]` or not finite.
pub fn validate_rho(rho: f64) {
    assert!(
        rho.is_finite() && rho > 0.0 && rho <= MAX_RHO,
        "drift bound rho must lie in (0, {MAX_RHO}], got {rho}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rho_accepts_typical_values() {
        validate_rho(1e-6);
        validate_rho(0.01);
        validate_rho(0.5);
    }

    #[test]
    #[should_panic(expected = "drift bound")]
    fn validate_rho_rejects_zero() {
        validate_rho(0.0);
    }

    #[test]
    #[should_panic(expected = "drift bound")]
    fn validate_rho_rejects_large() {
        validate_rho(0.75);
    }

    #[test]
    #[should_panic(expected = "drift bound")]
    fn validate_rho_rejects_nan() {
        validate_rho(f64::NAN);
    }
}
