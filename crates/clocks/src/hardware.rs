//! The hardware clock `H_u(t)` of the paper's model.
//!
//! A [`HardwareClock`] is a [`RateSchedule`] anchored at `H(0) = 0`, plus
//! the drift bound `ρ` it was built under. The paper requires
//! `(1−ρ)(t2−t1) ≤ H(t2)−H(t1) ≤ (1+ρ)(t2−t1)` for all `t1 < t2`; the clock
//! checks this bound at construction.

use crate::rate::RateSchedule;
use crate::time::{Duration, Time};
use crate::validate_rho;

/// A node's continuous hardware clock with bounded drift.
#[derive(Clone, Debug, PartialEq)]
pub struct HardwareClock {
    schedule: RateSchedule,
    rho: f64,
}

impl HardwareClock {
    /// Wraps a rate schedule, verifying it respects the drift bound `ρ`.
    pub fn new(schedule: RateSchedule, rho: f64) -> Self {
        validate_rho(rho);
        assert!(
            schedule.respects_drift_bound(rho),
            "rate schedule violates drift bound rho={rho}: rates in [{}, {}]",
            schedule.min_rate(),
            schedule.max_rate()
        );
        HardwareClock { schedule, rho }
    }

    /// A perfect clock (rate exactly 1) under drift bound `ρ`.
    pub fn perfect(rho: f64) -> Self {
        Self::new(RateSchedule::real_time(), rho)
    }

    /// A clock running at constant `rate ∈ [1−ρ, 1+ρ]`.
    pub fn constant(rate: f64, rho: f64) -> Self {
        Self::new(RateSchedule::constant(rate), rho)
    }

    /// The drift bound this clock was constructed under.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The underlying rate schedule.
    pub fn schedule(&self) -> &RateSchedule {
        &self.schedule
    }

    /// Hardware clock reading at real time `t` (`H(0) = 0`).
    #[inline]
    pub fn read(&self, t: Time) -> f64 {
        self.schedule.value_at(t)
    }

    /// Instantaneous rate at real time `t`.
    #[inline]
    pub fn rate_at(&self, t: Time) -> f64 {
        self.schedule.rate_at(t)
    }

    /// The real time at which this clock reads `h`.
    #[inline]
    pub fn time_when_reads(&self, h: f64) -> Time {
        self.schedule.time_at_value(h)
    }

    /// The real time at which this clock will have advanced by the
    /// *subjective* duration `delta` past its reading at `t`.
    ///
    /// This is the primitive behind `set_timer(Δt)` in Algorithm 2: timers
    /// measure subjective (hardware) time, and the simulator uses this exact
    /// inversion to schedule the alarm.
    #[inline]
    pub fn fire_time(&self, now: Time, delta: f64) -> Time {
        self.schedule.time_after_advance(now, delta)
    }

    /// Hardware-clock advance across the real interval `[t1, t2]`.
    #[inline]
    pub fn advance_over(&self, t1: Time, t2: Time) -> f64 {
        self.schedule.advance_over(t1, t2)
    }

    /// An upper bound on the real time needed for this clock to advance by
    /// subjective duration `delta`: `delta / (1−ρ)`.
    pub fn max_real_time_for(&self, delta: f64) -> Duration {
        Duration::new(delta / (1.0 - self.rho))
    }

    /// A lower bound on the real time needed for this clock to advance by
    /// subjective duration `delta`: `delta / (1+ρ)`.
    pub fn min_real_time_for(&self, delta: f64) -> Duration {
        Duration::new(delta / (1.0 + self.rho))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::at;

    #[test]
    fn perfect_clock_tracks_real_time() {
        let c = HardwareClock::perfect(0.01);
        assert_eq!(c.read(at(42.0)), 42.0);
        assert_eq!(c.time_when_reads(42.0), at(42.0));
    }

    #[test]
    fn fast_clock_reads_ahead() {
        let c = HardwareClock::constant(1.01, 0.01);
        assert!((c.read(at(100.0)) - 101.0).abs() < 1e-9);
    }

    #[test]
    fn fire_time_respects_drift_envelope() {
        let c = HardwareClock::constant(0.99, 0.01);
        let fire = c.fire_time(at(10.0), 5.0);
        let elapsed = fire - at(10.0);
        assert!(elapsed >= c.min_real_time_for(5.0));
        assert!(elapsed <= c.max_real_time_for(5.0));
    }

    #[test]
    fn drift_envelope_bounds_are_ordered() {
        let c = HardwareClock::perfect(0.05);
        assert!(c.min_real_time_for(3.0) < c.max_real_time_for(3.0));
    }

    #[test]
    #[should_panic(expected = "violates drift bound")]
    fn out_of_bound_rate_rejected() {
        let _ = HardwareClock::constant(1.2, 0.01);
    }

    #[test]
    fn paper_drift_inequality_holds() {
        // (1−ρ)(t2−t1) ≤ H(t2)−H(t1) ≤ (1+ρ)(t2−t1) across segment joints.
        let sched = RateSchedule::from_pairs(&[(0.0, 0.99), (7.0, 1.01), (20.0, 1.0)]);
        let c = HardwareClock::new(sched, 0.01);
        for &(t1, t2) in &[(0.0, 5.0), (3.0, 9.0), (6.9, 25.0), (0.0, 100.0)] {
            let adv = c.advance_over(at(t1), at(t2));
            let span = t2 - t1;
            assert!(adv >= (1.0 - 0.01) * span - 1e-9);
            assert!(adv <= (1.0 + 0.01) * span + 1e-9);
        }
    }

    #[test]
    fn accessors() {
        let c = HardwareClock::perfect(0.02);
        assert_eq!(c.rho(), 0.02);
        assert_eq!(c.rate_at(at(1.0)), 1.0);
        assert_eq!(c.schedule().len(), 1);
    }
}
