//! Offset-from-hardware representation of clock-valued variables.
//!
//! Algorithm 2 keeps several variables that "between events … are increased
//! at the rate of u's hardware clock": the logical clock `L_u`, the max
//! estimate `Lmax_u`, and the per-neighbor estimates `L^v_u`. Rather than
//! numerically integrating those between events, we store each variable as
//! an *offset from the node's own hardware clock*:
//!
//! ```text
//!     var(t) = H_u(t) + offset
//! ```
//!
//! The offset changes only at discrete events, so inter-event growth at the
//! hardware rate is exact by construction.

/// A clock-valued variable that grows at the owner's hardware rate between
/// events, represented as an offset from the hardware clock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClockVar {
    offset: f64,
}

impl ClockVar {
    /// A variable that currently reads exactly the hardware clock
    /// (offset 0). With `H(0) = 0` this is also the correct initial state
    /// for `L_u` and `Lmax_u`, both of which start at 0.
    pub fn zeroed() -> Self {
        ClockVar { offset: 0.0 }
    }

    /// A variable that reads `value` when the hardware clock reads `hw`.
    pub fn with_value(value: f64, hw: f64) -> Self {
        assert!(value.is_finite() && hw.is_finite());
        ClockVar { offset: value - hw }
    }

    /// Current value given the owner's hardware clock reading.
    #[inline]
    pub fn value(&self, hw: f64) -> f64 {
        hw + self.offset
    }

    /// The raw offset (mainly for diagnostics/serialization).
    #[inline]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Sets the variable to read `value` at hardware reading `hw`.
    ///
    /// Panics if this would move the variable backwards — the paper's
    /// logical clocks are strictly increasing and never decreased by
    /// discrete events.
    #[inline]
    pub fn set(&mut self, value: f64, hw: f64) {
        debug_assert!(
            value + 1e-9 >= self.value(hw),
            "clock variable would decrease: {} -> {} (hw={})",
            self.value(hw),
            value,
            hw
        );
        self.offset = value - hw;
    }

    /// Sets the variable to `max(current, value)` — the monotone update used
    /// for `Lmax_u` on message receipt (line 21 of Algorithm 2).
    #[inline]
    pub fn raise_to(&mut self, value: f64, hw: f64) {
        if value > self.value(hw) {
            self.offset = value - hw;
        }
    }

    /// Unconditionally overwrites the value. Used when installing a fresh
    /// neighbor estimate `L^v_u ← L_v` (line 20), which may legitimately be
    /// below the previous estimate for a different epoch of the edge.
    #[inline]
    pub fn overwrite(&mut self, value: f64, hw: f64) {
        self.offset = value - hw;
    }
}

impl Default for ClockVar {
    fn default() -> Self {
        Self::zeroed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_with_hardware_clock() {
        let v = ClockVar::with_value(10.0, 3.0);
        assert!((v.value(3.0) - 10.0).abs() < 1e-12);
        // hardware advanced by 4 => variable advanced by 4
        assert!((v.value(7.0) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn zeroed_tracks_hardware() {
        let v = ClockVar::zeroed();
        assert_eq!(v.value(0.0), 0.0);
        assert_eq!(v.value(5.5), 5.5);
        assert_eq!(v.offset(), 0.0);
    }

    #[test]
    fn raise_to_is_monotone() {
        let mut v = ClockVar::with_value(10.0, 0.0);
        v.raise_to(8.0, 0.0); // ignored, below current
        assert_eq!(v.value(0.0), 10.0);
        v.raise_to(12.0, 0.0);
        assert_eq!(v.value(0.0), 12.0);
    }

    #[test]
    fn set_moves_forward() {
        let mut v = ClockVar::with_value(10.0, 2.0);
        v.set(15.0, 2.0);
        assert_eq!(v.value(2.0), 15.0);
    }

    #[test]
    fn overwrite_may_go_backward() {
        let mut v = ClockVar::with_value(10.0, 0.0);
        v.overwrite(4.0, 0.0);
        assert_eq!(v.value(0.0), 4.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "decrease")]
    fn set_backwards_panics_in_debug() {
        let mut v = ClockVar::with_value(10.0, 0.0);
        v.set(5.0, 0.0);
    }
}
