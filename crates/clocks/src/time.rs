//! Totally-ordered real-time newtypes.
//!
//! The simulator runs on continuous real time represented as `f64` seconds.
//! [`Time`] and [`Duration`] wrap `f64` and enforce finiteness at
//! construction so that the event queue's ordering is a genuine total order.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in real time (seconds since the start of the execution).
///
/// All executions start at `Time::ZERO`; the paper assumes all hardware
/// clocks read 0 at that instant.
#[derive(Clone, Copy, PartialEq)]
pub struct Time(f64);

/// A signed span of real time (seconds).
#[derive(Clone, Copy, PartialEq)]
pub struct Duration(f64);

impl Time {
    /// The start of every execution.
    pub const ZERO: Time = Time(0.0);

    /// Creates a time point; panics on non-finite input.
    #[inline]
    pub fn new(seconds: f64) -> Self {
        assert!(seconds.is_finite(), "Time must be finite, got {seconds}");
        Time(seconds)
    }

    /// Raw seconds value.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// The later of two time points.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two time points.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// True if this time is non-negative (all simulator times are).
    #[inline]
    pub fn is_valid_sim_time(self) -> bool {
        self.0 >= 0.0
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0.0);

    /// Creates a duration; panics on non-finite input.
    #[inline]
    pub fn new(seconds: f64) -> Self {
        assert!(
            seconds.is_finite(),
            "Duration must be finite, got {seconds}"
        );
        Duration(seconds)
    }

    /// Raw seconds value.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// True for durations `> 0`.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 > 0.0
    }

    /// True for durations `>= 0`.
    #[inline]
    pub fn is_non_negative(self) -> bool {
        self.0 >= 0.0
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Duration {
        Duration(self.0.abs())
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

// `Time` and `Duration` never hold NaN, so ordering is total.
impl Eq for Time {}
impl Eq for Duration {}

impl Ord for Time {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("Time is never NaN")
    }
}

impl PartialOrd for Time {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Duration {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("Duration is never NaN")
    }
}

impl PartialOrd for Duration {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time::new(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Duration) -> Time {
        Time::new(self.0 - rhs.0)
    }
}

impl SubAssign<Duration> for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Sub for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        Duration::new(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration::new(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration::new(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: f64) -> Duration {
        Duration::new(self.0 * rhs)
    }
}

impl Div<f64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: f64) -> Duration {
        Duration::new(self.0 / rhs)
    }
}

impl Div for Duration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Duration) -> f64 {
        self.0 / rhs.0
    }
}

impl Neg for Duration {
    type Output = Duration;
    #[inline]
    fn neg(self) -> Duration {
        Duration(-self.0)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ{:.6}", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

/// Convenience constructor: `secs(1.5)` reads better than
/// `Duration::new(1.5)` in test and experiment code.
#[inline]
pub fn secs(seconds: f64) -> Duration {
    Duration::new(seconds)
}

/// Convenience constructor for [`Time`].
#[inline]
pub fn at(seconds: f64) -> Time {
    Time::new(seconds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = at(10.0);
        let d = secs(2.5);
        assert_eq!(t + d, at(12.5));
        assert_eq!((t + d) - d, t);
        assert_eq!(at(12.5) - t, d);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![at(3.0), at(1.0), at(2.0)];
        v.sort();
        assert_eq!(v, vec![at(1.0), at(2.0), at(3.0)]);
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(secs(2.0) * 3.0, secs(6.0));
        assert_eq!(secs(6.0) / 3.0, secs(2.0));
        assert!((secs(6.0) / secs(3.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duration_sum() {
        let total: Duration = vec![secs(1.0), secs(2.0), secs(3.0)].into_iter().sum();
        assert_eq!(total, secs(6.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_rejected() {
        let _ = Time::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_duration_rejected() {
        let _ = Duration::new(f64::INFINITY);
    }

    #[test]
    fn min_max_helpers() {
        assert_eq!(at(1.0).max(at(2.0)), at(2.0));
        assert_eq!(at(1.0).min(at(2.0)), at(1.0));
        assert_eq!(secs(-1.0).abs(), secs(1.0));
        assert_eq!(secs(1.0).max(secs(2.0)), secs(2.0));
        assert_eq!(secs(1.0).min(secs(2.0)), secs(1.0));
    }

    #[test]
    fn negation_and_predicates() {
        assert!(secs(1.0).is_positive());
        assert!(!secs(0.0).is_positive());
        assert!(secs(0.0).is_non_negative());
        assert_eq!(-secs(2.0), secs(-2.0));
        assert!(at(0.0).is_valid_sim_time());
        assert!(!at(-1.0).is_valid_sim_time());
    }
}
