//! Exact piecewise-constant clock-rate schedules.
//!
//! The paper's hardware clocks have a *variable* rate bounded in
//! `[1−ρ, 1+ρ]`. We model the rate as a piecewise-constant function of real
//! time, fixed for the whole execution. This supports everything the paper
//! needs:
//!
//! * arbitrary adversarial drift (any measurable rate function can be
//!   approximated piecewise; the lower-bound constructions in the paper are
//!   themselves piecewise-constant),
//! * exact forward evaluation `H(t) = ∫₀ᵗ rate`, and
//! * exact inversion `H⁻¹(h)`, required to fire subjective timers: if a node
//!   calls `set_timer(Δt)` at real time `t`, the alarm fires at the real time
//!   `t'` with `H(t') = H(t) + Δt`.

use crate::time::Time;

/// One constant-rate segment: the clock runs at `rate` from `start` until
/// the start of the next segment (or forever, for the last one).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateSegment {
    /// Real time at which this segment begins.
    pub start: Time,
    /// Clock rate during the segment (must be `> 0`).
    pub rate: f64,
}

/// A piecewise-constant rate function anchored at `H(0) = 0`.
///
/// Invariants (enforced at construction):
/// * the first segment starts at `Time::ZERO`,
/// * segment starts are strictly increasing,
/// * every rate is finite and strictly positive.
///
/// ## Horizon contract (deterministic extension)
///
/// A schedule has no built-in horizon: the **final segment extends to
/// `+∞`**, so `value_at`/`rate_at`/`time_at_value` are defined — and
/// deterministic — for every `t ≥ 0`, including times beyond whatever
/// horizon a generator covered. Builders that take a horizon (see
/// [`DriftModel::build`](crate::drift::DriftModel::build)) guarantee that
/// rate changes are confined to `[0, horizon]`; queries past it continue
/// the last in-horizon rate forever. The lazy plane
/// ([`crate::source`]) honours the same extension (`seg_end == None`),
/// which is what keeps lazy and eager evaluation bit-identical at and
/// beyond the boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct RateSchedule {
    segments: Vec<RateSegment>,
    /// `cumulative[i]` = clock value at the start of segment `i`.
    cumulative: Vec<f64>,
}

impl RateSchedule {
    /// A schedule with a single constant rate.
    pub fn constant(rate: f64) -> Self {
        Self::from_segments(vec![RateSegment {
            start: Time::ZERO,
            rate,
        }])
    }

    /// The identity schedule: the clock tracks real time exactly.
    pub fn real_time() -> Self {
        Self::constant(1.0)
    }

    /// Builds a schedule from explicit segments, validating all invariants.
    pub fn from_segments(segments: Vec<RateSegment>) -> Self {
        assert!(!segments.is_empty(), "rate schedule needs >= 1 segment");
        assert_eq!(
            segments[0].start,
            Time::ZERO,
            "first rate segment must start at time 0"
        );
        for w in segments.windows(2) {
            assert!(
                w[0].start < w[1].start,
                "rate segment starts must be strictly increasing: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        for seg in &segments {
            assert!(
                seg.rate.is_finite() && seg.rate > 0.0,
                "clock rates must be finite and positive, got {}",
                seg.rate
            );
        }
        let mut cumulative = Vec::with_capacity(segments.len());
        let mut acc = 0.0f64;
        for (i, seg) in segments.iter().enumerate() {
            cumulative.push(acc);
            if i + 1 < segments.len() {
                let span = segments[i + 1].start - seg.start;
                acc += seg.rate * span.seconds();
            }
        }
        RateSchedule {
            segments,
            cumulative,
        }
    }

    /// Builds a schedule from `(start_seconds, rate)` pairs.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Self {
        Self::from_segments(
            pairs
                .iter()
                .map(|&(s, r)| RateSegment {
                    start: Time::new(s),
                    rate: r,
                })
                .collect(),
        )
    }

    /// The segments of this schedule.
    pub fn segments(&self) -> &[RateSegment] {
        &self.segments
    }

    /// Index of the segment containing real time `t`.
    fn segment_index(&self, t: Time) -> usize {
        debug_assert!(t.is_valid_sim_time(), "queried schedule at {t:?}");
        // partition_point returns the first segment starting after t;
        // the containing segment is the one before it.
        self.segments.partition_point(|seg| seg.start <= t) - 1
    }

    /// Instantaneous rate at real time `t`.
    pub fn rate_at(&self, t: Time) -> f64 {
        self.segments[self.segment_index(t)].rate
    }

    /// Clock value at real time `t`: `H(t) = ∫₀ᵗ rate(s) ds`.
    pub fn value_at(&self, t: Time) -> f64 {
        let i = self.segment_index(t);
        let seg = self.segments[i];
        self.cumulative[i] + seg.rate * (t - seg.start).seconds()
    }

    /// Inverse evaluation: the unique real time `t` with `H(t) = h`.
    ///
    /// Rates are strictly positive, so `H` is strictly increasing and the
    /// inverse is well defined for all `h ≥ 0`.
    pub fn time_at_value(&self, h: f64) -> Time {
        assert!(h.is_finite() && h >= 0.0, "clock values are >= 0, got {h}");
        // Find the last segment whose starting clock value is <= h.
        let i = self.cumulative.partition_point(|&c| c <= h) - 1;
        let seg = self.segments[i];
        Time::new(seg.start.seconds() + (h - self.cumulative[i]) / seg.rate)
    }

    /// Real time at which the clock will have advanced by `delta` beyond its
    /// value at time `t` (the subjective-timer primitive).
    pub fn time_after_advance(&self, t: Time, delta: f64) -> Time {
        assert!(
            delta.is_finite() && delta >= 0.0,
            "subjective advance must be >= 0, got {delta}"
        );
        self.time_at_value(self.value_at(t) + delta)
    }

    /// Minimum rate over the whole schedule.
    pub fn min_rate(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| s.rate)
            .fold(f64::INFINITY, f64::min)
    }

    /// Rate of the final segment — the rate every query beyond the last
    /// segment start observes, under the deterministic-extension
    /// contract (see the type docs).
    pub fn final_rate(&self) -> f64 {
        self.segments.last().expect("schedules are non-empty").rate
    }

    /// Maximum rate over the whole schedule.
    pub fn max_rate(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| s.rate)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Checks that every rate lies within the drift bound `[1−ρ, 1+ρ]`.
    pub fn respects_drift_bound(&self, rho: f64) -> bool {
        // Tiny epsilon absorbs construction round-off (e.g. 1.0 - 0.01).
        let eps = 1e-12;
        self.min_rate() >= 1.0 - rho - eps && self.max_rate() <= 1.0 + rho + eps
    }

    /// Clock advance over the real-time interval `[t1, t2]`.
    pub fn advance_over(&self, t1: Time, t2: Time) -> f64 {
        assert!(t1 <= t2, "interval must be ordered: {t1:?} > {t2:?}");
        self.value_at(t2) - self.value_at(t1)
    }

    /// Number of segments (useful for diagnostics and benches).
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Always false: schedules have at least one segment.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Default for RateSchedule {
    fn default() -> Self {
        Self::real_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::at;

    #[test]
    fn constant_schedule_is_linear() {
        let s = RateSchedule::constant(1.5);
        assert_eq!(s.value_at(at(0.0)), 0.0);
        assert!((s.value_at(at(4.0)) - 6.0).abs() < 1e-12);
        assert_eq!(s.rate_at(at(100.0)), 1.5);
    }

    #[test]
    fn piecewise_values_accumulate() {
        // rate 1.0 on [0,10), 2.0 on [10,20), 0.5 afterwards
        let s = RateSchedule::from_pairs(&[(0.0, 1.0), (10.0, 2.0), (20.0, 0.5)]);
        assert!((s.value_at(at(10.0)) - 10.0).abs() < 1e-12);
        assert!((s.value_at(at(15.0)) - 20.0).abs() < 1e-12);
        assert!((s.value_at(at(20.0)) - 30.0).abs() < 1e-12);
        assert!((s.value_at(at(24.0)) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn inversion_roundtrips() {
        let s = RateSchedule::from_pairs(&[(0.0, 0.99), (5.0, 1.01), (12.0, 1.0)]);
        for &t in &[0.0, 1.0, 4.999, 5.0, 7.3, 12.0, 100.0] {
            let h = s.value_at(at(t));
            let back = s.time_at_value(h);
            assert!(
                (back.seconds() - t).abs() < 1e-9,
                "t={t} h={h} back={back:?}"
            );
        }
    }

    #[test]
    fn time_after_advance_matches_forward_eval() {
        let s = RateSchedule::from_pairs(&[(0.0, 1.0), (3.0, 1.02), (9.0, 0.98)]);
        let t0 = at(2.0);
        let fire = s.time_after_advance(t0, 10.0);
        let advanced = s.value_at(fire) - s.value_at(t0);
        assert!((advanced - 10.0).abs() < 1e-9);
        assert!(fire > t0);
    }

    #[test]
    fn drift_bound_check() {
        let s = RateSchedule::from_pairs(&[(0.0, 0.99), (1.0, 1.01)]);
        assert!(s.respects_drift_bound(0.01));
        assert!(!s.respects_drift_bound(0.005));
    }

    #[test]
    fn rate_bounds() {
        let s = RateSchedule::from_pairs(&[(0.0, 0.97), (1.0, 1.03), (2.0, 1.0)]);
        assert_eq!(s.min_rate(), 0.97);
        assert_eq!(s.max_rate(), 1.03);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn advance_over_interval() {
        let s = RateSchedule::from_pairs(&[(0.0, 1.0), (10.0, 2.0)]);
        assert!((s.advance_over(at(5.0), at(15.0)) - 15.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unordered_segments_rejected() {
        let _ = RateSchedule::from_pairs(&[(0.0, 1.0), (5.0, 1.0), (5.0, 1.1)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = RateSchedule::from_pairs(&[(0.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "start at time 0")]
    fn late_first_segment_rejected() {
        let _ = RateSchedule::from_pairs(&[(1.0, 1.0)]);
    }
}
