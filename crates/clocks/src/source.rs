//! The lazy drift plane: on-demand hardware-rate evaluation.
//!
//! [`DriftModel::build`] materializes a full [`RateSchedule`] — one segment
//! vector spanning the whole horizon — per node. At `n = 2^20` under a
//! multi-segment adversary that is hundreds of megabytes of rate state,
//! almost all of it for instants no one ever queries. The paper's §3 model
//! only requires that a node's rate be *queryable* at the instants the
//! execution touches it, which is exactly the shape the streaming topology
//! pipeline (`gcs_net::TopologySource`) already proved out for edges.
//!
//! A [`DriftSource`] is the per-node, seed-keyed drift counterpart: it
//! evaluates (and integrates) the hardware rate on demand at query
//! instants, caching only an O(1) [`DriftCursor`] per *touched* node —
//! last segment boundary, accumulated hardware time, current rate, RNG
//! stream position. Untouched nodes cost zero bytes of drift state.
//!
//! ## The contract
//!
//! * **`H(0) = 0`** for every node (the paper's convention); a fresh
//!   cursor starts at the first segment with zero accumulated time.
//! * **Forward-only cursors**: [`DriftSource::read`] may only be called
//!   with nondecreasing times per cursor. Arbitrary-time queries go
//!   through [`DriftSource::read_at`] (a fresh throwaway cursor), and
//!   [`DriftSource::fire_time`] looks *ahead* of the persistent cursor
//!   with a cloned probe, so the cursor never advances past its last
//!   `read` time.
//! * **Bit-identity with the eager plane**: for every node,
//!   `read`/`read_at` equals `RateSchedule::value_at` and
//!   `fire_time`/`fire_at` equals `RateSchedule::time_after_advance` of
//!   the materialized schedule, **bit for bit** — the cursor accumulates
//!   hardware time with the same operations, in the same order, as
//!   [`RateSchedule::from_segments`] builds its cumulative table. Pinned
//!   by the property tests in `crates/clocks/tests/prop_clocks.rs` and,
//!   end to end, by `crates/bench/tests/lazy_drift.rs`.
//! * **Deterministic extension**: the final segment extends to `+∞`,
//!   matching the [`RateSchedule`] horizon contract (see
//!   [`DriftModel::build`]).
//!
//! Two implementations ship: [`ModelDrift`] generates any [`DriftModel`]
//! lazily from per-node keyed RNG streams, and [`ScheduleDrift`] adapts
//! explicit per-node [`HardwareClock`]s (the `ScheduleSource` idiom), so
//! every existing eager construction keeps working through the one plane.

use crate::drift::DriftModel;
use crate::hardware::HardwareClock;
use crate::rate::RateSchedule;
use crate::time::Time;
use crate::validate_rho;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Decorrelated per-node drift stream seed.
///
/// Each node's rate generator draws from its own keyed stream, so a
/// node's schedule is a pure function of `(plane seed, node index)` —
/// evaluable lazily, in any node order, without generating anyone else's
/// draws. The mixing constant differs from the engine's
/// `node_stream_seed` domain, keeping drift draws independent of delay
/// draws.
pub fn drift_stream_seed(seed: u64, index: usize) -> u64 {
    seed ^ 0x243F_6A88_85A3_08D3 ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// O(1) per-node evaluation state: the current constant-rate segment plus
/// the accumulated hardware time at its start and (for random sources)
/// the RNG stream position. This is *all* the drift plane ever stores per
/// node — segment history is never retained.
#[derive(Clone, Debug)]
pub struct DriftCursor {
    /// Real time at which the current segment begins.
    seg_start: Time,
    /// Hardware reading at `seg_start` (accumulated exactly as
    /// [`RateSchedule::from_segments`] accumulates its cumulative table).
    seg_h: f64,
    /// Rate on `[seg_start, seg_end)`.
    rate: f64,
    /// End of the current segment; `None` means it extends to `+∞`
    /// (the deterministic-extension contract).
    seg_end: Option<Time>,
    /// Keyed RNG stream position for random sources.
    rng: Option<StdRng>,
    /// Segments opened so far (generator scratch / segment index).
    step: u64,
}

impl DriftCursor {
    /// A cursor positioned at the first segment `[0, seg_end)` at `rate`,
    /// with `H(0) = 0`.
    pub fn first(rate: f64, seg_end: Option<Time>) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "clock rates must be finite and positive, got {rate}"
        );
        if let Some(end) = seg_end {
            assert!(end > Time::ZERO, "first segment must not be empty");
        }
        DriftCursor {
            seg_start: Time::ZERO,
            seg_h: 0.0,
            rate,
            seg_end,
            rng: None,
            step: 0,
        }
    }

    /// Attaches a keyed RNG stream (random sources draw future segment
    /// rates from it; the stream position is part of the cursor).
    pub fn with_rng(mut self, rng: StdRng) -> Self {
        self.rng = Some(rng);
        self
    }

    /// Start of the current segment.
    pub fn seg_start(&self) -> Time {
        self.seg_start
    }

    /// End of the current segment (`None` = extends to `+∞`).
    pub fn seg_end(&self) -> Option<Time> {
        self.seg_end
    }

    /// Rate of the current segment.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Segments opened so far (equals the current segment index).
    pub fn step(&self) -> u64 {
        self.step
    }

    /// The cursor's RNG stream.
    ///
    /// # Panics
    /// Panics if the cursor was built without one.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        self.rng.as_mut().expect("cursor has no RNG stream")
    }

    /// Closes the current segment at its end and opens the next at `rate`
    /// until `next_end`, accumulating hardware time exactly as
    /// [`RateSchedule::from_segments`] does.
    ///
    /// # Panics
    /// Panics when called on a final (`seg_end == None`) segment, on a
    /// non-positive rate, or on a non-increasing boundary.
    pub fn open(&mut self, rate: f64, next_end: Option<Time>) {
        let end = self
            .seg_end
            .expect("open() called on the final segment (deterministic extension)");
        assert!(
            rate.is_finite() && rate > 0.0,
            "clock rates must be finite and positive, got {rate}"
        );
        if let Some(e) = next_end {
            assert!(e > end, "segment boundaries must be strictly increasing");
        }
        self.seg_h += self.rate * (end - self.seg_start).seconds();
        self.seg_start = end;
        self.rate = rate;
        self.seg_end = next_end;
        self.step += 1;
    }

    /// Hardware reading at `t`, which must lie in the current segment
    /// (callers advance first; see [`DriftSource::read`]).
    #[inline]
    pub fn eval(&self, t: Time) -> f64 {
        debug_assert!(t >= self.seg_start, "eval before segment start");
        debug_assert!(self.seg_end.is_none_or(|e| t < e), "eval past segment end");
        self.seg_h + self.rate * (t - self.seg_start).seconds()
    }
}

/// A per-node, on-demand drift generator. See the module docs for the
/// contract; implementors provide segment generation ([`init`] and
/// [`next_segment`]), the provided methods do evaluation and inversion.
///
/// [`init`]: DriftSource::init
/// [`next_segment`]: DriftSource::next_segment
pub trait DriftSource: Send + Sync {
    /// The drift bound `ρ` every generated rate respects.
    fn rho(&self) -> f64;

    /// A fresh cursor for node `index`, positioned at the first segment.
    fn init(&self, index: usize) -> DriftCursor;

    /// Opens the cursor's next segment. Only called while the current
    /// segment is finite (`seg_end` is `Some`).
    fn next_segment(&self, index: usize, cursor: &mut DriftCursor);

    /// True when per-node evaluation needs no cursor (eager adapters
    /// answer from materialized state); the engine then skips cursor
    /// bookkeeping entirely and uses [`read_at`](Self::read_at) /
    /// [`fire_at`](Self::fire_at).
    fn stateless(&self) -> bool {
        false
    }

    /// Hardware reading `H_index(t)`, advancing `cursor` to the segment
    /// containing `t`. Forward-only: `t` must be at or after the cursor's
    /// current segment start.
    fn read(&self, index: usize, cursor: &mut DriftCursor, t: Time) -> f64 {
        debug_assert!(t.is_valid_sim_time(), "queried drift source at {t:?}");
        debug_assert!(
            t >= cursor.seg_start,
            "cursor reads are forward-only: {t:?} before {:?}",
            cursor.seg_start
        );
        while cursor.seg_end.is_some_and(|end| t >= end) {
            self.next_segment(index, cursor);
        }
        cursor.eval(t)
    }

    /// The real time at which node `index`'s clock will have advanced by
    /// the subjective duration `delta` past its reading at `now` — the
    /// `set_timer` primitive. Advances `cursor` to `now` only; the
    /// look-ahead past `now` runs on a cloned probe, so later `read`s
    /// between `now` and the fire time stay forward.
    fn fire_time(&self, index: usize, cursor: &mut DriftCursor, now: Time, delta: f64) -> Time {
        assert!(
            delta.is_finite() && delta >= 0.0,
            "subjective advance must be >= 0, got {delta}"
        );
        let h = self.read(index, cursor, now) + delta;
        let mut probe = cursor.clone();
        loop {
            if let Some(end) = probe.seg_end {
                // Same boundary rule as `RateSchedule::time_at_value`:
                // land in the *last* segment whose starting value is <= h.
                let end_h = probe.seg_h + probe.rate * (end - probe.seg_start).seconds();
                if end_h <= h {
                    self.next_segment(index, &mut probe);
                    continue;
                }
            }
            return Time::new(probe.seg_start.seconds() + (h - probe.seg_h) / probe.rate);
        }
    }

    /// Cold evaluation at an arbitrary time: a throwaway cursor walks the
    /// segments from 0. O(segments up to `t`) — fine for queries and
    /// snapshots, not for hot loops (those hold a cursor).
    fn read_at(&self, index: usize, t: Time) -> f64 {
        let mut cursor = self.init(index);
        self.read(index, &mut cursor, t)
    }

    /// Cold [`fire_time`](Self::fire_time) with a throwaway cursor.
    fn fire_at(&self, index: usize, now: Time, delta: f64) -> Time {
        let mut cursor = self.init(index);
        self.fire_time(index, &mut cursor, now, delta)
    }
}

/// The lazy generator for every [`DriftModel`]: node `index`'s schedule
/// is a pure function of `(seed, index)` via [`drift_stream_seed`] — no
/// per-node state exists until a cursor is created, and the cursor stays
/// O(1) no matter how many segments the model spans.
///
/// [`ModelDrift::materialize`] builds the exact eager [`RateSchedule`]
/// the cursor walks (it hands [`DriftModel::build`] the same keyed
/// stream), bridging lazy → eager for validation and tests.
#[derive(Clone, Copy, Debug)]
pub struct ModelDrift {
    model: DriftModel,
    rho: f64,
    horizon: f64,
    seed: u64,
}

impl ModelDrift {
    /// A lazy plane generating `model` under drift bound `rho` with rate
    /// changes confined to `[0, horizon]` (the final segment extends
    /// beyond — the deterministic-extension contract of
    /// [`DriftModel::build`]).
    pub fn new(model: DriftModel, rho: f64, horizon: f64, seed: u64) -> Self {
        validate_rho(rho);
        assert!(horizon.is_finite() && horizon > 0.0, "horizon must be > 0");
        match model {
            DriftModel::RandomWalk { step } => {
                assert!(step > 0.0, "random-walk step must be > 0")
            }
            DriftModel::Alternating { period } => {
                assert!(period > 0.0, "alternation period must be > 0")
            }
            _ => {}
        }
        ModelDrift {
            model,
            rho,
            horizon,
            seed,
        }
    }

    /// The generated model.
    pub fn model(&self) -> DriftModel {
        self.model
    }

    /// The horizon rate changes are confined to.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Node `index`'s keyed drift stream, freshly positioned.
    pub fn node_rng(&self, index: usize) -> StdRng {
        StdRng::seed_from_u64(drift_stream_seed(self.seed, index))
    }

    /// The eager schedule this plane generates for node `index` —
    /// [`DriftModel::build`] fed the node's keyed stream, so cursor
    /// evaluation is bit-identical to `value_at` on this schedule.
    pub fn materialize(&self, index: usize) -> RateSchedule {
        self.model
            .build(self.rho, self.horizon, index, &mut self.node_rng(index))
    }

    /// The materialized schedule wrapped as a [`HardwareClock`].
    pub fn clock(&self, index: usize) -> HardwareClock {
        HardwareClock::new(self.materialize(index), self.rho)
    }

    /// The next segment boundary after `prev`, accumulated exactly as
    /// [`DriftModel::build`]'s `t += step` loop accumulates it; `None`
    /// once past the horizon (the segment ending there is final).
    fn boundary_after(&self, prev: f64, step: f64) -> Option<Time> {
        let next = prev + step;
        (next <= self.horizon).then(|| Time::new(next))
    }
}

impl DriftSource for ModelDrift {
    fn rho(&self) -> f64 {
        self.rho
    }

    /// Closed-form single-segment models (constant rates derived from
    /// the node index alone) need no cursor: a cold evaluation is O(1)
    /// and draw-free, so the engine skips per-node bookkeeping entirely.
    fn stateless(&self) -> bool {
        matches!(
            self.model,
            DriftModel::Perfect
                | DriftModel::Constant(_)
                | DriftModel::SplitExtremes
                | DriftModel::FastUpTo(_)
        )
    }

    fn init(&self, index: usize) -> DriftCursor {
        let rho = self.rho;
        match self.model {
            DriftModel::Perfect => DriftCursor::first(1.0, None),
            DriftModel::Constant(rate) => DriftCursor::first(rate, None),
            DriftModel::SplitExtremes => DriftCursor::first(
                if index.is_multiple_of(2) {
                    1.0 - rho
                } else {
                    1.0 + rho
                },
                None,
            ),
            DriftModel::FastUpTo(boundary) => DriftCursor::first(
                if index < boundary {
                    1.0 + rho
                } else {
                    1.0 - rho
                },
                None,
            ),
            DriftModel::RandomConstant => {
                let mut rng = self.node_rng(index);
                DriftCursor::first(rng.gen_range(1.0 - rho..=1.0 + rho), None)
            }
            DriftModel::RandomWalk { step } => {
                DriftCursor::first(1.0, self.boundary_after(0.0, step))
                    .with_rng(self.node_rng(index))
            }
            DriftModel::Alternating { period } => DriftCursor::first(
                if index.is_multiple_of(2) {
                    1.0 + rho
                } else {
                    1.0 - rho
                },
                self.boundary_after(0.0, period),
            ),
        }
    }

    fn next_segment(&self, _index: usize, cursor: &mut DriftCursor) {
        let rho = self.rho;
        let start = cursor
            .seg_end()
            .expect("next_segment on a final segment")
            .seconds();
        match self.model {
            DriftModel::RandomWalk { step } => {
                // Same draw and clamp as `DriftModel::build`, from the
                // same stream position (one draw per opened segment).
                let delta = cursor.rng_mut().gen_range(-rho / 4.0..=rho / 4.0);
                let rate = (cursor.rate() + delta).clamp(1.0 - rho, 1.0 + rho);
                cursor.open(rate, self.boundary_after(start, step));
            }
            DriftModel::Alternating { period } => {
                let rate = if cursor.rate() > 1.0 {
                    1.0 - rho
                } else {
                    1.0 + rho
                };
                cursor.open(rate, self.boundary_after(start, period));
            }
            _ => unreachable!("single-segment drift models have no next segment"),
        }
    }
}

/// Eager adapter: explicit per-node [`HardwareClock`]s served through the
/// [`DriftSource`] plane (the drift counterpart of
/// `gcs_net::ScheduleSource`). Evaluation answers directly from the
/// materialized schedules ([`stateless`](DriftSource::stateless) is
/// true, so the engine keeps no cursors), with identical bits to the
/// pre-plane `HardwareClock` calls; the cursor path is still implemented
/// — replaying the stored segments — so adapters and lazy generators can
/// be compared through either interface.
#[derive(Clone, Debug)]
pub struct ScheduleDrift {
    clocks: Vec<HardwareClock>,
    rho: f64,
}

impl ScheduleDrift {
    /// Wraps explicit clocks; the plane's `rho` is the largest bound any
    /// clock was built under (0 for an empty set).
    pub fn new(clocks: Vec<HardwareClock>) -> Self {
        let rho = clocks.iter().map(|c| c.rho()).fold(0.0, f64::max);
        ScheduleDrift { clocks, rho }
    }

    /// The wrapped clocks.
    pub fn clocks(&self) -> &[HardwareClock] {
        &self.clocks
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// True when no clocks are wrapped.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }
}

impl DriftSource for ScheduleDrift {
    fn rho(&self) -> f64 {
        self.rho
    }

    fn stateless(&self) -> bool {
        true
    }

    fn init(&self, index: usize) -> DriftCursor {
        let segs = self.clocks[index].schedule().segments();
        DriftCursor::first(segs[0].rate, segs.get(1).map(|s| s.start))
    }

    fn next_segment(&self, index: usize, cursor: &mut DriftCursor) {
        let segs = self.clocks[index].schedule().segments();
        let i = cursor.step() as usize + 1;
        cursor.open(segs[i].rate, segs.get(i + 1).map(|s| s.start));
    }

    fn read_at(&self, index: usize, t: Time) -> f64 {
        self.clocks[index].read(t)
    }

    fn fire_at(&self, index: usize, now: Time, delta: f64) -> Time {
        self.clocks[index].fire_time(now, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::at;

    const MODELS: [DriftModel; 7] = [
        DriftModel::Perfect,
        DriftModel::Constant(1.005),
        DriftModel::SplitExtremes,
        DriftModel::FastUpTo(3),
        DriftModel::RandomConstant,
        DriftModel::RandomWalk { step: 3.0 },
        DriftModel::Alternating { period: 4.0 },
    ];

    #[test]
    fn cursor_reads_match_materialized_value_at_bitwise() {
        for model in MODELS {
            let plane = ModelDrift::new(model, 0.02, 50.0, 9);
            for index in 0..6 {
                let sched = plane.materialize(index);
                let mut cursor = plane.init(index);
                // Monotone queries spanning segment interiors, joints, and
                // the beyond-horizon extension.
                for &t in &[0.0, 0.5, 3.0, 4.0, 12.0, 49.9, 50.0, 200.0] {
                    let lazy = plane.read(index, &mut cursor, at(t));
                    let eager = sched.value_at(at(t));
                    assert!(
                        lazy.to_bits() == eager.to_bits(),
                        "{model:?} node {index} t={t}: lazy {lazy} != eager {eager}"
                    );
                }
            }
        }
    }

    #[test]
    fn fire_time_matches_materialized_inversion_bitwise() {
        for model in MODELS {
            let plane = ModelDrift::new(model, 0.02, 40.0, 5);
            for index in 0..4 {
                let sched = plane.materialize(index);
                let mut cursor = plane.init(index);
                for &(now, delta) in &[(0.0, 0.5), (1.0, 10.0), (7.5, 0.0), (39.0, 60.0)] {
                    let lazy = plane.fire_time(index, &mut cursor, at(now), delta);
                    let eager = sched.time_after_advance(at(now), delta);
                    assert!(
                        lazy.seconds().to_bits() == eager.seconds().to_bits(),
                        "{model:?} node {index} now={now} delta={delta}: \
                         lazy {lazy:?} != eager {eager:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn fire_time_leaves_cursor_at_now() {
        let plane = ModelDrift::new(DriftModel::RandomWalk { step: 2.0 }, 0.05, 30.0, 1);
        let mut cursor = plane.init(0);
        let fire = plane.fire_time(0, &mut cursor, at(1.0), 20.0);
        assert!(fire > at(20.0), "lookahead spans many segments");
        // The persistent cursor stayed at now's segment, so an
        // intermediate forward read is still legal.
        assert!(cursor.seg_start() <= at(1.0));
        let mid = plane.read(0, &mut cursor, at(5.0));
        assert_eq!(
            mid.to_bits(),
            plane.materialize(0).value_at(at(5.0)).to_bits()
        );
    }

    #[test]
    fn schedule_adapter_is_stateless_and_exact() {
        let plane = ModelDrift::new(DriftModel::Alternating { period: 3.0 }, 0.01, 20.0, 2);
        let clocks: Vec<HardwareClock> = (0..4).map(|i| plane.clock(i)).collect();
        let adapter = ScheduleDrift::new(clocks.clone());
        assert!(adapter.stateless());
        assert!(!plane.stateless());
        assert_eq!(adapter.len(), 4);
        assert!((adapter.rho() - 0.01).abs() < 1e-15);
        for (i, clock) in clocks.iter().enumerate() {
            for &t in &[0.0, 2.9, 3.0, 10.0, 100.0] {
                assert_eq!(
                    adapter.read_at(i, at(t)).to_bits(),
                    clock.read(at(t)).to_bits()
                );
                // The adapter's cursor path replays the same segments.
                assert_eq!(adapter.read_at(i, at(t)).to_bits(), {
                    let mut c = adapter.init(i);
                    adapter.read(i, &mut c, at(t)).to_bits()
                });
            }
            let f = adapter.fire_at(i, at(1.0), 7.0);
            assert_eq!(
                f.seconds().to_bits(),
                clock.fire_time(at(1.0), 7.0).seconds().to_bits()
            );
        }
    }

    #[test]
    fn keyed_streams_decouple_nodes() {
        // Lazily evaluating node 5 must not depend on nodes 0..5 — the
        // defining property the shared-sequential eager builder lacked.
        let plane = ModelDrift::new(DriftModel::RandomConstant, 0.03, 10.0, 7);
        let direct = plane.read_at(5, at(10.0));
        // Same plane, evaluated after touching other nodes first.
        for i in 0..5 {
            let _ = plane.read_at(i, at(10.0));
        }
        assert_eq!(direct.to_bits(), plane.read_at(5, at(10.0)).to_bits());
        // And per-node schedules respect the bound.
        for i in 0..8 {
            assert!(plane.materialize(i).respects_drift_bound(0.03));
        }
    }

    #[test]
    fn extension_beyond_horizon_is_the_final_segment() {
        // The deterministic-extension contract at and past the horizon.
        let plane = ModelDrift::new(DriftModel::RandomWalk { step: 4.0 }, 0.04, 21.0, 3);
        let sched = plane.materialize(0);
        let last = *sched.segments().last().unwrap();
        assert!(
            last.start.seconds() <= 21.0,
            "no segment starts past the horizon"
        );
        assert_eq!(sched.final_rate(), last.rate);
        for &t in &[21.0, 21.0 + 1e-9, 500.0] {
            let expect = sched.value_at(last.start) + last.rate * (t - last.start.seconds());
            assert!((sched.value_at(at(t)) - expect).abs() < 1e-9);
            assert_eq!(
                plane.read_at(0, at(t)).to_bits(),
                sched.value_at(at(t)).to_bits(),
                "lazy extension diverged at t={t}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "final segment")]
    fn open_on_final_segment_rejected() {
        let mut c = DriftCursor::first(1.0, None);
        c.open(1.01, None);
    }

    #[test]
    fn drift_stream_seeds_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1000 {
            assert!(
                seen.insert(drift_stream_seed(42, i)),
                "seed collision at {i}"
            );
        }
    }
}
