//! Drift-pattern generators.
//!
//! The paper treats the hardware clock rates as adversarial within
//! `[1−ρ, 1+ρ]`. Experiments need several concrete adversaries:
//!
//! * [`DriftModel::Perfect`] — every clock runs at exactly 1 (isolates
//!   message-delay effects).
//! * [`DriftModel::SplitExtremes`] — half the nodes at `1−ρ`, half at `1+ρ`;
//!   the worst constant-rate adversary, drives skew growth at rate `2ρ`.
//! * [`DriftModel::RandomConstant`] — per-node constant rate drawn uniformly
//!   from `[1−ρ, 1+ρ]`.
//! * [`DriftModel::RandomWalk`] — rate performs a bounded random walk,
//!   modelling temperature-varying oscillators.
//! * [`DriftModel::Alternating`] — rate toggles between `1+ρ` and `1−ρ`
//!   every `period` seconds, out of phase across nodes.
//! * [`layered_beta`] — the exact rate schedule of the paper's Lemma 4.2
//!   execution β: `H^β_x(t) = t + min{ρt, T·dist_M(u,x)}`, i.e. a node in
//!   layer `j` runs at `1+ρ` until real time `j·T/ρ` and at 1 afterwards.

use crate::rate::{RateSchedule, RateSegment};
use crate::time::Time;
use crate::validate_rho;
use rand::Rng;

/// A family of drift adversaries; `build` instantiates the schedule for one
/// node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DriftModel {
    /// All clocks perfect (rate 1).
    Perfect,
    /// Every node runs at the single given constant rate.
    Constant(f64),
    /// Even-indexed nodes at `1−ρ`, odd-indexed at `1+ρ`.
    ///
    /// Every node then borders both rates — the worst adversary for *edge*
    /// skew growth. For *distance-proportional* skew (a fast cluster far
    /// from a slow cluster) use [`DriftModel::FastUpTo`].
    SplitExtremes,
    /// Nodes with index `< boundary` run at `1+ρ`, the rest at `1−ρ` — a
    /// fast block and a slow block, the adversary that makes skew grow
    /// with the distance between the blocks.
    FastUpTo(usize),
    /// Per-node constant rate drawn uniformly from `[1−ρ, 1+ρ]`.
    RandomConstant,
    /// Bounded random walk: every `step` seconds the rate moves by a
    /// uniform increment in `[−ρ/4, ρ/4]`, clamped to `[1−ρ, 1+ρ]`.
    RandomWalk {
        /// Real-time spacing of rate changes.
        step: f64,
    },
    /// Square-wave drift: `1+ρ` and `1−ρ` alternating every `period`
    /// seconds; odd-indexed nodes start in the opposite phase.
    Alternating {
        /// Real-time half-period of the square wave.
        period: f64,
    },
}

impl DriftModel {
    /// Builds the rate schedule for node number `node_index` under drift
    /// bound `rho`, covering real times `[0, horizon]`.
    ///
    /// ## Horizon contract (deterministic extension)
    ///
    /// Every rate *change* lies within `[0, horizon]`; the final segment
    /// extends to `+∞`, so queries past the horizon are well defined and
    /// deterministically continue the last in-horizon rate (see the
    /// [`RateSchedule`] type docs). This is asserted below — a generator
    /// can never emit a change beyond the horizon and have queries
    /// silently extrapolate a rate the horizon never contained. The lazy
    /// plane ([`crate::source::ModelDrift`]) generates the identical
    /// segment sequence on demand and honours the same extension.
    pub fn build<R: Rng>(
        &self,
        rho: f64,
        horizon: f64,
        node_index: usize,
        rng: &mut R,
    ) -> RateSchedule {
        validate_rho(rho);
        assert!(horizon.is_finite() && horizon > 0.0, "horizon must be > 0");
        let schedule = match *self {
            DriftModel::Perfect => RateSchedule::real_time(),
            DriftModel::Constant(rate) => RateSchedule::constant(rate),
            DriftModel::SplitExtremes => {
                if node_index.is_multiple_of(2) {
                    RateSchedule::constant(1.0 - rho)
                } else {
                    RateSchedule::constant(1.0 + rho)
                }
            }
            DriftModel::FastUpTo(boundary) => {
                if node_index < boundary {
                    RateSchedule::constant(1.0 + rho)
                } else {
                    RateSchedule::constant(1.0 - rho)
                }
            }
            DriftModel::RandomConstant => {
                RateSchedule::constant(rng.gen_range(1.0 - rho..=1.0 + rho))
            }
            DriftModel::RandomWalk { step } => {
                assert!(step > 0.0, "random-walk step must be > 0");
                let mut segments = Vec::new();
                let mut rate = 1.0f64;
                let mut t = 0.0f64;
                while t <= horizon {
                    segments.push(RateSegment {
                        start: Time::new(t),
                        rate,
                    });
                    let delta = rng.gen_range(-rho / 4.0..=rho / 4.0);
                    rate = (rate + delta).clamp(1.0 - rho, 1.0 + rho);
                    t += step;
                }
                RateSchedule::from_segments(segments)
            }
            DriftModel::Alternating { period } => {
                assert!(period > 0.0, "alternation period must be > 0");
                let mut segments = Vec::new();
                let mut high = node_index.is_multiple_of(2);
                let mut t = 0.0f64;
                while t <= horizon {
                    segments.push(RateSegment {
                        start: Time::new(t),
                        rate: if high { 1.0 + rho } else { 1.0 - rho },
                    });
                    high = !high;
                    t += period;
                }
                RateSchedule::from_segments(segments)
            }
        };
        let last_start = schedule
            .segments()
            .last()
            .expect("schedules are non-empty")
            .start
            .seconds();
        assert!(
            last_start <= horizon,
            "{self:?} emitted a rate change at {last_start} beyond horizon {horizon}"
        );
        schedule
    }
}

/// The β-execution schedule of the paper's Masking Lemma (Lemma 4.2).
///
/// A node at flexible distance `layer` from the reference node `u` runs at
/// `1+ρ` during real times `[0, layer·T/ρ)` and at rate 1 afterwards, which
/// yields exactly `H^β_x(t) = t + min{ρ·t, T·layer}` (Equation (1) in the
/// paper).
pub fn layered_beta(layer: usize, rho: f64, big_t: f64) -> RateSchedule {
    validate_rho(rho);
    assert!(big_t > 0.0, "message-delay bound T must be > 0");
    if layer == 0 {
        return RateSchedule::real_time();
    }
    let switch = layer as f64 * big_t / rho;
    RateSchedule::from_pairs(&[(0.0, 1.0 + rho), (switch, 1.0)])
}

/// A two-phase adversary: rate `r1` until `switch`, then `r2`. Used to build
/// targeted skew ramps in tests and experiments.
pub fn two_phase(r1: f64, r2: f64, switch: f64) -> RateSchedule {
    assert!(switch > 0.0, "phase switch time must be > 0");
    RateSchedule::from_pairs(&[(0.0, r1), (switch, r2)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::at;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn perfect_is_identity() {
        let s = DriftModel::Perfect.build(0.01, 100.0, 0, &mut rng());
        assert_eq!(s.value_at(at(50.0)), 50.0);
    }

    #[test]
    fn fast_up_to_splits_in_blocks() {
        let m = DriftModel::FastUpTo(3);
        for idx in 0..6 {
            let s = m.build(0.02, 10.0, idx, &mut rng());
            let expect = if idx < 3 { 1.02 } else { 0.98 };
            assert_eq!(s.rate_at(at(0.0)), expect);
        }
    }

    #[test]
    fn split_extremes_alternates_by_parity() {
        let s0 = DriftModel::SplitExtremes.build(0.01, 10.0, 0, &mut rng());
        let s1 = DriftModel::SplitExtremes.build(0.01, 10.0, 1, &mut rng());
        assert_eq!(s0.rate_at(at(0.0)), 0.99);
        assert_eq!(s1.rate_at(at(0.0)), 1.01);
    }

    #[test]
    fn random_models_respect_bound() {
        let rho = 0.02;
        for model in [
            DriftModel::RandomConstant,
            DriftModel::RandomWalk { step: 5.0 },
            DriftModel::Alternating { period: 7.0 },
        ] {
            for idx in 0..8 {
                let s = model.build(rho, 200.0, idx, &mut rng());
                assert!(
                    s.respects_drift_bound(rho),
                    "{model:?} node {idx} violates bound"
                );
            }
        }
    }

    #[test]
    fn random_walk_is_deterministic_per_seed() {
        let m = DriftModel::RandomWalk { step: 3.0 };
        let a = m.build(0.01, 100.0, 0, &mut rng());
        let b = m.build(0.01, 100.0, 0, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn layered_beta_matches_closed_form() {
        let rho = 0.01;
        let big_t = 1.0;
        for layer in 0..6usize {
            let s = layered_beta(layer, rho, big_t);
            for &t in &[0.0, 10.0, 99.9, 100.0, 250.0, 1000.0] {
                let expect = t + (rho * t).min(big_t * layer as f64);
                let got = s.value_at(at(t));
                assert!(
                    (got - expect).abs() < 1e-6,
                    "layer={layer} t={t}: got {got}, want {expect}"
                );
            }
        }
    }

    #[test]
    fn alternating_phases_differ_between_neighbors() {
        let m = DriftModel::Alternating { period: 2.0 };
        let a = m.build(0.05, 20.0, 0, &mut rng());
        let b = m.build(0.05, 20.0, 1, &mut rng());
        assert_eq!(a.rate_at(at(1.0)), 1.05);
        assert_eq!(b.rate_at(at(1.0)), 0.95);
        assert_eq!(a.rate_at(at(3.0)), 0.95);
        assert_eq!(b.rate_at(at(3.0)), 1.05);
    }

    #[test]
    fn horizon_extension_is_the_final_in_horizon_segment() {
        // The deterministic-extension contract, tested at the boundary:
        // build to `horizon`, then query at, just past, and far past it —
        // all must continue the final in-horizon rate linearly.
        let (rho, horizon) = (0.02, 17.0);
        for model in [
            DriftModel::RandomWalk { step: 5.0 },
            DriftModel::Alternating { period: 4.0 },
            DriftModel::SplitExtremes,
        ] {
            for idx in 0..4 {
                let s = model.build(rho, horizon, idx, &mut rng());
                let last = *s.segments().last().unwrap();
                assert!(
                    last.start.seconds() <= horizon,
                    "{model:?}: change beyond the horizon"
                );
                assert_eq!(s.final_rate(), last.rate);
                let anchor = s.value_at(at(horizon));
                for &dt in &[0.0, 1e-9, 1.0, 1000.0] {
                    let t = horizon + dt;
                    assert_eq!(s.rate_at(at(t)), last.rate, "{model:?} t={t}");
                    let got = s.value_at(at(t));
                    let expect = anchor + last.rate * dt;
                    assert!(
                        (got - expect).abs() < 1e-9,
                        "{model:?} t={t}: {got} vs linear extension {expect}"
                    );
                }
            }
        }
    }

    #[test]
    fn two_phase_switches_rate() {
        let s = two_phase(1.01, 0.99, 10.0);
        assert_eq!(s.rate_at(at(5.0)), 1.01);
        assert_eq!(s.rate_at(at(15.0)), 0.99);
    }
}
