//! Property-based tests for the clock substrate.
//!
//! These encode the model axioms of Section 3.3 of the paper as executable
//! invariants over randomly generated rate schedules.

use gcs_clocks::time::at;
use gcs_clocks::{
    drift, ClockVar, DriftModel, DriftSource, HardwareClock, ModelDrift, RateSchedule,
    ScheduleDrift,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: any [`DriftModel`] variant (rates parameterized to respect
/// the `rho = 0.03` bound the equivalence tests run under).
fn arb_model() -> impl Strategy<Value = DriftModel> {
    prop_oneof![
        Just(DriftModel::Perfect),
        (-1.0f64..=1.0).prop_map(|u| DriftModel::Constant(1.0 + u * 0.03)),
        Just(DriftModel::SplitExtremes),
        (0usize..8).prop_map(DriftModel::FastUpTo),
        Just(DriftModel::RandomConstant),
        (0.5f64..6.0).prop_map(|step| DriftModel::RandomWalk { step }),
        (0.5f64..6.0).prop_map(|period| DriftModel::Alternating { period }),
    ]
}

/// Strategy: a random piecewise schedule with rates in [1-rho, 1+rho].
fn arb_schedule(rho: f64) -> impl Strategy<Value = RateSchedule> {
    prop::collection::vec((0.01f64..50.0, -1.0f64..=1.0), 1..20).prop_map(move |gaps| {
        let mut pairs = Vec::with_capacity(gaps.len());
        let mut t = 0.0;
        for (i, (gap, u)) in gaps.into_iter().enumerate() {
            let rate = 1.0 + u * rho;
            if i == 0 {
                pairs.push((0.0, rate));
            } else {
                t += gap;
                pairs.push((t, rate));
            }
        }
        RateSchedule::from_pairs(&pairs)
    })
}

proptest! {
    /// H is strictly increasing: t1 < t2 implies H(t1) < H(t2).
    #[test]
    fn schedule_strictly_increasing(sched in arb_schedule(0.05), t1 in 0.0f64..500.0, gap in 0.001f64..500.0) {
        let v1 = sched.value_at(at(t1));
        let v2 = sched.value_at(at(t1 + gap));
        prop_assert!(v2 > v1, "H({t1}) = {v1} !< H({}) = {v2}", t1 + gap);
    }

    /// Paper Section 3.3: (1−ρ)(t2−t1) ≤ H(t2)−H(t1) ≤ (1+ρ)(t2−t1).
    #[test]
    fn drift_bound_inequality(sched in arb_schedule(0.05), t1 in 0.0f64..400.0, gap in 0.0f64..400.0) {
        let adv = sched.advance_over(at(t1), at(t1 + gap));
        prop_assert!(adv >= (1.0 - 0.05) * gap - 1e-7);
        prop_assert!(adv <= (1.0 + 0.05) * gap + 1e-7);
    }

    /// Inversion is a true inverse: H⁻¹(H(t)) = t.
    #[test]
    fn inversion_roundtrip(sched in arb_schedule(0.05), t in 0.0f64..800.0) {
        let h = sched.value_at(at(t));
        let back = sched.time_at_value(h);
        prop_assert!((back.seconds() - t).abs() < 1e-6, "t={t} back={back:?}");
    }

    /// Subjective timers fire within the drift envelope:
    /// Δt/(1+ρ) ≤ fire − now ≤ Δt/(1−ρ).
    #[test]
    fn timer_fire_in_envelope(sched in arb_schedule(0.05), now in 0.0f64..300.0, delta in 0.001f64..100.0) {
        let clock = HardwareClock::new(sched, 0.05);
        let fire = clock.fire_time(at(now), delta);
        let elapsed = (fire - at(now)).seconds();
        prop_assert!(elapsed >= delta / 1.05 - 1e-7);
        prop_assert!(elapsed <= delta / 0.95 + 1e-7);
        // And the hardware clock really advanced by exactly delta.
        let adv = clock.advance_over(at(now), fire);
        prop_assert!((adv - delta).abs() < 1e-6);
    }

    /// ClockVar: value is linear in the hardware reading with slope 1.
    #[test]
    fn clockvar_growth_exact(v0 in -1e6f64..1e6, hw0 in 0.0f64..1e6, adv in 0.0f64..1e6) {
        let var = ClockVar::with_value(v0, hw0);
        let after = var.value(hw0 + adv);
        prop_assert!((after - (v0 + adv)).abs() < 1e-6);
    }

    /// raise_to never decreases the value.
    #[test]
    fn clockvar_raise_monotone(v0 in -1e3f64..1e3, target in -1e3f64..1e3, hw in 0.0f64..1e3) {
        let mut var = ClockVar::with_value(v0, hw);
        let before = var.value(hw);
        var.raise_to(target, hw);
        prop_assert!(var.value(hw) >= before - 1e-12);
        prop_assert!(var.value(hw) >= target - 1e-9 || var.value(hw) >= before - 1e-12);
    }

    /// Drift models always respect the bound they were built under.
    #[test]
    fn drift_models_in_bound(seed in 0u64..1000, idx in 0usize..16) {
        let rho = 0.03;
        let mut rng = StdRng::seed_from_u64(seed);
        for model in [
            DriftModel::Perfect,
            DriftModel::SplitExtremes,
            DriftModel::RandomConstant,
            DriftModel::RandomWalk { step: 2.0 },
            DriftModel::Alternating { period: 4.0 },
        ] {
            let s = model.build(rho, 100.0, idx, &mut rng);
            prop_assert!(s.respects_drift_bound(rho));
        }
    }

    /// Lazy-vs-eager drift equivalence for every model variant: a single
    /// forward cursor walked over sorted random query times reads
    /// bit-identically to `value_at` on the materialized schedule
    /// (mirroring `prop_net.rs`'s generator-vs-eager pattern).
    #[test]
    fn lazy_cursor_matches_eager_schedule_bitwise(
        model in arb_model(),
        seed in 0u64..500,
        index in 0usize..12,
        horizon in 5.0f64..60.0,
        times in prop::collection::vec(0.0f64..90.0, 1..24),
    ) {
        let plane = ModelDrift::new(model, 0.03, horizon, seed);
        let sched = plane.materialize(index);
        let mut times = times;
        times.sort_by(f64::total_cmp);
        let mut cursor = plane.init(index);
        for &t in &times {
            let lazy = plane.read(index, &mut cursor, at(t));
            let eager = sched.value_at(at(t));
            prop_assert!(
                lazy.to_bits() == eager.to_bits(),
                "{model:?} node {index} t={t}: lazy {lazy} != eager {eager}"
            );
        }
    }

    /// Random query *orderings*: arbitrary-time queries through the cold
    /// path (`read_at`, a fresh throwaway cursor per query — the plane's
    /// interface for non-monotone access) agree with the eager schedule
    /// in whatever order they arrive, as does the eager adapter.
    #[test]
    fn lazy_random_order_queries_match_eager(
        model in arb_model(),
        seed in 0u64..500,
        index in 0usize..12,
        horizon in 5.0f64..60.0,
        times in prop::collection::vec(0.0f64..90.0, 1..24),
    ) {
        let plane = ModelDrift::new(model, 0.03, horizon, seed);
        let sched = plane.materialize(index);
        let adapter = ScheduleDrift::new(vec![HardwareClock::new(sched.clone(), 0.03)]);
        for &t in &times {
            let eager = sched.value_at(at(t));
            prop_assert!(plane.read_at(index, at(t)).to_bits() == eager.to_bits());
            prop_assert!(adapter.read_at(0, at(t)).to_bits() == eager.to_bits());
        }
    }

    /// Subjective-timer inversion through the lazy plane is bit-identical
    /// to `time_after_advance` on the materialized schedule, at random
    /// (forward) set times and deltas — including fire times far past the
    /// horizon (the deterministic extension).
    #[test]
    fn lazy_fire_time_matches_eager_inversion(
        model in arb_model(),
        seed in 0u64..500,
        index in 0usize..12,
        horizon in 5.0f64..40.0,
        sets in prop::collection::vec((0.0f64..50.0, 0.0f64..80.0), 1..12),
    ) {
        let plane = ModelDrift::new(model, 0.03, horizon, seed);
        let sched = plane.materialize(index);
        let mut sets = sets;
        sets.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut cursor = plane.init(index);
        for &(now, delta) in &sets {
            let lazy = plane.fire_time(index, &mut cursor, at(now), delta);
            let eager = sched.time_after_advance(at(now), delta);
            prop_assert!(
                lazy.seconds().to_bits() == eager.seconds().to_bits(),
                "{model:?} node {index} now={now} delta={delta}: {lazy:?} != {eager:?}"
            );
        }
    }

    /// layered_beta matches the closed form H(t) = t + min(ρt, T·layer).
    #[test]
    fn layered_beta_closed_form(layer in 0usize..12, t in 0.0f64..5000.0) {
        let rho = 0.01;
        let big_t = 2.0;
        let s = drift::layered_beta(layer, rho, big_t);
        let expect = t + (rho * t).min(big_t * layer as f64);
        prop_assert!((s.value_at(at(t)) - expect).abs() < 1e-5);
    }
}
