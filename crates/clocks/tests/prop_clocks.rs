//! Property-based tests for the clock substrate.
//!
//! These encode the model axioms of Section 3.3 of the paper as executable
//! invariants over randomly generated rate schedules.

use gcs_clocks::time::at;
use gcs_clocks::{drift, ClockVar, DriftModel, HardwareClock, RateSchedule};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random piecewise schedule with rates in [1-rho, 1+rho].
fn arb_schedule(rho: f64) -> impl Strategy<Value = RateSchedule> {
    prop::collection::vec((0.01f64..50.0, -1.0f64..=1.0), 1..20).prop_map(move |gaps| {
        let mut pairs = Vec::with_capacity(gaps.len());
        let mut t = 0.0;
        for (i, (gap, u)) in gaps.into_iter().enumerate() {
            let rate = 1.0 + u * rho;
            if i == 0 {
                pairs.push((0.0, rate));
            } else {
                t += gap;
                pairs.push((t, rate));
            }
        }
        RateSchedule::from_pairs(&pairs)
    })
}

proptest! {
    /// H is strictly increasing: t1 < t2 implies H(t1) < H(t2).
    #[test]
    fn schedule_strictly_increasing(sched in arb_schedule(0.05), t1 in 0.0f64..500.0, gap in 0.001f64..500.0) {
        let v1 = sched.value_at(at(t1));
        let v2 = sched.value_at(at(t1 + gap));
        prop_assert!(v2 > v1, "H({t1}) = {v1} !< H({}) = {v2}", t1 + gap);
    }

    /// Paper Section 3.3: (1−ρ)(t2−t1) ≤ H(t2)−H(t1) ≤ (1+ρ)(t2−t1).
    #[test]
    fn drift_bound_inequality(sched in arb_schedule(0.05), t1 in 0.0f64..400.0, gap in 0.0f64..400.0) {
        let adv = sched.advance_over(at(t1), at(t1 + gap));
        prop_assert!(adv >= (1.0 - 0.05) * gap - 1e-7);
        prop_assert!(adv <= (1.0 + 0.05) * gap + 1e-7);
    }

    /// Inversion is a true inverse: H⁻¹(H(t)) = t.
    #[test]
    fn inversion_roundtrip(sched in arb_schedule(0.05), t in 0.0f64..800.0) {
        let h = sched.value_at(at(t));
        let back = sched.time_at_value(h);
        prop_assert!((back.seconds() - t).abs() < 1e-6, "t={t} back={back:?}");
    }

    /// Subjective timers fire within the drift envelope:
    /// Δt/(1+ρ) ≤ fire − now ≤ Δt/(1−ρ).
    #[test]
    fn timer_fire_in_envelope(sched in arb_schedule(0.05), now in 0.0f64..300.0, delta in 0.001f64..100.0) {
        let clock = HardwareClock::new(sched, 0.05);
        let fire = clock.fire_time(at(now), delta);
        let elapsed = (fire - at(now)).seconds();
        prop_assert!(elapsed >= delta / 1.05 - 1e-7);
        prop_assert!(elapsed <= delta / 0.95 + 1e-7);
        // And the hardware clock really advanced by exactly delta.
        let adv = clock.advance_over(at(now), fire);
        prop_assert!((adv - delta).abs() < 1e-6);
    }

    /// ClockVar: value is linear in the hardware reading with slope 1.
    #[test]
    fn clockvar_growth_exact(v0 in -1e6f64..1e6, hw0 in 0.0f64..1e6, adv in 0.0f64..1e6) {
        let var = ClockVar::with_value(v0, hw0);
        let after = var.value(hw0 + adv);
        prop_assert!((after - (v0 + adv)).abs() < 1e-6);
    }

    /// raise_to never decreases the value.
    #[test]
    fn clockvar_raise_monotone(v0 in -1e3f64..1e3, target in -1e3f64..1e3, hw in 0.0f64..1e3) {
        let mut var = ClockVar::with_value(v0, hw);
        let before = var.value(hw);
        var.raise_to(target, hw);
        prop_assert!(var.value(hw) >= before - 1e-12);
        prop_assert!(var.value(hw) >= target - 1e-9 || var.value(hw) >= before - 1e-12);
    }

    /// Drift models always respect the bound they were built under.
    #[test]
    fn drift_models_in_bound(seed in 0u64..1000, idx in 0usize..16) {
        let rho = 0.03;
        let mut rng = StdRng::seed_from_u64(seed);
        for model in [
            DriftModel::Perfect,
            DriftModel::SplitExtremes,
            DriftModel::RandomConstant,
            DriftModel::RandomWalk { step: 2.0 },
            DriftModel::Alternating { period: 4.0 },
        ] {
            let s = model.build(rho, 100.0, idx, &mut rng);
            prop_assert!(s.respects_drift_bound(rho));
        }
    }

    /// layered_beta matches the closed form H(t) = t + min(ρt, T·layer).
    #[test]
    fn layered_beta_closed_form(layer in 0usize..12, t in 0.0f64..5000.0) {
        let rho = 0.01;
        let big_t = 2.0;
        let s = drift::layered_beta(layer, rho, big_t);
        let expect = t + (rho * t).min(big_t * layer as f64);
        prop_assert!((s.value_at(at(t)) - expect).abs() < 1e-5);
    }
}
