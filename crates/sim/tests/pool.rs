//! Lifecycle and boundary-invariance tests for the persistent
//! shard-resident worker pool.
//!
//! The pool is an *execution backend*, not a semantic feature: its
//! observable contract is (a) workers spawn once and are reused across
//! `run_until` calls, (b) dropping a simulator never hangs, (c) a panic
//! inside a shard worker fails the run loudly with the original payload,
//! and (d) no combination of thread count, parallel threshold, backend
//! choice, or `run_until` split points ever changes the trace. The last
//! point is also covered at scale by `crates/bench/tests/determinism.rs`;
//! here a proptest sweeps random small configurations.

use gcs_clocks::time::at;
use gcs_net::schedule::{add_at, remove_at};
use gcs_net::{generators, Edge, NodeId, ScheduleSource, TopologySchedule};
use gcs_sim::{
    Automaton, Context, DelayStrategy, LinkChange, LinkChangeKind, Message, ModelParams,
    SimBuilder, SimStats, Simulator, TimerKind,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A gossiping automaton: every node ticks on the same hardware period and
/// floods the maximum value it has seen, so every instant carries a wide
/// burst of same-time events — exactly the shape that crosses the
/// parallel threshold.
struct Gossip {
    value: f64,
    period: f64,
    neighbors: BTreeSet<NodeId>,
}

impl Gossip {
    fn new(value: f64) -> Self {
        Gossip {
            value,
            period: 0.5,
            neighbors: BTreeSet::new(),
        }
    }
}

impl Automaton for Gossip {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.period, TimerKind::Tick);
    }

    fn on_receive(&mut self, _ctx: &mut Context<'_>, _from: NodeId, msg: Message) {
        self.value = self.value.max(msg.logical);
    }

    fn on_discover(&mut self, ctx: &mut Context<'_>, change: LinkChange) {
        let other = change.edge.other(ctx.node);
        match change.kind {
            LinkChangeKind::Added => self.neighbors.insert(other),
            LinkChangeKind::Removed => self.neighbors.remove(&other),
        };
    }

    fn on_alarm(&mut self, ctx: &mut Context<'_>, _kind: TimerKind) {
        for &v in &self.neighbors {
            ctx.send(
                v,
                Message {
                    logical: self.value,
                    max_estimate: self.value,
                },
            );
        }
        ctx.set_timer(self.period, TimerKind::Tick);
    }

    fn logical_clock(&self, _hw: f64) -> f64 {
        self.value
    }
}

fn params() -> ModelParams {
    ModelParams::new(0.01, 1.0, 2.0)
}

/// Ring of `n` plus bursts of chord churn where many link changes share
/// one instant — the shape the batched sharded topology apply targets.
fn churn_schedule(n: usize) -> TopologySchedule {
    let mut events = Vec::new();
    for (round, &t) in [1.0, 2.0, 3.0].iter().enumerate() {
        for i in (0..n).step_by(2) {
            let chord = Edge::between(i, (i + 2) % n);
            events.push(if round % 2 == 0 {
                add_at(t, chord)
            } else {
                remove_at(t, chord)
            });
        }
    }
    TopologySchedule::new(n, generators::ring(n), events)
}

fn gossip_sim(
    n: usize,
    threads: usize,
    par_min: usize,
    pool: bool,
    seed: u64,
) -> Simulator<Gossip> {
    SimBuilder::topology(params(), ScheduleSource::new(churn_schedule(n)))
        .delay(DelayStrategy::Max)
        .seed(seed)
        .threads(threads)
        .par_threshold(par_min)
        .persistent_pool(pool)
        .build_with(|i| Gossip::new(i as f64))
}

#[test]
fn pool_spawns_once_and_is_reused_across_runs() {
    let mut sim = gossip_sim(32, 4, 1, true, 7);
    // `on_start` dispatch at build time is serial: no pool yet.
    assert_eq!(sim.pool_workers(), 0);
    assert_eq!(sim.pool_spawns(), 0);

    sim.run_until(at(1.5));
    assert!(sim.pool_workers() >= 2, "pool spawned with OS workers");
    assert_eq!(sim.pool_spawns(), 1, "pool spawned lazily, exactly once");
    let jobs_after_first = sim.pool_jobs();
    assert!(jobs_after_first > 0, "segments ran on the pool");

    sim.run_until(at(3.5));
    assert_eq!(sim.pool_spawns(), 1, "second run reuses the live workers");
    assert!(
        sim.pool_jobs() > jobs_after_first,
        "reused workers kept taking jobs"
    );

    let stats = sim.stats();
    assert!(stats.segments_parallel > 0);
    assert!(stats.topology_batches > 0);
    assert!(
        stats.peak_batch_len > 1,
        "churn bursts batched whole instants"
    );
}

#[test]
fn dropping_a_simulator_mid_run_joins_workers() {
    let mut sim = gossip_sim(24, 4, 1, true, 11);
    sim.run_until(at(0.6));
    assert!(sim.pool_workers() > 0, "pool must be live before the drop");
    drop(sim); // must join all workers and return — a hang fails via test timeout
}

/// Detonates on its first alarm; used to prove worker panics surface.
struct Bomb;

impl Automaton for Bomb {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(0.25, TimerKind::Tick);
    }

    fn on_receive(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _msg: Message) {}

    fn on_discover(&mut self, _ctx: &mut Context<'_>, _change: LinkChange) {}

    fn on_alarm(&mut self, _ctx: &mut Context<'_>, _kind: TimerKind) {
        panic!("bomb detonated in a shard worker");
    }

    fn logical_clock(&self, hw: f64) -> f64 {
        hw
    }
}

#[test]
#[should_panic(expected = "bomb detonated in a shard worker")]
fn worker_panic_fails_the_run_loudly() {
    let schedule = TopologySchedule::static_graph(8, generators::ring(8));
    let mut sim = SimBuilder::topology(params(), ScheduleSource::new(schedule))
        .threads(2)
        .par_threshold(1)
        .build_with(|_| Bomb);
    sim.run_until(at(1.0));
}

#[test]
fn fork_join_backend_stays_poolless_and_trace_identical() {
    let mut pooled = gossip_sim(32, 4, 1, true, 7);
    let mut forked = gossip_sim(32, 4, 1, false, 7);
    pooled.run_until(at(4.0));
    forked.run_until(at(4.0));

    assert_eq!(
        forked.pool_workers(),
        0,
        "fork/join path never spawns a pool"
    );
    assert_eq!(forked.pool_spawns(), 0);
    assert!(
        forked.stats().segments_parallel > 0,
        "still ran parallel segments"
    );

    let (a, b) = (pooled.logical_snapshot(), forked.logical_snapshot());
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "node {i}: pool {x:?} vs fork/join {y:?}"
        );
    }
    assert_eq!(pooled.stats(), forked.stats());
}

#[test]
fn par_threshold_is_recorded_in_stats() {
    let sim = gossip_sim(8, 2, 7, true, 1);
    assert_eq!(sim.stats().par_min_events, 7);
}

fn reference_trace() -> (Vec<u64>, SimStats) {
    let mut sim = gossip_sim(24, 1, 64, true, 99);
    sim.run_until(at(4.0));
    let bits = sim.logical_snapshot().iter().map(|x| x.to_bits()).collect();
    (bits, *sim.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random thread counts, parallel thresholds, backend choices, and
    /// `run_until` split points never change the trace or the
    /// trace-relevant counters.
    #[test]
    fn random_boundaries_never_change_the_trace(
        threads in 1usize..9,
        par_min in 1usize..96,
        pool in any::<bool>(),
        cuts in prop::collection::vec(0.0f64..4.0, 0..4),
    ) {
        let (ref_bits, ref_stats) = reference_trace();
        let mut sim = gossip_sim(24, threads, par_min, pool, 99);
        let mut cuts = cuts;
        cuts.sort_by(f64::total_cmp);
        for c in cuts {
            sim.run_until(at(c));
        }
        sim.run_until(at(4.0));
        let bits: Vec<u64> = sim.logical_snapshot().iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(bits, ref_bits);
        prop_assert_eq!(*sim.stats(), ref_stats);
    }
}
