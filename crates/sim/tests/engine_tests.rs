//! Engine semantics tests, exercised through a tiny flooding protocol.
//!
//! These pin down the model guarantees of Section 3.2 — delay bounds, FIFO
//! order, drop-on-removal with sender notification, discovery latency `≤ D`,
//! subjective timers — independently of the clock-sync algorithm itself.

use gcs_clocks::time::at;
use gcs_clocks::{DriftModel, HardwareClock, RateSchedule, ScheduleDrift};
use gcs_net::schedule::{add_at, remove_at};
use gcs_net::{generators, node, Edge, NodeId, ScheduleSource, TopologySchedule};
use gcs_sim::engine::DiscoveryDelay;
use gcs_sim::{
    Automaton, Context, DelayStrategy, LinkChange, LinkChangeKind, Message, ModelParams,
    SimBuilder, TimerKind,
};
use std::collections::BTreeSet;

/// A flooding automaton: spreads the maximum `value` seen; logs everything
/// it observes so tests can assert on the environment's behaviour.
struct Flood {
    value: f64,
    delta_h: f64,
    counter: f64,
    neighbors: BTreeSet<NodeId>,
    /// (real time, from, payload counter) for every received message.
    received: Vec<(f64, NodeId, f64)>,
    /// (real time, change) for every discovery.
    discoveries: Vec<(f64, LinkChange)>,
    ticks: u64,
}

impl Flood {
    fn new(value: f64, delta_h: f64) -> Self {
        Flood {
            value,
            delta_h,
            counter: 0.0,
            neighbors: BTreeSet::new(),
            received: Vec::new(),
            discoveries: Vec::new(),
            ticks: 0,
        }
    }
}

impl Automaton for Flood {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.delta_h, TimerKind::Tick);
    }

    fn on_receive(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Message) {
        self.value = self.value.max(msg.logical);
        self.received
            .push((ctx.now.seconds(), from, msg.max_estimate));
    }

    fn on_discover(&mut self, ctx: &mut Context<'_>, change: LinkChange) {
        self.discoveries.push((ctx.now.seconds(), change));
        let other = change.edge.other(ctx.node);
        match change.kind {
            LinkChangeKind::Added => {
                self.neighbors.insert(other);
            }
            LinkChangeKind::Removed => {
                self.neighbors.remove(&other);
            }
        }
    }

    fn on_alarm(&mut self, ctx: &mut Context<'_>, kind: TimerKind) {
        assert_eq!(kind, TimerKind::Tick);
        self.ticks += 1;
        for &v in &self.neighbors {
            self.counter += 1.0;
            ctx.send(
                v,
                Message {
                    logical: self.value,
                    max_estimate: self.counter,
                },
            );
        }
        ctx.set_timer(self.delta_h, TimerKind::Tick);
    }

    fn logical_clock(&self, _hw: f64) -> f64 {
        self.value
    }
}

fn params() -> ModelParams {
    ModelParams::new(0.01, 1.0, 2.0)
}

#[test]
fn flood_converges_on_path() {
    let n = 8;
    let schedule = TopologySchedule::static_graph(n, generators::path(n));
    let mut sim = SimBuilder::topology(params(), ScheduleSource::new(schedule))
        .delay(DelayStrategy::Max)
        .build_with(|i| Flood::new(i as f64, 0.5));
    // Information needs ≤ (n-1) hops; each hop takes ≤ ΔH/(1-ρ) + T.
    sim.run_until(at((n as f64) * 2.0));
    for i in 0..n {
        assert_eq!(
            sim.node(node(i)).value,
            (n - 1) as f64,
            "node {i} did not learn the max"
        );
    }
}

#[test]
fn initial_edges_discovered_at_time_zero() {
    let schedule = TopologySchedule::static_graph(3, generators::path(3));
    let mut sim = SimBuilder::topology(params(), ScheduleSource::new(schedule))
        .build_with(|_| Flood::new(0.0, 0.5));
    sim.run_until(at(0.0));
    // Node 1 touches both initial edges.
    let d = &sim.node(node(1)).discoveries;
    assert_eq!(d.len(), 2);
    assert!(d
        .iter()
        .all(|(t, c)| *t == 0.0 && c.kind == LinkChangeKind::Added));
}

#[test]
fn topology_changes_discovered_within_d() {
    let schedule = TopologySchedule::new(
        2,
        [],
        vec![
            add_at(5.0, Edge::between(0, 1)),
            remove_at(20.0, Edge::between(0, 1)),
        ],
    );
    let mut sim = SimBuilder::topology(params(), ScheduleSource::new(schedule))
        .discovery(DiscoveryDelay::Uniform { lo: 0.5, hi: 2.0 })
        .seed(3)
        .build_with(|_| Flood::new(0.0, 0.5));
    sim.run_until(at(30.0));
    for i in 0..2 {
        let d = &sim.node(node(i)).discoveries;
        let add = d
            .iter()
            .find(|(_, c)| c.kind == LinkChangeKind::Added)
            .expect("add discovered");
        assert!(add.0 > 5.0 && add.0 <= 5.0 + 2.0, "add at {}", add.0);
        // Note: the sender may learn of the removal *at* the removal
        // instant via a dropped in-flight message (which is within the
        // model's send+D obligation), hence `>=` rather than `>`.
        let rem = d
            .iter()
            .find(|(_, c)| c.kind == LinkChangeKind::Removed)
            .expect("remove discovered");
        assert!(rem.0 >= 20.0 && rem.0 <= 20.0 + 2.0, "remove at {}", rem.0);
    }
}

#[test]
fn messages_dropped_after_removal_notify_sender() {
    // Edge removed at t=10; discovery takes the full D=2, so node 0 keeps
    // sending into the void for a while. Every such message must be dropped
    // and node 0 must get a discover(remove) no later than send + D.
    let schedule = TopologySchedule::new(
        2,
        [Edge::between(0, 1)],
        vec![remove_at(10.0, Edge::between(0, 1))],
    );
    let mut sim = SimBuilder::topology(params(), ScheduleSource::new(schedule))
        .discovery(DiscoveryDelay::Constant(2.0))
        .build_with(|_| Flood::new(1.0, 0.5));
    sim.run_until(at(30.0));
    let stats = sim.stats();
    assert!(stats.dropped_no_edge > 0, "{stats:?}");
    // After discovery (≤ 12.0), no more sends happen; total sends stop.
    let n0 = sim.node(node(0));
    let rem = n0
        .discoveries
        .iter()
        .find(|(_, c)| c.kind == LinkChangeKind::Removed)
        .expect("sender learned of removal");
    assert!(rem.0 <= 12.0 + 1e-9);
    assert!(n0.neighbors.is_empty());
}

#[test]
fn in_flight_message_dropped_when_edge_dies() {
    // Max delay T=1; removal at 10.25 catches messages sent at 10.0-.
    // (tick at subjective 0.5 with perfect clocks => sends at 0.5, 1.0, …)
    let schedule = TopologySchedule::new(
        2,
        [Edge::between(0, 1)],
        vec![remove_at(10.25, Edge::between(0, 1))],
    );
    let mut sim = SimBuilder::topology(params(), ScheduleSource::new(schedule))
        .delay(DelayStrategy::Max)
        .build_with(|_| Flood::new(1.0, 0.5));
    sim.run_until(at(15.0));
    assert!(sim.stats().dropped_in_flight > 0, "{:?}", sim.stats());
}

#[test]
fn fifo_per_directed_link_under_random_delays() {
    let schedule = TopologySchedule::static_graph(2, [Edge::between(0, 1)]);
    let mut sim = SimBuilder::topology(params(), ScheduleSource::new(schedule))
        .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
        .seed(9)
        .build_with(|_| Flood::new(0.0, 0.05)); // fast ticks => many overlaps
    sim.run_until(at(50.0));
    for i in 0..2 {
        let log = &sim.node(node(i)).received;
        assert!(log.len() > 100, "expected many messages, got {}", log.len());
        // Payload counters per sender must arrive in increasing order.
        let mut last = f64::NEG_INFINITY;
        for &(_, _, ctr) in log {
            assert!(ctr > last, "FIFO violated: {ctr} after {last}");
            last = ctr;
        }
    }
}

#[test]
fn delays_never_exceed_bound() {
    // With max delays and ticks every 0.5 subjective, messages sent at s
    // arrive at exactly s + T. Verify arrival spacing is bounded by
    // ΔH/(1-ρ) + T (the ΔT of the paper).
    let schedule = TopologySchedule::static_graph(2, [Edge::between(0, 1)]);
    let mut sim = SimBuilder::topology(params(), ScheduleSource::new(schedule))
        .drift_model(DriftModel::SplitExtremes, 100.0)
        .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
        .seed(4)
        .build_with(|_| Flood::new(0.0, 0.5));
    sim.run_until(at(100.0));
    let delta_t = 0.5 / (1.0 - 0.01) + 1.0;
    for i in 0..2 {
        let log = &sim.node(node(i)).received;
        for w in log.windows(2) {
            let gap = w[1].0 - w[0].0;
            assert!(
                gap <= delta_t + 1e-9,
                "arrival gap {gap} exceeds ΔT {delta_t}"
            );
        }
    }
}

#[test]
fn subjective_timers_follow_hardware_rate() {
    // Node 0 at rate 1+ρ, node 1 at rate 1−ρ; over the same real horizon
    // the fast node fires more ticks, in ratio ≈ (1+ρ)/(1−ρ).
    let rho = 0.01;
    let schedule = TopologySchedule::static_graph(2, [Edge::between(0, 1)]);
    let clocks = vec![
        HardwareClock::new(RateSchedule::constant(1.0 + rho), rho),
        HardwareClock::new(RateSchedule::constant(1.0 - rho), rho),
    ];
    let mut sim = SimBuilder::topology(
        ModelParams::new(rho, 1.0, 2.0),
        ScheduleSource::new(schedule),
    )
    .drift(ScheduleDrift::new(clocks))
    .build_with(|_| Flood::new(0.0, 0.5));
    sim.run_until(at(1000.0));
    let fast = sim.node(node(0)).ticks as f64;
    let slow = sim.node(node(1)).ticks as f64;
    let ratio = fast / slow;
    let expect = (1.0 + rho) / (1.0 - rho);
    assert!(
        (ratio - expect).abs() < 0.005,
        "tick ratio {ratio}, expected {expect}"
    );
}

#[test]
fn runs_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let schedule = TopologySchedule::static_graph(6, generators::ring(6));
        let mut sim = SimBuilder::topology(params(), ScheduleSource::new(schedule))
            .drift_model(DriftModel::RandomWalk { step: 3.0 }, 60.0)
            .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
            .seed(seed)
            .build_with(|i| Flood::new(i as f64, 0.5));
        sim.run_until(at(60.0));
        (
            *sim.stats(),
            sim.logical_snapshot(),
            sim.node(node(0)).received.clone(),
        )
    };
    let (s1, v1, log1) = run(42);
    let (s2, v2, log2) = run(42);
    assert_eq!(s1, s2);
    assert_eq!(v1, v2);
    assert_eq!(log1.len(), log2.len());
    for (a, b) in log1.iter().zip(log2.iter()) {
        assert_eq!(a, b);
    }
    // Different seed ⇒ different delays ⇒ (almost surely) different arrival
    // times in the message log (counters alone can coincide).
    let (_, _, log3) = run(43);
    assert_ne!(log1, log3);
}

#[test]
fn run_until_is_idempotent_at_boundaries() {
    let schedule = TopologySchedule::static_graph(3, generators::path(3));
    let mut sim = SimBuilder::topology(params(), ScheduleSource::new(schedule))
        .build_with(|i| Flood::new(i as f64, 0.5));
    sim.run_until(at(5.0));
    let snap1 = sim.logical_snapshot();
    sim.run_until(at(5.0));
    assert_eq!(snap1, sim.logical_snapshot());
}

#[test]
fn stepwise_equals_batch_advance() {
    let build = || {
        let schedule = TopologySchedule::static_graph(4, generators::ring(4));
        SimBuilder::topology(params(), ScheduleSource::new(schedule))
            .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
            .seed(7)
            .build_with(|i| Flood::new(i as f64, 0.5))
    };
    let mut a = build();
    a.run_until(at(20.0));
    let mut b = build();
    let mut t = 0.0;
    while t < 20.0 {
        t += 0.25;
        b.run_until(at(t));
    }
    assert_eq!(a.logical_snapshot(), b.logical_snapshot());
    assert_eq!(a.stats(), b.stats());
}

#[test]
fn transient_change_may_be_skipped() {
    // Edge flaps down and up within a window shorter than the discovery
    // latency: the re-add is discovered, and the node may never observe the
    // removal (version-skip). Either way the final neighbor view is
    // coherent (the edge is up).
    let e = Edge::between(0, 1);
    let schedule = TopologySchedule::new(2, [e], vec![remove_at(10.0, e), add_at(10.5, e)]);
    let mut sim = SimBuilder::topology(params(), ScheduleSource::new(schedule))
        .discovery(DiscoveryDelay::Uniform { lo: 0.2, hi: 2.0 })
        .seed(12)
        .build_with(|_| Flood::new(1.0, 0.5));
    sim.run_until(at(20.0));
    for i in 0..2 {
        let nbrs = &sim.node(node(i)).neighbors;
        assert_eq!(nbrs.len(), 1, "node {i} ended with wrong view: {nbrs:?}");
    }
}

#[test]
fn untouched_nodes_cost_zero_drift_and_node_state() {
    // Only node 0 ever does anything; nodes 1..n see no events at all.
    // The lazy clock plane must materialize exactly one drift cursor and
    // the node tables must stop at the touched watermark — untouched
    // nodes cost zero bytes of engine state, which is what lets the
    // drift plane scale independently of n.
    struct TickOnly {
        active: bool,
    }
    impl Automaton for TickOnly {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if self.active {
                ctx.set_timer(0.5, TimerKind::Tick);
            }
        }
        fn on_receive(&mut self, _: &mut Context<'_>, _: NodeId, _: Message) {}
        fn on_discover(&mut self, _: &mut Context<'_>, _: LinkChange) {}
        fn on_alarm(&mut self, ctx: &mut Context<'_>, _: TimerKind) {
            ctx.set_timer(0.5, TimerKind::Tick);
        }
        fn logical_clock(&self, hw: f64) -> f64 {
            hw
        }
    }
    let n = 64;
    let schedule = TopologySchedule::static_graph(n, []);
    let mut sim = SimBuilder::topology(params(), ScheduleSource::new(schedule))
        .drift_model(DriftModel::RandomWalk { step: 1.0 }, 50.0)
        .build_with(|i| TickOnly { active: i == 0 });
    sim.run_until(at(50.0));
    assert!(sim.stats().alarms_fired > 10);
    assert_eq!(
        sim.drift_cursors(),
        1,
        "only the ticking node pays drift-plane state"
    );
    assert_eq!(
        sim.node_state_watermark(),
        1,
        "node tables stop at the touched watermark"
    );
    assert_eq!(sim.rng_streams(), 0, "nothing drew from a node stream");
    // Untouched nodes stay queryable through the cold path, and agree
    // with the materialized schedule bit for bit.
    let hw_tail = sim.hardware(node(n - 1));
    assert!(hw_tail > 0.0);
    // Explicit eager clocks keep the plane stateless: no cursors at all.
    let clocks = vec![HardwareClock::perfect(0.01); 4];
    let mut eager = SimBuilder::topology(
        params(),
        ScheduleSource::new(TopologySchedule::static_graph(4, [])),
    )
    .drift(ScheduleDrift::new(clocks))
    .build_with(|_| TickOnly { active: true });
    eager.run_until(at(20.0));
    assert_eq!(eager.drift_cursors(), 0, "eager adapters keep no cursors");
}

#[test]
fn alarms_cancelled_before_firing_are_stale() {
    // A node that re-sets its tick timer on every receive will invalidate
    // pending alarms; the engine must count them as stale, not fire them.
    struct Resetter {
        resets: u64,
    }
    impl Automaton for Resetter {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(10.0, TimerKind::Tick);
            // Immediately replace it: the first alarm must be stale.
            ctx.set_timer(20.0, TimerKind::Tick);
            self.resets += 1;
        }
        fn on_receive(&mut self, _: &mut Context<'_>, _: NodeId, _: Message) {}
        fn on_discover(&mut self, _: &mut Context<'_>, _: LinkChange) {}
        fn on_alarm(&mut self, _: &mut Context<'_>, kind: TimerKind) {
            assert_eq!(kind, TimerKind::Tick);
        }
        fn logical_clock(&self, hw: f64) -> f64 {
            hw
        }
    }
    let schedule = TopologySchedule::static_graph(2, [Edge::between(0, 1)]);
    let mut sim = SimBuilder::topology(params(), ScheduleSource::new(schedule))
        .build_with(|_| Resetter { resets: 0 });
    sim.run_until(at(50.0));
    assert_eq!(sim.stats().alarms_stale, 2); // one per node
    assert_eq!(sim.stats().alarms_fired, 2);
}
