//! Event types and the deterministic event queue.

use gcs_clocks::Time;
use gcs_net::{Edge, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The message format of Algorithm 2: `⟨L_u, Lmax_u⟩`. All protocols in
/// this library exchange (logical clock, max-estimate) pairs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Message {
    /// The sender's logical clock value at send time.
    pub logical: f64,
    /// The sender's estimate of the maximum logical clock in the network.
    pub max_estimate: f64,
}

/// Timers available to protocols — exactly the two used by Algorithm 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TimerKind {
    /// The periodic `tick` timer (fires every subjective `ΔH`).
    Tick,
    /// The `lost(v)` timer (fires `ΔT′` subjective time after the last
    /// message from `v`).
    Lost(NodeId),
}

/// Direction of a discovered link change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkChangeKind {
    /// `discover(add({u,v}))`
    Added,
    /// `discover(remove({u,v}))`
    Removed,
}

/// A discovered link change, delivered to an endpoint via `on_discover`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkChange {
    /// Which way the link changed.
    pub kind: LinkChangeKind,
    /// The affected edge (the receiving node is one of its endpoints).
    pub edge: Edge,
}

/// Internal event payloads processed by the engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventPayload {
    /// A message arriving at `to`.
    Deliver {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Payload.
        msg: Message,
        /// Edge epoch at send time; mismatch at delivery means the edge
        /// went down (and possibly came back) in flight — the message is
        /// dropped.
        epoch: u64,
    },
    /// A timer alarm at `node`. `generation` invalidates cancelled/reset
    /// timers.
    Alarm {
        /// Owner of the timer.
        node: NodeId,
        /// Which timer.
        kind: TimerKind,
        /// Set/cancel generation at scheduling time.
        generation: u64,
    },
    /// An actual topology change (from the schedule).
    Topology {
        /// Added or removed.
        kind: LinkChangeKind,
        /// The edge.
        edge: Edge,
        /// Monotone per-edge version number.
        version: u64,
    },
    /// An endpoint learning about a topology change.
    Discover {
        /// The endpoint being informed.
        node: NodeId,
        /// What it learns.
        change: LinkChange,
        /// Version of the underlying topology event; stale discovers
        /// (older than something already delivered) are skipped.
        version: u64,
    },
    /// A fault injection (from the fault plane). Like topology changes,
    /// faults are serial barriers: they mutate global engine state
    /// (crashed set, loss/delay windows, drift warp) that every worker
    /// reads, so they split the instant into segments.
    Fault {
        /// The injection.
        kind: crate::fault::FaultKind,
    },
}

impl EventPayload {
    /// Class rank within an instant: `Topology` events order before every
    /// other payload at the same time, regardless of when they were
    /// pushed. This encodes the §3.2 convention that a change "takes
    /// effect at its instant" (an edge removed at `t` is not in `E(t)`):
    /// with the schedule now *pulled* lazily, a topology event can be
    /// pushed long after a same-instant delivery, so insertion order alone
    /// can no longer guarantee changes apply before deliveries observe
    /// them. `Fault` events rank between the two: a fault at `t` observes
    /// the topology of `t` (a crash at the instant an edge appears crashes
    /// a node that *has* that edge) and takes effect before any protocol
    /// event at `t` (a message delivered at the crash instant is lost).
    #[inline]
    pub fn class_rank(&self) -> u8 {
        match self {
            EventPayload::Topology { .. } => 0,
            EventPayload::Fault { .. } => 1,
            _ => 2,
        }
    }
}

/// A queued event: totally ordered by `(time, class, seq)` — earliest
/// time first, topology changes before other payloads at the same
/// instant, insertion order on remaining ties. Sequence numbers are
/// assigned at insertion, so simultaneous same-class events are processed
/// in the order they were scheduled — this both makes runs deterministic
/// and preserves FIFO for same-instant deliveries.
#[derive(Clone, Copy, Debug)]
pub struct QueuedEvent {
    /// When the event fires.
    pub time: Time,
    /// Insertion sequence number (tie-break).
    pub seq: u64,
    /// What happens.
    pub payload: EventPayload,
}

impl QueuedEvent {
    /// The total-order key all queues pop in.
    #[inline]
    pub fn key(&self) -> (Time, u8, u64) {
        (self.time, self.payload.class_rank(), self.seq)
    }
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest key pops first.
        other.key().cmp(&self.key())
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic priority queue of events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<QueuedEvent>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: Time, payload: EventPayload) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { time, seq, payload });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<QueuedEvent> {
        self.heap.pop()
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_clocks::time::at;
    use gcs_net::node;

    fn alarm(n: usize) -> EventPayload {
        EventPayload::Alarm {
            node: node(n),
            kind: TimerKind::Tick,
            generation: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(at(3.0), alarm(3));
        q.push(at(1.0), alarm(1));
        q.push(at(2.0), alarm(2));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.seconds())
            .collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(at(5.0), alarm(i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(at(2.0), alarm(0));
        q.push(at(1.0), alarm(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(at(1.0)));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(at(5.0), alarm(0));
        q.push(at(1.0), alarm(1));
        assert_eq!(q.pop().unwrap().time, at(1.0));
        q.push(at(3.0), alarm(2));
        q.push(at(0.5), alarm(3));
        assert_eq!(q.pop().unwrap().time, at(0.5));
        assert_eq!(q.pop().unwrap().time, at(3.0));
        assert_eq!(q.pop().unwrap().time, at(5.0));
        assert!(q.pop().is_none());
    }
}
