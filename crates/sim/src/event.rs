//! Event types and the deterministic event queue.

use gcs_clocks::Time;
use gcs_net::{Edge, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The message format of Algorithm 2: `⟨L_u, Lmax_u⟩`. All protocols in
/// this library exchange (logical clock, max-estimate) pairs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Message {
    /// The sender's logical clock value at send time.
    pub logical: f64,
    /// The sender's estimate of the maximum logical clock in the network.
    pub max_estimate: f64,
}

/// Timers available to protocols — exactly the two used by Algorithm 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TimerKind {
    /// The periodic `tick` timer (fires every subjective `ΔH`).
    Tick,
    /// The `lost(v)` timer (fires `ΔT′` subjective time after the last
    /// message from `v`).
    Lost(NodeId),
}

/// Direction of a discovered link change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkChangeKind {
    /// `discover(add({u,v}))`
    Added,
    /// `discover(remove({u,v}))`
    Removed,
}

/// A discovered link change, delivered to an endpoint via `on_discover`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkChange {
    /// Which way the link changed.
    pub kind: LinkChangeKind,
    /// The affected edge (the receiving node is one of its endpoints).
    pub edge: Edge,
}

/// Internal event payloads processed by the engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventPayload {
    /// A message arriving at `to`.
    Deliver {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Payload.
        msg: Message,
        /// Edge epoch at send time; mismatch at delivery means the edge
        /// went down (and possibly came back) in flight — the message is
        /// dropped.
        epoch: u64,
    },
    /// A timer alarm at `node`. `generation` invalidates cancelled/reset
    /// timers.
    Alarm {
        /// Owner of the timer.
        node: NodeId,
        /// Which timer.
        kind: TimerKind,
        /// Set/cancel generation at scheduling time.
        generation: u64,
    },
    /// An actual topology change (from the schedule).
    Topology {
        /// Added or removed.
        kind: LinkChangeKind,
        /// The edge.
        edge: Edge,
        /// Monotone per-edge version number.
        version: u64,
    },
    /// An endpoint learning about a topology change.
    Discover {
        /// The endpoint being informed.
        node: NodeId,
        /// What it learns.
        change: LinkChange,
        /// Version of the underlying topology event; stale discovers
        /// (older than something already delivered) are skipped.
        version: u64,
    },
    /// A fault injection (from the fault plane). Like topology changes,
    /// faults are serial barriers: they mutate global engine state
    /// (crashed set, loss/delay windows, drift warp) that every worker
    /// reads, so they split the instant into segments.
    Fault {
        /// The injection.
        kind: crate::fault::FaultKind,
    },
}

impl EventPayload {
    /// Class rank within an instant: `Topology` events order before every
    /// other payload at the same time, regardless of when they were
    /// pushed. This encodes the §3.2 convention that a change "takes
    /// effect at its instant" (an edge removed at `t` is not in `E(t)`):
    /// with the schedule now *pulled* lazily, a topology event can be
    /// pushed long after a same-instant delivery, so insertion order alone
    /// can no longer guarantee changes apply before deliveries observe
    /// them. `Fault` events rank between the two: a fault at `t` observes
    /// the topology of `t` (a crash at the instant an edge appears crashes
    /// a node that *has* that edge) and takes effect before any protocol
    /// event at `t` (a message delivered at the crash instant is lost).
    #[inline]
    pub fn class_rank(&self) -> u8 {
        match self {
            EventPayload::Topology { .. } => 0,
            EventPayload::Fault { .. } => 1,
            _ => 2,
        }
    }
}

/// A queued event: totally ordered by `(time, class, seq)` — earliest
/// time first, topology changes before other payloads at the same
/// instant, insertion order on remaining ties. Sequence numbers are
/// assigned at insertion, so simultaneous same-class events are processed
/// in the order they were scheduled — this both makes runs deterministic
/// and preserves FIFO for same-instant deliveries.
#[derive(Clone, Copy, Debug)]
pub struct QueuedEvent {
    /// When the event fires.
    pub time: Time,
    /// Insertion sequence number (tie-break).
    pub seq: u64,
    /// What happens.
    pub payload: EventPayload,
}

impl QueuedEvent {
    /// The total-order key all queues pop in.
    #[inline]
    pub fn key(&self) -> (Time, u8, u64) {
        (self.time, self.payload.class_rank(), self.seq)
    }
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest key pops first.
        other.key().cmp(&self.key())
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Payload lane indices of the packed event plane. The lane tag both
/// selects the arena column group a payload lives in and encodes its
/// class rank ([`lane_class`]): topology and faults keep their dedicated
/// ranks 0 and 1, the three protocol lanes all rank 2.
pub(crate) const LANE_TOPOLOGY: u8 = 0;
pub(crate) const LANE_FAULT: u8 = 1;
pub(crate) const LANE_DELIVER: u8 = 2;
pub(crate) const LANE_ALARM: u8 = 3;
pub(crate) const LANE_DISCOVER: u8 = 4;
/// Number of payload lanes.
pub(crate) const LANES: usize = 5;

/// Class rank of a lane — identical to [`EventPayload::class_rank`] of
/// any payload stored in it, so packed queue records can be ordered
/// without touching the arena.
#[inline]
pub(crate) fn lane_class(lane: u8) -> u8 {
    lane.min(2)
}

/// Per-lane slot bookkeeping: the free list plus live/peak occupancy.
#[derive(Debug, Default)]
struct LaneSlots {
    /// Recycled slot indices; popping an event frees its slot here.
    free: Vec<u32>,
    /// Slots currently holding a pending payload.
    live: usize,
    /// High-water mark of `live` (per-class pending-event peak).
    peak: usize,
}

impl LaneSlots {
    /// Claims a slot: a recycled one when available, else the next fresh
    /// index (`fresh` = current column length). Returns the slot index and
    /// whether the columns must grow by one.
    #[inline]
    fn claim(&mut self, fresh: usize) -> (u32, bool) {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        match self.free.pop() {
            Some(h) => (h, false),
            None => (fresh as u32, true),
        }
    }

    #[inline]
    fn release(&mut self, handle: u32) {
        self.live -= 1;
        self.free.push(handle);
    }
}

/// Slab arenas for pending-event payloads — the storage half of the
/// packed event plane.
///
/// A queued event's payload no longer travels with its ordering key:
/// the [`TimeWheel`](crate::wheel::TimeWheel) keeps a small fixed-size
/// record per pending event and parks the payload here, in per-lane
/// struct-of-arrays columns addressed by a `u32` handle. Popping an
/// event takes the payload back out and recycles its slot, so steady
/// state allocates nothing and each column's length tracks the lane's
/// high-water mark, not the sum of per-bucket peaks.
#[derive(Debug, Default)]
pub(crate) struct PayloadArena {
    // Deliver lane columns.
    deliver_from: Vec<NodeId>,
    deliver_to: Vec<NodeId>,
    deliver_msg: Vec<Message>,
    deliver_epoch: Vec<u64>,
    // Alarm lane columns.
    alarm_node: Vec<NodeId>,
    alarm_kind: Vec<TimerKind>,
    alarm_gen: Vec<u64>,
    // Discover lane columns.
    discover_node: Vec<NodeId>,
    discover_change: Vec<LinkChange>,
    discover_version: Vec<u64>,
    // Topology lane columns.
    topo_kind: Vec<LinkChangeKind>,
    topo_edge: Vec<Edge>,
    topo_version: Vec<u64>,
    // Fault lane column (one wide enum — faults are rare and never bulk).
    fault_kind: Vec<crate::fault::FaultKind>,
    /// Free lists and occupancy, indexed by lane.
    lanes: [LaneSlots; LANES],
}

impl PayloadArena {
    /// Stores `payload`, returning its `(lane, handle)` address.
    pub(crate) fn alloc(&mut self, payload: &EventPayload) -> (u8, u32) {
        match *payload {
            EventPayload::Deliver {
                from,
                to,
                msg,
                epoch,
            } => {
                let (h, grow) = self.lanes[LANE_DELIVER as usize].claim(self.deliver_from.len());
                if grow {
                    self.deliver_from.push(from);
                    self.deliver_to.push(to);
                    self.deliver_msg.push(msg);
                    self.deliver_epoch.push(epoch);
                } else {
                    let i = h as usize;
                    self.deliver_from[i] = from;
                    self.deliver_to[i] = to;
                    self.deliver_msg[i] = msg;
                    self.deliver_epoch[i] = epoch;
                }
                (LANE_DELIVER, h)
            }
            EventPayload::Alarm {
                node,
                kind,
                generation,
            } => {
                let (h, grow) = self.lanes[LANE_ALARM as usize].claim(self.alarm_node.len());
                if grow {
                    self.alarm_node.push(node);
                    self.alarm_kind.push(kind);
                    self.alarm_gen.push(generation);
                } else {
                    let i = h as usize;
                    self.alarm_node[i] = node;
                    self.alarm_kind[i] = kind;
                    self.alarm_gen[i] = generation;
                }
                (LANE_ALARM, h)
            }
            EventPayload::Discover {
                node,
                change,
                version,
            } => {
                let (h, grow) = self.lanes[LANE_DISCOVER as usize].claim(self.discover_node.len());
                if grow {
                    self.discover_node.push(node);
                    self.discover_change.push(change);
                    self.discover_version.push(version);
                } else {
                    let i = h as usize;
                    self.discover_node[i] = node;
                    self.discover_change[i] = change;
                    self.discover_version[i] = version;
                }
                (LANE_DISCOVER, h)
            }
            EventPayload::Topology {
                kind,
                edge,
                version,
            } => {
                let (h, grow) = self.lanes[LANE_TOPOLOGY as usize].claim(self.topo_kind.len());
                if grow {
                    self.topo_kind.push(kind);
                    self.topo_edge.push(edge);
                    self.topo_version.push(version);
                } else {
                    let i = h as usize;
                    self.topo_kind[i] = kind;
                    self.topo_edge[i] = edge;
                    self.topo_version[i] = version;
                }
                (LANE_TOPOLOGY, h)
            }
            EventPayload::Fault { kind } => {
                let (h, grow) = self.lanes[LANE_FAULT as usize].claim(self.fault_kind.len());
                if grow {
                    self.fault_kind.push(kind);
                } else {
                    self.fault_kind[h as usize] = kind;
                }
                (LANE_FAULT, h)
            }
        }
    }

    /// Takes the payload at `(lane, handle)` back out, recycling the slot.
    pub(crate) fn take(&mut self, lane: u8, handle: u32) -> EventPayload {
        self.lanes[lane as usize].release(handle);
        let i = handle as usize;
        match lane {
            LANE_DELIVER => EventPayload::Deliver {
                from: self.deliver_from[i],
                to: self.deliver_to[i],
                msg: self.deliver_msg[i],
                epoch: self.deliver_epoch[i],
            },
            LANE_ALARM => EventPayload::Alarm {
                node: self.alarm_node[i],
                kind: self.alarm_kind[i],
                generation: self.alarm_gen[i],
            },
            LANE_DISCOVER => EventPayload::Discover {
                node: self.discover_node[i],
                change: self.discover_change[i],
                version: self.discover_version[i],
            },
            LANE_TOPOLOGY => EventPayload::Topology {
                kind: self.topo_kind[i],
                edge: self.topo_edge[i],
                version: self.topo_version[i],
            },
            LANE_FAULT => EventPayload::Fault {
                kind: self.fault_kind[i],
            },
            _ => unreachable!("invalid payload lane {lane}"),
        }
    }

    /// Per-lane peak pending counts, indexed by lane constant.
    pub(crate) fn peaks(&self) -> [usize; LANES] {
        std::array::from_fn(|l| self.lanes[l].peak)
    }

    /// Heap bytes held by the payload columns and free lists (capacities,
    /// matching the rest of the plane census).
    pub(crate) fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.deliver_from.capacity() * size_of::<NodeId>()
            + self.deliver_to.capacity() * size_of::<NodeId>()
            + self.deliver_msg.capacity() * size_of::<Message>()
            + self.deliver_epoch.capacity() * size_of::<u64>()
            + self.alarm_node.capacity() * size_of::<NodeId>()
            + self.alarm_kind.capacity() * size_of::<TimerKind>()
            + self.alarm_gen.capacity() * size_of::<u64>()
            + self.discover_node.capacity() * size_of::<NodeId>()
            + self.discover_change.capacity() * size_of::<LinkChange>()
            + self.discover_version.capacity() * size_of::<u64>()
            + self.topo_kind.capacity() * size_of::<LinkChangeKind>()
            + self.topo_edge.capacity() * size_of::<Edge>()
            + self.topo_version.capacity() * size_of::<u64>()
            + self.fault_kind.capacity() * size_of::<crate::fault::FaultKind>()
            + self
                .lanes
                .iter()
                .map(|l| l.free.capacity() * size_of::<u32>())
                .sum::<usize>()
    }
}

/// Deterministic priority queue of events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<QueuedEvent>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: Time, payload: EventPayload) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { time, seq, payload });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<QueuedEvent> {
        self.heap.pop()
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_clocks::time::at;
    use gcs_net::node;

    fn alarm(n: usize) -> EventPayload {
        EventPayload::Alarm {
            node: node(n),
            kind: TimerKind::Tick,
            generation: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(at(3.0), alarm(3));
        q.push(at(1.0), alarm(1));
        q.push(at(2.0), alarm(2));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.seconds())
            .collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(at(5.0), alarm(i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(at(2.0), alarm(0));
        q.push(at(1.0), alarm(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(at(1.0)));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(at(5.0), alarm(0));
        q.push(at(1.0), alarm(1));
        assert_eq!(q.pop().unwrap().time, at(1.0));
        q.push(at(3.0), alarm(2));
        q.push(at(0.5), alarm(3));
        assert_eq!(q.pop().unwrap().time, at(0.5));
        assert_eq!(q.pop().unwrap().time, at(3.0));
        assert_eq!(q.pop().unwrap().time, at(5.0));
        assert!(q.pop().is_none());
    }
}
