#![warn(missing_docs)]

//! # gcs-sim
//!
//! A deterministic discrete-event simulator implementing the network model
//! of Section 3.2 of *Gradient Clock Synchronization in Dynamic Networks*
//! (Kuhn, Locher, Oshman; SPAA 2009):
//!
//! * every node owns a hardware clock with drift bounded by `ρ`,
//! * message delays are chosen adversarially in `[0, T]`, FIFO per link,
//! * messages on edges removed mid-flight are either delivered before the
//!   removal or dropped, in which case the sender discovers the removal no
//!   later than `send time + D`,
//! * topology changes are discovered by the endpoints within `D` time
//!   (transient changes may be skipped, exactly as the model allows),
//! * timers measure *subjective* (hardware) time and are fired by exact
//!   inversion of the node's rate schedule.
//!
//! Protocols implement the [`Automaton`] trait (`on_start`, `on_receive`,
//! `on_discover`, `on_alarm`) and interact with the environment through a
//! [`Context`] that collects sends and timer operations, mirroring the
//! event-handler style in which Algorithm 2 is written.
//!
//! Determinism: a simulation is a pure function of (model parameters,
//! topology stream, drift plane, fault stream, delay strategy, seed) —
//! and of *nothing else*. Topology streams from a lazily pulled
//! `gcs_net::TopologySource` (eager `TopologySchedule`s are adapted
//! through `ScheduleSource`), so peak memory is independent of the total
//! churn-event count; hardware rates stream the same way from a
//! [`gcs_clocks::DriftSource`] (eager clocks are adapted through
//! `ScheduleDrift`), so per-node drift state is an O(1) cursor for
//! touched nodes — bit-identical to the materialized schedules, pinned
//! by `crates/bench/tests/lazy_drift.rs`. Faults (crash/restart,
//! loss/delay windows, drift excursions) stream from a [`FaultSource`]
//! under the identical pull contract and apply as serial barriers in the
//! canonical event order — see [`fault`]. In particular the worker count
//! ([`SimBuilder::threads`], default from the `GCS_SIM_THREADS`
//! environment variable) never changes a trace: same-instant events to
//! different nodes are dispatched across a persistent pool of
//! shard-pinned worker lanes (sharded by node id), every random draw
//! comes from the consuming node's private
//! stream, and handler-emitted events are merged back into the time wheel
//! in a canonical `(triggering seq, emission index)` order. See
//! [`engine`] for the full argument and
//! `crates/bench/tests/determinism.rs` for the pin.
//!
//! # Example
//!
//! The time wheel pops in exactly `(time, seq)` order — earliest time
//! first, insertion order on ties — which is the total order all dispatch
//! modes (stepped, batched serial, parallel) preserve:
//!
//! ```
//! use gcs_clocks::time::at;
//! use gcs_net::node;
//! use gcs_sim::event::{EventPayload, TimerKind};
//! use gcs_sim::TimeWheel;
//!
//! let alarm = |i: usize, generation: u64| EventPayload::Alarm {
//!     node: node(i),
//!     kind: TimerKind::Tick,
//!     generation,
//! };
//! let mut wheel = TimeWheel::new(0.25); // bucket width, e.g. T/4
//! wheel.push(at(3.0), alarm(0, 1));
//! wheel.push(at(1.0), alarm(1, 1));
//! wheel.push(at(3.0), alarm(2, 1)); // same instant as the first push
//!
//! assert_eq!(wheel.peek_time(), Some(at(1.0)));
//! let order: Vec<_> = std::iter::from_fn(|| wheel.pop())
//!     .map(|ev| (ev.time.seconds(), ev.seq))
//!     .collect();
//! assert_eq!(order, vec![(1.0, 1), (3.0, 0), (3.0, 2)]);
//! ```

pub mod automaton;
pub mod delay;
mod dispatch;
pub mod engine;
pub mod event;
pub mod fault;
pub mod model;
mod shard;
pub mod stats;
pub mod wheel;

pub use automaton::{Action, Automaton, Context, RebootUnsupported};
pub use delay::{DelayScript, DelayStrategy};
pub use engine::{DiscoveryDelay, PlaneBytes, SimBuilder, Simulator, PAR_MIN_ENV, THREADS_ENV};
pub use event::{LinkChange, LinkChangeKind, Message, TimerKind};
pub use fault::{CrashRestartSource, FaultEvent, FaultKind, FaultPlan, FaultSource};
pub use model::ModelParams;
pub use stats::SimStats;
pub use wheel::TimeWheel;
