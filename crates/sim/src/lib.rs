#![warn(missing_docs)]

//! # gcs-sim
//!
//! A deterministic discrete-event simulator implementing the network model
//! of Section 3.2 of *Gradient Clock Synchronization in Dynamic Networks*
//! (Kuhn, Locher, Oshman; SPAA 2009):
//!
//! * every node owns a hardware clock with drift bounded by `ρ`,
//! * message delays are chosen adversarially in `[0, T]`, FIFO per link,
//! * messages on edges removed mid-flight are either delivered before the
//!   removal or dropped, in which case the sender discovers the removal no
//!   later than `send time + D`,
//! * topology changes are discovered by the endpoints within `D` time
//!   (transient changes may be skipped, exactly as the model allows),
//! * timers measure *subjective* (hardware) time and are fired by exact
//!   inversion of the node's rate schedule.
//!
//! Protocols implement the [`Automaton`] trait (`on_start`, `on_receive`,
//! `on_discover`, `on_alarm`) and interact with the environment through a
//! [`Context`] that collects sends and timer operations, mirroring the
//! event-handler style in which Algorithm 2 is written.
//!
//! Determinism: a simulation is a pure function of (model parameters,
//! topology schedule, rate schedules, delay strategy, seed). Ties in the
//! event queue are broken by sequence number.
//!
//! The hot path is the batched [`engine`]: a [`wheel::TimeWheel`]
//! calendar queue keyed on the delay bound `T`, same-instant deliveries
//! dispatched per node in batches, and flat per-node link state. The
//! pre-rewrite per-event engine is frozen as [`legacy`] for differential
//! testing and benchmarking, and both produce bit-identical traces.
//!
//! # Example
//!
//! The time wheel pops in exactly `(time, seq)` order — earliest time
//! first, insertion order on ties — which is what makes the batched
//! engine trace-identical to the reference engine:
//!
//! ```
//! use gcs_clocks::time::at;
//! use gcs_net::node;
//! use gcs_sim::event::{EventPayload, TimerKind};
//! use gcs_sim::TimeWheel;
//!
//! let alarm = |i: usize, generation: u64| EventPayload::Alarm {
//!     node: node(i),
//!     kind: TimerKind::Tick,
//!     generation,
//! };
//! let mut wheel = TimeWheel::new(0.25); // bucket width, e.g. T/4
//! wheel.push(at(3.0), alarm(0, 1));
//! wheel.push(at(1.0), alarm(1, 1));
//! wheel.push(at(3.0), alarm(2, 1)); // same instant as the first push
//!
//! assert_eq!(wheel.peek_time(), Some(at(1.0)));
//! let order: Vec<_> = std::iter::from_fn(|| wheel.pop())
//!     .map(|ev| (ev.time.seconds(), ev.seq))
//!     .collect();
//! assert_eq!(order, vec![(1.0, 1), (3.0, 0), (3.0, 2)]);
//! ```

pub mod automaton;
pub mod delay;
pub mod engine;
pub mod event;
pub mod legacy;
pub mod model;
pub mod stats;
pub mod wheel;

pub use automaton::{Action, Automaton, Context};
pub use delay::DelayStrategy;
pub use engine::{SimBuilder, Simulator};
pub use event::{LinkChange, LinkChangeKind, Message, TimerKind};
pub use legacy::{LegacySimBuilder, LegacySimulator};
pub use model::ModelParams;
pub use stats::SimStats;
pub use wheel::TimeWheel;
