#![warn(missing_docs)]

//! # gcs-sim
//!
//! A deterministic discrete-event simulator implementing the network model
//! of Section 3.2 of *Gradient Clock Synchronization in Dynamic Networks*
//! (Kuhn, Locher, Oshman; SPAA 2009):
//!
//! * every node owns a hardware clock with drift bounded by `ρ`,
//! * message delays are chosen adversarially in `[0, T]`, FIFO per link,
//! * messages on edges removed mid-flight are either delivered before the
//!   removal or dropped, in which case the sender discovers the removal no
//!   later than `send time + D`,
//! * topology changes are discovered by the endpoints within `D` time
//!   (transient changes may be skipped, exactly as the model allows),
//! * timers measure *subjective* (hardware) time and are fired by exact
//!   inversion of the node's rate schedule.
//!
//! Protocols implement the [`Automaton`] trait (`on_start`, `on_receive`,
//! `on_discover`, `on_alarm`) and interact with the environment through a
//! [`Context`] that collects sends and timer operations, mirroring the
//! event-handler style in which Algorithm 2 is written.
//!
//! Determinism: a simulation is a pure function of (model parameters,
//! topology schedule, rate schedules, delay strategy, seed). Ties in the
//! event queue are broken by sequence number.

pub mod automaton;
pub mod delay;
pub mod engine;
pub mod event;
pub mod model;
pub mod stats;

pub use automaton::{Action, Automaton, Context};
pub use delay::DelayStrategy;
pub use engine::{SimBuilder, Simulator};
pub use event::{LinkChange, LinkChangeKind, Message, TimerKind};
pub use model::ModelParams;
pub use stats::SimStats;
