//! The deterministic dispatch core shared by every execution mode.
//!
//! One function, [`run_event`], embodies the engine's event semantics.
//! It is called
//!
//! * from worker threads during parallel segments (each worker owns one
//!   shard and processes that shard's slice of the segment in event-seq
//!   order),
//! * inline on the serial fast path (small segments, `threads = 1`),
//! * and for single steps ([`Simulator::step`](crate::Simulator::step)).
//!
//! ## Why all three modes produce bit-identical traces
//!
//! Within a segment (a run of same-instant events between topology
//! barriers), a handler can only observe
//!
//! 1. its own node's state (automaton, timers, discovery watermarks, FIFO
//!    horizons, RNG stream, drift cursor) — owner-exclusive, mutated in
//!    the node's own event-seq order regardless of which thread runs it,
//! 2. the canonical edge state — read-only inside a segment (only
//!    topology events write it, and they are barriers),
//! 3. the drift plane — an immutable [`DriftSource`]; all *mutable*
//!    evaluation state is the owner's private cursor (point 1), and
//!    cursor evaluation is bit-identical to the materialized schedule,
//!    so lazy generation can never show in a trace.
//!
//! Everything a handler *emits* — message deliveries, alarms, drop
//! notifications — is buffered as an [`Effect`] tagged with the
//! triggering event's queue sequence number and the emission index within
//! that event. After the segment, the engine sorts all effects by
//! `(trigger seq, emission idx)` and pushes them into the wheel in that
//! canonical order, so new events receive the same sequence numbers (and
//! therefore the same tie-break order) no matter how many workers ran or
//! how their execution interleaved. Randomness cannot break ties either:
//! every draw comes from the consuming node's private stream
//! (see [`Context::rng`](crate::Context::rng)), never from a shared one.

use crate::automaton::{Action, Automaton, Context};
use crate::delay::DelayStrategy;
use crate::engine::DiscoveryDelay;
use crate::event::{EventPayload, LinkChange, LinkChangeKind, QueuedEvent};
use crate::fault::FaultState;
use crate::model::ModelParams;
use crate::shard::{lazy_rng, EdgeStore, Shard};
use gcs_clocks::{DriftCursor, DriftSource, Time};
use gcs_net::{Edge, NodeId};
use rand::rngs::StdRng;

/// Segments shorter than this run inline on the coordinating thread: the
/// scoped-thread fork/join overhead only pays for itself on wide
/// same-instant batches (broadcast fan-in at large `n`). The threshold
/// affects scheduling only — traces are identical either way.
pub(crate) const PAR_MIN_EVENTS: usize = 64;

/// A deferred engine effect: an event to enqueue once the segment's
/// canonical merge runs.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Effect {
    /// Queue sequence number of the triggering event.
    pub seq: u64,
    /// Emission index within the triggering event.
    pub k: u32,
    /// When the new event fires.
    pub time: Time,
    /// What it is.
    pub payload: EventPayload,
}

/// The read-only world shared by every worker during one segment.
#[derive(Clone, Copy)]
pub(crate) struct DispatchCtx<'a> {
    pub edges: &'a EdgeStore,
    /// The drift plane; per-node evaluation state lives in the owner's
    /// shard as a lazy cursor.
    pub drift: &'a dyn DriftSource,
    pub delay: &'a DelayStrategy,
    pub discovery: &'a DiscoveryDelay,
    /// Accumulated fault state (crashed set, loss/delay windows, drift
    /// warp) — written only at fault barriers, read by every worker.
    pub faults: &'a FaultState,
    pub params: ModelParams,
    pub now: Time,
    /// Simulation seed (lazy per-node streams key off it).
    pub seed: u64,
    /// Number of shards (for the id → local-index mapping).
    pub shard_count: usize,
    /// Whether to record touched nodes for an attached observer.
    pub observing: bool,
}

impl DispatchCtx<'_> {
    /// The owner of an event — the node whose state it may mutate.
    /// Topology events have no single owner; they are segment barriers and
    /// never reach [`run_event`].
    pub fn owner(payload: &EventPayload) -> NodeId {
        match payload {
            EventPayload::Deliver { to, .. } => *to,
            EventPayload::Alarm { node, .. } => *node,
            EventPayload::Discover { node, .. } => *node,
            EventPayload::Topology { .. } | EventPayload::Fault { .. } => {
                unreachable!("topology and fault events are barriers, not dispatched")
            }
        }
    }
}

/// Hardware reading of `u` at `t` through the lazy drift plane.
///
/// `H(0) = 0` by the model's convention, so queries at time 0 touch
/// nothing. Stateless planes (eager adapters) answer directly from their
/// materialized schedules. Otherwise the node's cursor — created here on
/// first use — advances to `t` (per-node query times are monotone: one
/// memoized read per instant, instants in time order).
pub(crate) fn read_hw(
    ctx: &DispatchCtx<'_>,
    slot: &mut Option<Box<DriftCursor>>,
    u: NodeId,
    t: Time,
) -> f64 {
    if t == Time::ZERO {
        return 0.0;
    }
    if ctx.drift.stateless() {
        return ctx.drift.read_at(u.index(), t);
    }
    let cursor = slot.get_or_insert_with(|| Box::new(ctx.drift.init(u.index())));
    ctx.drift.read(u.index(), cursor, t)
}

/// Hands `f` the right stream for a maybe-drawing strategy: the node's
/// lazy stream when the strategy declares it draws, else the shard's
/// never-drawn scratch stand-in. In debug builds the stand-in is checked
/// to come back untouched — a strategy that draws while declaring
/// `draws() == false` would silently sample shard-shared state and break
/// the trace-invariance argument, so it fails loudly here instead.
pub(crate) fn sample_with_rng<R>(
    draws: bool,
    slot: &mut Option<Box<StdRng>>,
    scratch: &mut StdRng,
    seed: u64,
    index: usize,
    f: impl FnOnce(&mut StdRng) -> R,
) -> R {
    if draws {
        return f(lazy_rng(slot, seed, index));
    }
    #[cfg(debug_assertions)]
    let before = scratch.clone();
    let out = f(scratch);
    #[cfg(debug_assertions)]
    debug_assert!(
        *scratch == before,
        "strategy drew from the scratch stream while declaring draws() == false"
    );
    out
}

/// Subjective-timer inversion for `u` at `now` through the lazy plane.
///
/// The look-ahead past `now` runs on a probe clone, so the persistent
/// cursor never advances beyond `now`. At time 0 the cursor would stay
/// in its initial state, so none is persisted — a node whose only
/// activity is `on_start` keeps zero drift state.
pub(crate) fn fire_hw(
    ctx: &DispatchCtx<'_>,
    slot: &mut Option<Box<DriftCursor>>,
    u: NodeId,
    now: Time,
    delta: f64,
) -> Time {
    if ctx.drift.stateless() {
        return ctx.drift.fire_at(u.index(), now, delta);
    }
    match slot {
        Some(cursor) => ctx.drift.fire_time(u.index(), cursor, now, delta),
        None if now == Time::ZERO => ctx.drift.fire_at(u.index(), now, delta),
        None => {
            let mut cursor = Box::new(ctx.drift.init(u.index()));
            let t = ctx.drift.fire_time(u.index(), &mut cursor, now, delta);
            *slot = Some(cursor);
            t
        }
    }
}

/// Processes one shard's slice of a segment, in event-seq order.
pub(crate) fn run_shard<A: Automaton>(ctx: &DispatchCtx<'_>, shard: &mut Shard<A>) {
    let events = std::mem::take(&mut shard.events);
    for ev in &events {
        let owner = DispatchCtx::owner(&ev.payload);
        run_event(ctx, shard, owner, ev);
    }
    shard.events = events;
    shard.events.clear();
}

/// Processes a single non-topology event against its owner's shard.
pub(crate) fn run_event<A: Automaton>(
    ctx: &DispatchCtx<'_>,
    shard: &mut Shard<A>,
    owner: NodeId,
    ev: &QueuedEvent,
) {
    let local = owner.index() / ctx.shard_count;
    // A crashed node executes nothing: deliveries to it vanish (the edge
    // is up, so the sender is *not* notified — unlike a removal, a crash
    // is silent), its alarms and discoveries are suppressed. Watermarks
    // are left untouched so a restarted node re-learns its edges through
    // the fresh discoveries the restart schedules.
    if ctx.faults.is_crashed(owner) {
        match ev.payload {
            EventPayload::Deliver { .. } => shard.stats.dropped_crashed += 1,
            _ => shard.stats.suppressed_crashed += 1,
        }
        return;
    }
    shard.table.ensure(local);
    match ev.payload {
        EventPayload::Deliver {
            from,
            to,
            msg,
            epoch,
            ..
        } => {
            let edge = Edge::new(from, to);
            let state = ctx.edges.find(edge);
            if state.map(|e| e.live && e.epoch == epoch).unwrap_or(false) {
                shard.stats.messages_delivered += 1;
                // A delivery touches the node: rehydrate it from the cold
                // tier before the handler observes any state. (The drop
                // path below touches only the *sender*, so it leaves the
                // owner cold.)
                shard.table.rehydrate(local, &mut shard.nodes[local]);
                run_handler(ctx, shard, owner, local, ev.seq, |a, c| {
                    a.on_receive(c, from, msg)
                });
            } else {
                // Dropped in flight: the model obliges the environment to
                // tell the sender within D of the send; we tell it now
                // (≤ send + T).
                shard.stats.dropped_in_flight += 1;
                let version = state.map(|e| e.last_remove_version).unwrap_or(0);
                shard.effects.push(Effect {
                    seq: ev.seq,
                    k: 0,
                    time: ctx.now,
                    payload: EventPayload::Discover {
                        node: from,
                        change: LinkChange {
                            kind: LinkChangeKind::Removed,
                            edge,
                        },
                        version,
                    },
                });
            }
        }
        EventPayload::Alarm {
            kind, generation, ..
        } => {
            // No rehydration here, by construction: eviction requires no
            // armed timer, so an alarm reaching a cold node is stale on
            // the drained slots (`get` → `None`) exactly as it would be
            // on the hot ones (generation mismatch) — same branch, same
            // stats.
            if shard.table.timers[local].get(kind) != Some(generation) {
                shard.stats.alarms_stale += 1;
                return;
            }
            debug_assert!(
                !shard.table.is_cold(local),
                "live alarm against a cold node: eviction let an armed timer through"
            );
            shard.table.timers[local].disarm(kind);
            shard.stats.alarms_fired += 1;
            run_handler(ctx, shard, owner, local, ev.seq, |a, c| a.on_alarm(c, kind));
        }
        EventPayload::Discover {
            change, version, ..
        } => {
            // Rehydrate before the staleness check: the discovery
            // watermark being compared lives in the packed peer state.
            shard.table.rehydrate(local, &mut shard.nodes[local]);
            let other = change.edge.other(owner);
            let peer = shard.table.peer(local, other);
            if version <= peer.discovered_version {
                shard.stats.discovers_stale += 1;
                return;
            }
            peer.discovered_version = version;
            shard.stats.discovers_delivered += 1;
            run_handler(ctx, shard, owner, local, ev.seq, |a, c| {
                a.on_discover(c, change)
            });
        }
        EventPayload::Topology { .. } | EventPayload::Fault { .. } => {
            unreachable!("barrier events are applied serially between segments")
        }
    }
}

/// Runs one handler on its owner and turns the produced [`Action`]s into
/// effects, applying owner-local side effects (timer generations, FIFO
/// horizons, RNG draws, cursor advances) immediately so later events of
/// the *same* node in the same segment observe them — exactly as the
/// per-event engine did.
pub(crate) fn run_handler<A: Automaton>(
    ctx: &DispatchCtx<'_>,
    shard: &mut Shard<A>,
    u: NodeId,
    local: usize,
    seq: u64,
    f: impl FnOnce(&mut A, &mut Context<'_>),
) {
    let Shard {
        nodes,
        table,
        effects,
        stats,
        touched,
        actions,
        scratch_rng,
        ..
    } = shard;
    // One drift-plane evaluation per node per instant (two events at the
    // same instant read the same hardware value by definition). At time 0
    // every clock reads exactly 0, so `on_start` dispatch touches no
    // table slot — a node whose start handler does nothing never
    // materializes any engine state at all.
    let base = if ctx.now == Time::ZERO {
        0.0
    } else {
        table.ensure(local);
        if table.hw_time[local] != ctx.now {
            table.hw[local] = read_hw(ctx, &mut table.drift[local], u, ctx.now);
            table.hw_time[local] = ctx.now;
        }
        table.hw[local]
    };
    // The *observed* reading adds any drift-excursion warp. The memo and
    // the cursor stay on the base plane — warp is a pure function of
    // `(node, now)` given the applied faults, so re-adding it at every
    // observation point keeps all paths (handlers, `Simulator::hardware`,
    // later instants) consistent. Exactly 0.0 on clean runs, so fault-free
    // traces are bit-identical to builds without a fault plane.
    let warp = ctx.faults.hw_warp(u, ctx.now);
    let hw = if warp != 0.0 { base + warp } else { base };
    actions.clear();
    // The RNG slot rides outside the table during the handler so a
    // not-yet-materialized node only claims its slots if the handler
    // actually did something (drew, or emitted actions).
    let ensured = local < table.watermark();
    let mut rng_slot = if ensured {
        table.rng[local].take()
    } else {
        None
    };
    {
        let mut c = Context::with_lazy_rng(u, ctx.now, hw, actions, &mut rng_slot, ctx.seed);
        f(&mut nodes[local], &mut c);
    }
    if ensured || rng_slot.is_some() || !actions.is_empty() {
        table.ensure(local);
        table.rng[local] = rng_slot;
    }
    if ctx.observing {
        touched.push(u);
    }
    let mut k = 0u32;
    for action in actions.drain(..) {
        match action {
            Action::Send { to, msg } => {
                stats.messages_sent += 1;
                let edge = Edge::new(u, to);
                // An open loss window swallows the send silently: no
                // delivery, no sender notification — unlike a removed
                // edge, the window is invisible to the protocol.
                if ctx.faults.drops(ctx.now, edge) {
                    stats.dropped_fault_window += 1;
                    k += 1;
                    continue;
                }
                let state = ctx.edges.find(edge);
                if state.map(|e| e.live).unwrap_or(false) {
                    let epoch = state.expect("live edge has an entry").epoch;
                    // A delay spike overrides the strategy (and skips its
                    // draw — spike windows are deterministic, so this is
                    // thread-count invariant); otherwise the node's stream
                    // materializes only for strategies that actually draw.
                    let d = if let Some(spike) = ctx.faults.delay_override(ctx.now) {
                        stats.delay_spiked += 1;
                        spike
                    } else {
                        sample_with_rng(
                            ctx.delay.draws(),
                            &mut table.rng[local],
                            scratch_rng,
                            ctx.seed,
                            u.index(),
                            |rng| ctx.delay.delay(edge, u, ctx.now, ctx.params.t, rng),
                        )
                    };
                    let mut deliver_at = ctx.now + gcs_clocks::Duration::new(d);
                    // FIFO per directed link: never deliver before an
                    // earlier message.
                    let peer = table.peer(local, to);
                    deliver_at = deliver_at.max(peer.fifo_out);
                    peer.fifo_out = deliver_at;
                    effects.push(Effect {
                        seq,
                        k,
                        time: deliver_at,
                        payload: EventPayload::Deliver {
                            from: u,
                            to,
                            msg,
                            epoch,
                        },
                    });
                } else {
                    // The edge does not exist: the message is not delivered
                    // and the sender discovers that within D.
                    stats.dropped_no_edge += 1;
                    let version = state.map(|e| e.last_remove_version).unwrap_or(0);
                    let lat = sample_with_rng(
                        ctx.discovery.draws(),
                        &mut table.rng[local],
                        scratch_rng,
                        ctx.seed,
                        u.index(),
                        |rng| ctx.discovery.sample(ctx.params.d, rng),
                    );
                    effects.push(Effect {
                        seq,
                        k,
                        time: ctx.now + gcs_clocks::Duration::new(lat),
                        payload: EventPayload::Discover {
                            node: u,
                            change: LinkChange {
                                kind: LinkChangeKind::Removed,
                                edge,
                            },
                            version,
                        },
                    });
                }
                k += 1;
            }
            Action::SetTimer { delta, kind } => {
                let generation = table.timers[local].arm(kind);
                let fire = fire_hw(ctx, &mut table.drift[local], u, ctx.now, delta);
                effects.push(Effect {
                    seq,
                    k,
                    time: fire,
                    payload: EventPayload::Alarm {
                        node: u,
                        kind,
                        generation,
                    },
                });
                k += 1;
            }
            Action::CancelTimer { kind } => table.timers[local].cancel(kind),
        }
    }
}
