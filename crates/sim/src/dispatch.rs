//! The deterministic dispatch core shared by every execution mode.
//!
//! One function, [`run_event`], embodies the engine's event semantics.
//! It is called
//!
//! * from worker threads during parallel segments (each worker owns one
//!   shard and processes that shard's slice of the segment in event-seq
//!   order),
//! * inline on the serial fast path (small segments, `threads = 1`),
//! * and for single steps ([`Simulator::step`](crate::Simulator::step)).
//!
//! ## Why all three modes produce bit-identical traces
//!
//! Within a segment (a run of same-instant events between topology
//! barriers), a handler can only observe
//!
//! 1. its own node's state (automaton, timers, discovery watermarks, FIFO
//!    horizons, RNG stream, drift cursor) — owner-exclusive, mutated in
//!    the node's own event-seq order regardless of which thread runs it,
//! 2. the canonical edge state — read-only inside a segment (only
//!    topology events write it, and they are barriers),
//! 3. the drift plane — an immutable [`DriftSource`]; all *mutable*
//!    evaluation state is the owner's private cursor (point 1), and
//!    cursor evaluation is bit-identical to the materialized schedule,
//!    so lazy generation can never show in a trace.
//!
//! Everything a handler *emits* — message deliveries, alarms, drop
//! notifications — is buffered as an [`Effect`] tagged with the
//! triggering event's queue sequence number and the emission index within
//! that event. After the segment, the engine sorts all effects by
//! `(trigger seq, emission idx)` and pushes them into the wheel in that
//! canonical order, so new events receive the same sequence numbers (and
//! therefore the same tie-break order) no matter how many workers ran or
//! how their execution interleaved. Randomness cannot break ties either:
//! every draw comes from the consuming node's private stream
//! (see [`Context::rng`](crate::Context::rng)), never from a shared one.

use crate::automaton::{Action, Automaton, Context};
use crate::delay::DelayStrategy;
use crate::engine::DiscoveryDelay;
use crate::event::{EventPayload, LinkChange, LinkChangeKind, QueuedEvent};
use crate::fault::FaultState;
use crate::model::ModelParams;
use crate::shard::{lazy_rng, EdgeStore, Shard};
use gcs_clocks::{DriftCursor, DriftSource, Time};
use gcs_net::{Edge, NodeId};
use rand::rngs::StdRng;

/// Default parallel threshold: segments (and topology batches) shorter
/// than this run inline on the coordinating thread — handing a few
/// events to the pool costs more than running them. The threshold
/// affects scheduling only — traces are identical either way — and is
/// tunable per run via `SimBuilder::par_threshold` or the
/// `GCS_SIM_PAR_MIN` environment variable.
pub(crate) const PAR_MIN_EVENTS: usize = 64;

/// A deferred engine effect: an event to enqueue once the segment's
/// canonical merge runs.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Effect {
    /// Queue sequence number of the triggering event.
    pub seq: u64,
    /// Emission index within the triggering event.
    pub k: u32,
    /// When the new event fires.
    pub time: Time,
    /// What it is.
    pub payload: EventPayload,
}

/// The read-only world shared by every worker during one segment.
#[derive(Clone, Copy)]
pub(crate) struct DispatchCtx<'a> {
    pub edges: &'a EdgeStore,
    /// The drift plane; per-node evaluation state lives in the owner's
    /// shard as a lazy cursor.
    pub drift: &'a dyn DriftSource,
    pub delay: &'a DelayStrategy,
    pub discovery: &'a DiscoveryDelay,
    /// Accumulated fault state (crashed set, loss/delay windows, drift
    /// warp) — written only at fault barriers, read by every worker.
    pub faults: &'a FaultState,
    pub params: ModelParams,
    pub now: Time,
    /// Simulation seed (lazy per-node streams key off it).
    pub seed: u64,
    /// Number of shards (for the id → local-index mapping).
    pub shard_count: usize,
    /// Whether to record touched nodes for an attached observer.
    pub observing: bool,
}

impl DispatchCtx<'_> {
    /// The owner of an event — the node whose state it may mutate.
    /// Topology events have no single owner; they are segment barriers and
    /// never reach [`run_event`].
    pub fn owner(payload: &EventPayload) -> NodeId {
        match payload {
            EventPayload::Deliver { to, .. } => *to,
            EventPayload::Alarm { node, .. } => *node,
            EventPayload::Discover { node, .. } => *node,
            EventPayload::Topology { .. } | EventPayload::Fault { .. } => {
                unreachable!("topology and fault events are barriers, not dispatched")
            }
        }
    }
}

/// Hardware reading of `u` at `t` through the lazy drift plane.
///
/// `H(0) = 0` by the model's convention, so queries at time 0 touch
/// nothing. Stateless planes (eager adapters) answer directly from their
/// materialized schedules. Otherwise the node's cursor — created here on
/// first use — advances to `t` (per-node query times are monotone: one
/// memoized read per instant, instants in time order).
pub(crate) fn read_hw(
    ctx: &DispatchCtx<'_>,
    slot: &mut Option<Box<DriftCursor>>,
    u: NodeId,
    t: Time,
) -> f64 {
    if t == Time::ZERO {
        return 0.0;
    }
    if ctx.drift.stateless() {
        return ctx.drift.read_at(u.index(), t);
    }
    let cursor = slot.get_or_insert_with(|| Box::new(ctx.drift.init(u.index())));
    ctx.drift.read(u.index(), cursor, t)
}

/// Hands `f` the right stream for a maybe-drawing strategy: the node's
/// lazy stream when the strategy declares it draws, else the shard's
/// never-drawn scratch stand-in. In debug builds the stand-in is checked
/// to come back untouched — a strategy that draws while declaring
/// `draws() == false` would silently sample shard-shared state and break
/// the trace-invariance argument, so it fails loudly here instead.
pub(crate) fn sample_with_rng<R>(
    draws: bool,
    slot: &mut Option<Box<StdRng>>,
    scratch: &mut StdRng,
    seed: u64,
    index: usize,
    f: impl FnOnce(&mut StdRng) -> R,
) -> R {
    if draws {
        return f(lazy_rng(slot, seed, index));
    }
    #[cfg(debug_assertions)]
    let before = scratch.clone();
    let out = f(scratch);
    #[cfg(debug_assertions)]
    debug_assert!(
        *scratch == before,
        "strategy drew from the scratch stream while declaring draws() == false"
    );
    out
}

/// Subjective-timer inversion for `u` at `now` through the lazy plane.
///
/// The look-ahead past `now` runs on a probe clone, so the persistent
/// cursor never advances beyond `now`. At time 0 the cursor would stay
/// in its initial state, so none is persisted — a node whose only
/// activity is `on_start` keeps zero drift state.
pub(crate) fn fire_hw(
    ctx: &DispatchCtx<'_>,
    slot: &mut Option<Box<DriftCursor>>,
    u: NodeId,
    now: Time,
    delta: f64,
) -> Time {
    if ctx.drift.stateless() {
        return ctx.drift.fire_at(u.index(), now, delta);
    }
    match slot {
        Some(cursor) => ctx.drift.fire_time(u.index(), cursor, now, delta),
        None if now == Time::ZERO => ctx.drift.fire_at(u.index(), now, delta),
        None => {
            let mut cursor = Box::new(ctx.drift.init(u.index()));
            let t = ctx.drift.fire_time(u.index(), &mut cursor, now, delta);
            *slot = Some(cursor);
            t
        }
    }
}

/// Processes one shard's slice of a segment, in event-seq order.
pub(crate) fn run_shard<A: Automaton>(ctx: &DispatchCtx<'_>, shard: &mut Shard<A>) {
    let events = std::mem::take(&mut shard.events);
    for ev in &events {
        let owner = DispatchCtx::owner(&ev.payload);
        run_event(ctx, shard, owner, ev);
    }
    shard.events = events;
    shard.events.clear();
}

/// Processes a single non-topology event against its owner's shard.
pub(crate) fn run_event<A: Automaton>(
    ctx: &DispatchCtx<'_>,
    shard: &mut Shard<A>,
    owner: NodeId,
    ev: &QueuedEvent,
) {
    let local = owner.index() / ctx.shard_count;
    // A crashed node executes nothing: deliveries to it vanish (the edge
    // is up, so the sender is *not* notified — unlike a removal, a crash
    // is silent), its alarms and discoveries are suppressed. Watermarks
    // are left untouched so a restarted node re-learns its edges through
    // the fresh discoveries the restart schedules.
    if ctx.faults.is_crashed(owner) {
        match ev.payload {
            EventPayload::Deliver { .. } => shard.stats.dropped_crashed += 1,
            _ => shard.stats.suppressed_crashed += 1,
        }
        return;
    }
    shard.table.ensure(local);
    match ev.payload {
        EventPayload::Deliver {
            from,
            to,
            msg,
            epoch,
            ..
        } => {
            let edge = Edge::new(from, to);
            let state = ctx.edges.find(edge);
            if state.map(|e| e.live && e.epoch == epoch).unwrap_or(false) {
                shard.stats.messages_delivered += 1;
                // A delivery touches the node: rehydrate it from the cold
                // tier before the handler observes any state. (The drop
                // path below touches only the *sender*, so it leaves the
                // owner cold.)
                shard.table.rehydrate(local, &mut shard.nodes[local]);
                run_handler(ctx, shard, owner, local, ev.seq, |a, c| {
                    a.on_receive(c, from, msg)
                });
            } else {
                // Dropped in flight: the model obliges the environment to
                // tell the sender within D of the send; we tell it now
                // (≤ send + T).
                shard.stats.dropped_in_flight += 1;
                let version = state.map(|e| e.last_remove_version).unwrap_or(0);
                shard.effects.push(Effect {
                    seq: ev.seq,
                    k: 0,
                    time: ctx.now,
                    payload: EventPayload::Discover {
                        node: from,
                        change: LinkChange {
                            kind: LinkChangeKind::Removed,
                            edge,
                        },
                        version,
                    },
                });
            }
        }
        EventPayload::Alarm {
            kind, generation, ..
        } => {
            // No rehydration here, by construction: eviction requires no
            // armed timer, so an alarm reaching a cold node is stale on
            // the drained slots (`get` → `None`) exactly as it would be
            // on the hot ones (generation mismatch) — same branch, same
            // stats.
            if shard.table.timers[local].get(kind) != Some(generation) {
                shard.stats.alarms_stale += 1;
                return;
            }
            debug_assert!(
                !shard.table.is_cold(local),
                "live alarm against a cold node: eviction let an armed timer through"
            );
            shard.table.timers[local].disarm(kind);
            shard.stats.alarms_fired += 1;
            run_handler(ctx, shard, owner, local, ev.seq, |a, c| a.on_alarm(c, kind));
        }
        EventPayload::Discover {
            change, version, ..
        } => {
            // Rehydrate before the staleness check: the discovery
            // watermark being compared lives in the packed peer state.
            shard.table.rehydrate(local, &mut shard.nodes[local]);
            let other = change.edge.other(owner);
            let peer = shard.table.peer(local, other);
            if version <= peer.discovered_version {
                shard.stats.discovers_stale += 1;
                return;
            }
            peer.discovered_version = version;
            shard.stats.discovers_delivered += 1;
            run_handler(ctx, shard, owner, local, ev.seq, |a, c| {
                a.on_discover(c, change)
            });
        }
        EventPayload::Topology { .. } | EventPayload::Fault { .. } => {
            unreachable!("barrier events are applied serially between segments")
        }
    }
}

/// Runs one handler on its owner and turns the produced [`Action`]s into
/// effects, applying owner-local side effects (timer generations, FIFO
/// horizons, RNG draws, cursor advances) immediately so later events of
/// the *same* node in the same segment observe them — exactly as the
/// per-event engine did.
pub(crate) fn run_handler<A: Automaton>(
    ctx: &DispatchCtx<'_>,
    shard: &mut Shard<A>,
    u: NodeId,
    local: usize,
    seq: u64,
    f: impl FnOnce(&mut A, &mut Context<'_>),
) {
    let Shard {
        nodes,
        table,
        effects,
        stats,
        touched,
        actions,
        scratch_rng,
        ..
    } = shard;
    // One drift-plane evaluation per node per instant (two events at the
    // same instant read the same hardware value by definition). At time 0
    // every clock reads exactly 0, so `on_start` dispatch touches no
    // table slot — a node whose start handler does nothing never
    // materializes any engine state at all.
    let base = if ctx.now == Time::ZERO {
        0.0
    } else {
        table.ensure(local);
        if table.hw_time[local] != ctx.now {
            table.hw[local] = read_hw(ctx, &mut table.drift[local], u, ctx.now);
            table.hw_time[local] = ctx.now;
        }
        table.hw[local]
    };
    // The *observed* reading adds any drift-excursion warp. The memo and
    // the cursor stay on the base plane — warp is a pure function of
    // `(node, now)` given the applied faults, so re-adding it at every
    // observation point keeps all paths (handlers, `Simulator::hardware`,
    // later instants) consistent. Exactly 0.0 on clean runs, so fault-free
    // traces are bit-identical to builds without a fault plane.
    let warp = ctx.faults.hw_warp(u, ctx.now);
    let hw = if warp != 0.0 { base + warp } else { base };
    actions.clear();
    // The RNG slot rides outside the table during the handler so a
    // not-yet-materialized node only claims its slots if the handler
    // actually did something (drew, or emitted actions).
    let ensured = local < table.watermark();
    let mut rng_slot = if ensured {
        table.rng[local].take()
    } else {
        None
    };
    {
        let mut c = Context::with_lazy_rng(u, ctx.now, hw, actions, &mut rng_slot, ctx.seed);
        f(&mut nodes[local], &mut c);
    }
    if ensured || rng_slot.is_some() || !actions.is_empty() {
        table.ensure(local);
        table.rng[local] = rng_slot;
    }
    if ctx.observing {
        touched.push(u);
    }
    let mut k = 0u32;
    for action in actions.drain(..) {
        match action {
            Action::Send { to, msg } => {
                stats.messages_sent += 1;
                let edge = Edge::new(u, to);
                // An open loss window swallows the send silently: no
                // delivery, no sender notification — unlike a removed
                // edge, the window is invisible to the protocol.
                if ctx.faults.drops(ctx.now, edge) {
                    stats.dropped_fault_window += 1;
                    k += 1;
                    continue;
                }
                let state = ctx.edges.find(edge);
                if state.map(|e| e.live).unwrap_or(false) {
                    let epoch = state.expect("live edge has an entry").epoch;
                    // A delay spike overrides the strategy (and skips its
                    // draw — spike windows are deterministic, so this is
                    // thread-count invariant); otherwise the node's stream
                    // materializes only for strategies that actually draw.
                    let d = if let Some(spike) = ctx.faults.delay_override(ctx.now) {
                        stats.delay_spiked += 1;
                        spike
                    } else {
                        sample_with_rng(
                            ctx.delay.draws(),
                            &mut table.rng[local],
                            scratch_rng,
                            ctx.seed,
                            u.index(),
                            |rng| ctx.delay.delay(edge, u, ctx.now, ctx.params.t, rng),
                        )
                    };
                    let mut deliver_at = ctx.now + gcs_clocks::Duration::new(d);
                    // FIFO per directed link: never deliver before an
                    // earlier message.
                    let peer = table.peer(local, to);
                    deliver_at = deliver_at.max(peer.fifo_out);
                    peer.fifo_out = deliver_at;
                    effects.push(Effect {
                        seq,
                        k,
                        time: deliver_at,
                        payload: EventPayload::Deliver {
                            from: u,
                            to,
                            msg,
                            epoch,
                        },
                    });
                } else {
                    // The edge does not exist: the message is not delivered
                    // and the sender discovers that within D.
                    stats.dropped_no_edge += 1;
                    let version = state.map(|e| e.last_remove_version).unwrap_or(0);
                    let lat = sample_with_rng(
                        ctx.discovery.draws(),
                        &mut table.rng[local],
                        scratch_rng,
                        ctx.seed,
                        u.index(),
                        |rng| ctx.discovery.sample(ctx.params.d, rng),
                    );
                    effects.push(Effect {
                        seq,
                        k,
                        time: ctx.now + gcs_clocks::Duration::new(lat),
                        payload: EventPayload::Discover {
                            node: u,
                            change: LinkChange {
                                kind: LinkChangeKind::Removed,
                                edge,
                            },
                            version,
                        },
                    });
                }
                k += 1;
            }
            Action::SetTimer { delta, kind } => {
                let generation = table.timers[local].arm(kind);
                let fire = fire_hw(ctx, &mut table.drift[local], u, ctx.now, delta);
                effects.push(Effect {
                    seq,
                    k,
                    time: fire,
                    payload: EventPayload::Alarm {
                        node: u,
                        kind,
                        generation,
                    },
                });
                k += 1;
            }
            Action::CancelTimer { kind } => table.timers[local].cancel(kind),
        }
    }
}

/// A job handed to a pool worker: any closure over borrows that outlive
/// the [`WorkerPool::run`] call that submitted it (`run` blocks until
/// every submitted job completes, which is what makes the lifetime
/// erasure in `run` sound).
pub(crate) type ScopedJob<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// The erased form a worker thread actually receives.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// One long-lived worker: its job channel, its completion channel, and
/// the OS thread itself.
struct Worker {
    job_tx: std::sync::mpsc::Sender<Job>,
    done_rx: std::sync::mpsc::Receiver<()>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// A persistent pool of shard-pinned worker lanes.
///
/// The pre-pool dispatcher paid a `std::thread::scope` spawn/join for
/// every wide segment — tens of microseconds of thread creation per
/// barrier, dominating segment cost under sustained churn. The pool
/// spawns its threads once (lazily, at the first wide segment) and feeds
/// them per-barrier jobs over plain `mpsc` channels.
///
/// **Leader participation**: lane 0 *is* the submitting thread. The
/// coordinator would otherwise block in `recv` while its workers run, so
/// it executes lane 0's job itself after handing out the rest — one
/// fewer OS thread, one fewer channel round-trip per barrier, and on a
/// two-lane pool the barrier costs a single send/recv pair.
///
/// **Pinning**: the engine always submits the job for shard chunk `w` to
/// lane `w`, so the shard → lane assignment is fixed for the life of
/// the simulator (warm caches, and no cross-lane migration of shard
/// state). Pinning — like everything else about the pool — is
/// scheduling only: traces are bit-identical to the inline and fork/join
/// paths because jobs run the same `run_shard`/`apply_batch` bodies over
/// the same disjoint `&mut` partitions.
///
/// **Soundness**: jobs capture non-`'static` borrows of the simulator's
/// shards; [`run`](Self::run) transmutes that lifetime away to cross the
/// channel and then blocks until every submitted job has signalled
/// completion (or its worker has died), re-establishing the guarantee a
/// scoped spawn gives statically: no borrow outlives the call.
///
/// **Panics**: a panicking job kills its worker thread, closing both its
/// channels. `run` detects the closed channel, *first* waits for every
/// other submitted job (so no borrow is still in flight), then joins the
/// dead worker and re-raises its payload on the coordinating thread —
/// a worker panic fails the run loudly instead of deadlocking it.
pub(crate) struct WorkerPool {
    workers: Vec<Worker>,
    /// Jobs submitted over the pool's lifetime (test observability).
    jobs_run: u64,
}

impl WorkerPool {
    /// Spawns a pool with `lanes` parallel lanes: lane 0 is the
    /// submitting thread itself, lanes `1..lanes` are OS threads named
    /// for debuggability.
    pub fn spawn(lanes: usize) -> Self {
        assert!(lanes >= 1, "a pool needs at least one lane");
        let workers = (1..lanes)
            .map(|i| {
                let (job_tx, job_rx) = std::sync::mpsc::channel::<Job>();
                let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
                let handle = std::thread::Builder::new()
                    .name(format!("gcs-shard-{i}"))
                    .spawn(move || {
                        // Exits when the pool drops its sender; dies (and
                        // is detected through its closed channels) if a
                        // job panics.
                        while let Ok(job) = job_rx.recv() {
                            job();
                            if done_tx.send(()).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("failed to spawn shard worker");
                Worker {
                    job_tx,
                    done_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        WorkerPool {
            workers,
            jobs_run: 0,
        }
    }

    /// Number of lanes, counting the caller's lane 0.
    pub fn size(&self) -> usize {
        self.workers.len() + 1
    }

    /// Jobs submitted over the pool's lifetime.
    pub fn jobs_run(&self) -> u64 {
        self.jobs_run
    }

    /// Runs every `(lane, job)` pair on its pinned lane — lane 0 inline
    /// on the caller, the rest on their worker threads — and blocks
    /// until all of them complete. Propagates the first panic (inline
    /// first, then workers) after every other submitted job has
    /// finished.
    pub fn run<'scope>(&mut self, jobs: Vec<(usize, ScopedJob<'scope>)>) {
        let mut inline: Vec<ScopedJob<'scope>> = Vec::new();
        let mut pending: Vec<usize> = Vec::with_capacity(jobs.len());
        let mut dead: Option<usize> = None;
        for (lane, job) in jobs {
            self.jobs_run += 1;
            if lane == 0 {
                inline.push(job);
                continue;
            }
            let w = lane - 1;
            // SAFETY: the borrows captured by `job` live for `'scope`,
            // which encloses this call; the loops below do not return
            // until the worker has either finished the job (completion
            // message) or died without completing it (closed channel) —
            // in both cases the job no longer runs, so no borrow escapes
            // the call. An unsent job (dead worker) is dropped here,
            // inside `'scope`, without ever running. This is the same
            // lifetime erasure a scoped spawn performs internally; the
            // workspace-wide `unsafe_code = "deny"` is waived for this
            // single statement.
            #[allow(unsafe_code)]
            let job: Job = unsafe { std::mem::transmute::<ScopedJob<'scope>, Job>(job) };
            if self.workers[w].job_tx.send(job).is_ok() {
                pending.push(w);
            } else {
                dead.get_or_insert(w);
            }
        }
        // Leader participation: run lane 0 while the workers chew on
        // theirs. An inline panic must not unwind yet — remote jobs still
        // hold caller-frame borrows — so it is caught and re-raised after
        // the barrier, exactly like a worker death.
        let mut inline_panic = None;
        for job in inline {
            if inline_panic.is_none() {
                inline_panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).err();
            }
        }
        for w in pending {
            if self.workers[w].done_rx.recv().is_err() {
                dead.get_or_insert(w);
            }
        }
        // Every live worker is idle again and every dead worker has
        // stopped executing — only now is unwinding (which releases the
        // borrows the jobs captured) safe.
        if let Some(payload) = inline_panic {
            std::panic::resume_unwind(payload);
        }
        if let Some(w) = dead {
            match self.workers[w].handle.take().map(|h| h.join()) {
                Some(Err(payload)) => std::panic::resume_unwind(payload),
                _ => panic!("shard worker {} terminated unexpectedly", w + 1),
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for Worker {
            job_tx,
            done_rx,
            handle,
        } in self.workers.drain(..)
        {
            // Closing the job channel is the shutdown signal; join
            // errors are ignored (the panic, if any, was already
            // propagated by `run`, and a second panic mid-unwind would
            // abort).
            drop(job_tx);
            drop(done_rx);
            if let Some(h) = handle {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_jobs_on_pinned_workers_and_reuses_threads() {
        let mut pool = WorkerPool::spawn(2);
        let mut out = [0usize; 2];
        let names: [std::sync::Mutex<Vec<String>>; 2] = Default::default();
        for round in 1..=3 {
            let (a, b) = out.split_at_mut(1);
            let jobs: Vec<(usize, ScopedJob<'_>)> = vec![
                (0, {
                    let names = &names[0];
                    Box::new(move || {
                        a[0] += round;
                        names
                            .lock()
                            .unwrap()
                            .push(std::thread::current().name().unwrap_or("").to_owned());
                    })
                }),
                (1, {
                    let names = &names[1];
                    Box::new(move || {
                        b[0] += round * 10;
                        names
                            .lock()
                            .unwrap()
                            .push(std::thread::current().name().unwrap_or("").to_owned());
                    })
                }),
            ];
            pool.run(jobs);
        }
        assert_eq!(out, [6, 60]);
        assert_eq!(pool.jobs_run(), 6);
        let caller = std::thread::current().name().unwrap_or("").to_owned();
        for (lane, names) in names.iter().enumerate() {
            let expected = if lane == 0 {
                // Leader participation: lane 0 runs on the submitting
                // thread itself.
                caller.clone()
            } else {
                format!("gcs-shard-{lane}")
            };
            let names = names.lock().unwrap();
            assert_eq!(names.len(), 3);
            assert!(
                names.iter().all(|n| *n == expected),
                "jobs for chunk {lane} must stay pinned to lane {lane} ({expected}): {names:?}"
            );
        }
    }

    #[test]
    fn pool_drop_joins_idle_workers() {
        let pool = WorkerPool::spawn(4);
        drop(pool); // must not hang
    }

    #[test]
    fn pool_propagates_worker_panics_after_draining() {
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut pool = WorkerPool::spawn(2);
            pool.run(vec![
                (0, {
                    let finished = &finished;
                    Box::new(move || {
                        finished.fetch_add(1, Ordering::SeqCst);
                    }) as ScopedJob<'_>
                }),
                (1, Box::new(|| panic!("job exploded"))),
            ]);
        }));
        let payload = result.expect_err("worker panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "job exploded", "original payload re-raised");
        assert_eq!(
            finished.load(Ordering::SeqCst),
            1,
            "other submitted jobs complete before the panic unwinds"
        );
    }

    #[test]
    fn pool_propagates_inline_lane_panics_after_the_barrier() {
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut pool = WorkerPool::spawn(2);
            pool.run(vec![
                (0, Box::new(|| panic!("leader exploded")) as ScopedJob<'_>),
                (1, {
                    let finished = &finished;
                    Box::new(move || {
                        finished.fetch_add(1, Ordering::SeqCst);
                    })
                }),
            ]);
        }));
        let payload = result.expect_err("inline panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "leader exploded");
        assert_eq!(
            finished.load(Ordering::SeqCst),
            1,
            "remote jobs complete before the inline panic unwinds"
        );
    }
}
