//! The fault plane: typed, time-ordered fault injection.
//!
//! The paper's guarantees are claims about adversarial executions —
//! Theorem 4.1's lower bound is *constructed* from worst-case edge timing,
//! and the Section 6 upper bounds hold for every drift/delay assignment
//! the model admits. A well-behaved schedule exercises none of that. This
//! module adds the third input plane next to topology
//! ([`TopologySource`](gcs_net::TopologySource)) and drift
//! ([`DriftSource`](gcs_clocks::DriftSource)): a pull-based stream of
//! [`FaultEvent`]s that the engine applies as serial barriers in the
//! canonical `(time, class, seq)` order, so faulty runs stay bit-identical
//! at every thread count.
//!
//! ## Fault kinds
//!
//! * [`FaultKind::Crash`] / [`FaultKind::Restart`] — a node stops
//!   executing (deliveries to it vanish, its alarms and discoveries are
//!   suppressed) and later reboots **with state loss** via
//!   [`Automaton::reboot`](crate::Automaton::reboot): the replacement
//!   instance runs `on_start` at the restart instant and rediscovers its
//!   live edges within the discovery bound `D`.
//! * [`FaultKind::DropWindow`] — for a window of real time, sends
//!   matching an edge filter vanish silently at the model boundary (the
//!   sender is *not* notified — unlike a removed edge, a lossy window is
//!   invisible to the protocol, which is what makes it a fault).
//! * [`FaultKind::DelaySpike`] — for a window, every delivery delay is
//!   overridden with a fixed value that may exceed the bound `T`: a
//!   deliberate model violation for negative controls.
//! * [`FaultKind::DriftExcursion`] — for a window, one node's *observed*
//!   hardware clock runs at an extra `rate_delta`, allowing rates outside
//!   `[1−ρ, 1+ρ]`. This is the negative control that must trip
//!   `InvariantMonitor` (`gcs-core`): the Section 6 proofs assume bounded
//!   drift, so an excursion falsifies their conclusions measurably.
//!   Subjective timers keep firing on the *un*-warped plane — the
//!   excursion models a mis-measuring oscillator, not a re-derived timer
//!   schedule, and keeping the base plane authoritative for `fire_time`
//!   preserves the exact-inversion contract.
//!
//! ## The pull contract
//!
//! [`FaultSource`] mirrors the topology contract: events come out in
//! nondecreasing time order with every time `> 0`, `peek_time` names the
//! earliest unemitted event, and `pull_until(t)` emits everything due at
//! or before `t`. The engine pumps faults exactly like topology — before
//! each instant, never mid-round — so pull timing is a function of the
//! instant sequence and therefore of the trace alone. Randomized sources
//! (e.g. [`CrashRestartSource`]) draw from **per-fault keyed streams**
//! (a pure function of `(seed, node)`), never from a node's protocol
//! stream, so fault timing is independent of protocol randomness and of
//! when the pull happens.

use gcs_clocks::Time;
use gcs_net::{Edge, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One typed fault injection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The node halts: deliveries to it are lost, its alarms and
    /// discoveries are suppressed, and its timers are cancelled. Crashing
    /// an already-crashed node is a no-op. The node's last automaton state
    /// remains *queryable* (snapshots still read its clocks, which keep
    /// growing at the hardware rate — a crashed node's last logical value
    /// ages exactly like a frozen `ClockVar`).
    Crash {
        /// The node to halt.
        node: NodeId,
    },
    /// The node reboots with state loss: the automaton is replaced by
    /// [`Automaton::reboot`](crate::Automaton::reboot), `on_start` runs at
    /// the restart instant, per-neighbor discovery watermarks reset, and
    /// every currently-live incident edge is rediscovered within `D`.
    /// Restarting a node that never crashed is allowed and models an
    /// in-place reboot (state loss without downtime).
    Restart {
        /// The node to reboot.
        node: NodeId,
    },
    /// For `duration` real seconds from the fault instant, sends over
    /// `edge` (every edge when `None`) are silently lost: no delivery, no
    /// sender notification.
    DropWindow {
        /// Restrict the window to one edge; `None` drops on all edges.
        edge: Option<Edge>,
        /// Window length in real seconds.
        duration: f64,
    },
    /// For `duration` real seconds, every message delay is overridden to
    /// exactly `delay` (FIFO clamping still applies). Values above the
    /// model bound `T` are allowed — that is the point.
    DelaySpike {
        /// The forced delay in real seconds.
        delay: f64,
        /// Window length in real seconds.
        duration: f64,
    },
    /// For `duration` real seconds, `node`'s *observed* hardware clock
    /// gains an extra `rate_delta` per real second, permitting rates
    /// outside `[1−ρ, 1+ρ]` (the negative control for `InvariantMonitor`).
    DriftExcursion {
        /// The affected node.
        node: NodeId,
        /// Additional clock rate (e.g. `+0.2` makes a nominal-rate clock
        /// run at `1.2`).
        rate_delta: f64,
        /// Window length in real seconds.
        duration: f64,
    },
}

/// A [`FaultKind`] scheduled at an instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// When the fault takes effect (must be `> 0`).
    pub time: Time,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// A crash of `node` at `time`.
    pub fn crash(time: f64, node: NodeId) -> Self {
        FaultEvent {
            time: Time::new(time),
            kind: FaultKind::Crash { node },
        }
    }

    /// A restart of `node` at `time`.
    pub fn restart(time: f64, node: NodeId) -> Self {
        FaultEvent {
            time: Time::new(time),
            kind: FaultKind::Restart { node },
        }
    }

    /// A network-wide message-loss window `[time, time + duration)`.
    pub fn drop_window(time: f64, duration: f64) -> Self {
        FaultEvent {
            time: Time::new(time),
            kind: FaultKind::DropWindow {
                edge: None,
                duration,
            },
        }
    }

    /// A single-edge message-loss window `[time, time + duration)`.
    pub fn drop_edge(time: f64, edge: Edge, duration: f64) -> Self {
        FaultEvent {
            time: Time::new(time),
            kind: FaultKind::DropWindow {
                edge: Some(edge),
                duration,
            },
        }
    }

    /// A delay-spike window: every send in `[time, time + duration)` takes
    /// exactly `delay`.
    pub fn delay_spike(time: f64, delay: f64, duration: f64) -> Self {
        FaultEvent {
            time: Time::new(time),
            kind: FaultKind::DelaySpike { delay, duration },
        }
    }

    /// A drift excursion at `node` over `[time, time + duration)`.
    pub fn drift_excursion(time: f64, node: NodeId, rate_delta: f64, duration: f64) -> Self {
        FaultEvent {
            time: Time::new(time),
            kind: FaultKind::DriftExcursion {
                node,
                rate_delta,
                duration,
            },
        }
    }
}

/// A time-ordered, pull-based stream of fault injections — the fault
/// plane's counterpart of [`TopologySource`](gcs_net::TopologySource).
/// See the module docs for the contract.
pub trait FaultSource: Send {
    /// Time of the earliest fault not yet emitted, or `None` when the
    /// stream is exhausted.
    fn peek_time(&mut self) -> Option<Time>;

    /// Appends every pending fault with time `≤ until` to `buf`, in
    /// nondecreasing time order.
    fn pull_until(&mut self, until: Time, buf: &mut Vec<FaultEvent>);
}

impl FaultSource for Box<dyn FaultSource> {
    fn peek_time(&mut self) -> Option<Time> {
        (**self).peek_time()
    }
    fn pull_until(&mut self, until: Time, buf: &mut Vec<FaultEvent>) {
        (**self).pull_until(until, buf)
    }
}

/// An eager, validated fault schedule served through the pull interface —
/// the fault plane's `ScheduleSource`. Events are sorted (stably) by time
/// at construction, so same-instant faults apply in the order they were
/// listed.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultPlan {
    /// Validates and wraps a fault list. Panics on non-positive or
    /// non-finite times, negative or non-finite durations/delays, or a
    /// non-finite excursion rate.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        for ev in &events {
            assert!(
                ev.time > Time::ZERO && ev.time.seconds().is_finite(),
                "fault times must be finite and > 0, got {:?}",
                ev.time
            );
            match ev.kind {
                FaultKind::Crash { .. } | FaultKind::Restart { .. } => {}
                FaultKind::DropWindow { duration, .. } => {
                    assert!(
                        duration >= 0.0 && duration.is_finite(),
                        "drop-window duration must be finite and >= 0"
                    );
                }
                FaultKind::DelaySpike { delay, duration } => {
                    assert!(
                        delay >= 0.0 && delay.is_finite(),
                        "delay spike must be finite and >= 0"
                    );
                    assert!(
                        duration >= 0.0 && duration.is_finite(),
                        "delay-spike duration must be finite and >= 0"
                    );
                }
                FaultKind::DriftExcursion {
                    rate_delta,
                    duration,
                    ..
                } => {
                    assert!(rate_delta.is_finite(), "excursion rate must be finite");
                    assert!(
                        duration >= 0.0 && duration.is_finite(),
                        "excursion duration must be finite and >= 0"
                    );
                }
            }
        }
        events.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));
        FaultPlan { events, cursor: 0 }
    }

    /// The validated, time-sorted events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

impl FaultSource for FaultPlan {
    fn peek_time(&mut self) -> Option<Time> {
        self.events.get(self.cursor).map(|ev| ev.time)
    }

    fn pull_until(&mut self, until: Time, buf: &mut Vec<FaultEvent>) {
        while let Some(ev) = self.events.get(self.cursor) {
            if ev.time > until {
                break;
            }
            buf.push(*ev);
            self.cursor += 1;
        }
    }
}

/// Decorrelated per-node fault-stream seed, domain-separated from node
/// protocol streams, discovery streams and the drift-generation stream.
fn fault_stream_seed(seed: u64, node: NodeId) -> u64 {
    seed ^ 0x4CF5_AD43_2745_937F ^ (node.index() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Per-target state of [`CrashRestartSource`].
#[derive(Debug)]
struct CrashCycle {
    node: NodeId,
    rng: StdRng,
    /// Next event, `None` once past the horizon.
    next: Option<(Time, bool)>, // (time, is_crash)
}

/// A lazy crash/restart cycle generator: each target node alternates
/// uptime and downtime intervals drawn from its **own keyed stream**
/// (a pure function of `(seed, node)`), so adding or removing a target
/// never perturbs another node's fault timing. Events stop at the
/// horizon; a node whose restart would fall beyond it stays down.
#[derive(Debug)]
pub struct CrashRestartSource {
    cycles: Vec<CrashCycle>,
    mean_up: f64,
    mean_down: f64,
    horizon: Time,
}

impl CrashRestartSource {
    /// Crash/restart cycles for `targets`: first crash around
    /// `mean_up/2`, then downtimes averaging `mean_down` and uptimes
    /// averaging `mean_up` (each uniform in `[0.5, 1.5]×` its mean),
    /// until `horizon`.
    pub fn new(
        targets: Vec<NodeId>,
        mean_up: f64,
        mean_down: f64,
        horizon: f64,
        seed: u64,
    ) -> Self {
        assert!(mean_up > 0.0 && mean_down > 0.0 && horizon > 0.0);
        let horizon = Time::new(horizon);
        let cycles = targets
            .into_iter()
            .map(|node| {
                let mut rng = StdRng::seed_from_u64(fault_stream_seed(seed, node));
                let first = Time::new(mean_up * (0.25 + 0.5 * rng.gen_range(0.0..1.0)));
                let next = (first <= horizon).then_some((first, true));
                // Intervals beyond the first are drawn as events are
                // consumed, keeping state O(targets).
                CrashCycle { node, rng, next }
            })
            .collect();
        CrashRestartSource {
            cycles,
            mean_up,
            mean_down,
            horizon,
        }
    }

    /// Index of the cycle with the earliest pending event (ties broken by
    /// node id — the construction order), or `None` when exhausted.
    fn earliest(&self) -> Option<usize> {
        self.cycles
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.next.map(|(t, _)| (t, i)))
            .min_by(|a, b| a.partial_cmp(b).expect("finite times"))
            .map(|(_, i)| i)
    }
}

impl CrashCycle {
    /// Consumes the pending event and draws the next interval.
    fn advance(&mut self, horizon: Time, mean_up: f64, mean_down: f64) -> FaultEvent {
        let (t, is_crash) = self.next.expect("advance on exhausted cycle");
        let ev = if is_crash {
            FaultEvent {
                time: t,
                kind: FaultKind::Crash { node: self.node },
            }
        } else {
            FaultEvent {
                time: t,
                kind: FaultKind::Restart { node: self.node },
            }
        };
        let mean = if is_crash { mean_down } else { mean_up };
        let dt = mean * (0.5 + self.rng.gen_range(0.0..1.0));
        let nt = Time::new(t.seconds() + dt);
        self.next = (nt <= horizon).then_some((nt, !is_crash));
        ev
    }
}

impl FaultSource for CrashRestartSource {
    fn peek_time(&mut self) -> Option<Time> {
        self.earliest()
            .and_then(|i| self.cycles[i].next.map(|(t, _)| t))
    }

    fn pull_until(&mut self, until: Time, buf: &mut Vec<FaultEvent>) {
        let (mean_up, mean_down) = (self.mean_up, self.mean_down);
        while let Some(i) = self.earliest() {
            let (t, _) = self.cycles[i].next.expect("earliest is pending");
            if t > until {
                break;
            }
            buf.push(self.cycles[i].advance(self.horizon, mean_up, mean_down));
        }
    }
}

/// The engine's accumulated fault state, updated only at fault barriers
/// (serial, between segments) and read — immutably — by every worker
/// during parallel dispatch. Window lists are pruned of expired entries
/// at barriers, never mid-instant, so membership checks are a pure
/// function of `(now, applied faults)`.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    /// Crashed nodes, sorted by id.
    crashed: Vec<NodeId>,
    /// Open message-loss windows: `(start, end, edge filter)`.
    drop_windows: Vec<(Time, Time, Option<Edge>)>,
    /// Open delay-override windows: `(start, end, forced delay)`.
    delay_windows: Vec<(Time, Time, f64)>,
    /// Drift excursions, **never pruned**: the accumulated warp
    /// `Σ δ·min(t, end) − start` must stay part of a node's observed
    /// clock forever (an oscillator that mis-ran keeps its offset).
    excursions: Vec<(NodeId, Time, Time, f64)>,
}

impl FaultState {
    #[inline]
    pub fn is_crashed(&self, u: NodeId) -> bool {
        !self.crashed.is_empty() && self.crashed.binary_search(&u).is_ok()
    }

    /// Marks `u` crashed; false if it already was.
    pub fn crash(&mut self, u: NodeId) -> bool {
        match self.crashed.binary_search(&u) {
            Ok(_) => false,
            Err(i) => {
                self.crashed.insert(i, u);
                true
            }
        }
    }

    /// Clears `u`'s crashed mark; false if it was not crashed.
    pub fn restart(&mut self, u: NodeId) -> bool {
        match self.crashed.binary_search(&u) {
            Ok(i) => {
                self.crashed.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    pub fn open_drop(&mut self, now: Time, duration: f64, edge: Option<Edge>) {
        self.drop_windows
            .push((now, Time::new(now.seconds() + duration), edge));
    }

    pub fn open_delay(&mut self, now: Time, duration: f64, delay: f64) {
        self.delay_windows
            .push((now, Time::new(now.seconds() + duration), delay));
    }

    pub fn open_excursion(&mut self, u: NodeId, now: Time, duration: f64, rate_delta: f64) {
        self.excursions
            .push((u, now, Time::new(now.seconds() + duration), rate_delta));
    }

    /// Drops expired drop/delay windows. Called only at fault barriers —
    /// a trace-deterministic point — so the lists every worker scans are
    /// identical at every thread count.
    pub fn prune(&mut self, now: Time) {
        self.drop_windows.retain(|&(_, end, _)| end > now);
        self.delay_windows.retain(|&(_, end, _)| end > now);
    }

    /// Whether a send over `edge` at `now` falls in an open loss window.
    #[inline]
    pub fn drops(&self, now: Time, edge: Edge) -> bool {
        self.drop_windows.iter().any(|&(start, end, filter)| {
            now >= start && now < end && filter.is_none_or(|e| e == edge)
        })
    }

    /// The forced delay at `now`, if a spike window is open (the most
    /// recently opened matching window wins).
    #[inline]
    pub fn delay_override(&self, now: Time) -> Option<f64> {
        self.delay_windows
            .iter()
            .rev()
            .find(|&&(start, end, _)| now >= start && now < end)
            .map(|&(_, _, d)| d)
    }

    /// Accumulated hardware-clock warp of `u` at `t`:
    /// `Σ over u's excursions of rate_delta · (min(t, end) − start)⁺`.
    /// Exactly `0.0` when no excursion ever touched `u`, so clean nodes'
    /// readings stay bit-identical to a fault-free run.
    #[inline]
    pub fn hw_warp(&self, u: NodeId, t: Time) -> f64 {
        if self.excursions.is_empty() {
            return 0.0;
        }
        let mut warp = 0.0;
        for &(node, start, end, delta) in &self.excursions {
            if node == u && t > start {
                warp += delta * (t.min(end).seconds() - start.seconds());
            }
        }
        warp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_clocks::time::at;
    use gcs_net::node;

    #[test]
    fn plan_sorts_and_replays_in_order() {
        let mut plan = FaultPlan::new(vec![
            FaultEvent::restart(9.0, node(3)),
            FaultEvent::crash(4.0, node(3)),
            FaultEvent::drop_window(6.0, 1.0),
        ]);
        assert_eq!(plan.peek_time(), Some(at(4.0)));
        let mut buf = Vec::new();
        plan.pull_until(at(6.0), &mut buf);
        assert_eq!(buf.len(), 2);
        assert!(matches!(buf[0].kind, FaultKind::Crash { .. }));
        assert!(matches!(buf[1].kind, FaultKind::DropWindow { .. }));
        assert_eq!(plan.peek_time(), Some(at(9.0)));
        plan.pull_until(at(100.0), &mut buf);
        assert_eq!(buf.len(), 3);
        assert_eq!(plan.peek_time(), None);
    }

    #[test]
    #[should_panic(expected = "> 0")]
    fn plan_rejects_time_zero() {
        let _ = FaultPlan::new(vec![FaultEvent::crash(0.0, node(0))]);
    }

    #[test]
    fn crash_restart_source_alternates_per_node() {
        let mut src = CrashRestartSource::new(vec![node(1), node(4)], 10.0, 3.0, 60.0, 7);
        let mut buf = Vec::new();
        let first = src.peek_time().expect("events pending");
        src.pull_until(at(60.0), &mut buf);
        assert_eq!(buf[0].time, first);
        assert!(src.peek_time().is_none());
        assert!(!buf.is_empty());
        // Nondecreasing times, alternation per node, all within horizon.
        for w in buf.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        for target in [node(1), node(4)] {
            let mine: Vec<_> = buf
                .iter()
                .filter(|ev| {
                    matches!(ev.kind,
                        FaultKind::Crash { node } | FaultKind::Restart { node } if node == target)
                })
                .collect();
            assert!(!mine.is_empty(), "each target cycles at least once");
            for (i, ev) in mine.iter().enumerate() {
                let expect_crash = i % 2 == 0;
                match ev.kind {
                    FaultKind::Crash { .. } => assert!(expect_crash),
                    FaultKind::Restart { .. } => assert!(!expect_crash),
                    _ => unreachable!(),
                }
            }
        }
        // Deterministic: the same seed replays the same stream.
        let mut again = CrashRestartSource::new(vec![node(1), node(4)], 10.0, 3.0, 60.0, 7);
        let mut buf2 = Vec::new();
        again.pull_until(at(60.0), &mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn fault_state_windows_and_warp() {
        let mut st = FaultState::default();
        st.open_drop(at(2.0), 1.0, Some(Edge::between(0, 1)));
        st.open_delay(at(3.0), 2.0, 5.0);
        st.open_excursion(node(2), at(1.0), 4.0, 0.5);
        assert!(st.drops(at(2.5), Edge::between(0, 1)));
        assert!(!st.drops(at(2.5), Edge::between(0, 2)), "filtered edge");
        assert!(!st.drops(at(3.0), Edge::between(0, 1)), "half-open window");
        assert_eq!(st.delay_override(at(4.0)), Some(5.0));
        assert_eq!(st.delay_override(at(5.5)), None);
        // Warp integrates the excursion and saturates at its end.
        assert_eq!(st.hw_warp(node(2), at(1.0)), 0.0);
        assert!((st.hw_warp(node(2), at(3.0)) - 1.0).abs() < 1e-12);
        assert!((st.hw_warp(node(2), at(50.0)) - 2.0).abs() < 1e-12);
        assert_eq!(st.hw_warp(node(0), at(50.0)), 0.0, "other nodes clean");
        // Pruning drops closed windows but keeps the excursion's warp.
        st.prune(at(10.0));
        assert_eq!(st.delay_override(at(4.0)), None, "window pruned");
        assert!((st.hw_warp(node(2), at(50.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn crash_set_is_idempotent_and_sorted() {
        let mut st = FaultState::default();
        assert!(st.crash(node(5)));
        assert!(st.crash(node(2)));
        assert!(!st.crash(node(5)), "double crash is a no-op");
        assert!(st.is_crashed(node(2)) && st.is_crashed(node(5)));
        assert!(!st.is_crashed(node(3)));
        assert!(st.restart(node(5)));
        assert!(!st.restart(node(5)), "double restart is a no-op");
        assert!(!st.is_crashed(node(5)));
    }
}
