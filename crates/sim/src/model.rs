//! Model parameters shared by all nodes and the environment.

use gcs_clocks::validate_rho;

/// The environment constants of Section 3: drift bound `ρ`, message-delay
/// bound `T` (the paper's calligraphic T), and discovery bound `D`.
///
/// The paper assumes `D > T` ("nodes do not necessarily find out about
/// changes to the network within T time units"); the constructor enforces
/// it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelParams {
    /// Maximum hardware clock drift `ρ ∈ (0, 1/2]`.
    pub rho: f64,
    /// Message delay bound `T > 0`: every delivered message takes at most
    /// `T` real time.
    pub t: f64,
    /// Discovery bound `D > T`: persistent topology changes are discovered
    /// by the endpoints within `D` real time.
    pub d: f64,
}

impl ModelParams {
    /// Validated constructor.
    pub fn new(rho: f64, t: f64, d: f64) -> Self {
        validate_rho(rho);
        assert!(t.is_finite() && t > 0.0, "delay bound T must be > 0");
        assert!(
            d.is_finite() && d > t,
            "discovery bound D must exceed T (got D={d}, T={t})"
        );
        ModelParams { rho, t, d }
    }

    /// The defaults used throughout the experiments: `ρ = 0.01`, `T = 1`,
    /// `D = 2`.
    pub fn default_experiment() -> Self {
        Self::new(0.01, 1.0, 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_paper_regime() {
        let p = ModelParams::new(0.01, 1.0, 2.0);
        assert_eq!(p.rho, 0.01);
    }

    #[test]
    #[should_panic(expected = "exceed T")]
    fn rejects_d_not_greater_than_t() {
        let _ = ModelParams::new(0.01, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "delay bound")]
    fn rejects_zero_t() {
        let _ = ModelParams::new(0.01, 0.0, 1.0);
    }

    #[test]
    fn default_experiment_is_valid() {
        let p = ModelParams::default_experiment();
        assert!(p.d > p.t);
    }
}
