//! A bucketed calendar queue ("time wheel") for the hot event path.
//!
//! [`TimeWheel`] replaces the global [`std::collections::BinaryHeap`]
//! of [`EventQueue`](crate::event::EventQueue) with an array of time
//! buckets of width `width` (chosen from the model's delay bound `T`, so
//! one bucket spans a fraction of a message delay). A push lands in
//!
//! * the **current heap** when the event falls into the bucket being
//!   drained (events scheduled "now"),
//! * the **ring** of [`SLOTS`] buckets when it falls within the wheel's
//!   horizon `SLOTS · width` (the common case: delays `≤ T`, subjective
//!   timers a few `T`s out),
//! * the **overflow** map beyond that (pre-scheduled topology churn far in
//!   the future).
//!
//! ## The packed event plane
//!
//! Buckets do not hold full [`QueuedEvent`]s. Each pending event is a
//! 24-byte `PackedEvent` record — `(time, seq)` plus a lane tag and a
//! `u32` handle — and its payload lives in the payload arena's per-lane
//! struct-of-arrays columns until the pop reconstructs the
//! [`QueuedEvent`]. Two consequences: bucket sorts move 24-byte records
//! (keyed on 17 bytes) instead of 56-byte payload enums, and the
//! payload columns are sized by the *global* per-lane pending peak
//! instead of paying the payload width once per bucket high-water mark,
//! which is what made the wheel the largest memory plane at scale.
//! Slots recycle on pop, so steady state allocates nothing.
//!
//! Draining is strictly bucket-by-bucket: the cursor only ever advances to
//! the earliest non-empty bucket — found by a trailing-zeros scan over a
//! [`SLOTS`]-bit occupancy bitmap rather than a linear ring probe — and
//! within a bucket events are ordered through one contiguous sort.
//! Because an event at real time `t` always belongs to bucket
//! `⌊t/width⌋` and later buckets hold strictly later times, the pop
//! order is **exactly** the `(time, class, seq)` order of the global
//! heap — the wheel is a drop-in, trace-identical replacement that turns
//! most pushes into a `Vec::push` into a small contiguous bucket.
//!
//! Sequence numbers are normally assigned at push time, but callers that
//! *stage* events outside the wheel (the engine's horizon-gated topology
//! admission) can [`reserve_seqs`](TimeWheel::reserve_seqs) at the
//! moment the event is pulled and admit it later with
//! [`push_reserved`](TimeWheel::push_reserved): the pop order is a
//! function of the reserved key alone, so *when* the event is admitted
//! cannot change the trace — provided it is admitted before its instant
//! pops, which the engine's admission loop guarantees.
//!
//! Invariants that make this work (checked in debug builds):
//!
//! * pushes never go backwards in *time*: `time` is at or after the last
//!   popped event. The bucket index may still be `≤ cursor` — the cursor
//!   skips empty buckets, and a lazily pulled topology event can land in
//!   a skipped one — in which case the push joins the spill heap, which
//!   every pop consults, so the pop order is unaffected,
//! * a non-empty ring slot holds events of exactly one bucket index
//!   (within any window of `SLOTS` consecutive buckets, each residue
//!   `index mod SLOTS` occurs once), and its occupancy bit is set iff the
//!   slot is non-empty (the cursor's own slot is never occupied: a push
//!   into the cursor bucket spills, and a wrap-around to the same residue
//!   is at least `SLOTS` buckets away, which overflows),
//! * the same bucket index may appear in both the ring and the overflow
//!   (pushed under different cursors); advancing drains both.

use crate::event::{lane_class, EventPayload, PayloadArena, QueuedEvent, LANES};
use gcs_clocks::Time;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// Number of ring buckets. With `width = T/4` the ring covers `128·T` of
/// simulated time ahead of the cursor before events spill to the overflow
/// map.
pub const SLOTS: usize = 512;

/// Words in the ring occupancy bitmap.
const WORDS: usize = SLOTS / 64;

/// The fixed-size queue record of one pending event: the total-order key
/// `(time, class, seq)` (class derived from the lane tag) plus the
/// payload's arena address. 24 bytes against the 56 of a full
/// [`QueuedEvent`].
#[derive(Clone, Copy, Debug)]
struct PackedEvent {
    /// When the event fires.
    time: Time,
    /// Insertion (or reservation) sequence number.
    seq: u64,
    /// Slot index in the payload lane.
    handle: u32,
    /// Payload lane (see `event::LANE_*`); encodes the class rank.
    lane: u8,
}

impl PackedEvent {
    /// The total-order key all queues pop in — identical to
    /// [`QueuedEvent::key`] of the reconstructed event.
    #[inline]
    fn key(&self) -> (Time, u8, u64) {
        (self.time, lane_class(self.lane), self.seq)
    }
}

impl PartialEq for PackedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for PackedEvent {}

impl Ord for PackedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest key pops first.
        other.key().cmp(&self.key())
    }
}

impl PartialOrd for PackedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A calendar event queue with heap-identical pop order.
///
/// The cursor bucket is drained by **sorting once** and walking an index —
/// one `O(b log b)` contiguous sort instead of `2b` heap sift operations —
/// with a small side heap (`spill`) for the rare events scheduled *into*
/// the cursor bucket while it drains (e.g. drop-notification discoveries
/// pushed at the current instant).
#[derive(Debug)]
pub struct TimeWheel {
    /// Bucket width in seconds of real (simulated) time.
    width: f64,
    /// Ring of future buckets; slot `b % SLOTS` holds bucket `b` while
    /// `cursor < b < cursor + SLOTS`.
    ring: Box<[Vec<PackedEvent>]>,
    /// One bit per ring slot, set iff the slot is non-empty; `advance`
    /// finds the next bucket with a trailing-zeros scan instead of
    /// probing up to `SLOTS` `Vec` headers.
    occupied: [u64; WORDS],
    /// Events in ring slots (excludes `current`, `spill` and `overflow`).
    ring_len: usize,
    /// Absolute index of the bucket currently being drained.
    cursor: u64,
    /// Events of bucket `cursor`, sorted ascending by key; `cur_idx`
    /// points at the next one to pop.
    current: Vec<PackedEvent>,
    /// Consumption index into `current`.
    cur_idx: usize,
    /// Events pushed into bucket `cursor` after it was sorted.
    spill: BinaryHeap<PackedEvent>,
    /// Buckets at or beyond `cursor + SLOTS` at push time.
    overflow: BTreeMap<u64, Vec<PackedEvent>>,
    /// Payload storage for every pending record.
    arena: PayloadArena,
    /// Total pending events.
    len: usize,
    /// Insertion sequence counter (global tie-break, like `EventQueue`).
    next_seq: u64,
    /// Time of the last popped event — the floor below which a push would
    /// be genuine time travel (checked in debug builds).
    last_popped: Time,
}

impl TimeWheel {
    /// An empty wheel with the given bucket `width` (seconds).
    pub fn new(width: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0,
            "bucket width must be positive, got {width}"
        );
        TimeWheel {
            width,
            ring: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            ring_len: 0,
            cursor: 0,
            current: Vec::new(),
            cur_idx: 0,
            spill: BinaryHeap::new(),
            overflow: BTreeMap::new(),
            arena: PayloadArena::default(),
            len: 0,
            next_seq: 0,
            last_popped: Time::ZERO,
        }
    }

    /// The absolute bucket index of a time point.
    #[inline]
    fn bucket_of(&self, time: Time) -> u64 {
        (time.seconds() / self.width) as u64
    }

    /// Schedules `payload` at `time`. Equal `(time, class)` pops in push
    /// order; topology payloads order before others at the same instant
    /// (see [`QueuedEvent::key`]).
    pub fn push(&mut self, time: Time, payload: EventPayload) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(time, seq, payload);
    }

    /// Claims `n` consecutive sequence numbers without inserting anything,
    /// returning the first. A caller staging events outside the wheel
    /// reserves their seqs at *pull* time — the point a direct `push`
    /// would have assigned them — so later pushes keep the exact sequence
    /// numbers they would have had, and the staged events' eventual
    /// admission order is fixed by the reservation, not the admission
    /// instant.
    pub fn reserve_seqs(&mut self, n: u64) -> u64 {
        let first = self.next_seq;
        self.next_seq += n;
        first
    }

    /// Schedules `payload` at `time` under a previously
    /// [reserved](Self::reserve_seqs) sequence number. The caller must
    /// admit the event before its instant pops (the engine admits staged
    /// events whenever they are due no later than the wheel's next event).
    pub fn push_reserved(&mut self, time: Time, seq: u64, payload: EventPayload) {
        debug_assert!(seq < self.next_seq, "seq {seq} was never reserved");
        self.insert(time, seq, payload);
    }

    fn insert(&mut self, time: Time, seq: u64, payload: EventPayload) {
        debug_assert!(
            time >= self.last_popped,
            "push at {time:?} behind the last popped event ({:?})",
            self.last_popped
        );
        let (lane, handle) = self.arena.alloc(&payload);
        let ev = PackedEvent {
            time,
            seq,
            handle,
            lane,
        };
        let bucket = self.bucket_of(time);
        self.len += 1;
        if bucket <= self.cursor {
            // Either the cursor bucket itself, or a bucket the cursor
            // skipped while it was empty (a lazily pulled topology event
            // can be earlier than everything pending). The spill heap is
            // consulted on every pop, so order is preserved either way.
            self.spill.push(ev);
        } else if bucket < self.cursor + SLOTS as u64 {
            let slot = (bucket % SLOTS as u64) as usize;
            if self.ring[slot].is_empty() {
                self.occupied[slot / 64] |= 1u64 << (slot % 64);
            }
            self.ring[slot].push(ev);
            self.ring_len += 1;
        } else {
            self.overflow.entry(bucket).or_default().push(ev);
        }
    }

    /// True if the cursor bucket still has unconsumed events.
    #[inline]
    fn cursor_has_events(&self) -> bool {
        self.cur_idx < self.current.len() || !self.spill.is_empty()
    }

    /// The earliest non-empty ring bucket strictly after the cursor, via
    /// the occupancy bitmap: scan words starting at the cursor's
    /// successor slot, mask off the bits behind the start, and take the
    /// first set bit. Distance from the cursor grows monotonically along
    /// the scan (low bits are lower slot numbers), so the first hit is
    /// the minimum.
    fn next_ring_bucket(&self) -> Option<u64> {
        if self.ring_len == 0 {
            return None;
        }
        let base = (self.cursor % SLOTS as u64) as usize;
        let start = (base + 1) % SLOTS;
        let (sw, sb) = (start / 64, start % 64);
        for i in 0..=WORDS {
            let w = (sw + i) % WORDS;
            let mut bits = self.occupied[w];
            if i == 0 {
                bits &= !0u64 << sb;
            } else if i == WORDS {
                // Wrapped back to the start word: only the slots *before*
                // `start` remain unexamined.
                bits &= !(!0u64 << sb);
            }
            if bits != 0 {
                let slot = w * 64 + bits.trailing_zeros() as usize;
                let d = ((slot + SLOTS - base) % SLOTS) as u64;
                debug_assert!(d != 0, "the cursor's own slot is never occupied");
                return Some(self.cursor + d);
            }
        }
        unreachable!("ring_len > 0 but no occupancy bit set")
    }

    /// Moves the cursor to the earliest non-empty bucket, sorts it once,
    /// and resets the consumption index. Requires the cursor bucket to be
    /// fully consumed and at least one pending event somewhere.
    fn advance(&mut self) {
        debug_assert!(!self.cursor_has_events() && self.len > 0);
        let ring_next = self.next_ring_bucket();
        let overflow_next = self.overflow.keys().next().copied();
        let next = match (ring_next, overflow_next) {
            (Some(r), Some(o)) => r.min(o),
            (Some(r), None) => r,
            (None, Some(o)) => o,
            (None, None) => unreachable!("len > 0 but no bucket holds events"),
        };
        self.cursor = next;
        let slot = (next % SLOTS as u64) as usize;
        self.ring_len -= self.ring[slot].len();
        self.occupied[slot / 64] &= !(1u64 << (slot % 64));
        // Swap buffers so the drained slot inherits the consumed
        // allocation — steady state allocates nothing.
        self.current.clear();
        self.cur_idx = 0;
        std::mem::swap(&mut self.current, &mut self.ring[slot]);
        if let Some(extra) = self.overflow.remove(&next) {
            self.current.extend(extra);
        }
        debug_assert!(self
            .current
            .iter()
            .all(|ev| (ev.time.seconds() / self.width) as u64 == next));
        self.current.sort_unstable_by_key(PackedEvent::key);
    }

    /// Makes the cursor bucket non-empty (advancing if needed); false when
    /// no events are pending at all.
    #[inline]
    fn ensure_front(&mut self) -> bool {
        if !self.cursor_has_events() {
            if self.len == 0 {
                return false;
            }
            self.advance();
        }
        true
    }

    /// Whether the next pop must come from the spill heap rather than the
    /// sorted bucket array.
    #[inline]
    fn front_is_spill(&self) -> bool {
        match (self.current.get(self.cur_idx), self.spill.peek()) {
            (Some(c), Some(s)) => s.key() < c.key(),
            (None, Some(_)) => true,
            _ => false,
        }
    }

    /// Removes and returns the earliest event, reconstructing the full
    /// payload from the arena (which recycles the slot).
    pub fn pop(&mut self) -> Option<QueuedEvent> {
        if !self.ensure_front() {
            return None;
        }
        self.len -= 1;
        let pe = if self.front_is_spill() {
            self.spill.pop().expect("front_is_spill peeked an event")
        } else {
            let pe = self.current[self.cur_idx];
            self.cur_idx += 1;
            pe
        };
        self.last_popped = pe.time;
        Some(QueuedEvent {
            time: pe.time,
            seq: pe.seq,
            payload: self.arena.take(pe.lane, pe.handle),
        })
    }

    /// The earliest pending record, advancing the cursor if needed.
    fn front(&mut self) -> Option<&PackedEvent> {
        if !self.ensure_front() {
            return None;
        }
        if self.front_is_spill() {
            self.spill.peek()
        } else {
            self.current.get(self.cur_idx)
        }
    }

    /// Time of the earliest event without removing it. `&mut` because the
    /// cursor may need to advance to find it.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.front().map(|e| e.time)
    }

    /// Earliest `(time, seq)` still pending in the cursor bucket (array or
    /// spill), *without* advancing the cursor. Used by [`pop_instant`]:
    /// events of one instant all live in one bucket, and not advancing
    /// keeps the cursor parked there so the engine can push follow-up
    /// events at the same instant after the round.
    ///
    /// [`pop_instant`]: Self::pop_instant
    fn peek_in_cursor(&self) -> Option<&PackedEvent> {
        let cur = self.current.get(self.cur_idx);
        let sp = self.spill.peek();
        match (cur, sp) {
            (Some(c), Some(s)) => Some(if s.key() < c.key() { s } else { c }),
            (Some(c), None) => Some(c),
            (None, sp) => sp,
        }
    }

    /// Drains the complete run of earliest events sharing one instant into
    /// `buf` (appending, in `(time, seq)` order) and returns that instant.
    ///
    /// This is the engine's round extraction: everything at the same time
    /// forms one dispatch round. Events pushed *while* the round executes
    /// land behind it (larger sequence numbers) and are picked up by the
    /// next call, even at the same instant.
    pub fn pop_instant(&mut self, buf: &mut Vec<QueuedEvent>) -> Option<Time> {
        let first = self.pop()?;
        let t = first.time;
        buf.push(first);
        // All remaining events at time `t` share the first event's bucket,
        // so peeking inside the cursor bucket is exhaustive — and it leaves
        // the cursor in place for same-instant pushes after the round.
        while self.peek_in_cursor().map(|e| e.time) == Some(t) {
            buf.push(self.pop().expect("peek said non-empty"));
        }
        Some(t)
    }

    /// Heap bytes held by the packed records (ring buckets, cursor bucket,
    /// spill heap, overflow map) plus the payload arena columns (the wheel
    /// plane's memory meter; B-tree node overhead is approximated by the
    /// entry payloads).
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let ev = size_of::<PackedEvent>();
        self.ring.len() * size_of::<Vec<PackedEvent>>()
            + self.ring.iter().map(|b| b.capacity() * ev).sum::<usize>()
            + self.current.capacity() * ev
            + self.spill.capacity() * ev
            + self
                .overflow
                .values()
                .map(|v| size_of::<u64>() + size_of::<Vec<PackedEvent>>() + v.capacity() * ev)
                .sum::<usize>()
            + self.arena.heap_bytes()
    }

    /// Per-lane peak pending-event counts, indexed
    /// `[topology, fault, deliver, alarm, discover]` — the high-water
    /// occupancy of each payload lane over the wheel's lifetime. A
    /// function of the trace (what was pending when), identical across
    /// thread counts.
    pub fn pending_peaks(&self) -> [usize; LANES] {
        self.arena.peaks()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Length of the topology-class prefix of an instant popped by
/// [`TimeWheel::pop_instant`].
///
/// `pop_instant` returns the round in `(time, class, seq)` order and
/// topology has the lowest class rank, so *all* of an instant's topology
/// events form a contiguous prefix — this is the property that lets the
/// engine apply them as one batch (one barrier per instant instead of
/// one per event). Effects emitted mid-round are protocol-class and land
/// behind the round, so a later same-instant pop starts its own prefix.
pub(crate) fn topology_prefix_len(round: &[QueuedEvent]) -> usize {
    let k = round
        .iter()
        .take_while(|ev| matches!(ev.payload, EventPayload::Topology { .. }))
        .count();
    debug_assert!(
        round[k..]
            .iter()
            .all(|ev| !matches!(ev.payload, EventPayload::Topology { .. })),
        "class ranks must sort all topology events to the instant's prefix"
    );
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventQueue, LinkChange, LinkChangeKind, Message, TimerKind};
    use crate::fault::FaultKind;
    use gcs_clocks::time::at;
    use gcs_net::node;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn alarm(n: usize) -> EventPayload {
        EventPayload::Alarm {
            node: node(n),
            kind: TimerKind::Tick,
            generation: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut w = TimeWheel::new(0.25);
        w.push(at(3.0), alarm(3));
        w.push(at(1.0), alarm(1));
        w.push(at(2.0), alarm(2));
        let order: Vec<f64> = std::iter::from_fn(|| w.pop())
            .map(|e| e.time.seconds())
            .collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut w = TimeWheel::new(0.25);
        for i in 0..10 {
            w.push(at(5.0), alarm(i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| w.pop()).map(|e| e.seq).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_reconstructs_the_pushed_payload() {
        // The packed plane splits key from payload; a pop must hand back
        // exactly the payload that went in, for every lane.
        let mut w = TimeWheel::new(0.25);
        let payloads = vec![
            EventPayload::Topology {
                kind: LinkChangeKind::Added,
                edge: gcs_net::Edge::between(1, 2),
                version: 7,
            },
            EventPayload::Fault {
                kind: FaultKind::Crash { node: node(3) },
            },
            EventPayload::Deliver {
                from: node(4),
                to: node(5),
                msg: Message {
                    logical: 1.5,
                    max_estimate: 2.5,
                },
                epoch: 9,
            },
            EventPayload::Alarm {
                node: node(6),
                kind: TimerKind::Lost(node(7)),
                generation: 11,
            },
            EventPayload::Discover {
                node: node(8),
                change: LinkChange {
                    kind: LinkChangeKind::Removed,
                    edge: gcs_net::Edge::between(8, 9),
                },
                version: 13,
            },
        ];
        for (i, p) in payloads.iter().enumerate() {
            w.push(at(1.0 + i as f64), *p);
        }
        for p in &payloads {
            assert_eq!(&w.pop().unwrap().payload, p);
        }
        assert!(w.is_empty());
        // Every lane peaked at exactly one pending event.
        assert_eq!(w.pending_peaks(), [1, 1, 1, 1, 1]);
    }

    #[test]
    fn reserved_seqs_fix_the_order_regardless_of_admission_time() {
        // Reserve a trio up front, push later events first, then admit the
        // reserved ones — ties at the same instant must still pop in
        // reservation order, exactly as if they had been pushed eagerly.
        let mut w = TimeWheel::new(0.25);
        let first = w.reserve_seqs(2);
        assert_eq!(first, 0);
        w.push(at(2.0), alarm(100)); // seq 2
        w.push_reserved(at(2.0), first + 1, alarm(1));
        w.push_reserved(at(2.0), first, alarm(0));
        let order: Vec<u64> = std::iter::from_fn(|| w.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn pop_instant_sorts_topology_into_one_prefix() {
        let mut w = TimeWheel::new(0.25);
        let topo = |i: usize| EventPayload::Topology {
            kind: crate::event::LinkChangeKind::Added,
            edge: gcs_net::Edge::between(i, i + 1),
            version: 1,
        };
        // Interleave pushes: protocol, topology, protocol, topology.
        w.push(at(1.0), alarm(0));
        w.push(at(1.0), topo(0));
        w.push(at(1.0), alarm(1));
        w.push(at(1.0), topo(2));
        w.push(at(2.0), topo(4)); // different instant, stays behind
        let mut round = Vec::new();
        assert_eq!(w.pop_instant(&mut round), Some(at(1.0)));
        assert_eq!(round.len(), 4);
        assert_eq!(
            topology_prefix_len(&round),
            2,
            "all same-instant topology events form the prefix"
        );
        // Within each class, insertion order (seq) is preserved.
        let prefix_edges: Vec<_> = round[..2]
            .iter()
            .map(|ev| match ev.payload {
                EventPayload::Topology { edge, .. } => edge,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            prefix_edges,
            vec![gcs_net::Edge::between(0, 1), gcs_net::Edge::between(2, 3)]
        );
        round.clear();
        assert_eq!(w.pop_instant(&mut round), Some(at(2.0)));
        assert_eq!(topology_prefix_len(&round), 1);
    }

    #[test]
    fn far_future_overflow_round_trips() {
        let mut w = TimeWheel::new(0.25);
        // Far beyond the ring horizon (512 · 0.25 = 128 s).
        w.push(at(1000.0), alarm(0));
        w.push(at(500.0), alarm(1));
        w.push(at(0.1), alarm(2));
        assert_eq!(w.len(), 3);
        assert_eq!(w.peek_time(), Some(at(0.1)));
        let times: Vec<f64> = std::iter::from_fn(|| w.pop())
            .map(|e| e.time.seconds())
            .collect();
        assert_eq!(times, vec![0.1, 500.0, 1000.0]);
        assert!(w.is_empty());
    }

    #[test]
    fn push_at_cursor_time_during_drain() {
        let mut w = TimeWheel::new(0.25);
        w.push(at(1.0), alarm(0));
        w.push(at(1.0001), alarm(1));
        let first = w.pop().unwrap();
        assert_eq!(first.time, at(1.0));
        // An event scheduled "now" (same bucket as the cursor) must pop
        // before the rest of the bucket when its time is earlier-or-equal
        // by (time, seq).
        w.push(at(1.00005), alarm(2));
        assert_eq!(w.pop().unwrap().time, at(1.00005));
        assert_eq!(w.pop().unwrap().time, at(1.0001));
        assert!(w.pop().is_none());
    }

    /// One random payload, cycling through every lane so class ranks and
    /// arena round-trips both get differential coverage.
    fn mixed_payload(step: usize, rng: &mut StdRng) -> EventPayload {
        match rng.gen_range(0..5) {
            0 => EventPayload::Topology {
                kind: if step.is_multiple_of(2) {
                    LinkChangeKind::Added
                } else {
                    LinkChangeKind::Removed
                },
                edge: gcs_net::Edge::between(step, step + 1),
                version: step as u64,
            },
            1 => EventPayload::Fault {
                kind: FaultKind::Crash { node: node(step) },
            },
            2 => EventPayload::Deliver {
                from: node(step),
                to: node(step + 1),
                msg: Message {
                    logical: step as f64,
                    max_estimate: step as f64 + 0.5,
                },
                epoch: step as u64,
            },
            3 => EventPayload::Discover {
                node: node(step),
                change: LinkChange {
                    kind: LinkChangeKind::Added,
                    edge: gcs_net::Edge::between(step, step + 2),
                },
                version: step as u64,
            },
            _ => alarm(step),
        }
    }

    #[test]
    fn matches_heap_order_on_random_workload() {
        // Differential test: random interleaved push/pop against
        // EventQueue, over *mixed* payload classes — same-instant ties
        // across Topology/Fault/protocol exercise the class ranking, the
        // far-future spikes exercise the overflow map, and pushes at or
        // just after a pop land in cursor/skipped buckets (the spill
        // path). Payload equality checks the arena round-trip under
        // recycling.
        let mut rng = StdRng::seed_from_u64(7);
        let mut heap = EventQueue::new();
        let mut wheel = TimeWheel::new(0.25);
        let mut t = 0.0f64;
        let mut popped = Vec::new();
        let mut popped_h = Vec::new();
        for step in 0..5000 {
            if rng.gen_bool(0.6) || heap.is_empty() {
                // Pushes go to "now or later" with occasional far-future
                // spikes, like pre-scheduled churn; dt = 0.0 re-targets
                // the instant (and bucket) that just popped.
                let dt = if rng.gen_bool(0.02) {
                    rng.gen_range(100.0..400.0)
                } else if rng.gen_bool(0.1) {
                    0.0
                } else {
                    rng.gen_range(0.0..3.0)
                };
                let payload = mixed_payload(step, &mut rng);
                heap.push(at(t + dt), payload);
                wheel.push(at(t + dt), payload);
            } else {
                let a = heap.pop().unwrap();
                let b = wheel.pop().unwrap();
                assert_eq!((a.time, a.seq), (b.time, b.seq), "step {step}");
                assert_eq!(a.payload, b.payload, "step {step}");
                t = a.time.seconds();
                popped_h.push(a.seq);
                popped.push(b.seq);
            }
            assert_eq!(heap.len(), wheel.len());
        }
        while let Some(a) = heap.pop() {
            let b = wheel.pop().unwrap();
            assert_eq!((a.time, a.seq), (b.time, b.seq));
            assert_eq!(a.payload, b.payload);
        }
        assert!(wheel.is_empty());
        assert_eq!(popped, popped_h);
    }

    #[test]
    fn matches_heap_order_through_skipped_buckets_and_spill() {
        // Force the paths the uniform workload hits only rarely: long
        // cursor jumps (ring wrap + overflow promotion) followed by
        // pushes *behind* the cursor into skipped buckets.
        let mut rng = StdRng::seed_from_u64(23);
        let mut heap = EventQueue::new();
        let mut wheel = TimeWheel::new(0.25);
        let mut t = 0.0f64;
        for step in 0..2000 {
            match rng.gen_range(0..4) {
                // A far-future anchor, then drain to it: the cursor leaps
                // over hundreds of empty (skipped) buckets.
                0 => {
                    let far = t + rng.gen_range(50.0..300.0);
                    let p = mixed_payload(step, &mut rng);
                    heap.push(at(far), p);
                    wheel.push(at(far), p);
                }
                // A push at the current instant or barely after — the
                // cursor bucket (spill) path.
                1 => {
                    let dt = rng.gen_range(0.0..0.05);
                    let p = mixed_payload(step, &mut rng);
                    heap.push(at(t + dt), p);
                    wheel.push(at(t + dt), p);
                }
                // A "lazily pulled" event between now and the next
                // pending event: often a skipped bucket behind the
                // cursor after a long jump.
                2 => {
                    let next = wheel.peek_time().map_or(t + 10.0, |n| n.seconds());
                    if next > t {
                        let mid = t + (next - t) * rng.gen_range(0.0..1.0);
                        let p = mixed_payload(step, &mut rng);
                        heap.push(at(mid), p);
                        wheel.push(at(mid), p);
                    }
                }
                _ => {
                    if let Some(a) = heap.pop() {
                        let b = wheel.pop().unwrap();
                        assert_eq!((a.time, a.seq), (b.time, b.seq), "step {step}");
                        assert_eq!(a.payload, b.payload, "step {step}");
                        t = a.time.seconds();
                    }
                }
            }
            assert_eq!(heap.len(), wheel.len());
        }
        while let Some(a) = heap.pop() {
            let b = wheel.pop().unwrap();
            assert_eq!((a.time, a.seq), (b.time, b.seq));
            assert_eq!(a.payload, b.payload);
        }
        assert!(wheel.is_empty());
    }

    #[test]
    fn pop_instant_drains_exactly_one_time_tie_group() {
        let mut w = TimeWheel::new(0.25);
        for i in 0..5 {
            w.push(at(2.0), alarm(i));
        }
        w.push(at(3.0), alarm(5));
        let mut buf = Vec::new();
        assert_eq!(w.pop_instant(&mut buf), Some(at(2.0)));
        assert_eq!(buf.len(), 5);
        assert!(buf.iter().all(|e| e.time == at(2.0)));
        assert_eq!(
            buf.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (0..5).collect::<Vec<_>>(),
            "within an instant the order is insertion order"
        );
        buf.clear();
        assert_eq!(w.pop_instant(&mut buf), Some(at(3.0)));
        assert_eq!(buf.len(), 1);
        buf.clear();
        assert_eq!(w.pop_instant(&mut buf), None);
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_rejected() {
        let _ = TimeWheel::new(0.0);
    }

    fn topo(i: usize) -> EventPayload {
        EventPayload::Topology {
            kind: crate::event::LinkChangeKind::Added,
            edge: gcs_net::Edge::between(i, i + 1),
            version: 1,
        }
    }

    #[test]
    fn topology_sorts_before_other_payloads_at_the_same_instant() {
        // The lazily pulled schedule can push a topology event *after*
        // same-instant protocol events already entered the wheel; the
        // class rank must still apply it first (§3.2: a change takes
        // effect at its instant).
        let mut w = TimeWheel::new(0.25);
        w.push(at(2.0), alarm(0));
        w.push(at(2.0), topo(0));
        w.push(at(2.0), alarm(1));
        w.push(at(2.0), topo(2));
        let order: Vec<u8> = std::iter::from_fn(|| w.pop())
            .map(|e| e.payload.class_rank())
            .collect();
        assert_eq!(order, vec![0, 0, 2, 2]);
    }

    #[test]
    fn push_into_skipped_bucket_pops_in_order() {
        // The cursor skips empty buckets; a late (pulled) push can then
        // target one of them. It must land in the spill heap and pop in
        // correct time order.
        let mut w = TimeWheel::new(0.25);
        w.push(at(1.0), alarm(0));
        w.push(at(100.0), alarm(1));
        assert_eq!(w.pop().unwrap().time, at(1.0));
        // Peeking advances the cursor to the 100.0 bucket...
        assert_eq!(w.peek_time(), Some(at(100.0)));
        // ...then a pulled event lands in a long-skipped bucket.
        w.push(at(50.0), topo(0));
        w.push(at(100.0), topo(1));
        let order: Vec<f64> = std::iter::from_fn(|| w.pop())
            .map(|e| e.time.seconds())
            .collect();
        assert_eq!(order, vec![50.0, 100.0, 100.0]);
    }

    #[test]
    fn pop_instant_includes_spilled_same_instant_events() {
        let mut w = TimeWheel::new(0.25);
        w.push(at(10.0), alarm(0));
        assert_eq!(w.peek_time(), Some(at(10.0)));
        w.push(at(10.0), topo(0));
        let mut buf = Vec::new();
        assert_eq!(w.pop_instant(&mut buf), Some(at(10.0)));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf[0].payload.class_rank(), 0, "topology first");
    }

    #[test]
    fn occupancy_bitmap_tracks_ring_slots_across_wraps() {
        // March the cursor several times around the ring with sparse
        // events, so `advance` repeatedly crosses word boundaries and the
        // wrap-around word of the bitmap scan.
        let mut w = TimeWheel::new(0.25);
        let mut expect = Vec::new();
        // Slot stride of 97 (coprime to 512) visits residues in a
        // scattered order while staying inside the ring horizon.
        for i in 0..300u64 {
            let t = 0.26 + ((i * 97) % 511) as f64 * 0.25;
            expect.push(t);
            w.push(at(t), alarm(i as usize));
        }
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let got: Vec<f64> = std::iter::from_fn(|| w.pop())
            .map(|e| e.time.seconds())
            .collect();
        assert_eq!(got, expect);
        assert!(w.is_empty());
    }
}
