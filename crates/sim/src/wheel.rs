//! A bucketed calendar queue ("time wheel") for the hot event path.
//!
//! [`TimeWheel`] replaces the global [`std::collections::BinaryHeap`]
//! of [`EventQueue`](crate::event::EventQueue) with an array of time
//! buckets of width `width` (chosen from the model's delay bound `T`, so
//! one bucket spans a fraction of a message delay). A push lands in
//!
//! * the **current heap** when the event falls into the bucket being
//!   drained (events scheduled "now"),
//! * the **ring** of [`SLOTS`] buckets when it falls within the wheel's
//!   horizon `SLOTS · width` (the common case: delays `≤ T`, subjective
//!   timers a few `T`s out),
//! * the **overflow** map beyond that (pre-scheduled topology churn far in
//!   the future).
//!
//! Draining is strictly bucket-by-bucket: the cursor only ever advances to
//! the earliest non-empty bucket, and within a bucket events are ordered
//! through a small binary heap. Because an event at real time `t` always
//! belongs to bucket `⌊t/width⌋` and later buckets hold strictly later
//! times, the pop order is **exactly** the `(time, seq)` order of the
//! global heap — the wheel is a drop-in, trace-identical replacement that
//! turns most pushes into a `Vec::push` into a small contiguous bucket.
//!
//! Invariants that make this work (checked in debug builds):
//!
//! * pushes never go backwards in *time*: `time` is at or after the last
//!   popped event. The bucket index may still be `≤ cursor` — the cursor
//!   skips empty buckets, and a lazily pulled topology event can land in
//!   a skipped one — in which case the push joins the spill heap, which
//!   every pop consults, so the pop order is unaffected,
//! * a non-empty ring slot holds events of exactly one bucket index
//!   (within any window of `SLOTS` consecutive buckets, each residue
//!   `index mod SLOTS` occurs once),
//! * the same bucket index may appear in both the ring and the overflow
//!   (pushed under different cursors); advancing drains both.

use crate::event::{EventPayload, QueuedEvent};
use gcs_clocks::Time;
use std::collections::{BTreeMap, BinaryHeap};

/// Number of ring buckets. With `width = T/4` the ring covers `128·T` of
/// simulated time ahead of the cursor before events spill to the overflow
/// map.
pub const SLOTS: usize = 512;

/// A calendar event queue with heap-identical pop order.
///
/// The cursor bucket is drained by **sorting once** and walking an index —
/// one `O(b log b)` contiguous sort instead of `2b` heap sift operations —
/// with a small side heap (`spill`) for the rare events scheduled *into*
/// the cursor bucket while it drains (e.g. drop-notification discoveries
/// pushed at the current instant).
#[derive(Debug)]
pub struct TimeWheel {
    /// Bucket width in seconds of real (simulated) time.
    width: f64,
    /// Ring of future buckets; slot `b % SLOTS` holds bucket `b` while
    /// `cursor < b < cursor + SLOTS`.
    ring: Box<[Vec<QueuedEvent>]>,
    /// Events in ring slots (excludes `current`, `spill` and `overflow`).
    ring_len: usize,
    /// Absolute index of the bucket currently being drained.
    cursor: u64,
    /// Events of bucket `cursor`, sorted ascending by `(time, seq)`;
    /// `cur_idx` points at the next one to pop.
    current: Vec<QueuedEvent>,
    /// Consumption index into `current`.
    cur_idx: usize,
    /// Events pushed into bucket `cursor` after it was sorted.
    spill: BinaryHeap<QueuedEvent>,
    /// Buckets at or beyond `cursor + SLOTS` at push time.
    overflow: BTreeMap<u64, Vec<QueuedEvent>>,
    /// Total pending events.
    len: usize,
    /// Insertion sequence counter (global tie-break, like `EventQueue`).
    next_seq: u64,
    /// Time of the last popped event — the floor below which a push would
    /// be genuine time travel (checked in debug builds).
    last_popped: Time,
}

impl TimeWheel {
    /// An empty wheel with the given bucket `width` (seconds).
    pub fn new(width: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0,
            "bucket width must be positive, got {width}"
        );
        TimeWheel {
            width,
            ring: (0..SLOTS).map(|_| Vec::new()).collect(),
            ring_len: 0,
            cursor: 0,
            current: Vec::new(),
            cur_idx: 0,
            spill: BinaryHeap::new(),
            overflow: BTreeMap::new(),
            len: 0,
            next_seq: 0,
            last_popped: Time::ZERO,
        }
    }

    /// The absolute bucket index of a time point.
    #[inline]
    fn bucket_of(&self, time: Time) -> u64 {
        (time.seconds() / self.width) as u64
    }

    /// Schedules `payload` at `time`. Equal `(time, class)` pops in push
    /// order; topology payloads order before others at the same instant
    /// (see [`QueuedEvent::key`]).
    pub fn push(&mut self, time: Time, payload: EventPayload) {
        debug_assert!(
            time >= self.last_popped,
            "push at {time:?} behind the last popped event ({:?})",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = QueuedEvent { time, seq, payload };
        let bucket = self.bucket_of(time);
        self.len += 1;
        if bucket <= self.cursor {
            // Either the cursor bucket itself, or a bucket the cursor
            // skipped while it was empty (a lazily pulled topology event
            // can be earlier than everything pending). The spill heap is
            // consulted on every pop, so order is preserved either way.
            self.spill.push(ev);
        } else if bucket < self.cursor + SLOTS as u64 {
            self.ring[(bucket % SLOTS as u64) as usize].push(ev);
            self.ring_len += 1;
        } else {
            self.overflow.entry(bucket).or_default().push(ev);
        }
    }

    /// True if the cursor bucket still has unconsumed events.
    #[inline]
    fn cursor_has_events(&self) -> bool {
        self.cur_idx < self.current.len() || !self.spill.is_empty()
    }

    /// Moves the cursor to the earliest non-empty bucket, sorts it once,
    /// and resets the consumption index. Requires the cursor bucket to be
    /// fully consumed and at least one pending event somewhere.
    fn advance(&mut self) {
        debug_assert!(!self.cursor_has_events() && self.len > 0);
        // Earliest ring bucket: slot `(cursor + d) % SLOTS` non-empty means
        // it holds exactly bucket `cursor + d`.
        let ring_next = if self.ring_len == 0 {
            None
        } else {
            (1..SLOTS as u64).find_map(|d| {
                let slot = ((self.cursor + d) % SLOTS as u64) as usize;
                (!self.ring[slot].is_empty()).then_some(self.cursor + d)
            })
        };
        let overflow_next = self.overflow.keys().next().copied();
        let next = match (ring_next, overflow_next) {
            (Some(r), Some(o)) => r.min(o),
            (Some(r), None) => r,
            (None, Some(o)) => o,
            (None, None) => unreachable!("len > 0 but no bucket holds events"),
        };
        self.cursor = next;
        let slot = (next % SLOTS as u64) as usize;
        self.ring_len -= self.ring[slot].len();
        // Swap buffers so the drained slot inherits the consumed
        // allocation — steady state allocates nothing.
        self.current.clear();
        self.cur_idx = 0;
        std::mem::swap(&mut self.current, &mut self.ring[slot]);
        if let Some(extra) = self.overflow.remove(&next) {
            self.current.extend(extra);
        }
        debug_assert!(self
            .current
            .iter()
            .all(|ev| (ev.time.seconds() / self.width) as u64 == next));
        self.current.sort_unstable_by_key(QueuedEvent::key);
    }

    /// Makes the cursor bucket non-empty (advancing if needed); false when
    /// no events are pending at all.
    #[inline]
    fn ensure_front(&mut self) -> bool {
        if !self.cursor_has_events() {
            if self.len == 0 {
                return false;
            }
            self.advance();
        }
        true
    }

    /// Whether the next pop must come from the spill heap rather than the
    /// sorted bucket array.
    #[inline]
    fn front_is_spill(&self) -> bool {
        match (self.current.get(self.cur_idx), self.spill.peek()) {
            (Some(c), Some(s)) => s.key() < c.key(),
            (None, Some(_)) => true,
            _ => false,
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<QueuedEvent> {
        if !self.ensure_front() {
            return None;
        }
        self.len -= 1;
        let ev = if self.front_is_spill() {
            self.spill.pop()
        } else {
            let ev = self.current[self.cur_idx];
            self.cur_idx += 1;
            Some(ev)
        };
        if let Some(ev) = &ev {
            self.last_popped = ev.time;
        }
        ev
    }

    /// The earliest pending event, advancing the cursor if needed.
    fn front(&mut self) -> Option<&QueuedEvent> {
        if !self.ensure_front() {
            return None;
        }
        if self.front_is_spill() {
            self.spill.peek()
        } else {
            self.current.get(self.cur_idx)
        }
    }

    /// Time of the earliest event without removing it. `&mut` because the
    /// cursor may need to advance to find it.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.front().map(|e| e.time)
    }

    /// Earliest `(time, seq)` still pending in the cursor bucket (array or
    /// spill), *without* advancing the cursor. Used by [`pop_instant`]:
    /// events of one instant all live in one bucket, and not advancing
    /// keeps the cursor parked there so the engine can push follow-up
    /// events at the same instant after the round.
    ///
    /// [`pop_instant`]: Self::pop_instant
    fn peek_in_cursor(&self) -> Option<&QueuedEvent> {
        let cur = self.current.get(self.cur_idx);
        let sp = self.spill.peek();
        match (cur, sp) {
            (Some(c), Some(s)) => Some(if s.key() < c.key() { s } else { c }),
            (Some(c), None) => Some(c),
            (None, sp) => sp,
        }
    }

    /// Drains the complete run of earliest events sharing one instant into
    /// `buf` (appending, in `(time, seq)` order) and returns that instant.
    ///
    /// This is the engine's round extraction: everything at the same time
    /// forms one dispatch round. Events pushed *while* the round executes
    /// land behind it (larger sequence numbers) and are picked up by the
    /// next call, even at the same instant.
    pub fn pop_instant(&mut self, buf: &mut Vec<QueuedEvent>) -> Option<Time> {
        let first = self.pop()?;
        let t = first.time;
        buf.push(first);
        // All remaining events at time `t` share the first event's bucket,
        // so peeking inside the cursor bucket is exhaustive — and it leaves
        // the cursor in place for same-instant pushes after the round.
        while self.peek_in_cursor().map(|e| e.time) == Some(t) {
            buf.push(self.pop().expect("peek said non-empty"));
        }
        Some(t)
    }

    /// Heap bytes held by the ring buckets, the cursor bucket, the spill
    /// heap and the overflow map (the wheel plane's memory meter; B-tree
    /// node overhead is approximated by the entry payloads).
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let ev = size_of::<QueuedEvent>();
        self.ring.len() * size_of::<Vec<QueuedEvent>>()
            + self.ring.iter().map(|b| b.capacity() * ev).sum::<usize>()
            + self.current.capacity() * ev
            + self.spill.capacity() * ev
            + self
                .overflow
                .values()
                .map(|v| size_of::<u64>() + size_of::<Vec<QueuedEvent>>() + v.capacity() * ev)
                .sum::<usize>()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Length of the topology-class prefix of an instant popped by
/// [`TimeWheel::pop_instant`].
///
/// `pop_instant` returns the round in `(time, class, seq)` order and
/// topology has the lowest class rank, so *all* of an instant's topology
/// events form a contiguous prefix — this is the property that lets the
/// engine apply them as one batch (one barrier per instant instead of
/// one per event). Effects emitted mid-round are protocol-class and land
/// behind the round, so a later same-instant pop starts its own prefix.
pub(crate) fn topology_prefix_len(round: &[QueuedEvent]) -> usize {
    let k = round
        .iter()
        .take_while(|ev| matches!(ev.payload, EventPayload::Topology { .. }))
        .count();
    debug_assert!(
        round[k..]
            .iter()
            .all(|ev| !matches!(ev.payload, EventPayload::Topology { .. })),
        "class ranks must sort all topology events to the instant's prefix"
    );
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventQueue, TimerKind};
    use gcs_clocks::time::at;
    use gcs_net::node;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn alarm(n: usize) -> EventPayload {
        EventPayload::Alarm {
            node: node(n),
            kind: TimerKind::Tick,
            generation: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut w = TimeWheel::new(0.25);
        w.push(at(3.0), alarm(3));
        w.push(at(1.0), alarm(1));
        w.push(at(2.0), alarm(2));
        let order: Vec<f64> = std::iter::from_fn(|| w.pop())
            .map(|e| e.time.seconds())
            .collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut w = TimeWheel::new(0.25);
        for i in 0..10 {
            w.push(at(5.0), alarm(i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| w.pop()).map(|e| e.seq).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_instant_sorts_topology_into_one_prefix() {
        let mut w = TimeWheel::new(0.25);
        let topo = |i: usize| EventPayload::Topology {
            kind: crate::event::LinkChangeKind::Added,
            edge: gcs_net::Edge::between(i, i + 1),
            version: 1,
        };
        // Interleave pushes: protocol, topology, protocol, topology.
        w.push(at(1.0), alarm(0));
        w.push(at(1.0), topo(0));
        w.push(at(1.0), alarm(1));
        w.push(at(1.0), topo(2));
        w.push(at(2.0), topo(4)); // different instant, stays behind
        let mut round = Vec::new();
        assert_eq!(w.pop_instant(&mut round), Some(at(1.0)));
        assert_eq!(round.len(), 4);
        assert_eq!(
            topology_prefix_len(&round),
            2,
            "all same-instant topology events form the prefix"
        );
        // Within each class, insertion order (seq) is preserved.
        let prefix_edges: Vec<_> = round[..2]
            .iter()
            .map(|ev| match ev.payload {
                EventPayload::Topology { edge, .. } => edge,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            prefix_edges,
            vec![gcs_net::Edge::between(0, 1), gcs_net::Edge::between(2, 3)]
        );
        round.clear();
        assert_eq!(w.pop_instant(&mut round), Some(at(2.0)));
        assert_eq!(topology_prefix_len(&round), 1);
    }

    #[test]
    fn far_future_overflow_round_trips() {
        let mut w = TimeWheel::new(0.25);
        // Far beyond the ring horizon (512 · 0.25 = 128 s).
        w.push(at(1000.0), alarm(0));
        w.push(at(500.0), alarm(1));
        w.push(at(0.1), alarm(2));
        assert_eq!(w.len(), 3);
        assert_eq!(w.peek_time(), Some(at(0.1)));
        let times: Vec<f64> = std::iter::from_fn(|| w.pop())
            .map(|e| e.time.seconds())
            .collect();
        assert_eq!(times, vec![0.1, 500.0, 1000.0]);
        assert!(w.is_empty());
    }

    #[test]
    fn push_at_cursor_time_during_drain() {
        let mut w = TimeWheel::new(0.25);
        w.push(at(1.0), alarm(0));
        w.push(at(1.0001), alarm(1));
        let first = w.pop().unwrap();
        assert_eq!(first.time, at(1.0));
        // An event scheduled "now" (same bucket as the cursor) must pop
        // before the rest of the bucket when its time is earlier-or-equal
        // by (time, seq).
        w.push(at(1.00005), alarm(2));
        assert_eq!(w.pop().unwrap().time, at(1.00005));
        assert_eq!(w.pop().unwrap().time, at(1.0001));
        assert!(w.pop().is_none());
    }

    #[test]
    fn matches_heap_order_on_random_workload() {
        // Differential test: random interleaved push/pop against EventQueue.
        let mut rng = StdRng::seed_from_u64(7);
        let mut heap = EventQueue::new();
        let mut wheel = TimeWheel::new(0.25);
        let mut t = 0.0f64;
        let mut popped = Vec::new();
        let mut popped_h = Vec::new();
        for step in 0..5000 {
            if rng.gen_bool(0.6) || heap.is_empty() {
                // Pushes go to "now or later" with occasional far-future
                // spikes, like pre-scheduled churn.
                let dt = if rng.gen_bool(0.02) {
                    rng.gen_range(100.0..400.0)
                } else {
                    rng.gen_range(0.0..3.0)
                };
                heap.push(at(t + dt), alarm(step));
                wheel.push(at(t + dt), alarm(step));
            } else {
                let a = heap.pop().unwrap();
                let b = wheel.pop().unwrap();
                assert_eq!((a.time, a.seq), (b.time, b.seq), "step {step}");
                t = a.time.seconds();
                popped_h.push(a.seq);
                popped.push(b.seq);
            }
            assert_eq!(heap.len(), wheel.len());
        }
        while let Some(a) = heap.pop() {
            let b = wheel.pop().unwrap();
            assert_eq!((a.time, a.seq), (b.time, b.seq));
        }
        assert!(wheel.is_empty());
        assert_eq!(popped, popped_h);
    }

    #[test]
    fn pop_instant_drains_exactly_one_time_tie_group() {
        let mut w = TimeWheel::new(0.25);
        for i in 0..5 {
            w.push(at(2.0), alarm(i));
        }
        w.push(at(3.0), alarm(5));
        let mut buf = Vec::new();
        assert_eq!(w.pop_instant(&mut buf), Some(at(2.0)));
        assert_eq!(buf.len(), 5);
        assert!(buf.iter().all(|e| e.time == at(2.0)));
        assert_eq!(
            buf.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (0..5).collect::<Vec<_>>(),
            "within an instant the order is insertion order"
        );
        buf.clear();
        assert_eq!(w.pop_instant(&mut buf), Some(at(3.0)));
        assert_eq!(buf.len(), 1);
        buf.clear();
        assert_eq!(w.pop_instant(&mut buf), None);
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_rejected() {
        let _ = TimeWheel::new(0.0);
    }

    fn topo(i: usize) -> EventPayload {
        EventPayload::Topology {
            kind: crate::event::LinkChangeKind::Added,
            edge: gcs_net::Edge::between(i, i + 1),
            version: 1,
        }
    }

    #[test]
    fn topology_sorts_before_other_payloads_at_the_same_instant() {
        // The lazily pulled schedule can push a topology event *after*
        // same-instant protocol events already entered the wheel; the
        // class rank must still apply it first (§3.2: a change takes
        // effect at its instant).
        let mut w = TimeWheel::new(0.25);
        w.push(at(2.0), alarm(0));
        w.push(at(2.0), topo(0));
        w.push(at(2.0), alarm(1));
        w.push(at(2.0), topo(2));
        let order: Vec<u8> = std::iter::from_fn(|| w.pop())
            .map(|e| e.payload.class_rank())
            .collect();
        assert_eq!(order, vec![0, 0, 2, 2]);
    }

    #[test]
    fn push_into_skipped_bucket_pops_in_order() {
        // The cursor skips empty buckets; a late (pulled) push can then
        // target one of them. It must land in the spill heap and pop in
        // correct time order.
        let mut w = TimeWheel::new(0.25);
        w.push(at(1.0), alarm(0));
        w.push(at(100.0), alarm(1));
        assert_eq!(w.pop().unwrap().time, at(1.0));
        // Peeking advances the cursor to the 100.0 bucket...
        assert_eq!(w.peek_time(), Some(at(100.0)));
        // ...then a pulled event lands in a long-skipped bucket.
        w.push(at(50.0), topo(0));
        w.push(at(100.0), topo(1));
        let order: Vec<f64> = std::iter::from_fn(|| w.pop())
            .map(|e| e.time.seconds())
            .collect();
        assert_eq!(order, vec![50.0, 100.0, 100.0]);
    }

    #[test]
    fn pop_instant_includes_spilled_same_instant_events() {
        let mut w = TimeWheel::new(0.25);
        w.push(at(10.0), alarm(0));
        assert_eq!(w.peek_time(), Some(at(10.0)));
        w.push(at(10.0), topo(0));
        let mut buf = Vec::new();
        assert_eq!(w.pop_instant(&mut buf), Some(at(10.0)));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf[0].payload.class_rank(), 0, "topology first");
    }
}
