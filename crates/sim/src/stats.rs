//! Execution counters, used by tests (e.g. determinism checks) and benches.

/// Counters accumulated over one simulation run.
///
/// Equality deliberately skips the *scheduling* counters
/// ([`segments_parallel`](Self::segments_parallel),
/// [`segments_inline`](Self::segments_inline),
/// [`par_min_events`](Self::par_min_events)): they describe how the host
/// chose to execute the trace, not the trace itself, and determinism
/// tests compare stats across thread counts with `assert_eq!`. Every
/// other counter — including the topology *batch* counters, which are a
/// pure function of the instant sequence — must be bit-identical for
/// every worker count.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimStats {
    /// Events popped from the queue (including skipped stale ones).
    pub events_processed: u64,
    /// Messages handed to the environment via `send`.
    pub messages_sent: u64,
    /// Messages delivered to their destination.
    pub messages_delivered: u64,
    /// Sends attempted on edges that did not exist at send time.
    pub dropped_no_edge: u64,
    /// Messages lost because the edge went down in flight.
    pub dropped_in_flight: u64,
    /// Timer alarms delivered to automata.
    pub alarms_fired: u64,
    /// Alarms skipped because the timer was re-set or cancelled.
    pub alarms_stale: u64,
    /// Link changes delivered via `on_discover`.
    pub discovers_delivered: u64,
    /// Discover events skipped because a newer change for the same edge
    /// had already been delivered (transient change, allowed by the model).
    pub discovers_stale: u64,
    /// Topology events applied.
    pub topology_events: u64,
    /// Topology events pulled from the source into the wheel.
    pub topology_pulled: u64,
    /// Peak number of pulled-but-not-yet-applied topology events — the
    /// streaming pipeline's event backlog. Bounded by the pull lookahead
    /// window, independent of the total churn-event count (the old eager
    /// pre-load made this the whole schedule). Identical across thread
    /// counts: pulls are driven by the instant sequence, which is part of
    /// the trace.
    pub peak_topology_backlog: u64,
    /// Peak number of pulled topology/fault events parked in the compact
    /// staging buffers — pulled from their source (and holding reserved
    /// wheel sequence numbers) but not yet admitted into the wheel
    /// because they are not due. Staging is driven by the instant
    /// sequence alone, so the peak is identical across thread counts.
    pub peak_staged_events: u64,
    /// Fault events pulled from the fault source into the wheel.
    pub faults_pulled: u64,
    /// Fault events applied (at their barrier).
    pub faults_applied: u64,
    /// Nodes newly crashed (double crashes are no-ops and not counted).
    pub crashes: u64,
    /// Node restarts applied (including in-place reboots of live nodes).
    pub restarts: u64,
    /// Deliveries lost because the destination was crashed.
    pub dropped_crashed: u64,
    /// Alarms and discoveries suppressed at crashed nodes.
    pub suppressed_crashed: u64,
    /// Sends lost to an open `DropWindow`.
    pub dropped_fault_window: u64,
    /// Sends whose delay was overridden by an open `DelaySpike`.
    pub delay_spiked: u64,
    /// Topology batches applied — one per instant that carried at least
    /// one topology event (stepped execution applies one event per
    /// batch). A function of the instant sequence alone, so identical
    /// across thread counts.
    pub topology_batches: u64,
    /// Widest topology batch applied (events in one instant's batch).
    /// Trace-relevant like [`topology_batches`](Self::topology_batches).
    pub peak_batch_len: u64,
    /// Segments dispatched to the parallel backend (pool or fork/join).
    /// **Scheduling only** — depends on the thread count and the
    /// parallel threshold, excluded from equality.
    pub segments_parallel: u64,
    /// Segments run inline on the coordinating thread. Scheduling only,
    /// excluded from equality.
    pub segments_inline: u64,
    /// The effective parallel threshold this run was built with (see
    /// `SimBuilder::par_threshold` / `GCS_SIM_PAR_MIN`). Configuration
    /// echo, excluded from equality.
    pub par_min_events: u64,
}

impl PartialEq for SimStats {
    fn eq(&self, other: &Self) -> bool {
        // Destructure so a new counter is a compile error until it is
        // classified as trace-relevant or scheduling-only.
        let SimStats {
            events_processed,
            messages_sent,
            messages_delivered,
            dropped_no_edge,
            dropped_in_flight,
            alarms_fired,
            alarms_stale,
            discovers_delivered,
            discovers_stale,
            topology_events,
            topology_pulled,
            peak_topology_backlog,
            peak_staged_events,
            faults_pulled,
            faults_applied,
            crashes,
            restarts,
            dropped_crashed,
            suppressed_crashed,
            dropped_fault_window,
            delay_spiked,
            topology_batches,
            peak_batch_len,
            segments_parallel: _,
            segments_inline: _,
            par_min_events: _,
        } = *self;
        events_processed == other.events_processed
            && messages_sent == other.messages_sent
            && messages_delivered == other.messages_delivered
            && dropped_no_edge == other.dropped_no_edge
            && dropped_in_flight == other.dropped_in_flight
            && alarms_fired == other.alarms_fired
            && alarms_stale == other.alarms_stale
            && discovers_delivered == other.discovers_delivered
            && discovers_stale == other.discovers_stale
            && topology_events == other.topology_events
            && topology_pulled == other.topology_pulled
            && peak_topology_backlog == other.peak_topology_backlog
            && peak_staged_events == other.peak_staged_events
            && faults_pulled == other.faults_pulled
            && faults_applied == other.faults_applied
            && crashes == other.crashes
            && restarts == other.restarts
            && dropped_crashed == other.dropped_crashed
            && suppressed_crashed == other.suppressed_crashed
            && dropped_fault_window == other.dropped_fault_window
            && delay_spiked == other.delay_spiked
            && topology_batches == other.topology_batches
            && peak_batch_len == other.peak_batch_len
    }
}

impl Eq for SimStats {}

impl SimStats {
    /// Adds another counter set into this one (used to fold per-shard
    /// deltas into the global counters; addition is order-independent, so
    /// totals are identical for every worker count).
    pub fn absorb(&mut self, other: &SimStats) {
        self.events_processed += other.events_processed;
        self.messages_sent += other.messages_sent;
        self.messages_delivered += other.messages_delivered;
        self.dropped_no_edge += other.dropped_no_edge;
        self.dropped_in_flight += other.dropped_in_flight;
        self.alarms_fired += other.alarms_fired;
        self.alarms_stale += other.alarms_stale;
        self.discovers_delivered += other.discovers_delivered;
        self.discovers_stale += other.discovers_stale;
        self.topology_events += other.topology_events;
        self.topology_pulled += other.topology_pulled;
        self.peak_topology_backlog = self.peak_topology_backlog.max(other.peak_topology_backlog);
        self.peak_staged_events = self.peak_staged_events.max(other.peak_staged_events);
        self.faults_pulled += other.faults_pulled;
        self.faults_applied += other.faults_applied;
        self.crashes += other.crashes;
        self.restarts += other.restarts;
        self.dropped_crashed += other.dropped_crashed;
        self.suppressed_crashed += other.suppressed_crashed;
        self.dropped_fault_window += other.dropped_fault_window;
        self.delay_spiked += other.delay_spiked;
        self.topology_batches += other.topology_batches;
        self.peak_batch_len = self.peak_batch_len.max(other.peak_batch_len);
        self.segments_parallel += other.segments_parallel;
        self.segments_inline += other.segments_inline;
        self.par_min_events = self.par_min_events.max(other.par_min_events);
    }

    /// Messages lost for any reason.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_no_edge
            + self.dropped_in_flight
            + self.dropped_crashed
            + self.dropped_fault_window
    }

    /// Delivery ratio over attempted sends (1.0 when nothing was dropped).
    pub fn delivery_ratio(&self) -> f64 {
        if self.messages_sent == 0 {
            1.0
        } else {
            self.messages_delivered as f64 / self.messages_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut s = SimStats::default();
        assert_eq!(s.delivery_ratio(), 1.0);
        s.messages_sent = 10;
        s.messages_delivered = 8;
        s.dropped_no_edge = 1;
        s.dropped_in_flight = 1;
        assert_eq!(s.total_dropped(), 2);
        assert!((s.delivery_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn equality_skips_scheduling_counters() {
        let a = SimStats {
            messages_delivered: 3,
            topology_batches: 2,
            peak_batch_len: 5,
            segments_parallel: 10,
            segments_inline: 4,
            par_min_events: 64,
            ..SimStats::default()
        };
        let b = SimStats {
            segments_parallel: 0,
            segments_inline: 99,
            par_min_events: 1,
            ..a
        };
        assert_eq!(a, b, "scheduling counters must not break equality");
        let c = SimStats {
            peak_batch_len: 6,
            ..a
        };
        assert_ne!(a, c, "batch counters are trace-relevant");
    }
}
