//! The deterministic parallel discrete-event simulation engine.
//!
//! [`Simulator`] replays a [`TopologySchedule`] against a set of protocol
//! [`Automaton`]s, enforcing the model guarantees of Section 3.2:
//!
//! * **Delays**: every delivered message takes `[0, T]` real time, FIFO per
//!   directed link (enforced by clamping a later message's delivery to the
//!   previous one's, which never exceeds the `T` bound because sends are
//!   ordered).
//! * **Removal semantics**: a message in flight on an edge that goes down
//!   is dropped, and the *sender* is handed a `discover(remove)` no later
//!   than `send time + D` (we schedule it at the failed delivery instant,
//!   which is `≤ send + T < send + D`).
//! * **Discovery**: each endpoint of a changed edge receives a
//!   `discover` event within `D`; per-edge version numbers let the engine
//!   skip *stale* discoveries (an older change superseded by a newer one),
//!   which models the paper's "transient link formations or failures … may
//!   or may not be detected".
//! * **Subjective timers**: `set_timer(Δt)` fires when the node's hardware
//!   clock has advanced by exactly `Δt`, computed by exact inversion of the
//!   node's rate schedule.
//!
//! ## The hot path: instants, segments, shards
//!
//! Events live in a [`TimeWheel`] calendar queue keyed on the delay bound
//! `T`. [`Simulator::run_until`] drains the wheel one **instant** (all
//! events at the earliest pending time) at a time. Within an instant,
//! **topology events are barriers**: they mutate the canonical edge state
//! every delivery reads, so the instant is split into *segments* at each
//! topology event and the segments run in queue order. All events inside a
//! segment target node-exclusive state, so a segment is dispatched
//! **sharded by owning [`NodeId`]** — round-robin over
//! [`SimBuilder::threads`] worker shards, run on `std::thread::scope`
//! workers when the segment is wide enough (the `dispatch` module) and
//! inline otherwise. Handler-emitted actions are buffered and merged back
//! into the wheel in the canonical `(triggering event seq, emission
//! index)` order, and every random draw comes from the consuming node's
//! private stream, so the trace is **bit-identical for every thread
//! count** — pinned by `crates/bench/tests/determinism.rs`.

use crate::automaton::Automaton;
use crate::delay::DelayStrategy;
use crate::dispatch::{self, DispatchCtx, Effect, PAR_MIN_EVENTS};
use crate::event::{EventPayload, LinkChange, LinkChangeKind, QueuedEvent};
use crate::model::ModelParams;
use crate::shard::{EdgeStore, Shards};
use crate::stats::SimStats;
use crate::wheel::TimeWheel;
use gcs_clocks::{DriftModel, HardwareClock, Time};
use gcs_net::schedule::TopologyEventKind;
use gcs_net::{DynamicGraph, Edge, NodeId, TopologySchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Environment variable consulted for the default worker count, so a CI
/// matrix (or an operator) can exercise the parallel path without touching
/// code: `GCS_SIM_THREADS=8 cargo test`.
pub const THREADS_ENV: &str = "GCS_SIM_THREADS";

/// Hard cap on worker shards — far above any sensible host, it only guards
/// against a malformed environment value allocating absurd shard counts.
const MAX_THREADS: usize = 64;

fn threads_from_env() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .map(|t| t.min(MAX_THREADS))
        .unwrap_or(1)
}

/// How long the environment waits before telling an endpoint about a
/// topology change. All variants are validated against the bound `D`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DiscoveryDelay {
    /// Every change discovered exactly `delay` after it happens.
    Constant(f64),
    /// Uniformly random discovery latency in `[lo, hi]`.
    Uniform {
        /// Lower bound (must be `> 0`).
        lo: f64,
        /// Upper bound (must be `≤ D`).
        hi: f64,
    },
}

impl DiscoveryDelay {
    pub(crate) fn sample(&self, d_bound: f64, rng: &mut StdRng) -> f64 {
        let v = match self {
            DiscoveryDelay::Constant(d) => *d,
            DiscoveryDelay::Uniform { lo, hi } => {
                if lo == hi {
                    *lo
                } else {
                    rng.gen_range(*lo..=*hi)
                }
            }
        };
        debug_assert!(
            v > 0.0 && v <= d_bound + 1e-12,
            "discovery delay {v} outside (0, {d_bound}]"
        );
        v.clamp(f64::MIN_POSITIVE, d_bound)
    }
}

/// Builder for [`Simulator`].
pub struct SimBuilder {
    params: ModelParams,
    schedule: TopologySchedule,
    clocks: Option<Vec<HardwareClock>>,
    delay: DelayStrategy,
    discovery: DiscoveryDelay,
    seed: u64,
    threads: Option<usize>,
}

impl SimBuilder {
    /// Starts a builder with defaults: perfect clocks, maximum delays,
    /// worst-case (`= D`) discovery latency, seed 0, worker count from
    /// [`THREADS_ENV`] (1 when unset).
    pub fn new(params: ModelParams, schedule: TopologySchedule) -> Self {
        SimBuilder {
            discovery: DiscoveryDelay::Constant(params.d),
            params,
            schedule,
            clocks: None,
            delay: DelayStrategy::Max,
            seed: 0,
            threads: None,
        }
    }

    /// Uses explicit per-node hardware clocks.
    pub fn clocks(mut self, clocks: Vec<HardwareClock>) -> Self {
        assert_eq!(
            clocks.len(),
            self.schedule.n(),
            "need one clock per node ({} != {})",
            clocks.len(),
            self.schedule.n()
        );
        self.clocks = Some(clocks);
        self
    }

    /// Generates clocks from a drift model over `[0, horizon]` using the
    /// builder's seed (offset so clock randomness is independent of delay
    /// randomness).
    pub fn drift(mut self, model: DriftModel, horizon: f64) -> Self {
        let rho = self.params.rho;
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let clocks = (0..self.schedule.n())
            .map(|i| HardwareClock::new(model.build(rho, horizon, i, &mut rng), rho))
            .collect();
        self.clocks = Some(clocks);
        self
    }

    /// Sets the delay adversary.
    pub fn delay(mut self, delay: DelayStrategy) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the discovery-latency model.
    pub fn discovery(mut self, discovery: DiscoveryDelay) -> Self {
        self.discovery = discovery;
        self
    }

    /// Seeds all randomness (per-node streams, discovery jitter, drift
    /// generation).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of worker shards for parallel dispatch (≥ 1). The trace is
    /// bit-identical for every value; only wall-clock time changes.
    /// Overrides [`THREADS_ENV`].
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker");
        self.threads = Some(threads.min(MAX_THREADS));
        self
    }

    /// Finalizes the simulator; `make_node(i)` constructs the automaton for
    /// node `i`. `on_start` handlers run immediately, followed by the
    /// discovery of the initial edge set at time 0.
    pub fn build_with<A: Automaton>(self, make_node: impl FnMut(usize) -> A) -> Simulator<A> {
        let n = self.schedule.n();
        let workers = self.threads.unwrap_or_else(threads_from_env).max(1);
        let shard_count = workers.min(n.max(1));
        let clocks = self
            .clocks
            .unwrap_or_else(|| vec![HardwareClock::perfect(self.params.rho); n]);
        let nodes: Vec<A> = (0..n).map(make_node).collect();
        let mut shards = Shards::build(shard_count, self.seed, nodes);
        // Canonical edge state, pre-sized shard by shard from the
        // schedule's per-shard views (content is shard-count independent).
        let edges = EdgeStore::from_schedule(&self.schedule, shard_count);

        // Bucket width tied to the delay bound: most deliveries span a
        // handful of buckets, timers a few more.
        let mut queue = TimeWheel::new(self.params.t / 4.0);
        let mut graph = DynamicGraph::empty(n);

        // Initial edges exist (and are discovered) at time 0.
        for e in self.schedule.initial_edges() {
            graph.add_edge(e, Time::ZERO);
            for w in [e.lo(), e.hi()] {
                queue.push(
                    Time::ZERO,
                    EventPayload::Discover {
                        node: w,
                        change: LinkChange {
                            kind: LinkChangeKind::Added,
                            edge: e,
                        },
                        version: 1,
                    },
                );
            }
        }

        // Pre-schedule every topology event and its endpoint discoveries.
        // Discovery latency is drawn from the *endpoint's* stream (in
        // schedule order), so the draws are independent of thread count.
        // (Far-future events land in the wheel's overflow map.)
        let mut version_counter: BTreeMap<Edge, u64> =
            self.schedule.initial_edges().map(|e| (e, 1u64)).collect();
        for ev in self.schedule.events() {
            let v = version_counter.entry(ev.edge).or_insert(0);
            *v += 1;
            let version = *v;
            let kind = match ev.kind {
                TopologyEventKind::Add => LinkChangeKind::Added,
                TopologyEventKind::Remove => LinkChangeKind::Removed,
            };
            queue.push(
                ev.time,
                EventPayload::Topology {
                    kind,
                    edge: ev.edge,
                    version,
                },
            );
            for w in [ev.edge.lo(), ev.edge.hi()] {
                let lat = self
                    .discovery
                    .sample(self.params.d, &mut shards.local_mut(w).rng);
                queue.push(
                    ev.time + gcs_clocks::Duration::new(lat),
                    EventPayload::Discover {
                        node: w,
                        change: LinkChange {
                            kind,
                            edge: ev.edge,
                        },
                        version,
                    },
                );
            }
        }

        let mut sim = Simulator {
            params: self.params,
            clocks,
            graph,
            queue,
            shards,
            edges,
            delay: self.delay,
            discovery: self.discovery,
            now: Time::ZERO,
            stats: SimStats::default(),
            workers,
            os_workers: shard_count.min(
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
                    .max(2),
            ),
            instant: 0,
            observing: false,
            n,
            round_buf: Vec::new(),
            effects_buf: Vec::new(),
            touched_buf: Vec::new(),
        };
        // `on_start` before any event (matching "at the beginning of the
        // execution"), one node at a time in id order so emitted events are
        // enqueued exactly as the per-event engine enqueued them.
        for i in 0..n {
            sim.instant += 1;
            sim.dispatch_start(NodeId::from_index(i));
            sim.merge_effects();
        }
        sim
    }
}

/// The simulation engine; see the module docs for semantics.
pub struct Simulator<A: Automaton> {
    params: ModelParams,
    clocks: Vec<HardwareClock>,
    graph: DynamicGraph,
    queue: TimeWheel,
    /// Automata plus node-local engine state, sharded by owner.
    shards: Shards<A>,
    /// Canonical per-edge state (liveness, epochs, removal versions),
    /// written only between segments.
    edges: EdgeStore,
    delay: DelayStrategy,
    discovery: DiscoveryDelay,
    now: Time,
    stats: SimStats,
    /// Configured worker count (shard count is `min(workers, n)`).
    workers: usize,
    /// OS threads actually spawned per wide segment:
    /// `min(shard count, max(2, host parallelism))`. Caps oversubscription
    /// when the host has fewer cores than configured shards; floored at 2
    /// so the concurrent dispatch path runs on every host. Scheduling
    /// only — traces never depend on it.
    os_workers: usize,
    /// Monotone instant id (hardware-reading memoization).
    instant: u64,
    /// Whether the current drain collects touched nodes for an observer.
    observing: bool,
    n: usize,
    round_buf: Vec<QueuedEvent>,
    effects_buf: Vec<Effect>,
    touched_buf: Vec<NodeId>,
}

impl<A: Automaton> Simulator<A> {
    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current simulation time (last processed event, or the target of the
    /// last `run_until`).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Model parameters.
    pub fn params(&self) -> ModelParams {
        self.params
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.workers
    }

    /// Execution counters.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The live graph state.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Immutable access to a node's automaton.
    pub fn node(&self, u: NodeId) -> &A {
        self.shards.node(u)
    }

    /// Hardware clock reading of `u` at the current time.
    pub fn hardware(&self, u: NodeId) -> f64 {
        self.clocks[u.index()].read(self.now)
    }

    /// Hardware clock of node `u`.
    pub fn clock(&self, u: NodeId) -> &HardwareClock {
        &self.clocks[u.index()]
    }

    /// Logical clock `L_u` at the current time.
    pub fn logical(&self, u: NodeId) -> f64 {
        self.node(u).logical_clock(self.hardware(u))
    }

    /// Max estimate `Lmax_u` at the current time.
    pub fn max_estimate_of(&self, u: NodeId) -> f64 {
        self.node(u).max_estimate(self.hardware(u))
    }

    /// All logical clocks at the current time.
    pub fn logical_snapshot(&self) -> Vec<f64> {
        (0..self.n())
            .map(|i| self.logical(NodeId::from_index(i)))
            .collect()
    }

    /// Runs until all events at time `≤ until` are processed, then advances
    /// the clock to `until` so state queries observe that instant.
    pub fn run_until(&mut self, until: Time) {
        self.observing = false;
        self.drain(until, |_, _, _| {});
    }

    /// Like [`run_until`](Self::run_until), but invokes `observe` after
    /// every processed instant with the simulator (in a consistent state),
    /// the instant's time, and the ascending, deduplicated list of nodes
    /// whose handlers ran at that instant.
    ///
    /// This is the engine half of the streaming observability API: an
    /// observer can maintain incremental metrics (per-edge skew, counters,
    /// CSV rows) without ever taking `O(n + m)` snapshots — see
    /// `gcs_analysis::probe`.
    pub fn run_until_with(&mut self, until: Time, mut observe: impl FnMut(&Self, Time, &[NodeId])) {
        self.observing = true;
        self.drain(until, &mut observe);
        self.observing = false;
    }

    fn drain(&mut self, until: Time, mut observe: impl FnMut(&Self, Time, &[NodeId])) {
        assert!(until >= self.now, "cannot run backwards");
        let mut round = std::mem::take(&mut self.round_buf);
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= until => {}
                _ => break,
            }
            round.clear();
            let t = self
                .queue
                .pop_instant(&mut round)
                .expect("peek said non-empty");
            self.now = t;
            self.instant += 1;
            self.stats.events_processed += round.len() as u64;
            self.run_round(&round);
            if self.observing {
                let mut touched = std::mem::take(&mut self.touched_buf);
                for shard in &mut self.shards.shards {
                    touched.append(&mut shard.touched);
                }
                touched.sort_unstable();
                touched.dedup();
                observe(self, t, &touched);
                touched.clear();
                self.touched_buf = touched;
            }
        }
        self.round_buf = round;
        self.now = until;
    }

    /// Processes the single earliest event. Returns false if none pending.
    ///
    /// Stepping and [`run_until`](Self::run_until) produce bit-identical
    /// traces: both go through the same dispatch core and the same
    /// canonical effect ordering.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event queue went backwards");
        self.now = ev.time;
        self.instant += 1;
        self.stats.events_processed += 1;
        match ev.payload {
            EventPayload::Topology {
                kind,
                edge,
                version,
            } => self.apply_topology(kind, edge, version),
            _ => {
                let owner = DispatchCtx::owner(&ev.payload);
                let (ctx, shards) = self.split_dispatch();
                let shard_idx = shards.shard_of(owner);
                dispatch::run_event(&ctx, &mut shards.shards[shard_idx], owner, &ev);
                self.merge_effects();
            }
        }
        true
    }

    /// One instant: split into segments at topology barriers, dispatch each
    /// segment sharded by owner, merge effects canonically after each.
    fn run_round(&mut self, round: &[QueuedEvent]) {
        let mut i = 0;
        while i < round.len() {
            if let EventPayload::Topology {
                kind,
                edge,
                version,
            } = round[i].payload
            {
                self.apply_topology(kind, edge, version);
                i += 1;
                continue;
            }
            let end = i + round[i..]
                .iter()
                .position(|ev| matches!(ev.payload, EventPayload::Topology { .. }))
                .unwrap_or(round.len() - i);
            self.run_segment(&round[i..end]);
            i = end;
        }
    }

    /// Dispatches one topology-free segment and merges its effects.
    fn run_segment(&mut self, seg: &[QueuedEvent]) {
        let os_workers = self.os_workers;
        let (ctx, shards) = self.split_dispatch();
        let shard_count = shards.count();
        let parallel = shard_count > 1 && seg.len() >= PAR_MIN_EVENTS;
        if !parallel {
            for ev in seg {
                let owner = DispatchCtx::owner(&ev.payload);
                let s = shards.shard_of(owner);
                dispatch::run_event(&ctx, &mut shards.shards[s], owner, ev);
            }
        } else {
            for ev in seg {
                let owner = DispatchCtx::owner(&ev.payload);
                let s = owner.index() % shard_count;
                shards.shards[s].events.push(*ev);
            }
            // One OS thread can serve several shards: shard count fixes
            // the (trace-relevant) data partition, `os_workers` only caps
            // oversubscription. Contiguous chunking is safe because
            // shards are mutually independent within a segment.
            let per_worker = shard_count.div_ceil(os_workers);
            std::thread::scope(|scope| {
                for chunk in shards.shards.chunks_mut(per_worker) {
                    if chunk.iter().all(|s| s.events.is_empty()) {
                        continue;
                    }
                    let ctx = &ctx;
                    scope.spawn(move || {
                        for shard in chunk.iter_mut() {
                            if !shard.events.is_empty() {
                                dispatch::run_shard(ctx, shard);
                            }
                        }
                    });
                }
            });
        }
        self.merge_effects();
    }

    /// Splits the borrow of `self` into the read-only dispatch context and
    /// the mutable shard set (disjoint fields, checked by the compiler).
    fn split_dispatch(&mut self) -> (DispatchCtx<'_>, &mut Shards<A>) {
        let ctx = DispatchCtx {
            edges: &self.edges,
            clocks: &self.clocks,
            delay: &self.delay,
            discovery: &self.discovery,
            params: self.params,
            now: self.now,
            instant: self.instant,
            shard_count: self.shards.count(),
            observing: self.observing,
        };
        (ctx, &mut self.shards)
    }

    /// Startup dispatch of `on_start` for one node (serial, build time).
    fn dispatch_start(&mut self, u: NodeId) {
        let (ctx, shards) = self.split_dispatch();
        let shard_idx = shards.shard_of(u);
        let local = u.index() / shards.count();
        dispatch::run_handler(&ctx, &mut shards.shards[shard_idx], u, local, 0, |a, c| {
            a.on_start(c)
        });
    }

    /// Collects per-shard effects, sorts them into the canonical
    /// `(trigger seq, emission idx)` order, enqueues them, and folds the
    /// per-shard stats deltas into the global counters.
    fn merge_effects(&mut self) {
        let mut buf = std::mem::take(&mut self.effects_buf);
        buf.clear();
        for shard in &mut self.shards.shards {
            self.stats.absorb(&shard.stats);
            shard.stats = SimStats::default();
            buf.append(&mut shard.effects);
        }
        buf.sort_unstable_by_key(|e| (e.seq, e.k));
        for e in &buf {
            self.queue.push(e.time, e.payload);
        }
        self.effects_buf = buf;
    }

    fn apply_topology(&mut self, kind: LinkChangeKind, edge: Edge, version: u64) {
        self.stats.topology_events += 1;
        let now = self.now;
        let entry = self.edges.entry(edge);
        match kind {
            LinkChangeKind::Added => {
                entry.epoch += 1;
                entry.live = true;
                self.graph.add_edge(edge, now);
            }
            LinkChangeKind::Removed => {
                entry.last_remove_version = version;
                entry.live = false;
                self.graph.remove_edge(edge, now);
            }
        }
    }
}
