//! The batched, cache-friendly discrete-event simulation engine.
//!
//! [`Simulator`] replays a [`TopologySchedule`] against a set of protocol
//! [`Automaton`]s, enforcing the model guarantees of Section 3.2:
//!
//! * **Delays**: every delivered message takes `[0, T]` real time, FIFO per
//!   directed link (enforced by clamping a later message's delivery to the
//!   previous one's, which never exceeds the `T` bound because sends are
//!   ordered).
//! * **Removal semantics**: a message in flight on an edge that goes down
//!   is dropped, and the *sender* is handed a `discover(remove)` no later
//!   than `send time + D` (we schedule it at the failed delivery instant,
//!   which is `≤ send + T < send + D`).
//! * **Discovery**: each endpoint of a changed edge receives a
//!   `discover` event within `D`; per-edge version numbers let the engine
//!   skip *stale* discoveries (an older change superseded by a newer one),
//!   which models the paper's "transient link formations or failures … may
//!   or may not be detected".
//! * **Subjective timers**: `set_timer(Δt)` fires when the node's hardware
//!   clock has advanced by exactly `Δt`, computed by exact inversion of the
//!   node's rate schedule.
//!
//! ## The hot path, after the batched rewrite
//!
//! The original engine (preserved verbatim as [`crate::legacy`]) popped one
//! event at a time from a global `BinaryHeap` and looked up per-edge state
//! in `BTreeMap`s and a SipHash `HashMap` per directed link. This engine
//! keeps the exact same event *semantics and order* — traces are
//! bit-identical, see `crates/bench/tests/engine_equivalence.rs` — but
//! restructures the data layout around three ideas:
//!
//! 1. **Time wheel.** Events live in a bucketed calendar queue
//!    ([`TimeWheel`]) keyed on the delay bound `T` (bucket width `T/4`).
//!    Most pushes are an append to a small contiguous bucket instead of a
//!    `log m` sift through a heap spanning the whole future (including the
//!    pre-scheduled churn log).
//! 2. **Batched delivery.** Messages arriving at the same node at the same
//!    instant (broadcast fan-in is the common case under `Max` delays) are
//!    dispatched in one batch: one automaton borrow, one hardware-clock
//!    read, consecutive handler runs.
//! 3. **Flat link state.** Epochs, change versions, per-endpoint discovery
//!    watermarks and FIFO horizons live in per-node adjacency vectors
//!    sorted by neighbor id (`AdjEntry`), indexed by `NodeId` — a couple
//!    of cache lines per node instead of pointer-chasing tree maps. The
//!    canonical copy of undirected edge state sits on the lower endpoint.

use crate::automaton::{Action, Automaton, Context};
use crate::delay::DelayStrategy;
use crate::event::{EventPayload, LinkChange, LinkChangeKind, Message, TimerKind};
use crate::model::ModelParams;
use crate::stats::SimStats;
use crate::wheel::TimeWheel;
use gcs_clocks::{DriftModel, HardwareClock, Time};
use gcs_net::schedule::TopologyEventKind;
use gcs_net::{DynamicGraph, Edge, NodeId, TopologySchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// How long the environment waits before telling an endpoint about a
/// topology change. All variants are validated against the bound `D`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DiscoveryDelay {
    /// Every change discovered exactly `delay` after it happens.
    Constant(f64),
    /// Uniformly random discovery latency in `[lo, hi]`.
    Uniform {
        /// Lower bound (must be `> 0`).
        lo: f64,
        /// Upper bound (must be `≤ D`).
        hi: f64,
    },
}

impl DiscoveryDelay {
    pub(crate) fn sample(&self, d_bound: f64, rng: &mut StdRng) -> f64 {
        let v = match self {
            DiscoveryDelay::Constant(d) => *d,
            DiscoveryDelay::Uniform { lo, hi } => {
                if lo == hi {
                    *lo
                } else {
                    rng.gen_range(*lo..=*hi)
                }
            }
        };
        debug_assert!(
            v > 0.0 && v <= d_bound + 1e-12,
            "discovery delay {v} outside (0, {d_bound}]"
        );
        v.clamp(f64::MIN_POSITIVE, d_bound)
    }
}

/// Per-neighbor link state, stored flat in each node's adjacency vector
/// (sorted by `neighbor`). Entries are created on first contact and are
/// sticky: churn toggles fields instead of reshaping the vector.
#[derive(Clone, Copy, Debug)]
struct AdjEntry {
    /// The other endpoint.
    neighbor: NodeId,
    /// Mirror of `graph.contains(edge)` — canonical on the lower endpoint.
    live: bool,
    /// Incremented when the edge is (re-)added — canonical on the lower
    /// endpoint. Deliveries carry the epoch they were sent in.
    epoch: u64,
    /// Version of the most recent removal — canonical on the lower
    /// endpoint.
    last_remove_version: u64,
    /// Highest change version *this* node has been told about (per
    /// endpoint, not canonical).
    discovered_version: u64,
    /// Latest delivery already scheduled from this node to `neighbor`
    /// (FIFO enforcement for the directed link; per endpoint).
    fifo_out: Time,
}

impl AdjEntry {
    fn new(neighbor: NodeId) -> Self {
        AdjEntry {
            neighbor,
            live: false,
            epoch: 0,
            last_remove_version: 0,
            discovered_version: 0,
            fifo_out: Time::ZERO,
        }
    }
}

/// One node's adjacency vector, sorted by neighbor id.
#[derive(Clone, Debug, Default)]
struct Links {
    adj: Vec<AdjEntry>,
}

impl Links {
    #[inline]
    fn find(&self, v: NodeId) -> Option<&AdjEntry> {
        self.adj
            .binary_search_by_key(&v, |e| e.neighbor)
            .ok()
            .map(|i| &self.adj[i])
    }

    #[inline]
    fn entry(&mut self, v: NodeId) -> &mut AdjEntry {
        match self.adj.binary_search_by_key(&v, |e| e.neighbor) {
            Ok(i) => &mut self.adj[i],
            Err(i) => {
                self.adj.insert(i, AdjEntry::new(v));
                &mut self.adj[i]
            }
        }
    }
}

/// One node's armed timers, sorted by kind. Mirrors the legacy engine's
/// `HashMap<TimerKind, u64>` exactly: an *armed* timer is a present entry
/// whose generation must match the alarm's; cancelling bumps the
/// generation but keeps the entry; firing removes it.
#[derive(Clone, Debug, Default)]
struct TimerSlots {
    v: Vec<(TimerKind, u64)>,
}

impl TimerSlots {
    #[inline]
    fn get(&self, kind: TimerKind) -> Option<u64> {
        self.v
            .binary_search_by_key(&kind, |e| e.0)
            .ok()
            .map(|i| self.v[i].1)
    }

    /// `set_timer`: bump the generation (inserting at 0 first) and return
    /// the new value.
    #[inline]
    fn arm(&mut self, kind: TimerKind) -> u64 {
        match self.v.binary_search_by_key(&kind, |e| e.0) {
            Ok(i) => {
                self.v[i].1 = self.v[i].1.wrapping_add(1);
                self.v[i].1
            }
            Err(i) => {
                self.v.insert(i, (kind, 1));
                1
            }
        }
    }

    /// `cancel`: bump the generation if armed (entry stays present).
    #[inline]
    fn cancel(&mut self, kind: TimerKind) {
        if let Ok(i) = self.v.binary_search_by_key(&kind, |e| e.0) {
            self.v[i].1 = self.v[i].1.wrapping_add(1);
        }
    }

    /// A fired alarm consumes its entry.
    #[inline]
    fn disarm(&mut self, kind: TimerKind) {
        if let Ok(i) = self.v.binary_search_by_key(&kind, |e| e.0) {
            self.v.remove(i);
        }
    }
}

/// Builder for [`Simulator`].
pub struct SimBuilder {
    params: ModelParams,
    schedule: TopologySchedule,
    clocks: Option<Vec<HardwareClock>>,
    delay: DelayStrategy,
    discovery: DiscoveryDelay,
    seed: u64,
}

impl SimBuilder {
    /// Starts a builder with defaults: perfect clocks, maximum delays,
    /// worst-case (`= D`) discovery latency, seed 0.
    pub fn new(params: ModelParams, schedule: TopologySchedule) -> Self {
        SimBuilder {
            discovery: DiscoveryDelay::Constant(params.d),
            params,
            schedule,
            clocks: None,
            delay: DelayStrategy::Max,
            seed: 0,
        }
    }

    /// Uses explicit per-node hardware clocks.
    pub fn clocks(mut self, clocks: Vec<HardwareClock>) -> Self {
        assert_eq!(
            clocks.len(),
            self.schedule.n(),
            "need one clock per node ({} != {})",
            clocks.len(),
            self.schedule.n()
        );
        self.clocks = Some(clocks);
        self
    }

    /// Generates clocks from a drift model over `[0, horizon]` using the
    /// builder's seed (offset so clock randomness is independent of delay
    /// randomness).
    pub fn drift(mut self, model: DriftModel, horizon: f64) -> Self {
        let rho = self.params.rho;
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let clocks = (0..self.schedule.n())
            .map(|i| HardwareClock::new(model.build(rho, horizon, i, &mut rng), rho))
            .collect();
        self.clocks = Some(clocks);
        self
    }

    /// Sets the delay adversary.
    pub fn delay(mut self, delay: DelayStrategy) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the discovery-latency model.
    pub fn discovery(mut self, discovery: DiscoveryDelay) -> Self {
        self.discovery = discovery;
        self
    }

    /// Seeds all randomness (delays, discovery jitter, drift generation).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Finalizes the simulator; `make_node(i)` constructs the automaton for
    /// node `i`. `on_start` handlers run immediately, followed by the
    /// discovery of the initial edge set at time 0.
    pub fn build_with<A: Automaton>(self, make_node: impl FnMut(usize) -> A) -> Simulator<A> {
        let n = self.schedule.n();
        let clocks = self
            .clocks
            .unwrap_or_else(|| vec![HardwareClock::perfect(self.params.rho); n]);
        let mut nodes: Vec<A> = (0..n).map(make_node).collect();

        // Bucket width tied to the delay bound: most deliveries span a
        // handful of buckets, timers a few more.
        let mut queue = TimeWheel::new(self.params.t / 4.0);
        let mut graph = DynamicGraph::empty(n);
        let mut links: Vec<Links> = vec![Links::default(); n];
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Initial edges exist (and are discovered) at time 0.
        for e in self.schedule.initial_edges() {
            graph.add_edge(e, Time::ZERO);
            let entry = links[e.lo().index()].entry(e.hi());
            entry.live = true;
            entry.epoch = 1;
            for w in [e.lo(), e.hi()] {
                queue.push(
                    Time::ZERO,
                    EventPayload::Discover {
                        node: w,
                        change: LinkChange {
                            kind: LinkChangeKind::Added,
                            edge: e,
                        },
                        version: 1,
                    },
                );
            }
        }

        // Pre-schedule every topology event and its endpoint discoveries.
        // (Far-future events land in the wheel's overflow map.)
        let mut version_counter: BTreeMap<Edge, u64> =
            self.schedule.initial_edges().map(|e| (e, 1u64)).collect();
        for ev in self.schedule.events() {
            let v = version_counter.entry(ev.edge).or_insert(0);
            *v += 1;
            let version = *v;
            let kind = match ev.kind {
                TopologyEventKind::Add => LinkChangeKind::Added,
                TopologyEventKind::Remove => LinkChangeKind::Removed,
            };
            queue.push(
                ev.time,
                EventPayload::Topology {
                    kind,
                    edge: ev.edge,
                    version,
                },
            );
            for w in [ev.edge.lo(), ev.edge.hi()] {
                let lat = self.discovery.sample(self.params.d, &mut rng);
                queue.push(
                    ev.time + gcs_clocks::Duration::new(lat),
                    EventPayload::Discover {
                        node: w,
                        change: LinkChange {
                            kind,
                            edge: ev.edge,
                        },
                        version,
                    },
                );
            }
        }

        let mut sim = Simulator {
            params: self.params,
            clocks,
            graph,
            queue,
            links,
            timers: vec![TimerSlots::default(); n],
            delay: self.delay,
            discovery: self.discovery,
            rng,
            now: Time::ZERO,
            stats: SimStats::default(),
            actions_buf: Vec::new(),
            nodes: Vec::new(),
        };
        // `on_start` before any event (matching "at the beginning of the
        // execution").
        for (i, node) in nodes.iter_mut().enumerate() {
            sim.dispatch_external(NodeId::from_index(i), node, |a, ctx| a.on_start(ctx));
        }
        sim.nodes = nodes.into_iter().map(Some).collect();
        sim
    }
}

/// The simulation engine; see the module docs for semantics.
pub struct Simulator<A: Automaton> {
    params: ModelParams,
    clocks: Vec<HardwareClock>,
    graph: DynamicGraph,
    queue: TimeWheel,
    /// Automata, lifted out of their slots while their handlers run.
    nodes: Vec<Option<A>>,
    /// Flat per-node link state (epochs, versions, discovery watermarks,
    /// FIFO horizons).
    links: Vec<Links>,
    /// Per-node armed timers with generation counters; alarms with stale
    /// generations are skipped.
    timers: Vec<TimerSlots>,
    delay: DelayStrategy,
    discovery: DiscoveryDelay,
    rng: StdRng,
    now: Time,
    stats: SimStats,
    actions_buf: Vec<Action>,
}

impl<A: Automaton> Simulator<A> {
    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Current simulation time (last processed event, or the target of the
    /// last `run_until`).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Model parameters.
    pub fn params(&self) -> ModelParams {
        self.params
    }

    /// Execution counters.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The live graph state.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Immutable access to a node's automaton.
    pub fn node(&self, u: NodeId) -> &A {
        self.nodes[u.index()]
            .as_ref()
            .expect("node queried from inside its own handler")
    }

    /// Hardware clock reading of `u` at the current time.
    pub fn hardware(&self, u: NodeId) -> f64 {
        self.clocks[u.index()].read(self.now)
    }

    /// Hardware clock of node `u`.
    pub fn clock(&self, u: NodeId) -> &HardwareClock {
        &self.clocks[u.index()]
    }

    /// Logical clock `L_u` at the current time.
    pub fn logical(&self, u: NodeId) -> f64 {
        self.node(u).logical_clock(self.hardware(u))
    }

    /// Max estimate `Lmax_u` at the current time.
    pub fn max_estimate_of(&self, u: NodeId) -> f64 {
        self.node(u).max_estimate(self.hardware(u))
    }

    /// All logical clocks at the current time.
    pub fn logical_snapshot(&self) -> Vec<f64> {
        (0..self.n())
            .map(|i| self.logical(NodeId::from_index(i)))
            .collect()
    }

    /// Runs until all events at time `≤ until` are processed, then advances
    /// the clock to `until` so state queries observe that instant.
    ///
    /// Same-instant deliveries to the same node are dispatched in batches
    /// (one automaton borrow, one clock read); the handler invocation order
    /// is still exactly the `(time, seq)` order of the per-event engine.
    pub fn run_until(&mut self, until: Time) {
        assert!(until >= self.now, "cannot run backwards");
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            self.step_batched();
        }
        self.now = until;
    }

    /// Processes the single earliest event. Returns false if none pending.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event queue went backwards");
        self.now = ev.time;
        self.stats.events_processed += 1;
        match ev.payload {
            EventPayload::Topology {
                kind,
                edge,
                version,
            } => self.apply_topology(kind, edge, version),
            EventPayload::Deliver {
                from,
                to,
                msg,
                epoch,
            } => {
                let mut hw = None;
                self.with_node(to, |sim, node| {
                    sim.deliver_one(node, to, &mut hw, from, msg, epoch);
                });
            }
            EventPayload::Alarm {
                node,
                kind,
                generation,
            } => self.apply_alarm(node, kind, generation),
            EventPayload::Discover {
                node,
                change,
                version,
            } => self.apply_discover(node, change, version),
        }
        true
    }

    /// Like [`step`](Self::step), but drains the run of consecutive
    /// same-instant deliveries to the same destination in one batch.
    fn step_batched(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event queue went backwards");
        self.now = ev.time;
        self.stats.events_processed += 1;
        match ev.payload {
            EventPayload::Deliver {
                from,
                to,
                msg,
                epoch,
            } => {
                let t = ev.time;
                // Lazily read once for the whole batch, and only if some
                // delivery is actually live (dropped messages never need
                // the destination's clock).
                let mut hw = None;
                let mut node = self.nodes[to.index()]
                    .take()
                    .expect("automaton re-entered its own handler");
                self.deliver_one(&mut node, to, &mut hw, from, msg, epoch);
                // Deliveries cannot change liveness or epochs, so the whole
                // batch sees consistent link state; events pushed by the
                // handlers carry later sequence numbers and stay behind the
                // already-queued batch members, exactly as in the per-event
                // engine.
                while self.queue.peek_is_delivery_to(to, t) {
                    let ev = self.queue.pop().expect("peek said non-empty");
                    self.stats.events_processed += 1;
                    let EventPayload::Deliver {
                        from, msg, epoch, ..
                    } = ev.payload
                    else {
                        unreachable!("peek_is_delivery_to matched a non-delivery");
                    };
                    self.deliver_one(&mut node, to, &mut hw, from, msg, epoch);
                }
                self.nodes[to.index()] = Some(node);
            }
            EventPayload::Topology {
                kind,
                edge,
                version,
            } => self.apply_topology(kind, edge, version),
            EventPayload::Alarm {
                node,
                kind,
                generation,
            } => self.apply_alarm(node, kind, generation),
            EventPayload::Discover {
                node,
                change,
                version,
            } => self.apply_discover(node, change, version),
        }
        true
    }

    fn apply_topology(&mut self, kind: LinkChangeKind, edge: Edge, version: u64) {
        self.stats.topology_events += 1;
        let now = self.now;
        let entry = self.links[edge.lo().index()].entry(edge.hi());
        match kind {
            LinkChangeKind::Added => {
                entry.epoch += 1;
                entry.live = true;
                self.graph.add_edge(edge, now);
            }
            LinkChangeKind::Removed => {
                entry.last_remove_version = version;
                entry.live = false;
                self.graph.remove_edge(edge, now);
            }
        }
    }

    /// Handles one delivery for a node already lifted out of its slot.
    /// `hw_cache` memoizes the destination's hardware reading across a
    /// same-instant batch; it is only computed if a delivery is live.
    fn deliver_one(
        &mut self,
        node: &mut A,
        to: NodeId,
        hw_cache: &mut Option<f64>,
        from: NodeId,
        msg: Message,
        epoch: u64,
    ) {
        let edge = Edge::new(from, to);
        let state = self.links[edge.lo().index()].find(edge.hi());
        let live = state.map(|e| e.live && e.epoch == epoch).unwrap_or(false);
        if live {
            self.stats.messages_delivered += 1;
            let hw = match *hw_cache {
                Some(h) => h,
                None => {
                    let h = self.clocks[to.index()].read(self.now);
                    *hw_cache = Some(h);
                    h
                }
            };
            self.dispatch_with_hw(to, node, hw, |a, ctx| a.on_receive(ctx, from, msg));
        } else {
            // Dropped in flight: the model obliges the environment to tell
            // the sender within D of the send; we tell it now (≤ send + T).
            self.stats.dropped_in_flight += 1;
            let version = state.map(|e| e.last_remove_version).unwrap_or(0);
            self.queue.push(
                self.now,
                EventPayload::Discover {
                    node: from,
                    change: LinkChange {
                        kind: LinkChangeKind::Removed,
                        edge,
                    },
                    version,
                },
            );
        }
    }

    fn apply_alarm(&mut self, u: NodeId, kind: TimerKind, generation: u64) {
        if self.timers[u.index()].get(kind) != Some(generation) {
            self.stats.alarms_stale += 1;
            return;
        }
        self.timers[u.index()].disarm(kind);
        self.stats.alarms_fired += 1;
        self.with_node(u, |sim, node| {
            sim.dispatch_external(u, node, |a, ctx| a.on_alarm(ctx, kind));
        });
    }

    fn apply_discover(&mut self, u: NodeId, change: LinkChange, version: u64) {
        let other = change.edge.other(u);
        let entry = self.links[u.index()].entry(other);
        if version <= entry.discovered_version {
            self.stats.discovers_stale += 1;
            return;
        }
        entry.discovered_version = version;
        self.stats.discovers_delivered += 1;
        self.with_node(u, |sim, node| {
            sim.dispatch_external(u, node, |a, ctx| a.on_discover(ctx, change));
        });
    }

    /// Temporarily moves node `u` out of its slot so a handler can run with
    /// `&mut` access to both the automaton and the engine.
    fn with_node(&mut self, u: NodeId, f: impl FnOnce(&mut Self, &mut A)) {
        let mut node = self.nodes[u.index()]
            .take()
            .expect("automaton re-entered its own handler");
        f(self, &mut node);
        self.nodes[u.index()] = Some(node);
    }

    /// Runs a handler on an automaton that is *not* stored in self (used at
    /// startup) and applies the produced actions on behalf of `u`.
    fn dispatch_external(
        &mut self,
        u: NodeId,
        node: &mut A,
        f: impl FnOnce(&mut A, &mut Context<'_>),
    ) {
        let hw = self.clocks[u.index()].read(self.now);
        self.dispatch_with_hw(u, node, hw, f);
    }

    /// Runs a handler with a precomputed hardware reading and applies the
    /// produced actions on behalf of `u`.
    fn dispatch_with_hw(
        &mut self,
        u: NodeId,
        node: &mut A,
        hw: f64,
        f: impl FnOnce(&mut A, &mut Context<'_>),
    ) {
        let mut actions = std::mem::take(&mut self.actions_buf);
        actions.clear();
        {
            let mut ctx = Context::new(u, self.now, hw, &mut actions);
            f(node, &mut ctx);
        }
        for action in actions.drain(..) {
            self.apply_action(u, action);
        }
        self.actions_buf = actions;
    }

    fn apply_action(&mut self, u: NodeId, action: Action) {
        match action {
            Action::Send { to, msg } => self.apply_send(u, to, msg),
            Action::SetTimer { delta, kind } => {
                let generation = self.timers[u.index()].arm(kind);
                let fire = self.clocks[u.index()].fire_time(self.now, delta);
                self.queue.push(
                    fire,
                    EventPayload::Alarm {
                        node: u,
                        kind,
                        generation,
                    },
                );
            }
            Action::CancelTimer { kind } => self.timers[u.index()].cancel(kind),
        }
    }

    fn apply_send(&mut self, from: NodeId, to: NodeId, msg: Message) {
        self.stats.messages_sent += 1;
        let edge = Edge::new(from, to);
        let state = self.links[edge.lo().index()].find(edge.hi());
        if !state.map(|e| e.live).unwrap_or(false) {
            // The edge does not exist: the message is not delivered and the
            // sender discovers that within D.
            self.stats.dropped_no_edge += 1;
            let version = state.map(|e| e.last_remove_version).unwrap_or(0);
            let lat = self.discovery.sample(self.params.d, &mut self.rng);
            self.queue.push(
                self.now + gcs_clocks::Duration::new(lat),
                EventPayload::Discover {
                    node: from,
                    change: LinkChange {
                        kind: LinkChangeKind::Removed,
                        edge,
                    },
                    version,
                },
            );
            return;
        }
        let epoch = state.expect("live edge has an entry").epoch;
        let d = self
            .delay
            .delay(edge, from, self.now, self.params.t, &mut self.rng);
        let mut deliver_at = self.now + gcs_clocks::Duration::new(d);
        // FIFO per directed link: never deliver before an earlier message.
        let out = self.links[from.index()].entry(to);
        deliver_at = deliver_at.max(out.fifo_out);
        out.fifo_out = deliver_at;
        self.queue.push(
            deliver_at,
            EventPayload::Deliver {
                from,
                to,
                msg,
                epoch,
            },
        );
    }
}
