//! The deterministic parallel discrete-event simulation engine.
//!
//! [`Simulator`] replays a topology stream — any [`TopologySource`], with
//! eager [`TopologySchedule`]s adapted through [`ScheduleSource`] —
//! against a set of protocol [`Automaton`]s, enforcing the model
//! guarantees of Section 3.2:
//!
//! * **Delays**: every delivered message takes `[0, T]` real time, FIFO per
//!   directed link (enforced by clamping a later message's delivery to the
//!   previous one's, which never exceeds the `T` bound because sends are
//!   ordered).
//! * **Removal semantics**: a message in flight on an edge that goes down
//!   is dropped, and the *sender* is handed a `discover(remove)` no later
//!   than `send time + D` (we schedule it at the failed delivery instant,
//!   which is `≤ send + T < send + D`).
//! * **Discovery**: each endpoint of a changed edge receives a
//!   `discover` event within `D`; per-edge version numbers let the engine
//!   skip *stale* discoveries (an older change superseded by a newer one),
//!   which models the paper's "transient link formations or failures … may
//!   or may not be detected".
//! * **Subjective timers**: `set_timer(Δt)` fires when the node's hardware
//!   clock has advanced by exactly `Δt`, computed by exact inversion of the
//!   node's rate schedule (through the lazy drift plane — see below).
//!
//! ## The streaming topology pipeline
//!
//! Topology is **pulled, not pre-loaded**: before each instant the engine
//! asks the source for any events due at or before the next pending
//! event (`Simulator::pump_topology`, with a small fixed lookahead
//! window to amortize pulls). Each pulled event is assigned its per-edge
//! change version (stream order, via the `EdgeStore` counter) and
//! **staged, not pushed**: it parks in a compact per-source staging
//! buffer in near-native form, holding three *reserved* wheel sequence
//! numbers (the change plus its two endpoint `Discover`s — reserved at
//! pull time, exactly where a direct push would have assigned them).
//! Admission into the wheel is horizon-gated: a staged event converts
//! into its wheel-event trio only once it is due no later than the
//! wheel's next event, with discovery latencies drawn at admission from
//! a dedicated per-`(edge, version, endpoint)` stream — a pure function
//! of the event identity, never a node's stream, so the draw is
//! independent of *when* the event is pulled or admitted. The pulled
//! backlog therefore never materializes as full events (no overflow-map
//! churn on the push path), and peak memory is `O(backlog window)`
//! compact records, independent of the total churn-event count. Pull
//! decisions compare the source against the merged front of the wheel
//! *and* both staging buffers — exactly the set of pending events the
//! pre-staging engine kept in the wheel — so pull timing, reserved
//! sequence numbers, and with them the trace are bit-identical to the
//! eager-push pipeline, across thread counts and arbitrary `run_until`
//! splits.
//!
//! ## The lazy clock plane
//!
//! Hardware rates stream the same way: the engine holds one immutable
//! [`DriftSource`] instead of `n` materialized `RateSchedule`s, and the
//! only per-node drift state is an O(1) cursor in the owning shard,
//! created the first time a node's clock is evaluated past time 0
//! (`H(0) = 0` needs nothing). Eager `.clocks(...)` constructions are
//! adapted through `ScheduleDrift` (stateless — no cursors at all), and
//! node-local engine state lives in a struct-of-arrays table sized by
//! the touched-node watermark, so untouched nodes cost zero bytes of
//! clock, RNG, timer, and peer state. Every evaluation path produces
//! the identical bits the materialized schedule would — pinned by
//! `crates/bench/tests/lazy_drift.rs`.
//!
//! ## The hot path: instants, segments, shards
//!
//! Events live in a [`TimeWheel`] calendar queue keyed on the delay bound
//! `T` and popped in `(time, class, seq)` order — topology events sort
//! before same-instant protocol events (a change takes effect *at* its
//! instant), insertion order breaks remaining ties.
//! [`Simulator::run_until`] drains the wheel one **instant** (all
//! events at the earliest pending time) at a time. The instant's
//! topology events form a contiguous prefix (the class sort above) and
//! are applied as **one batch** before any handler runs: the graph
//! mirror serially in seq order, then the edge-store deltas partitioned
//! by shard and applied per shard in seq order — equivalent to the
//! serial walk because shards own disjoint edge rows. The rest of the
//! instant (fault events are serial barriers) is cut into *segments*;
//! all events inside a segment target node-exclusive state, so a
//! segment is dispatched **sharded by owning [`NodeId`]** — round-robin
//! over [`SimBuilder::threads`] worker shards. Wide segments and wide
//! batches (at least [`SimBuilder::par_threshold`] events, default 64,
//! env [`PAR_MIN_ENV`]) run on a **persistent worker pool** (the
//! `dispatch` module): shard-pinned lanes spawned once at the first
//! wide segment, lane 0 on the coordinating thread, fed per-barrier
//! jobs over channels — the per-segment `std::thread::scope`
//! spawn/join it replaces survives behind
//! [`SimBuilder::persistent_pool`]`(false)` as the A/B baseline.
//! Handler-emitted actions are buffered and merged back
//! into the wheel in the canonical `(triggering event seq, emission
//! index)` order, and every random draw comes from the consuming node's
//! private stream, so the trace is **bit-identical for every thread
//! count and both backends** — pinned by
//! `crates/bench/tests/determinism.rs` and `crates/sim/tests/pool.rs`,
//! with eager-vs-streaming equivalence pinned by
//! `crates/bench/tests/streaming.rs`.

use crate::automaton::Automaton;
use crate::delay::DelayStrategy;
use crate::dispatch::{self, DispatchCtx, Effect, ScopedJob, WorkerPool, PAR_MIN_EVENTS};
use crate::event::{EventPayload, LinkChange, LinkChangeKind, QueuedEvent};
use crate::fault::{FaultEvent, FaultKind, FaultSource, FaultState};
use crate::model::ModelParams;
use crate::shard::{EdgeStore, Shards};
use crate::stats::SimStats;
use crate::wheel::TimeWheel;
use gcs_clocks::{
    DriftModel, DriftSource, Duration, HardwareClock, ModelDrift, ScheduleDrift, Time,
};
use gcs_net::schedule::TopologyEventKind;
use gcs_net::{
    DynamicGraph, Edge, NodeId, ScheduleSource, TopologyEvent, TopologySchedule, TopologySource,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Environment variable consulted for the default worker count, so a CI
/// matrix (or an operator) can exercise the parallel path without touching
/// code: `GCS_SIM_THREADS=8 cargo test`.
pub const THREADS_ENV: &str = "GCS_SIM_THREADS";

/// Environment variable consulted for the default parallel threshold
/// (minimum events in a segment or topology batch before it is handed to
/// the worker pool): `GCS_SIM_PAR_MIN=128 cargo bench` tunes the
/// crossover on a real host without rebuilding. Overridden by
/// [`SimBuilder::par_threshold`]; scheduling only — traces are identical
/// for every value.
pub const PAR_MIN_ENV: &str = "GCS_SIM_PAR_MIN";

/// Hard cap on worker shards — far above any sensible host, it only guards
/// against a malformed environment value allocating absurd shard counts.
const MAX_THREADS: usize = 64;

fn threads_from_env() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .map(|t| t.min(MAX_THREADS))
        .unwrap_or(1)
}

fn par_min_from_env() -> Option<usize> {
    std::env::var(PAR_MIN_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
}

/// How long the environment waits before telling an endpoint about a
/// topology change. All variants are validated against the bound `D`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DiscoveryDelay {
    /// Every change discovered exactly `delay` after it happens.
    Constant(f64),
    /// Uniformly random discovery latency in `[lo, hi]`.
    Uniform {
        /// Lower bound (must be `> 0`).
        lo: f64,
        /// Upper bound (must be `≤ D`).
        hi: f64,
    },
}

impl DiscoveryDelay {
    /// True when [`sample`](Self::sample) may draw from the RNG — same
    /// contract as [`DelayStrategy::draws`]: the engine only materializes
    /// a node's lazy stream for drawing models.
    pub(crate) fn draws(&self) -> bool {
        match self {
            DiscoveryDelay::Constant(_) => false,
            DiscoveryDelay::Uniform { lo, hi } => lo != hi,
        }
    }

    pub(crate) fn sample(&self, d_bound: f64, rng: &mut StdRng) -> f64 {
        let v = match self {
            DiscoveryDelay::Constant(d) => *d,
            DiscoveryDelay::Uniform { lo, hi } => {
                if lo == hi {
                    *lo
                } else {
                    rng.gen_range(*lo..=*hi)
                }
            }
        };
        debug_assert!(
            v > 0.0 && v <= d_bound + 1e-12,
            "discovery delay {v} outside (0, {d_bound}]"
        );
        v.clamp(f64::MIN_POSITIVE, d_bound)
    }

    /// Latency of a *scheduled* topology discovery, drawn from a dedicated
    /// stream keyed by `(seed, edge, version, endpoint)`. Topology is
    /// pulled lazily, so this draw must not touch any node's private
    /// stream: its position there would depend on how far the simulation
    /// had progressed when the pull happened, and with it the trace.
    /// A keyed one-shot stream makes the latency a pure function of the
    /// event identity instead.
    pub(crate) fn scheduled_latency(
        &self,
        d_bound: f64,
        seed: u64,
        edge: Edge,
        version: u64,
        endpoint: NodeId,
    ) -> f64 {
        match self {
            DiscoveryDelay::Constant(d) => d.clamp(f64::MIN_POSITIVE, d_bound),
            DiscoveryDelay::Uniform { .. } => {
                let mut rng =
                    StdRng::seed_from_u64(discovery_stream_seed(seed, edge, version, endpoint));
                self.sample(d_bound, &mut rng)
            }
        }
    }
}

/// Domain-separation salt for restart-rediscovery latency streams: a
/// rebooted node re-learns a live edge under the edge's last applied add
/// version, and the latency draw must not collide with the draw the
/// original discovery of that `(edge, version, endpoint)` already made.
const RESTART_DISCOVERY_SALT: u64 = 0x94D0_49BB_1331_11EB;

/// Decorrelated one-shot stream seed for scheduled-discovery latencies.
fn discovery_stream_seed(seed: u64, edge: Edge, version: u64, endpoint: NodeId) -> u64 {
    seed ^ 0xBB67_AE85_84CA_A73B
        ^ (edge.lo().index() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (edge.hi().index() as u64 + 1).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ version.wrapping_mul(0xD6E8_FEB8_6659_FD93)
        ^ (endpoint.index() as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F)
}

/// A pulled topology event parked in the staging buffer: the compact
/// form the horizon-gated admission path holds instead of the three
/// materialized wheel events (change + two discovers). `seq` is the
/// first of the trio's three *reserved* wheel sequence numbers, claimed
/// at pull time so the eventual pop order is fixed by the pull order —
/// exactly as if the trio had been pushed eagerly — no matter when
/// admission happens. The version is also assigned at pull time (stream
/// order); only the discovery-latency draws (pure functions of
/// `(edge, version, endpoint)`) are deferred to admission.
#[derive(Clone, Copy, Debug)]
struct StagedTopology {
    time: Time,
    seq: u64,
    edge: Edge,
    version: u64,
    kind: LinkChangeKind,
}

/// A pulled fault event parked in the staging buffer, with its one
/// reserved wheel sequence number (see [`StagedTopology`]).
#[derive(Clone, Copy, Debug)]
struct StagedFault {
    time: Time,
    seq: u64,
    kind: FaultKind,
}

/// How the builder was told to generate hardware clocks; resolved into
/// one [`DriftSource`] plane at build time.
enum DriftSpec {
    /// Perfect clocks (the default).
    Perfect,
    /// Explicit per-node clocks, served through the eager
    /// [`ScheduleDrift`] adapter.
    Clocks(Vec<HardwareClock>),
    /// A [`DriftModel`] evaluated lazily ([`ModelDrift`]), keyed by the
    /// builder's *final* seed.
    Model { model: DriftModel, horizon: f64 },
    /// A caller-supplied plane.
    Source(Box<dyn DriftSource>),
}

/// Builder for [`Simulator`].
///
/// The canonical surface is the **source-plane triple**: every input
/// plane of the model is one pull-based stream —
///
/// * [`topology`](Self::topology) takes the edge stream (any
///   [`TopologySource`]),
/// * [`drift`](Self::drift) takes the clock plane (any [`DriftSource`];
///   [`drift_model`](Self::drift_model) is the seed-deferred sugar for
///   [`DriftModel`]s),
/// * [`faults`](Self::faults) takes the fault plane (any
///   [`FaultSource`]).
///
/// The pre-fault constructors (`new`, `from_source`, `clocks`,
/// `drift_source`) survive as thin deprecated adapters over these forms.
pub struct SimBuilder {
    params: ModelParams,
    source: Box<dyn TopologySource>,
    n: usize,
    drift: DriftSpec,
    faults: Option<Box<dyn FaultSource>>,
    delay: DelayStrategy,
    discovery: DiscoveryDelay,
    seed: u64,
    threads: Option<usize>,
    par_threshold: Option<usize>,
    persistent_pool: bool,
    record_history: bool,
}

impl SimBuilder {
    /// Starts a builder over an eagerly materialized schedule.
    #[deprecated(note = "use SimBuilder::topology(params, ScheduleSource::new(schedule))")]
    pub fn new(params: ModelParams, schedule: TopologySchedule) -> Self {
        Self::topology(params, ScheduleSource::new(schedule))
    }

    /// Starts a builder over a topology stream — the canonical
    /// constructor. Eager [`TopologySchedule`]s adapt through
    /// [`ScheduleSource`]; lazy sources keep peak memory independent of
    /// the total churn-event count. Defaults: perfect clocks, no faults,
    /// maximum delays, worst-case (`= D`) discovery latency, seed 0,
    /// worker count from [`THREADS_ENV`] (1 when unset), presence
    /// history off.
    pub fn topology(params: ModelParams, source: impl TopologySource + 'static) -> Self {
        let n = source.n();
        SimBuilder {
            discovery: DiscoveryDelay::Constant(params.d),
            params,
            source: Box::new(source),
            n,
            drift: DriftSpec::Perfect,
            faults: None,
            delay: DelayStrategy::Max,
            seed: 0,
            threads: None,
            par_threshold: None,
            persistent_pool: true,
            record_history: false,
        }
    }

    /// Starts a builder over any lazily generated topology stream.
    #[deprecated(note = "renamed to SimBuilder::topology")]
    pub fn from_source(params: ModelParams, source: impl TopologySource + 'static) -> Self {
        Self::topology(params, source)
    }

    /// Uses explicit per-node hardware clocks.
    #[deprecated(note = "use .drift(ScheduleDrift::new(clocks))")]
    pub fn clocks(mut self, clocks: Vec<HardwareClock>) -> Self {
        assert_eq!(
            clocks.len(),
            self.n,
            "need one clock per node ({} != {})",
            clocks.len(),
            self.n
        );
        self.drift = DriftSpec::Clocks(clocks);
        self
    }

    /// Uses a caller-supplied drift plane (any [`DriftSource`]) — the
    /// canonical clock input, mirroring [`topology`](Self::topology).
    /// Eager per-node [`HardwareClock`]s adapt through [`ScheduleDrift`];
    /// [`DriftModel`]s through [`drift_model`](Self::drift_model) (which
    /// defers seeding to build time — prefer it for models).
    pub fn drift(mut self, source: impl DriftSource + 'static) -> Self {
        self.drift = DriftSpec::Source(Box::new(source));
        self
    }

    /// Generates clocks from a drift model with rate changes confined to
    /// `[0, horizon]` (queries beyond continue the final rate — the
    /// deterministic-extension contract of [`DriftModel::build`]).
    ///
    /// The model is evaluated **lazily**: nothing is materialized per
    /// node; each node's rates are generated on demand from its own
    /// keyed stream (a pure function of the builder's *final* seed and
    /// the node index, resolved at [`build_with`](Self::build_with) —
    /// `.drift_model(..).seed(s)` and `.seed(s).drift_model(..)` are
    /// equivalent). Drift streams are domain-separated from
    /// delay/discovery streams. This is the sugar form of
    /// [`drift`](Self::drift) for models; it exists because a
    /// [`ModelDrift`] built *here* would have to commit to a seed before
    /// [`seed`](Self::seed) runs.
    pub fn drift_model(mut self, model: DriftModel, horizon: f64) -> Self {
        self.drift = DriftSpec::Model { model, horizon };
        self
    }

    /// Uses a caller-supplied drift plane.
    #[deprecated(note = "renamed to SimBuilder::drift")]
    pub fn drift_source(mut self, source: impl DriftSource + 'static) -> Self {
        self.drift = DriftSpec::Source(Box::new(source));
        self
    }

    /// Attaches a fault plane (any [`FaultSource`]): crash/restart,
    /// message-loss and delay-spike windows, and drift excursions, pulled
    /// lazily and applied as serial barriers in `(time, class, seq)`
    /// order — see [`crate::fault`]. Without this call the engine skips
    /// every fault check (clean runs pay nothing).
    pub fn faults(mut self, source: impl FaultSource + 'static) -> Self {
        self.faults = Some(Box::new(source));
        self
    }

    /// Records full per-edge presence history on the live
    /// [`DynamicGraph`] (off by default: history costs `O(total events)`
    /// memory over a run, which is exactly the term the streaming
    /// pipeline removes).
    pub fn record_history(mut self, record: bool) -> Self {
        self.record_history = record;
        self
    }

    /// Sets the delay adversary.
    pub fn delay(mut self, delay: DelayStrategy) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the discovery-latency model.
    pub fn discovery(mut self, discovery: DiscoveryDelay) -> Self {
        self.discovery = discovery;
        self
    }

    /// Seeds all randomness (per-node streams, discovery jitter, drift
    /// generation).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of worker shards for parallel dispatch (≥ 1). The trace is
    /// bit-identical for every value; only wall-clock time changes.
    /// Overrides [`THREADS_ENV`].
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker");
        self.threads = Some(threads.min(MAX_THREADS));
        self
    }

    /// Minimum events in a segment or topology batch before it is handed
    /// to the parallel backend (≥ 1); narrower ones run inline.
    /// Overrides [`PAR_MIN_ENV`]; defaults to 64. Scheduling only — the
    /// trace is bit-identical for every value (pinned by the boundary
    /// proptest in `crates/sim/tests/pool.rs`). The effective value is
    /// recorded in [`SimStats::par_min_events`].
    pub fn par_threshold(mut self, events: usize) -> Self {
        assert!(events >= 1, "threshold of 0 would parallelize empty work");
        self.par_threshold = Some(events);
        self
    }

    /// Chooses the wide-segment dispatch backend: the persistent
    /// shard-pinned worker pool (default, `true`) or the pre-pool
    /// per-segment `std::thread::scope` fork/join (`false`), kept
    /// selectable so benches and tests can A/B the two. Traces are
    /// bit-identical either way; with fork/join, topology batches apply
    /// serially.
    pub fn persistent_pool(mut self, on: bool) -> Self {
        self.persistent_pool = on;
        self
    }

    /// Finalizes the simulator; `make_node(i)` constructs the automaton for
    /// node `i`. `on_start` handlers run immediately, followed by the
    /// discovery of the initial edge set at time 0. Scheduled topology is
    /// **not** pre-loaded — it streams from the source as the simulation
    /// advances.
    pub fn build_with<A: Automaton>(mut self, make_node: impl FnMut(usize) -> A) -> Simulator<A> {
        let n = self.n;
        let workers = self.threads.unwrap_or_else(threads_from_env).max(1);
        let shard_count = workers.min(n.max(1));
        let par_min = self
            .par_threshold
            .or_else(par_min_from_env)
            .unwrap_or(PAR_MIN_EVENTS)
            .max(1);
        // Resolve the drift spec into the one plane every evaluation goes
        // through. The model plane's stream seed keeps the historical
        // `seed ^ GOLDEN` domain separation from node streams.
        let drift: Box<dyn DriftSource> = match self.drift {
            DriftSpec::Perfect => Box::new(ModelDrift::new(
                DriftModel::Perfect,
                self.params.rho,
                1.0,
                self.seed,
            )),
            DriftSpec::Clocks(clocks) => Box::new(ScheduleDrift::new(clocks)),
            DriftSpec::Model { model, horizon } => Box::new(ModelDrift::new(
                model,
                self.params.rho,
                horizon,
                self.seed ^ 0x9e37_79b9_7f4a_7c15,
            )),
            DriftSpec::Source(source) => source,
        };
        let nodes: Vec<A> = (0..n).map(make_node).collect();
        let shards = Shards::build(shard_count, nodes);
        // Canonical edge state: initial edges now, churned edges as their
        // first event is pulled (content is shard-count independent).
        let mut edges = EdgeStore::new(n, shard_count);

        // Bucket width tied to the delay bound: most deliveries span a
        // handful of buckets, timers a few more.
        let mut queue = TimeWheel::new(self.params.t / 4.0);
        let mut graph = DynamicGraph::empty(n);
        graph.set_retain_history(self.record_history);

        // Initial edges exist (and are discovered) at time 0.
        let initial = self.source.initial_edges();
        debug_assert!(
            initial.windows(2).all(|w| w[0] < w[1]),
            "source initial edges must be sorted and distinct"
        );
        for &e in &initial {
            graph.add_edge(e, Time::ZERO);
            edges.insert_initial(e);
            for w in [e.lo(), e.hi()] {
                queue.push(
                    Time::ZERO,
                    EventPayload::Discover {
                        node: w,
                        change: LinkChange {
                            kind: LinkChangeKind::Added,
                            edge: e,
                        },
                        version: 1,
                    },
                );
            }
        }

        let mut sim = Simulator {
            params: self.params,
            drift,
            graph,
            queue,
            shards,
            edges,
            source: self.source,
            fault_source: self.faults,
            faults: FaultState::default(),
            delay: self.delay,
            discovery: self.discovery,
            seed: self.seed,
            now: Time::ZERO,
            stats: SimStats::default(),
            topo_backlog: 0,
            fault_backlog: 0,
            topo_staged: VecDeque::new(),
            fault_staged: VecDeque::new(),
            fault_pull_buf: Vec::new(),
            // Pull lookahead: one delay bound of simulated time per pull.
            // Messages in flight span up to T, so the wheel is touched a
            // handful of times per T anyway — pumping once per T adds no
            // measurable overhead, and the topology backlog is bounded by
            // the events falling inside one T-window (independent of the
            // horizon and of the total event count, though it still
            // scales with the churn *rate* within the window).
            pull_chunk: self.params.t,
            pull_buf: Vec::new(),
            workers,
            os_workers: shard_count.min(
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
                    .max(2),
            ),
            observing: false,
            n,
            round_buf: Vec::new(),
            effects_buf: Vec::new(),
            touched_buf: Vec::new(),
            pool: None,
            pool_spawns: 0,
            use_pool: self.persistent_pool,
            par_min,
            topology_apply: std::time::Duration::ZERO,
        };
        sim.stats.par_min_events = par_min as u64;
        // `on_start` before any event (matching "at the beginning of the
        // execution"), one node at a time in id order so emitted events are
        // enqueued exactly as the per-event engine enqueued them.
        for i in 0..n {
            sim.dispatch_start(NodeId::from_index(i));
            sim.merge_effects();
        }
        sim
    }
}

/// Heap-byte census of the engine's memory planes, one meter per plane:
///
/// * `topology` — canonical edge state plus the live dynamic graph,
/// * `drift` — hardware memo columns and materialized drift cursors,
/// * `automaton_hot` — automaton structs and their heap state, plus the
///   engine-side per-node columns (timers, peers, RNG streams),
/// * `automaton_cold` — packed blobs of evicted quiescent nodes,
/// * `wheel` — the pending-event calendar queue (packed records plus the
///   payload arena),
/// * `staging` — pulled-but-not-yet-due topology/fault events held in
///   compact staged form by the horizon-gated admission path.
///
/// Capacities (not lengths) are counted where observable; B-tree node
/// overhead is approximated by entry payloads. The census is exact enough
/// to attribute peak memory to a plane, not an allocator-level audit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlaneBytes {
    /// Canonical edge state plus live dynamic-graph adjacency.
    pub topology: usize,
    /// Hardware memo columns plus materialized drift cursors.
    pub drift: usize,
    /// Hot automaton structs/heap plus engine-side node columns.
    pub automaton_hot: usize,
    /// Packed cold-tier blobs.
    pub automaton_cold: usize,
    /// Pending-event calendar queue (packed records + payload arena).
    pub wheel: usize,
    /// Compact staged topology/fault events awaiting admission.
    pub staging: usize,
    /// Dispatch scratch reused across segments and batches: the round /
    /// effect-merge / touched / pull buffers, the per-shard event,
    /// effect, action and touched buffers, and the per-shard topology
    /// batch buffers. Steady-state capacity, not per-segment churn —
    /// these buffers are allocated once and recycled.
    pub dispatch_scratch: usize,
}

impl PlaneBytes {
    /// Sum over all planes.
    pub fn total(&self) -> usize {
        self.topology
            + self.drift
            + self.automaton_hot
            + self.automaton_cold
            + self.wheel
            + self.staging
            + self.dispatch_scratch
    }
}

/// The simulation engine; see the module docs for semantics.
pub struct Simulator<A: Automaton> {
    params: ModelParams,
    /// The drift plane: rates are evaluated on demand (per-node cursors
    /// live in the owning shard; stateless adapters keep none).
    drift: Box<dyn DriftSource>,
    graph: DynamicGraph,
    queue: TimeWheel,
    /// Automata plus node-local engine state, sharded by owner.
    shards: Shards<A>,
    /// Canonical per-edge state (liveness, epochs, change/removal
    /// versions), written only between segments.
    edges: EdgeStore,
    /// The topology stream; pulled incrementally by `pump_topology`.
    source: Box<dyn TopologySource>,
    /// The fault stream, if any; pulled incrementally by `pump_faults`.
    fault_source: Option<Box<dyn FaultSource>>,
    /// Accumulated fault state, written only at fault barriers.
    faults: FaultState,
    delay: DelayStrategy,
    discovery: DiscoveryDelay,
    /// Simulation seed (scheduled-discovery latency streams key off it).
    seed: u64,
    now: Time,
    stats: SimStats,
    /// Topology events pulled but not yet applied.
    topo_backlog: u64,
    /// Fault events pulled but not yet applied.
    fault_backlog: u64,
    /// Pulled topology events awaiting admission into the wheel, in pull
    /// (= nondecreasing time) order — the compact backlog of the
    /// horizon-gated admission path.
    topo_staged: VecDeque<StagedTopology>,
    /// Pulled fault events awaiting admission, in pull order.
    fault_staged: VecDeque<StagedFault>,
    /// Scratch buffer for fault pulls.
    fault_pull_buf: Vec<FaultEvent>,
    /// Lookahead window (seconds) pulled beyond the next due event.
    pull_chunk: f64,
    /// Scratch buffer for pulls.
    pull_buf: Vec<TopologyEvent>,
    /// Configured worker count (shard count is `min(workers, n)`).
    workers: usize,
    /// OS threads actually spawned per wide segment:
    /// `min(shard count, max(2, host parallelism))`. Caps oversubscription
    /// when the host has fewer cores than configured shards; floored at 2
    /// so the concurrent dispatch path runs on every host. Scheduling
    /// only — traces never depend on it.
    os_workers: usize,
    /// Whether the current drain collects touched nodes for an observer.
    observing: bool,
    n: usize,
    round_buf: Vec<QueuedEvent>,
    effects_buf: Vec<Effect>,
    touched_buf: Vec<NodeId>,
    /// The persistent shard-pinned worker pool; spawned lazily at the
    /// first wide segment (or wide topology batch), `None` until then
    /// and forever on runs that never go wide. Sized `os_workers`.
    pool: Option<WorkerPool>,
    /// Times the pool has been (re-)spawned — 1 for the life of a
    /// simulator unless it never went wide (test observability).
    pool_spawns: u64,
    /// Dispatch backend toggle: persistent pool (default) vs per-segment
    /// scoped fork/join (see [`SimBuilder::persistent_pool`]).
    use_pool: bool,
    /// Effective parallel threshold (events) for segments and topology
    /// batches; see [`SimBuilder::par_threshold`].
    par_min: usize,
    /// Wall-clock time spent applying topology batches (graph mirror +
    /// canonical edge state). Host-dependent by nature, so it lives here
    /// rather than in [`SimStats`], whose counters must compare equal
    /// across thread counts.
    topology_apply: std::time::Duration,
}

impl<A: Automaton> Simulator<A> {
    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current simulation time (last processed event, or the target of the
    /// last `run_until`).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Model parameters.
    pub fn params(&self) -> ModelParams {
        self.params
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.workers
    }

    /// Execution counters.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The live graph state.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Immutable access to a node's automaton.
    pub fn node(&self, u: NodeId) -> &A {
        self.shards.node(u)
    }

    /// Hardware clock reading of `u` at the current time.
    ///
    /// Answered without mutating anything: the memoized per-instant
    /// reading when current, else the node's cursor (its segment when the
    /// query falls inside it, a cloned probe when it falls ahead), else a
    /// cold walk from time 0. All paths produce the identical bits the
    /// hot path would. Observed readings include any drift-excursion warp
    /// from the fault plane (exactly `0.0` when none applies).
    pub fn hardware(&self, u: NodeId) -> f64 {
        let base = self.hardware_base(u);
        let warp = self.faults.hw_warp(u, self.now);
        if warp != 0.0 {
            base + warp
        } else {
            base
        }
    }

    /// The un-warped (base-plane) reading — what the drift plane alone
    /// says. Memoized values are kept on this plane; warp is re-applied
    /// per observation (see `dispatch::run_handler`).
    fn hardware_base(&self, u: NodeId) -> f64 {
        let now = self.now;
        if now == Time::ZERO {
            return 0.0;
        }
        if self.drift.stateless() {
            return self.drift.read_at(u.index(), now);
        }
        let table = &self.shards.shards[self.shards.shard_of(u)].table;
        let local = u.index() / self.shards.count();
        if local < table.watermark() {
            if table.hw_time[local] == now {
                return table.hw[local];
            }
            if let Some(cursor) = &table.drift[local] {
                if now >= cursor.seg_start() {
                    if cursor.seg_end().is_none_or(|end| now < end) {
                        return cursor.eval(now);
                    }
                    let mut probe = (**cursor).clone();
                    return self.drift.read(u.index(), &mut probe, now);
                }
            }
        }
        self.drift.read_at(u.index(), now)
    }

    /// The drift plane hardware rates are evaluated through.
    pub fn drift_plane(&self) -> &dyn DriftSource {
        &*self.drift
    }

    /// Drift cursors currently materialized — the drift plane's entire
    /// per-node memory footprint. Zero for untouched nodes and for
    /// stateless (eagerly materialized) planes; identical across thread
    /// counts, like everything else derived from the trace.
    pub fn drift_cursors(&self) -> usize {
        self.shards
            .shards
            .iter()
            .map(|s| s.table.drift_cursors())
            .sum()
    }

    /// Node-local state slots materialized across all shards (the sum of
    /// the per-shard touched watermarks).
    pub fn node_state_watermark(&self) -> usize {
        self.shards.shards.iter().map(|s| s.table.watermark()).sum()
    }

    /// Lazy per-node RNG streams materialized across all shards — zero
    /// for runs whose delay/discovery strategies and automata never draw.
    pub fn rng_streams(&self) -> usize {
        self.shards
            .shards
            .iter()
            .map(|s| s.table.rng_streams())
            .sum()
    }

    /// Nodes currently packed into the cold tier across all shards.
    pub fn cold_nodes(&self) -> usize {
        self.shards
            .shards
            .iter()
            .map(|s| s.table.cold_nodes())
            .sum()
    }

    /// Packed bytes currently held by the cold tier.
    pub fn cold_bytes(&self) -> usize {
        self.shards
            .shards
            .iter()
            .map(|s| s.table.cold_bytes())
            .sum()
    }

    /// Evictions performed so far. Kept off [`SimStats`] deliberately:
    /// eviction is a memory policy, not protocol behavior, so `stats()`
    /// must compare equal between eviction-on and eviction-off runs.
    pub fn evictions(&self) -> u64 {
        self.shards.shards.iter().map(|s| s.table.evictions).sum()
    }

    /// Rehydrations performed so far (see [`Self::evictions`]).
    pub fn rehydrations(&self) -> u64 {
        self.shards
            .shards
            .iter()
            .map(|s| s.table.rehydrations)
            .sum()
    }

    /// Sweeps every touched node and evicts the quiescent ones into the
    /// packed cold tier; returns how many moved. A serial barrier, and
    /// every per-node predicate (`NodeTable::pack_node`) reads only
    /// node-local state — so which nodes evict is a function of the
    /// trace alone, identical across thread counts.
    ///
    /// Callers choose the cadence (e.g. between scenario phases); the
    /// engine never evicts on its own.
    pub fn evict_quiescent(&mut self) -> usize {
        let mut evicted = 0;
        for shard in &mut self.shards.shards {
            for local in 0..shard.table.watermark() {
                if shard.table.pack_node(local, &mut shard.nodes[local]) {
                    evicted += 1;
                }
            }
        }
        evicted
    }

    /// Byte census of the engine's memory planes (see [`PlaneBytes`]).
    pub fn plane_bytes(&self) -> PlaneBytes {
        use std::mem::size_of;
        let mut p = PlaneBytes {
            topology: self.edges.heap_bytes() + self.graph.heap_bytes(),
            wheel: self.queue.heap_bytes(),
            staging: self.topo_staged.capacity() * size_of::<StagedTopology>()
                + self.fault_staged.capacity() * size_of::<StagedFault>(),
            dispatch_scratch: self.round_buf.capacity() * size_of::<QueuedEvent>()
                + self.effects_buf.capacity() * size_of::<Effect>()
                + self.touched_buf.capacity() * size_of::<NodeId>()
                + self.pull_buf.capacity() * size_of::<TopologyEvent>()
                + self.fault_pull_buf.capacity() * size_of::<FaultEvent>()
                + self.edges.scratch_bytes(),
            ..PlaneBytes::default()
        };
        for shard in &self.shards.shards {
            p.drift += shard.table.drift_bytes();
            p.automaton_hot += shard.nodes.capacity() * size_of::<A>()
                + shard.nodes.iter().map(|n| n.heap_bytes()).sum::<usize>()
                + shard.table.engine_hot_bytes();
            p.automaton_cold += shard.table.cold_bytes();
            p.dispatch_scratch += shard.events.capacity() * size_of::<QueuedEvent>()
                + shard.effects.capacity() * size_of::<Effect>()
                + shard.actions.capacity() * size_of::<crate::automaton::Action>()
                + shard.touched.capacity() * size_of::<NodeId>();
        }
        p
    }

    /// Topology/fault events currently parked in the staging buffers —
    /// pulled (with reserved wheel sequence numbers) but not yet due for
    /// admission. A function of the instant sequence, identical across
    /// thread counts; the lifetime peak is
    /// [`SimStats::peak_staged_events`].
    pub fn staged_events(&self) -> usize {
        self.topo_staged.len() + self.fault_staged.len()
    }

    /// Per-lane peak pending-event counts inside the wheel, indexed
    /// `[topology, fault, deliver, alarm, discover]` — the high-water
    /// occupancy of each payload arena lane. Trace-derived, identical
    /// across thread counts.
    pub fn wheel_pending_peaks(&self) -> [usize; 5] {
        self.queue.pending_peaks()
    }

    /// Wall-clock seconds spent applying topology batches so far (graph
    /// mirror plus canonical edge state, whichever backend applied it).
    /// Host- and backend-dependent by nature — this is a performance
    /// meter, not part of the deterministic trace.
    pub fn topology_apply_seconds(&self) -> f64 {
        self.topology_apply.as_secs_f64()
    }

    /// Worker threads currently alive in the persistent pool (0 until
    /// the first wide segment spawns it, and always 0 with the fork/join
    /// backend or `threads == 1`).
    pub fn pool_workers(&self) -> usize {
        self.pool.as_ref().map_or(0, WorkerPool::size)
    }

    /// Times the pool has been spawned — stays at 1 across any number of
    /// `run_until` calls, which is exactly what the pool-reuse test pins.
    pub fn pool_spawns(&self) -> u64 {
        self.pool_spawns
    }

    /// Jobs submitted to the pool over its lifetime (0 without a pool).
    pub fn pool_jobs(&self) -> u64 {
        self.pool.as_ref().map_or(0, WorkerPool::jobs_run)
    }

    /// Logical clock `L_u` at the current time.
    pub fn logical(&self, u: NodeId) -> f64 {
        self.node(u).logical_clock(self.hardware(u))
    }

    /// Max estimate `Lmax_u` at the current time.
    pub fn max_estimate_of(&self, u: NodeId) -> f64 {
        self.node(u).max_estimate(self.hardware(u))
    }

    /// All logical clocks at the current time.
    pub fn logical_snapshot(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n());
        self.logical_snapshot_into(&mut out);
        out
    }

    /// Writes all logical clocks at the current time into `out`
    /// (cleared first) — the allocation-free variant for fixed-cadence
    /// sampling loops, which would otherwise allocate one `Vec<f64>` per
    /// sample (see `gcs_analysis`'s recorder and metrics).
    pub fn logical_snapshot_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.n()).map(|i| self.logical(NodeId::from_index(i))));
    }

    /// Runs until all events at time `≤ until` are processed, then advances
    /// the clock to `until` so state queries observe that instant.
    pub fn run_until(&mut self, until: Time) {
        self.observing = false;
        self.drain(until, |_, _, _| {});
    }

    /// Like [`run_until`](Self::run_until), but invokes `observe` after
    /// every processed instant with the simulator (in a consistent state),
    /// the instant's time, and the ascending, deduplicated list of nodes
    /// whose handlers ran at that instant.
    ///
    /// This is the engine half of the streaming observability API: an
    /// observer can maintain incremental metrics (per-edge skew, counters,
    /// CSV rows) without ever taking `O(n + m)` snapshots — see
    /// `gcs_analysis::probe`.
    pub fn run_until_with(&mut self, until: Time, mut observe: impl FnMut(&Self, Time, &[NodeId])) {
        self.observing = true;
        self.drain(until, &mut observe);
        self.observing = false;
    }

    /// The time of the earliest pending event anywhere: the wheel's next
    /// pop merged with the fronts of both staging buffers (staged
    /// buffers are FIFO in nondecreasing time, so their fronts are their
    /// minima; a staged topology event's materialized trio would pop at
    /// its own instant — the discovery latencies are strictly positive).
    /// This is exactly the set of events the pre-staging engine kept in
    /// the wheel, so pull decisions keyed on it are unchanged.
    fn effective_next(&mut self) -> Option<Time> {
        let mut next = self.queue.peek_time();
        let staged = [
            self.topo_staged.front().map(|s| s.time),
            self.fault_staged.front().map(|s| s.time),
        ];
        for t in staged.into_iter().flatten() {
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        next
    }

    /// Streams due topology into the staging buffer: while the source's
    /// next event is at or before the next pending event anywhere (or
    /// nothing is pending), pull everything up to that time plus the
    /// lookahead window and stage it. Pull decisions depend only on the
    /// merged pending state at instant boundaries — never on the
    /// `run_until` target or the thread count — so traces are invariant
    /// under both.
    fn pump_topology(&mut self) {
        loop {
            let Some(ts) = self.source.peek_time() else {
                return;
            };
            if let Some(next) = self.effective_next() {
                if ts > next {
                    return;
                }
            }
            let mut buf = std::mem::take(&mut self.pull_buf);
            buf.clear();
            self.source
                .pull_until(ts + Duration::new(self.pull_chunk), &mut buf);
            debug_assert!(!buf.is_empty(), "peek_time promised an event at {ts:?}");
            for ev in &buf {
                self.stage_topology(*ev);
            }
            self.pull_buf = buf;
        }
    }

    /// Streams due faults into the staging buffer, mirroring
    /// [`pump_topology`](Self::pump_topology): the fault plane is the
    /// third input stream and obeys the identical pull discipline, so
    /// fault pull timing is a function of the instant sequence alone.
    /// Pumped *after* topology each round — each pump's exit guarantee
    /// ("my stream's next event is later than the next pending pop") is
    /// preserved by the other's staging, which only moves the merged
    /// front earlier, never later than either exit threshold.
    fn pump_faults(&mut self) {
        if self.fault_source.is_none() {
            return;
        }
        loop {
            let Some(ts) = self.fault_source.as_mut().and_then(|s| s.peek_time()) else {
                return;
            };
            if let Some(next) = self.effective_next() {
                if ts > next {
                    return;
                }
            }
            let mut buf = std::mem::take(&mut self.fault_pull_buf);
            buf.clear();
            self.fault_source
                .as_mut()
                .expect("checked above")
                .pull_until(ts + Duration::new(self.pull_chunk), &mut buf);
            debug_assert!(!buf.is_empty(), "peek_time promised a fault at {ts:?}");
            for ev in &buf {
                debug_assert!(ev.time > Time::ZERO, "fault events occur after time 0");
                debug_assert!(
                    self.fault_staged.back().is_none_or(|s| s.time <= ev.time),
                    "fault source must emit nondecreasing times"
                );
                let seq = self.queue.reserve_seqs(1);
                self.fault_staged.push_back(StagedFault {
                    time: ev.time,
                    seq,
                    kind: ev.kind,
                });
                self.stats.faults_pulled += 1;
                self.fault_backlog += 1;
            }
            self.fault_pull_buf = buf;
            self.note_staged_peak();
        }
    }

    /// Assigns a pulled event its per-edge version, reserves the wheel
    /// sequence numbers of its three-event trio (change + two endpoint
    /// discoveries — in that order, matching what an eager push would
    /// have assigned), and parks it in the staging buffer.
    fn stage_topology(&mut self, ev: TopologyEvent) {
        debug_assert!(ev.time > Time::ZERO, "topology events occur after time 0");
        debug_assert!(
            self.topo_staged.back().is_none_or(|s| s.time <= ev.time),
            "topology source must emit nondecreasing times"
        );
        let version = self.edges.next_version(ev.edge);
        let kind = match ev.kind {
            TopologyEventKind::Add => LinkChangeKind::Added,
            TopologyEventKind::Remove => LinkChangeKind::Removed,
        };
        let seq = self.queue.reserve_seqs(3);
        self.topo_staged.push_back(StagedTopology {
            time: ev.time,
            seq,
            edge: ev.edge,
            version,
            kind,
        });
        self.stats.topology_pulled += 1;
        self.topo_backlog += 1;
        self.stats.peak_topology_backlog = self.stats.peak_topology_backlog.max(self.topo_backlog);
        self.note_staged_peak();
    }

    #[inline]
    fn note_staged_peak(&mut self) {
        let staged = (self.topo_staged.len() + self.fault_staged.len()) as u64;
        self.stats.peak_staged_events = self.stats.peak_staged_events.max(staged);
    }

    /// Admits every staged event that is due: while a staging front's
    /// time is at or before the wheel's next event (or the wheel is
    /// empty), convert it into its wheel events under its reserved
    /// sequence numbers. Runs after the pumps at every instant boundary,
    /// so by the time an instant pops, everything belonging to it is in
    /// the wheel: a staged event still parked afterwards is strictly
    /// later than the wheel's next pop, and its discoveries (which fire
    /// even later) cannot belong to the popping instant either. Pop
    /// order is then fixed by the reserved `(time, class, seq)` keys
    /// alone — bit-identical to the eager-push engine.
    fn admit_due(&mut self) {
        loop {
            let wheel_next = self.queue.peek_time();
            let due = |t: Time| wheel_next.is_none_or(|w| t <= w);
            if let Some(s) = self.topo_staged.front() {
                if due(s.time) {
                    let s = self.topo_staged.pop_front().expect("front peeked");
                    self.admit_topology(s);
                    continue;
                }
            }
            if let Some(s) = self.fault_staged.front() {
                if due(s.time) {
                    let s = self.fault_staged.pop_front().expect("front peeked");
                    self.queue
                        .push_reserved(s.time, s.seq, EventPayload::Fault { kind: s.kind });
                    continue;
                }
            }
            return;
        }
    }

    /// Materializes one staged topology event into the wheel: the change
    /// plus its two endpoint discoveries, under the trio's reserved
    /// sequence numbers. Discovery latencies are drawn here — they are
    /// pure functions of `(seed, edge, version, endpoint)`, so drawing
    /// at admission instead of pull time changes nothing.
    fn admit_topology(&mut self, s: StagedTopology) {
        self.queue.push_reserved(
            s.time,
            s.seq,
            EventPayload::Topology {
                kind: s.kind,
                edge: s.edge,
                version: s.version,
            },
        );
        for (i, w) in [s.edge.lo(), s.edge.hi()].into_iter().enumerate() {
            let lat =
                self.discovery
                    .scheduled_latency(self.params.d, self.seed, s.edge, s.version, w);
            self.queue.push_reserved(
                s.time + Duration::new(lat),
                s.seq + 1 + i as u64,
                EventPayload::Discover {
                    node: w,
                    change: LinkChange {
                        kind: s.kind,
                        edge: s.edge,
                    },
                    version: s.version,
                },
            );
        }
    }

    fn drain(&mut self, until: Time, mut observe: impl FnMut(&Self, Time, &[NodeId])) {
        assert!(until >= self.now, "cannot run backwards");
        let mut round = std::mem::take(&mut self.round_buf);
        loop {
            self.pump_topology();
            self.pump_faults();
            // After admission, every staged event is strictly later than
            // the wheel's next pop, so the wheel front *is* the global
            // front.
            self.admit_due();
            match self.queue.peek_time() {
                Some(t) if t <= until => {}
                _ => break,
            }
            round.clear();
            let t = self
                .queue
                .pop_instant(&mut round)
                .expect("peek said non-empty");
            self.now = t;
            self.stats.events_processed += round.len() as u64;
            self.run_round(&round);
            if self.observing {
                let mut touched = std::mem::take(&mut self.touched_buf);
                for shard in &mut self.shards.shards {
                    touched.append(&mut shard.touched);
                }
                touched.sort_unstable();
                touched.dedup();
                observe(self, t, &touched);
                touched.clear();
                self.touched_buf = touched;
            }
        }
        self.round_buf = round;
        self.now = until;
    }

    /// Processes the single earliest event. Returns false if none pending.
    ///
    /// Stepping and [`run_until`](Self::run_until) produce bit-identical
    /// traces: both go through the same dispatch core and the same
    /// canonical effect ordering.
    pub fn step(&mut self) -> bool {
        self.pump_topology();
        self.pump_faults();
        self.admit_due();
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event queue went backwards");
        self.now = ev.time;
        self.stats.events_processed += 1;
        match ev.payload {
            EventPayload::Topology { .. } => {
                // A single-event batch: same mutations, same counters per
                // event; only the batch granularity differs from a
                // `run_until` drain of the same trace.
                self.apply_topology_batch(std::slice::from_ref(&ev));
            }
            EventPayload::Fault { kind } => self.apply_fault(kind, ev.seq),
            _ => {
                let owner = DispatchCtx::owner(&ev.payload);
                let (ctx, shards) = self.split_dispatch();
                let shard_idx = shards.shard_of(owner);
                dispatch::run_event(&ctx, &mut shards.shards[shard_idx], owner, &ev);
                self.merge_effects();
            }
        }
        true
    }

    /// One instant: apply its topology prefix as one batch, then split
    /// the rest into segments at fault barriers, dispatch each segment
    /// sharded by owner, and merge effects canonically after each. Class
    /// ranks order each instant as topology changes, then faults, then
    /// protocol events — so the whole instant's changes form a
    /// contiguous prefix (one batch, one barrier), a fault observes the
    /// topology of its instant, and protocol events observe the faults.
    fn run_round(&mut self, round: &[QueuedEvent]) {
        let topo = crate::wheel::topology_prefix_len(round);
        if topo > 0 {
            self.apply_topology_batch(&round[..topo]);
        }
        let mut i = topo;
        while i < round.len() {
            if let EventPayload::Fault { kind } = round[i].payload {
                self.apply_fault(kind, round[i].seq);
                i += 1;
                continue;
            }
            let end = i + round[i..]
                .iter()
                .position(|ev| matches!(ev.payload, EventPayload::Fault { .. }))
                .unwrap_or(round.len() - i);
            self.run_segment(&round[i..end]);
            i = end;
        }
    }

    /// Dispatches one topology-free segment and merges its effects.
    ///
    /// Wide segments (≥ `par_min` events, more than one shard) go to the
    /// parallel backend: by default the persistent pool — shard chunk
    /// `w` always runs on pool worker `w`, so the shard → worker pinning
    /// is fixed for the simulator's lifetime — or, when configured, the
    /// legacy per-segment `std::thread::scope` fork/join. Both backends
    /// run the same dispatch body over the same disjoint `&mut` shard
    /// partition and merge effects in the same canonical order, so the
    /// choice (like the threshold) is scheduling only.
    fn run_segment(&mut self, seg: &[QueuedEvent]) {
        let shard_count = self.shards.count();
        let parallel = shard_count > 1 && seg.len() >= self.par_min;
        if !parallel {
            self.stats.segments_inline += 1;
            let (ctx, shards) = self.split_dispatch();
            for ev in seg {
                let owner = DispatchCtx::owner(&ev.payload);
                let s = shards.shard_of(owner);
                dispatch::run_event(&ctx, &mut shards.shards[s], owner, ev);
            }
            self.merge_effects();
            return;
        }
        self.stats.segments_parallel += 1;
        for ev in seg {
            let owner = DispatchCtx::owner(&ev.payload);
            let s = owner.index() % shard_count;
            self.shards.shards[s].events.push(*ev);
        }
        // One worker can serve several shards: shard count fixes the
        // (trace-relevant) data partition, `os_workers` only caps
        // oversubscription. Contiguous chunking is safe because shards
        // are mutually independent within a segment.
        let os_workers = self.os_workers;
        let per_worker = shard_count.div_ceil(os_workers);
        // Built field-by-field (not via `split_dispatch`) so the borrow
        // of `self.pool` below stays disjoint.
        let ctx = DispatchCtx {
            edges: &self.edges,
            drift: &*self.drift,
            delay: &self.delay,
            discovery: &self.discovery,
            faults: &self.faults,
            params: self.params,
            now: self.now,
            seed: self.seed,
            shard_count,
            observing: self.observing,
        };
        if self.use_pool {
            if self.pool.is_none() {
                self.pool = Some(WorkerPool::spawn(os_workers));
                self.pool_spawns += 1;
            }
            let pool = self.pool.as_mut().expect("spawned above");
            let mut jobs: Vec<(usize, ScopedJob<'_>)> = Vec::with_capacity(os_workers);
            for (w, chunk) in self.shards.shards.chunks_mut(per_worker).enumerate() {
                if chunk.iter().all(|s| s.events.is_empty()) {
                    continue;
                }
                jobs.push((
                    w,
                    Box::new(move || {
                        for shard in chunk.iter_mut() {
                            if !shard.events.is_empty() {
                                dispatch::run_shard(&ctx, shard);
                            }
                        }
                    }),
                ));
            }
            pool.run(jobs);
        } else {
            std::thread::scope(|scope| {
                for chunk in self.shards.shards.chunks_mut(per_worker) {
                    if chunk.iter().all(|s| s.events.is_empty()) {
                        continue;
                    }
                    let ctx = &ctx;
                    scope.spawn(move || {
                        for shard in chunk.iter_mut() {
                            if !shard.events.is_empty() {
                                dispatch::run_shard(ctx, shard);
                            }
                        }
                    });
                }
            });
        }
        self.merge_effects();
    }

    /// Splits the borrow of `self` into the read-only dispatch context and
    /// the mutable shard set (disjoint fields, checked by the compiler).
    fn split_dispatch(&mut self) -> (DispatchCtx<'_>, &mut Shards<A>) {
        let ctx = DispatchCtx {
            edges: &self.edges,
            drift: &*self.drift,
            delay: &self.delay,
            discovery: &self.discovery,
            faults: &self.faults,
            params: self.params,
            now: self.now,
            seed: self.seed,
            shard_count: self.shards.count(),
            observing: self.observing,
        };
        (ctx, &mut self.shards)
    }

    /// Startup dispatch of `on_start` for one node (serial, build time).
    fn dispatch_start(&mut self, u: NodeId) {
        let (ctx, shards) = self.split_dispatch();
        let shard_idx = shards.shard_of(u);
        let local = u.index() / shards.count();
        dispatch::run_handler(&ctx, &mut shards.shards[shard_idx], u, local, 0, |a, c| {
            a.on_start(c)
        });
    }

    /// Collects per-shard effects, sorts them into the canonical
    /// `(trigger seq, emission idx)` order, enqueues them, and folds the
    /// per-shard stats deltas into the global counters.
    fn merge_effects(&mut self) {
        let mut buf = std::mem::take(&mut self.effects_buf);
        buf.clear();
        for shard in &mut self.shards.shards {
            self.stats.absorb(&shard.stats);
            shard.stats = SimStats::default();
            buf.append(&mut shard.effects);
        }
        buf.sort_unstable_by_key(|e| (e.seq, e.k));
        for e in &buf {
            self.queue.push(e.time, e.payload);
        }
        self.effects_buf = buf;
    }

    /// Applies one fault injection as a serial barrier. `seq` is the
    /// fault event's queue sequence number; a restart's `on_start` effects
    /// are tagged with it, keeping the canonical merge order.
    fn apply_fault(&mut self, kind: FaultKind, seq: u64) {
        self.stats.faults_applied += 1;
        self.fault_backlog -= 1;
        let now = self.now;
        // Prune closed windows here — a trace-deterministic point — so
        // the lists workers scan stay short under sustained injection.
        self.faults.prune(now);
        match kind {
            FaultKind::Crash { node } => {
                assert!(node.index() < self.n, "crash of unknown node {node:?}");
                if self.faults.crash(node) {
                    self.stats.crashes += 1;
                    // All armed timers go stale; entries stay so post-
                    // restart arms never alias in-flight generations. A
                    // cold node rehydrates first so the generation bumps
                    // land in the live slots, not a stale blob.
                    let s = self.shards.shard_of(node);
                    let local = node.index() / self.shards.count();
                    let shard = &mut self.shards.shards[s];
                    if local < shard.table.watermark() {
                        shard.table.rehydrate(local, &mut shard.nodes[local]);
                        shard.table.timers[local].cancel_all();
                    }
                }
            }
            FaultKind::Restart { node } => {
                assert!(node.index() < self.n, "restart of unknown node {node:?}");
                self.faults.restart(node);
                self.stats.restarts += 1;
                let shard_count = self.shards.count();
                let s = self.shards.shard_of(node);
                let local = node.index() / shard_count;
                // State loss: the automaton is replaced by a time-0-fresh
                // instance. Engine-side protocol state (timers, discovery
                // watermarks) resets with it; the hardware clock, drift
                // cursor, RNG stream and FIFO horizons survive — they
                // model the oscillator, the environment's randomness and
                // the link discipline, not protocol state.
                // A cold node rehydrates before the reboot so its timer
                // generations are restored ahead of the `cancel_all`
                // bumps and `on_start`'s fresh arm (a first arm against
                // drained slots would restart at generation 1 and alias
                // any stale in-flight alarm), and so no stale blob
                // lingers next to the fresh automaton.
                {
                    let shard = &mut self.shards.shards[s];
                    if local < shard.table.watermark() {
                        shard.table.rehydrate(local, &mut shard.nodes[local]);
                    }
                }
                let fresh = self.shards.shards[s].nodes[local].reboot();
                self.shards.shards[s].nodes[local] = fresh;
                let table = &mut self.shards.shards[s].table;
                if local < table.watermark() {
                    table.timers[local].cancel_all();
                    for p in table.peers[local].iter_mut() {
                        p.discovered_version = 0;
                    }
                }
                // `on_start` runs at the restart instant, its effects
                // merged under the fault's sequence number.
                let (ctx, shards) = self.split_dispatch();
                dispatch::run_handler(&ctx, &mut shards.shards[s], node, local, seq, |a, c| {
                    a.on_start(c)
                });
                self.merge_effects();
                // The rebooted node rediscovers its currently-live edges
                // within D, under each edge's last *applied* add version
                // (stale-suppression then still admits any newer change).
                let mut neighbors: Vec<NodeId> = self.graph.neighbors(node).collect();
                neighbors.sort_unstable();
                for v in neighbors {
                    let edge = Edge::new(node, v);
                    let version = self
                        .edges
                        .find(edge)
                        .map(|e| e.last_add_version)
                        .unwrap_or(1);
                    let lat = self.discovery.scheduled_latency(
                        self.params.d,
                        self.seed ^ RESTART_DISCOVERY_SALT,
                        edge,
                        version,
                        node,
                    );
                    self.queue.push(
                        now + Duration::new(lat),
                        EventPayload::Discover {
                            node,
                            change: LinkChange {
                                kind: LinkChangeKind::Added,
                                edge,
                            },
                            version,
                        },
                    );
                }
            }
            FaultKind::DropWindow { edge, duration } => {
                self.faults.open_drop(now, duration, edge);
            }
            FaultKind::DelaySpike { delay, duration } => {
                self.faults.open_delay(now, duration, delay);
            }
            FaultKind::DriftExcursion {
                node,
                rate_delta,
                duration,
            } => {
                assert!(node.index() < self.n, "excursion at unknown node {node:?}");
                self.faults.open_excursion(node, now, duration, rate_delta);
            }
        }
    }

    /// Applies one instant's topology changes as a single batch — one
    /// barrier per instant instead of one per event.
    ///
    /// The live [`DynamicGraph`] mirror touches *both* endpoints'
    /// adjacency per change, so it stays serial, applied in queue-`seq`
    /// order. The canonical [`EdgeStore`] rows shard cleanly by lower
    /// endpoint: wide batches are partitioned per [`crate::shard::EdgeShard`]
    /// and applied on each shard's pinned pool worker, each shard in
    /// `(seq)` order — disjoint rows, so the result is bit-identical to
    /// the serial loop (narrow batches, fork/join mode, and `step`).
    fn apply_topology_batch(&mut self, batch: &[QueuedEvent]) {
        let started = std::time::Instant::now();
        self.stats.topology_events += batch.len() as u64;
        self.stats.topology_batches += 1;
        self.stats.peak_batch_len = self.stats.peak_batch_len.max(batch.len() as u64);
        self.topo_backlog -= batch.len() as u64;
        let now = self.now;
        for ev in batch {
            let EventPayload::Topology { kind, edge, .. } = ev.payload else {
                unreachable!("caller passes the instant's topology prefix only");
            };
            match kind {
                LinkChangeKind::Added => self.graph.add_edge(edge, now),
                LinkChangeKind::Removed => self.graph.remove_edge(edge, now),
            }
        }
        let shard_count = self.edges.shard_count();
        let wide = self.use_pool && shard_count > 1 && batch.len() >= self.par_min;
        if !wide {
            for ev in batch {
                let EventPayload::Topology {
                    kind,
                    edge,
                    version,
                } = ev.payload
                else {
                    unreachable!("checked above");
                };
                self.edges.apply(kind, edge, version);
            }
        } else {
            for ev in batch {
                let EventPayload::Topology {
                    kind,
                    edge,
                    version,
                } = ev.payload
                else {
                    unreachable!("checked above");
                };
                let s = self.edges.shard_of(edge);
                self.edges.shards[s].batch.push((kind, edge, version));
            }
            if self.pool.is_none() {
                self.pool = Some(WorkerPool::spawn(self.os_workers));
                self.pool_spawns += 1;
            }
            let pool = self.pool.as_mut().expect("spawned above");
            // Identical chunking to `run_segment`, so edge shard `s` is
            // applied by the same worker that dispatches node shard `s`.
            let per_worker = shard_count.div_ceil(pool.size());
            let mut jobs: Vec<(usize, ScopedJob<'_>)> = Vec::with_capacity(pool.size());
            for (w, chunk) in self.edges.shards.chunks_mut(per_worker).enumerate() {
                if chunk.iter().all(|s| s.batch.is_empty()) {
                    continue;
                }
                jobs.push((
                    w,
                    Box::new(move || {
                        for shard in chunk.iter_mut() {
                            shard.apply_batch(shard_count);
                        }
                    }),
                ));
            }
            pool.run(jobs);
        }
        self.topology_apply += started.elapsed();
    }
}
