//! The protocol interface: event-driven automata.
//!
//! Algorithm 2 in the paper is written as five event handlers (`when
//! discover(add…)`, `when discover(remove…)`, `when alarm(lost(v))`, `when
//! receive(…)`, `when alarm(tick)`). [`Automaton`] mirrors that structure.
//! Handlers receive a [`Context`] through which they can send messages, set
//! and cancel subjective timers, read their own hardware clock, and draw
//! from their node's private random stream; the engine executes the
//! collected [`Action`]s after the handler returns.
//!
//! Automata are `Send`: the engine dispatches same-instant events to
//! *different* nodes across worker threads (see [`crate::engine`]), so a
//! node's state must be movable to the worker that owns its shard. No
//! `Sync` is required — every node is owned by exactly one shard and only
//! its owner ever touches it.

use crate::event::{LinkChange, Message, TimerKind};
use gcs_clocks::Time;
use gcs_net::NodeId;
use rand::rngs::StdRng;

/// Side effects a handler can request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Action {
    /// `send(u, v, m)`: send `msg` to `to` (delivered within `T` if the
    /// edge survives; silently dropped otherwise, with a `discover(remove)`
    /// following within `D` of the send).
    Send {
        /// Destination node.
        to: NodeId,
        /// Payload.
        msg: Message,
    },
    /// `set_timer(Δt, kind)`: fire `alarm(kind)` after the node's hardware
    /// clock advances by `delta` (subjective time). Re-setting a pending
    /// timer replaces it.
    SetTimer {
        /// Subjective duration until the alarm.
        delta: f64,
        /// Which timer.
        kind: TimerKind,
    },
    /// `cancel(kind)`: cancel a pending timer (no-op if not set).
    CancelTimer {
        /// Which timer.
        kind: TimerKind,
    },
}

/// Where a [`Context`] gets its random stream: either a borrowed live
/// generator (tests) or the owner's lazy shard slot, materialized on the
/// first draw (the engine; seeding is a pure function of
/// `(seed, node id)`, so *when* the stream is created is unobservable).
enum RngHandle<'a> {
    Ready(&'a mut StdRng),
    Lazy {
        slot: &'a mut Option<Box<StdRng>>,
        seed: u64,
        index: usize,
    },
}

/// Per-event execution context handed to automaton handlers.
pub struct Context<'a> {
    /// This node's id.
    pub node: NodeId,
    /// Current real time. Protocol code must not base decisions on this —
    /// it exists for tracing and assertions; nodes only observe `hw`.
    pub now: Time,
    /// This node's hardware clock reading at `now`.
    pub hw: f64,
    actions: &'a mut Vec<Action>,
    /// The node's private random stream (see [`Context::rng`]).
    rng: RngHandle<'a>,
}

impl<'a> Context<'a> {
    /// Creates a context writing into `actions`, drawing randomness from
    /// `rng` (tests construct one directly).
    pub fn new(
        node: NodeId,
        now: Time,
        hw: f64,
        actions: &'a mut Vec<Action>,
        rng: &'a mut StdRng,
    ) -> Self {
        Context {
            node,
            now,
            hw,
            actions,
            rng: RngHandle::Ready(rng),
        }
    }

    /// Engine-internal constructor over the owner's lazy stream slot.
    pub(crate) fn with_lazy_rng(
        node: NodeId,
        now: Time,
        hw: f64,
        actions: &'a mut Vec<Action>,
        slot: &'a mut Option<Box<StdRng>>,
        seed: u64,
    ) -> Self {
        Context {
            node,
            now,
            hw,
            actions,
            rng: RngHandle::Lazy {
                slot,
                seed,
                index: node.index(),
            },
        }
    }

    /// Queues a message send.
    pub fn send(&mut self, to: NodeId, msg: Message) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Queues a subjective timer (re)set.
    pub fn set_timer(&mut self, delta: f64, kind: TimerKind) {
        assert!(
            delta >= 0.0 && delta.is_finite(),
            "timer delta must be >= 0"
        );
        self.actions.push(Action::SetTimer { delta, kind });
    }

    /// Queues a timer cancellation.
    pub fn cancel_timer(&mut self, kind: TimerKind) {
        self.actions.push(Action::CancelTimer { kind });
    }

    /// This node's private random stream.
    ///
    /// The stream is **shard-local**: it is seeded from `(simulation seed,
    /// node id)` and consumed only while this node's handlers run, in the
    /// node's own event order. Draws therefore never depend on how events
    /// at *other* nodes interleave — which is what keeps randomized
    /// protocols bit-identical across engine thread counts. It is also
    /// **lazy**: the generator materializes on the first draw, so nodes
    /// that never draw cost no stream state.
    pub fn rng(&mut self) -> &mut StdRng {
        match &mut self.rng {
            RngHandle::Ready(rng) => rng,
            RngHandle::Lazy { slot, seed, index } => crate::shard::lazy_rng(slot, *seed, *index),
        }
    }
}

/// Error returned by [`Automaton::try_reboot`] for protocols that do not
/// support crash/restart faults: injecting a `Restart` fault against such
/// an automaton is a configuration error, and this type names the
/// offending automaton so the failure is diagnosable instead of an
/// anonymous panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RebootUnsupported {
    /// `std::any::type_name` of the automaton that cannot reboot.
    type_name: &'static str,
}

impl RebootUnsupported {
    /// The type name of the automaton that rejected the reboot.
    pub fn type_name(&self) -> &'static str {
        self.type_name
    }
}

impl std::fmt::Display for RebootUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "automaton `{}` does not support crash/restart faults \
             (implement Automaton::try_reboot to opt in)",
            self.type_name
        )
    }
}

impl std::error::Error for RebootUnsupported {}

/// An event-driven protocol instance running at one node.
///
/// All clock-valued state must be represented so that it grows at the
/// node's hardware rate between events (see
/// [`ClockVar`](gcs_clocks::ClockVar)); the engine passes the current
/// hardware reading `hw` to the query methods.
///
/// The `Send` supertrait lets the engine hand the node to the worker
/// thread owning its shard (nodes never run on two threads at once).
pub trait Automaton: Send {
    /// Called once at time 0, before any discovery of the initial edges.
    fn on_start(&mut self, ctx: &mut Context<'_>);

    /// `receive(u, v, m)` — a message from `from` arrived.
    fn on_receive(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Message);

    /// `discover(add/remove({u,v}))` — this node learned of a link change.
    fn on_discover(&mut self, ctx: &mut Context<'_>, change: LinkChange);

    /// `alarm(kind)` — a previously set timer fired.
    fn on_alarm(&mut self, ctx: &mut Context<'_>, kind: TimerKind);

    /// The logical clock `L_u` given the current hardware reading.
    fn logical_clock(&self, hw: f64) -> f64;

    /// The max-clock estimate `Lmax_u` given the current hardware reading.
    /// Protocols without such an estimate return their logical clock.
    fn max_estimate(&self, hw: f64) -> f64 {
        self.logical_clock(hw)
    }

    /// A freshly initialized replacement for this node, used by the fault
    /// plane ([`crate::fault`]) to apply a crash/restart **with state
    /// loss**: the returned instance must be exactly what the builder's
    /// `make_node` would have produced at time 0 — configuration
    /// (parameters, weights) may be retained, clock-valued and neighbor
    /// state must not. `on_start` runs on the replacement at the restart
    /// instant.
    ///
    /// The default returns [`Err(RebootUnsupported)`](RebootUnsupported):
    /// protocols opt into restart faults by overriding this method.
    /// Callers that can surface errors (the model checker, scenario
    /// validation) use this form; the engine's fault barrier goes through
    /// [`reboot`](Self::reboot), which converts the error into a
    /// deterministic panic naming the automaton type.
    fn try_reboot(&self) -> Result<Self, RebootUnsupported>
    where
        Self: Sized,
    {
        Err(RebootUnsupported {
            type_name: std::any::type_name::<Self>(),
        })
    }

    /// [`try_reboot`](Self::try_reboot), panicking on `Err`. This is the
    /// engine's entry point at `Restart` fault barriers; the panic message
    /// is the [`RebootUnsupported`] display text, so a mis-configured
    /// fault plan fails with the automaton's type name.
    ///
    /// # Panics
    /// Panics iff `try_reboot` returns `Err` — i.e. the automaton does not
    /// implement crash/restart faults.
    fn reboot(&self) -> Self
    where
        Self: Sized,
    {
        match self.try_reboot() {
            Ok(fresh) => fresh,
            Err(e) => panic!("{e}"),
        }
    }

    // ---- Compact-plane cold tier (optional; defaults opt out) ----
    //
    // The engine's eviction sweep ([`crate::Simulator::evict_quiescent`])
    // packs nodes that are quiescent *and* hold no armed timer into byte
    // blobs, and rehydrates them on the next touching event. The three
    // methods below are the protocol side of that contract; protocols
    // that do not implement them are simply never evicted.

    /// True when the node holds no per-neighbor protocol state — for
    /// Algorithm 2, `Γ_u = Υ_u = ∅`. Only quiescent nodes are candidates
    /// for cold-tier eviction. The default (`false`) opts the protocol
    /// out entirely.
    fn quiescent(&self) -> bool {
        false
    }

    /// Packs this node's heap-backed state into `out` and **drains** it,
    /// leaving inline state (clocks, counters) untouched so queries like
    /// [`logical_clock`](Self::logical_clock) still answer exactly while
    /// cold. Returns `false` — writing nothing and draining nothing — to
    /// refuse (the default, and e.g. for weighted nodes). A later
    /// [`unpack_cold`](Self::unpack_cold) of the written bytes must
    /// restore the state bit-for-bit.
    fn pack_cold(&mut self, _out: &mut Vec<u8>) -> bool {
        false
    }

    /// Restores state drained by a [`pack_cold`](Self::pack_cold) that
    /// returned `true`. Exact inverse: the rehydrated node must be
    /// bit-for-bit indistinguishable from one that was never evicted.
    fn unpack_cold(&mut self, _bytes: &[u8]) {}

    /// Heap bytes currently held by this node's protocol state (the
    /// automaton-hot plane meter). Inline struct bytes are accounted by
    /// the engine; the default covers protocols with no heap state.
    fn heap_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_net::node;
    use rand::{Rng, SeedableRng};

    #[test]
    fn context_collects_actions_in_order() {
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = Context::new(node(0), Time::ZERO, 0.0, &mut actions, &mut rng);
        ctx.send(
            node(1),
            Message {
                logical: 1.0,
                max_estimate: 2.0,
            },
        );
        ctx.set_timer(5.0, TimerKind::Tick);
        ctx.cancel_timer(TimerKind::Lost(node(1)));
        assert_eq!(actions.len(), 3);
        assert!(matches!(actions[0], Action::Send { to, .. } if to == node(1)));
        assert!(matches!(
            actions[1],
            Action::SetTimer {
                kind: TimerKind::Tick,
                ..
            }
        ));
        assert!(matches!(
            actions[2],
            Action::CancelTimer {
                kind: TimerKind::Lost(v)
            } if v == node(1)
        ));
    }

    #[test]
    fn context_rng_draws_from_the_node_stream() {
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut reference = StdRng::seed_from_u64(7);
        let mut ctx = Context::new(node(0), Time::ZERO, 0.0, &mut actions, &mut rng);
        let drawn: f64 = ctx.rng().gen_range(0.0..1.0);
        assert_eq!(drawn, reference.gen_range(0.0..1.0));
    }

    /// A protocol that never overrides the reboot hooks.
    #[derive(Debug)]
    struct NoReboot;
    impl Automaton for NoReboot {
        fn on_start(&mut self, _ctx: &mut Context<'_>) {}
        fn on_receive(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _msg: Message) {}
        fn on_discover(&mut self, _ctx: &mut Context<'_>, _change: LinkChange) {}
        fn on_alarm(&mut self, _ctx: &mut Context<'_>, _kind: TimerKind) {}
        fn logical_clock(&self, hw: f64) -> f64 {
            hw
        }
    }

    #[test]
    fn try_reboot_defaults_to_a_typed_error_naming_the_automaton() {
        let err = NoReboot.try_reboot().expect_err("default must refuse");
        assert!(
            err.type_name().ends_with("NoReboot"),
            "error names the automaton type, got {:?}",
            err.type_name()
        );
        let text = err.to_string();
        assert!(text.contains("NoReboot") && text.contains("try_reboot"));
        // It is a real std error, usable behind `dyn Error`.
        let dynamic: Box<dyn std::error::Error> = Box::new(err);
        assert!(dynamic.to_string().contains("crash/restart"));
    }

    #[test]
    #[should_panic(expected = "does not support crash/restart faults")]
    fn reboot_panics_with_the_typed_error_text() {
        let _ = NoReboot.reboot();
    }

    #[test]
    #[should_panic(expected = ">= 0")]
    fn negative_timer_rejected() {
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = Context::new(node(0), Time::ZERO, 0.0, &mut actions, &mut rng);
        ctx.set_timer(-1.0, TimerKind::Tick);
    }
}
