//! The pre-rewrite, per-event reference engine — **frozen**.
//!
//! This module is a verbatim snapshot of the original `engine` module
//! before the batched time-wheel rewrite: one [`BinaryHeap`] pop per
//! event, per-edge `BTreeMap`s for epochs/versions/discoveries and a
//! `HashMap` per directed link for FIFO enforcement.
//!
//! It exists for two reasons and must not be "improved":
//!
//! 1. **Differential testing.** The rewrite claims trace equivalence: for
//!    identical inputs (schedule, clocks, delay strategy, seed) the new
//!    [`Simulator`](crate::Simulator) must produce bit-identical logical
//!    clock traces and statistics. `crates/bench/tests/engine_equivalence.rs`
//!    pins that against this snapshot.
//! 2. **Benchmark baseline.** The criterion suite and `run_all`'s
//!    `BENCH_engine.json` report events/sec of the new engine relative to
//!    this one, so the perf trajectory stays anchored to the pre-rewrite
//!    state.
//!
//! Once a few PRs of equivalence history have accumulated, this module is
//! scheduled for deletion; do not build new features on it.
//!
//! [`BinaryHeap`]: std::collections::BinaryHeap

use crate::automaton::{Action, Automaton, Context};
use crate::delay::DelayStrategy;
use crate::engine::DiscoveryDelay;
use crate::event::{EventPayload, EventQueue, LinkChange, LinkChangeKind, Message, TimerKind};
use crate::model::ModelParams;
use crate::stats::SimStats;
use gcs_clocks::{DriftModel, HardwareClock, Time};
use gcs_net::schedule::TopologyEventKind;
use gcs_net::{DynamicGraph, Edge, NodeId, TopologySchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashMap};

/// Builder for [`LegacySimulator`]; mirrors [`SimBuilder`](crate::SimBuilder).
pub struct LegacySimBuilder {
    params: ModelParams,
    schedule: TopologySchedule,
    clocks: Option<Vec<HardwareClock>>,
    delay: DelayStrategy,
    discovery: DiscoveryDelay,
    seed: u64,
}

impl LegacySimBuilder {
    /// Starts a builder with defaults: perfect clocks, maximum delays,
    /// worst-case (`= D`) discovery latency, seed 0.
    pub fn new(params: ModelParams, schedule: TopologySchedule) -> Self {
        LegacySimBuilder {
            discovery: DiscoveryDelay::Constant(params.d),
            params,
            schedule,
            clocks: None,
            delay: DelayStrategy::Max,
            seed: 0,
        }
    }

    /// Uses explicit per-node hardware clocks.
    pub fn clocks(mut self, clocks: Vec<HardwareClock>) -> Self {
        assert_eq!(
            clocks.len(),
            self.schedule.n(),
            "need one clock per node ({} != {})",
            clocks.len(),
            self.schedule.n()
        );
        self.clocks = Some(clocks);
        self
    }

    /// Generates clocks from a drift model over `[0, horizon]` using the
    /// builder's seed (offset so clock randomness is independent of delay
    /// randomness).
    pub fn drift(mut self, model: DriftModel, horizon: f64) -> Self {
        let rho = self.params.rho;
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let clocks = (0..self.schedule.n())
            .map(|i| HardwareClock::new(model.build(rho, horizon, i, &mut rng), rho))
            .collect();
        self.clocks = Some(clocks);
        self
    }

    /// Sets the delay adversary.
    pub fn delay(mut self, delay: DelayStrategy) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the discovery-latency model.
    pub fn discovery(mut self, discovery: DiscoveryDelay) -> Self {
        self.discovery = discovery;
        self
    }

    /// Seeds all randomness (delays, discovery jitter, drift generation).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Finalizes the simulator; `make_node(i)` constructs the automaton for
    /// node `i`. `on_start` handlers run immediately, followed by the
    /// discovery of the initial edge set at time 0.
    pub fn build_with<A: Automaton>(self, make_node: impl FnMut(usize) -> A) -> LegacySimulator<A> {
        let n = self.schedule.n();
        let clocks = self
            .clocks
            .unwrap_or_else(|| vec![HardwareClock::perfect(self.params.rho); n]);
        let mut nodes: Vec<A> = (0..n).map(make_node).collect();

        let mut queue = EventQueue::new();
        let mut graph = DynamicGraph::empty(n);
        let mut edge_epoch = BTreeMap::new();
        let mut edge_version = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Initial edges exist (and are discovered) at time 0.
        for e in self.schedule.initial_edges() {
            graph.add_edge(e, Time::ZERO);
            edge_epoch.insert(e, 1u64);
            edge_version.insert(e, 1u64);
            for w in [e.lo(), e.hi()] {
                queue.push(
                    Time::ZERO,
                    EventPayload::Discover {
                        node: w,
                        change: LinkChange {
                            kind: LinkChangeKind::Added,
                            edge: e,
                        },
                        version: 1,
                    },
                );
            }
        }

        // Pre-schedule every topology event and its endpoint discoveries.
        let mut version_counter: BTreeMap<Edge, u64> = edge_version.clone();
        for ev in self.schedule.events() {
            let v = version_counter.entry(ev.edge).or_insert(0);
            *v += 1;
            let version = *v;
            let kind = match ev.kind {
                TopologyEventKind::Add => LinkChangeKind::Added,
                TopologyEventKind::Remove => LinkChangeKind::Removed,
            };
            queue.push(
                ev.time,
                EventPayload::Topology {
                    kind,
                    edge: ev.edge,
                    version,
                },
            );
            for w in [ev.edge.lo(), ev.edge.hi()] {
                let lat = self.discovery.sample(self.params.d, &mut rng);
                queue.push(
                    ev.time + gcs_clocks::Duration::new(lat),
                    EventPayload::Discover {
                        node: w,
                        change: LinkChange {
                            kind,
                            edge: ev.edge,
                        },
                        version,
                    },
                );
            }
        }

        let mut sim = LegacySimulator {
            params: self.params,
            clocks,
            graph,
            queue,
            timers: vec![HashMap::new(); n],
            edge_epoch,
            edge_version,
            last_remove_version: BTreeMap::new(),
            discovered_version: vec![BTreeMap::new(); n],
            fifo_last: HashMap::new(),
            delay: self.delay,
            discovery: self.discovery,
            rng,
            now: Time::ZERO,
            stats: SimStats::default(),
            actions_buf: Vec::new(),
            nodes: Vec::new(),
        };
        // `on_start` before any event (matching "at the beginning of the
        // execution").
        for (i, node) in nodes.iter_mut().enumerate() {
            sim.dispatch_external(NodeId::from_index(i), node, |a, ctx| a.on_start(ctx));
        }
        sim.nodes = nodes.into_iter().map(Some).collect();
        sim
    }
}

/// The frozen per-event engine; see the module docs for why it exists.
pub struct LegacySimulator<A: Automaton> {
    params: ModelParams,
    clocks: Vec<HardwareClock>,
    graph: DynamicGraph,
    queue: EventQueue,
    /// Automata, lifted out of their slots while their handlers run.
    nodes: Vec<Option<A>>,
    /// Per-node, per-timer generation counters; alarms with stale
    /// generations are skipped.
    timers: Vec<HashMap<TimerKind, u64>>,
    /// Incremented when an edge is (re-)added; deliveries carry the epoch
    /// they were sent in.
    edge_epoch: BTreeMap<Edge, u64>,
    /// Incremented on every add/remove of an edge.
    edge_version: BTreeMap<Edge, u64>,
    /// Version of the most recent removal of each edge.
    last_remove_version: BTreeMap<Edge, u64>,
    /// Highest change version each node has been told about, per edge.
    discovered_version: Vec<BTreeMap<Edge, u64>>,
    /// Last scheduled delivery per directed link (FIFO enforcement).
    fifo_last: HashMap<(NodeId, NodeId), Time>,
    delay: DelayStrategy,
    discovery: DiscoveryDelay,
    rng: StdRng,
    now: Time,
    stats: SimStats,
    actions_buf: Vec<Action>,
}

impl<A: Automaton> LegacySimulator<A> {
    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Current simulation time (last processed event, or the target of the
    /// last `run_until`).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Model parameters.
    pub fn params(&self) -> ModelParams {
        self.params
    }

    /// Execution counters.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The live graph state.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Immutable access to a node's automaton.
    pub fn node(&self, u: NodeId) -> &A {
        self.nodes[u.index()]
            .as_ref()
            .expect("node queried from inside its own handler")
    }

    /// Hardware clock reading of `u` at the current time.
    pub fn hardware(&self, u: NodeId) -> f64 {
        self.clocks[u.index()].read(self.now)
    }

    /// Logical clock `L_u` at the current time.
    pub fn logical(&self, u: NodeId) -> f64 {
        self.node(u).logical_clock(self.hardware(u))
    }

    /// Max estimate `Lmax_u` at the current time.
    pub fn max_estimate_of(&self, u: NodeId) -> f64 {
        self.node(u).max_estimate(self.hardware(u))
    }

    /// All logical clocks at the current time.
    pub fn logical_snapshot(&self) -> Vec<f64> {
        (0..self.n())
            .map(|i| self.logical(NodeId::from_index(i)))
            .collect()
    }

    /// Runs until all events at time `≤ until` are processed, then advances
    /// the clock to `until` so state queries observe that instant.
    pub fn run_until(&mut self, until: Time) {
        assert!(until >= self.now, "cannot run backwards");
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            self.step();
        }
        self.now = until;
    }

    /// Processes the single earliest event. Returns false if none pending.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event queue went backwards");
        self.now = ev.time;
        self.stats.events_processed += 1;
        match ev.payload {
            EventPayload::Topology {
                kind,
                edge,
                version,
            } => self.apply_topology(kind, edge, version),
            EventPayload::Deliver {
                from,
                to,
                msg,
                epoch,
            } => self.apply_delivery(from, to, msg, epoch),
            EventPayload::Alarm {
                node,
                kind,
                generation,
            } => self.apply_alarm(node, kind, generation),
            EventPayload::Discover {
                node,
                change,
                version,
            } => self.apply_discover(node, change, version),
        }
        true
    }

    fn apply_topology(&mut self, kind: LinkChangeKind, edge: Edge, version: u64) {
        self.stats.topology_events += 1;
        self.edge_version.insert(edge, version);
        match kind {
            LinkChangeKind::Added => {
                *self.edge_epoch.entry(edge).or_insert(0) += 1;
                self.graph.add_edge(edge, self.now);
            }
            LinkChangeKind::Removed => {
                self.last_remove_version.insert(edge, version);
                self.graph.remove_edge(edge, self.now);
            }
        }
    }

    fn apply_delivery(&mut self, from: NodeId, to: NodeId, msg: Message, epoch: u64) {
        let edge = Edge::new(from, to);
        let live =
            self.graph.contains(edge) && self.edge_epoch.get(&edge).copied().unwrap_or(0) == epoch;
        if live {
            self.stats.messages_delivered += 1;
            self.with_node(to, |sim, node| {
                sim.dispatch_external(to, node, |a, ctx| a.on_receive(ctx, from, msg));
            });
        } else {
            // Dropped in flight: the model obliges the environment to tell
            // the sender within D of the send; we tell it now (≤ send + T).
            self.stats.dropped_in_flight += 1;
            let version = self.last_remove_version.get(&edge).copied().unwrap_or(0);
            self.queue.push(
                self.now,
                EventPayload::Discover {
                    node: from,
                    change: LinkChange {
                        kind: LinkChangeKind::Removed,
                        edge,
                    },
                    version,
                },
            );
        }
    }

    fn apply_alarm(&mut self, u: NodeId, kind: TimerKind, generation: u64) {
        let current = self.timers[u.index()].get(&kind).copied();
        if current != Some(generation) {
            self.stats.alarms_stale += 1;
            return;
        }
        self.timers[u.index()].remove(&kind);
        self.stats.alarms_fired += 1;
        self.with_node(u, |sim, node| {
            sim.dispatch_external(u, node, |a, ctx| a.on_alarm(ctx, kind));
        });
    }

    fn apply_discover(&mut self, u: NodeId, change: LinkChange, version: u64) {
        let seen = self.discovered_version[u.index()]
            .get(&change.edge)
            .copied()
            .unwrap_or(0);
        if version <= seen {
            self.stats.discovers_stale += 1;
            return;
        }
        self.discovered_version[u.index()].insert(change.edge, version);
        self.stats.discovers_delivered += 1;
        self.with_node(u, |sim, node| {
            sim.dispatch_external(u, node, |a, ctx| a.on_discover(ctx, change));
        });
    }

    /// Temporarily moves node `u` out of its slot so a handler can run with
    /// `&mut` access to both the automaton and the engine.
    fn with_node(&mut self, u: NodeId, f: impl FnOnce(&mut Self, &mut A)) {
        let mut node = self.nodes[u.index()]
            .take()
            .expect("automaton re-entered its own handler");
        f(self, &mut node);
        self.nodes[u.index()] = Some(node);
    }

    /// Runs a handler on an automaton that is *not* stored in self (used at
    /// startup) and applies the produced actions on behalf of `u`.
    fn dispatch_external(
        &mut self,
        u: NodeId,
        node: &mut A,
        f: impl FnOnce(&mut A, &mut Context<'_>),
    ) {
        let hw = self.clocks[u.index()].read(self.now);
        let mut actions = std::mem::take(&mut self.actions_buf);
        actions.clear();
        {
            let mut ctx = Context::new(u, self.now, hw, &mut actions);
            f(node, &mut ctx);
        }
        for action in actions.drain(..) {
            self.apply_action(u, action);
        }
        self.actions_buf = actions;
    }

    fn apply_action(&mut self, u: NodeId, action: Action) {
        match action {
            Action::Send { to, msg } => self.apply_send(u, to, msg),
            Action::SetTimer { delta, kind } => {
                let gen = self.timers[u.index()].entry(kind).or_insert(0);
                *gen = gen.wrapping_add(1);
                let generation = *gen;
                let fire = self.clocks[u.index()].fire_time(self.now, delta);
                self.queue.push(
                    fire,
                    EventPayload::Alarm {
                        node: u,
                        kind,
                        generation,
                    },
                );
            }
            Action::CancelTimer { kind } => {
                if let Some(gen) = self.timers[u.index()].get_mut(&kind) {
                    *gen = gen.wrapping_add(1);
                }
            }
        }
    }

    fn apply_send(&mut self, from: NodeId, to: NodeId, msg: Message) {
        self.stats.messages_sent += 1;
        let edge = Edge::new(from, to);
        if !self.graph.contains(edge) {
            // The edge does not exist: the message is not delivered and the
            // sender discovers that within D.
            self.stats.dropped_no_edge += 1;
            let version = self.last_remove_version.get(&edge).copied().unwrap_or(0);
            let lat = self.discovery.sample(self.params.d, &mut self.rng);
            self.queue.push(
                self.now + gcs_clocks::Duration::new(lat),
                EventPayload::Discover {
                    node: from,
                    change: LinkChange {
                        kind: LinkChangeKind::Removed,
                        edge,
                    },
                    version,
                },
            );
            return;
        }
        let epoch = self.edge_epoch.get(&edge).copied().unwrap_or(0);
        let d = self
            .delay
            .delay(edge, from, self.now, self.params.t, &mut self.rng);
        let mut deliver_at = self.now + gcs_clocks::Duration::new(d);
        // FIFO per directed link: never deliver before an earlier message.
        let key = (from, to);
        if let Some(&last) = self.fifo_last.get(&key) {
            deliver_at = deliver_at.max(last);
        }
        self.fifo_last.insert(key, deliver_at);
        self.queue.push(
            deliver_at,
            EventPayload::Deliver {
                from,
                to,
                msg,
                epoch,
            },
        );
    }
}
