//! Sharded per-node engine state and the canonical edge store.
//!
//! The parallel dispatcher (see [`crate::dispatch`]) relies on a strict
//! ownership discipline:
//!
//! * **Node-local state** — the automaton itself, its armed timers, its
//!   per-neighbor discovery watermarks and FIFO horizons, its private
//!   RNG stream, and its drift cursor — lives in the [`Shard`] that owns
//!   the node (`shard = node mod shard_count`). During a parallel segment
//!   each worker holds `&mut` over exactly one shard, so owner-exclusive
//!   mutation is enforced by the borrow checker, not by locks.
//!
//!   Within a shard this state is a compact **struct-of-arrays**
//!   [`NodeTable`] sized by the *touched-node watermark*: the arrays grow
//!   only to the highest local index whose handlers have actually run, so
//!   a node no event ever reaches costs zero bytes of engine state. The
//!   two expensive per-node members are additionally lazy inside their
//!   slots: the RNG stream materializes on the node's **first draw**
//!   (runs under `DelayStrategy::Max` never allocate one), and the
//!   [`DriftCursor`] materializes on the node's first hardware-clock
//!   evaluation past time 0 (see [`crate::dispatch::read_hw`]). Both are
//!   trace-neutral: a stream seeds identically whenever it is created,
//!   and cursor evaluation is bit-identical to the eager schedule.
//! * **Canonical edge state** — liveness, epoch, removal version and the
//!   per-edge schedule-version counter of every edge, kept on the edge's
//!   *lower* endpoint — lives in the [`EdgeStore`], which is only ever
//!   written *between* segments (by topology pulls and applications, and
//!   by the serial startup/step paths). Entries are created
//!   **incrementally**: initial edges at build time, churned edges the
//!   moment their first event is pulled from the `TopologySource` — the
//!   store never needs to know the future, which is what lets topology
//!   stream instead of materializing. During a segment every worker
//!   reads it through a shared `&`, which is safe precisely because
//!   deliveries cannot change liveness or epochs.
//!
//! The node → shard assignment is round-robin by id. It affects only data
//! layout, never semantics: traces are identical for every shard count
//! (pinned by `crates/bench/tests/determinism.rs`).

use crate::event::TimerKind;
use gcs_clocks::{DriftCursor, Time};
use gcs_net::{Edge, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Canonical per-edge state, stored on the lower endpoint's adjacency
/// vector (sorted by the higher endpoint). Entries are created on first
/// contact and are sticky: churn toggles fields instead of reshaping the
/// vector.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EdgeShared {
    /// The higher endpoint of the edge.
    pub neighbor: NodeId,
    /// Mirror of `graph.contains(edge)`.
    pub live: bool,
    /// Incremented when the edge is (re-)added. Deliveries carry the epoch
    /// they were sent in; a mismatch at delivery means the edge went down
    /// (and possibly came back) in flight.
    pub epoch: u64,
    /// Version of the most recent removal.
    pub last_remove_version: u64,
    /// Version of the most recent *applied* add (1 for initial edges).
    /// Restart rediscovery re-announces a live edge under this version —
    /// never under `versions`, which may already name a pulled-but-
    /// unapplied future change whose own discovery must not be
    /// suppressed as stale.
    pub last_add_version: u64,
    /// Monotone per-edge change-version counter: initial presence counts
    /// as version 1, every pulled topology event takes the next value.
    /// Assigned at pull time (stream order), carried by the `Topology`
    /// and `Discover` payloads, and used to suppress stale discoveries.
    pub versions: u64,
}

impl EdgeShared {
    fn new(neighbor: NodeId) -> Self {
        EdgeShared {
            neighbor,
            live: false,
            epoch: 0,
            last_remove_version: 0,
            last_add_version: 0,
            versions: 0,
        }
    }
}

/// The canonical edge state of the whole network, sharded by the lower
/// endpoint's owner so churn events route to the shard that owns them.
///
/// This is the incrementally maintained successor of the old
/// `TopologySchedule::shard_view` pre-sizing (deleted with the eager
/// pre-load): entries appear when an edge
/// first matters (initial set at build, churned edges at pull time) and
/// add/remove deltas are applied per instant as the pulled events fire.
/// Content is a function of the event stream alone — never of the shard
/// count or of pull timing — which is why traces do not depend on the
/// worker count.
///
/// Reads go through a shared reference during parallel segments; writes
/// (topology pulls and applications) happen only on the serial paths
/// between segments.
#[derive(Debug)]
pub(crate) struct EdgeStore {
    /// `adj[shard][local(lo)]` = sorted adjacency of node `lo`.
    adj: Vec<Vec<Vec<EdgeShared>>>,
    shard_count: usize,
}

impl EdgeStore {
    /// An empty store over `n` nodes split into `shard_count` shards.
    pub fn new(n: usize, shard_count: usize) -> Self {
        assert!(shard_count >= 1);
        let mut adj: Vec<Vec<Vec<EdgeShared>>> = (0..shard_count).map(|_| Vec::new()).collect();
        for (s, shard_adj) in adj.iter_mut().enumerate() {
            let local_n = n / shard_count + usize::from(s < n % shard_count);
            shard_adj.resize(local_n, Vec::new());
        }
        EdgeStore { adj, shard_count }
    }

    /// Marks an initial edge live at epoch 1, change-version 1.
    pub fn insert_initial(&mut self, edge: Edge) {
        let entry = self.entry(edge);
        entry.live = true;
        entry.epoch = 1;
        entry.versions = 1;
        entry.last_add_version = 1;
    }

    /// Assigns the next change version of `edge` (creating the entry on
    /// first contact). Called at pull time, in stream order, so version
    /// numbers are monotone per edge and independent of thread count.
    pub fn next_version(&mut self, edge: Edge) -> u64 {
        let entry = self.entry(edge);
        entry.versions += 1;
        entry.versions
    }

    #[inline]
    fn row(&self, lo: NodeId) -> &Vec<EdgeShared> {
        let i = lo.index();
        &self.adj[i % self.shard_count][i / self.shard_count]
    }

    #[inline]
    fn row_mut(&mut self, lo: NodeId) -> &mut Vec<EdgeShared> {
        let i = lo.index();
        &mut self.adj[i % self.shard_count][i / self.shard_count]
    }

    /// The canonical state of `edge`, if any contact has happened.
    #[inline]
    pub fn find(&self, edge: Edge) -> Option<&EdgeShared> {
        let row = self.row(edge.lo());
        row.binary_search_by_key(&edge.hi(), |e| e.neighbor)
            .ok()
            .map(|i| &row[i])
    }

    /// The canonical state of `edge`, created on first contact.
    pub fn entry(&mut self, edge: Edge) -> &mut EdgeShared {
        let row = self.row_mut(edge.lo());
        match row.binary_search_by_key(&edge.hi(), |e| e.neighbor) {
            Ok(i) => &mut row[i],
            Err(i) => {
                row.insert(i, EdgeShared::new(edge.hi()));
                &mut row[i]
            }
        }
    }
}

/// One node's armed timers, sorted by kind. An *armed* timer is a present
/// entry whose generation must match the alarm's; cancelling bumps the
/// generation but keeps the entry; firing removes it.
#[derive(Clone, Debug, Default)]
pub(crate) struct TimerSlots {
    v: Vec<(TimerKind, u64)>,
}

impl TimerSlots {
    #[inline]
    pub fn get(&self, kind: TimerKind) -> Option<u64> {
        self.v
            .binary_search_by_key(&kind, |e| e.0)
            .ok()
            .map(|i| self.v[i].1)
    }

    /// `set_timer`: bump the generation (inserting at 0 first) and return
    /// the new value.
    #[inline]
    pub fn arm(&mut self, kind: TimerKind) -> u64 {
        match self.v.binary_search_by_key(&kind, |e| e.0) {
            Ok(i) => {
                self.v[i].1 = self.v[i].1.wrapping_add(1);
                self.v[i].1
            }
            Err(i) => {
                self.v.insert(i, (kind, 1));
                1
            }
        }
    }

    /// `cancel`: bump the generation if armed (entry stays present).
    #[inline]
    pub fn cancel(&mut self, kind: TimerKind) {
        if let Ok(i) = self.v.binary_search_by_key(&kind, |e| e.0) {
            self.v[i].1 = self.v[i].1.wrapping_add(1);
        }
    }

    /// A fired alarm consumes its entry.
    #[inline]
    pub fn disarm(&mut self, kind: TimerKind) {
        if let Ok(i) = self.v.binary_search_by_key(&kind, |e| e.0) {
            self.v.remove(i);
        }
    }

    /// Crash support: bump *every* armed timer's generation so all
    /// in-flight alarms go stale. Entries stay present (like
    /// [`cancel`](Self::cancel)) — removing them would let a post-restart
    /// `arm` restart at generation 1 and alias a pre-crash alarm still in
    /// the wheel with the same generation.
    pub fn cancel_all(&mut self) {
        for e in &mut self.v {
            e.1 = e.1.wrapping_add(1);
        }
    }
}

/// A node's view of one neighbor: state that only this node ever touches.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PeerLocal {
    /// The other endpoint.
    pub neighbor: NodeId,
    /// Highest change version this node has been told about.
    pub discovered_version: u64,
    /// Latest delivery already scheduled from this node to `neighbor`
    /// (FIFO enforcement for the directed link).
    pub fifo_out: Time,
}

impl PeerLocal {
    fn new(neighbor: NodeId) -> Self {
        PeerLocal {
            neighbor,
            discovered_version: 0,
            fifo_out: Time::ZERO,
        }
    }
}

/// The node-local engine state of one shard, laid out struct-of-arrays
/// and sized by the **touched-node watermark**: every array covers local
/// indices `0..watermark()`, where the watermark is the highest local
/// index any event has reached (plus one). Untouched nodes occupy no
/// slots at all; touched nodes occupy compact fixed-size slots whose two
/// heap members (RNG stream, drift cursor) stay `None` until genuinely
/// needed.
#[derive(Debug, Default)]
pub(crate) struct NodeTable {
    /// Armed timers with generation counters.
    pub timers: Vec<TimerSlots>,
    /// Per-neighbor local state, sorted by neighbor id.
    pub peers: Vec<Vec<PeerLocal>>,
    /// The node's private random stream (delay/discovery sampling and
    /// `Context::rng`), seeded from `(simulation seed, node id)` on the
    /// **first draw** — identical stream whenever created, so laziness
    /// never shows in a trace.
    pub rng: Vec<Option<Box<StdRng>>>,
    /// Memoized hardware reading at `hw_time` (one drift-plane
    /// evaluation per node per instant; `H(0) = 0` makes the default
    /// slot a valid memo).
    pub hw: Vec<f64>,
    /// The time `hw` was evaluated at.
    pub hw_time: Vec<Time>,
    /// The node's lazy drift cursor — the *only* per-node state of the
    /// drift plane. `None` until the node's clock is first evaluated
    /// past time 0 (and permanently for stateless eager adapters).
    pub drift: Vec<Option<Box<DriftCursor>>>,
}

impl NodeTable {
    /// Grows every array to cover `local` (the touched-node watermark).
    #[inline]
    pub fn ensure(&mut self, local: usize) {
        if local >= self.timers.len() {
            let n = local + 1;
            self.timers.resize_with(n, TimerSlots::default);
            self.peers.resize_with(n, Vec::new);
            self.rng.resize_with(n, || None);
            self.hw.resize(n, 0.0);
            self.hw_time.resize(n, Time::ZERO);
            self.drift.resize_with(n, || None);
        }
    }

    /// Slots currently materialized (the touched-node watermark).
    #[inline]
    pub fn watermark(&self) -> usize {
        self.timers.len()
    }

    /// Node `local`'s state for neighbor `v`, created on first contact.
    #[inline]
    pub fn peer(&mut self, local: usize, v: NodeId) -> &mut PeerLocal {
        let peers = &mut self.peers[local];
        match peers.binary_search_by_key(&v, |p| p.neighbor) {
            Ok(i) => &mut peers[i],
            Err(i) => {
                peers.insert(i, PeerLocal::new(v));
                &mut peers[i]
            }
        }
    }

    /// Drift cursors materialized in this table.
    pub fn drift_cursors(&self) -> usize {
        self.drift.iter().filter(|c| c.is_some()).count()
    }

    /// RNG streams materialized in this table.
    pub fn rng_streams(&self) -> usize {
        self.rng.iter().filter(|r| r.is_some()).count()
    }
}

/// The node's private stream, materialized on first use (seeding is a
/// pure function of `(seed, index)`, so when it happens is unobservable).
#[inline]
pub(crate) fn lazy_rng(slot: &mut Option<Box<StdRng>>, seed: u64, index: usize) -> &mut StdRng {
    slot.get_or_insert_with(|| Box::new(StdRng::seed_from_u64(node_stream_seed(seed, index))))
}

/// Decorrelated per-node stream seed: the golden-ratio multiply spreads
/// consecutive indices across the seed space before `seed_from_u64`'s
/// SplitMix expansion. The extra constant domain-separates node streams
/// from the builder's drift-generation stream (`seed ^ GOLDEN`), which
/// node 0's stream (`seed ^ 1·GOLDEN`) would otherwise collide with —
/// correlating the delay adversary with the drift adversary.
pub(crate) fn node_stream_seed(seed: u64, index: usize) -> u64 {
    seed ^ 0xA076_1D64_78BD_642F ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The nodes owned by one worker, plus that worker's scratch buffers.
#[derive(Debug)]
pub(crate) struct Shard<A> {
    /// Automata of the owned nodes, indexed by local id.
    pub nodes: Vec<A>,
    /// Node-local engine state, struct-of-arrays, watermark-sized.
    pub table: NodeTable,
    /// Deferred effects produced during the current segment.
    pub effects: Vec<crate::dispatch::Effect>,
    /// Per-segment stats delta (merged and cleared after each segment).
    pub stats: crate::stats::SimStats,
    /// Nodes whose handlers ran in the current instant (only collected
    /// when an observer is attached).
    pub touched: Vec<NodeId>,
    /// Scratch action buffer for handler dispatch.
    pub actions: Vec<crate::automaton::Action>,
    /// This shard's slice of the current segment (reused across rounds).
    pub events: Vec<crate::event::QueuedEvent>,
    /// Never-drawn stand-in stream handed to strategies that declare
    /// [`DelayStrategy::draws`](crate::DelayStrategy::draws) `== false`,
    /// so non-random runs never materialize per-node streams.
    pub scratch_rng: StdRng,
}

/// All shards plus the id ↔ (shard, local) mapping.
#[derive(Debug)]
pub(crate) struct Shards<A> {
    pub shards: Vec<Shard<A>>,
    count: usize,
}

impl<A> Shards<A> {
    /// Distributes `n` freshly built nodes round-robin over `count`
    /// shards. Node-local engine state is **not** allocated here — the
    /// [`NodeTable`]s start empty and grow to the touched watermark.
    pub fn build(count: usize, nodes: Vec<A>) -> Self {
        assert!(count >= 1);
        let mut shards: Vec<Shard<A>> = (0..count)
            .map(|_| Shard {
                nodes: Vec::new(),
                table: NodeTable::default(),
                effects: Vec::new(),
                stats: crate::stats::SimStats::default(),
                touched: Vec::new(),
                actions: Vec::new(),
                events: Vec::new(),
                scratch_rng: StdRng::seed_from_u64(0),
            })
            .collect();
        for (i, node) in nodes.into_iter().enumerate() {
            shards[i % count].nodes.push(node);
        }
        Shards { shards, count }
    }

    /// Number of shards.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// The shard index owning `u`.
    #[inline]
    pub fn shard_of(&self, u: NodeId) -> usize {
        u.index() % self.count
    }

    /// The automaton of `u`.
    #[inline]
    pub fn node(&self, u: NodeId) -> &A {
        &self.shards[u.index() % self.count].nodes[u.index() / self.count]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_net::node;

    #[test]
    fn edge_store_routes_by_lower_endpoint_shard() {
        let mut store = EdgeStore::new(10, 3);
        let e = Edge::between(4, 7); // lo = 4 → shard 1, local 1
        assert!(store.find(e).is_none());
        store.entry(e).live = true;
        store.entry(e).epoch = 2;
        let shared = store.find(e).expect("entry created");
        assert!(shared.live);
        assert_eq!(shared.epoch, 2);
        assert_eq!(shared.neighbor, node(7));
        // A different edge off the same lower endpoint sorts after.
        store.entry(Edge::between(4, 9));
        let row: Vec<NodeId> = store.row(node(4)).iter().map(|e| e.neighbor).collect();
        assert_eq!(row, vec![node(7), node(9)]);
    }

    #[test]
    fn edge_versions_count_from_initial_presence() {
        let mut store = EdgeStore::new(6, 2);
        let seeded = Edge::between(0, 1);
        store.insert_initial(seeded);
        assert_eq!(store.find(seeded).unwrap().versions, 1);
        assert_eq!(store.next_version(seeded), 2, "first change is v2");
        assert_eq!(store.next_version(seeded), 3);
        // A churn-only edge starts counting at 1.
        let fresh = Edge::between(2, 5);
        assert_eq!(store.next_version(fresh), 1);
        assert!(!store.find(fresh).unwrap().live, "pull does not apply");
    }

    #[test]
    fn timer_slots_generation_discipline() {
        let mut t = TimerSlots::default();
        assert_eq!(t.get(TimerKind::Tick), None);
        assert_eq!(t.arm(TimerKind::Tick), 1);
        assert_eq!(t.arm(TimerKind::Tick), 2);
        t.cancel(TimerKind::Tick);
        assert_eq!(t.get(TimerKind::Tick), Some(3));
        t.disarm(TimerKind::Tick);
        assert_eq!(t.get(TimerKind::Tick), None);
        // Re-arming after a fire continues the old count? No: the entry was
        // consumed, so arming restarts at 1 — matching the legacy engine's
        // HashMap semantics where a fired timer's entry was removed.
        assert_eq!(t.arm(TimerKind::Tick), 1);
    }

    #[test]
    fn node_table_grows_to_the_touched_watermark() {
        let mut t = NodeTable::default();
        assert_eq!(t.watermark(), 0, "no state before the first touch");
        t.ensure(4);
        assert_eq!(t.watermark(), 5);
        assert_eq!(t.drift_cursors(), 0, "cursors stay lazy inside slots");
        assert_eq!(t.rng_streams(), 0, "streams stay lazy inside slots");
        t.ensure(2); // never shrinks
        assert_eq!(t.watermark(), 5);
        // First contact creates a peer slot; the rng materializes on
        // first draw with the exact keyed stream.
        t.peer(3, node(9)).discovered_version = 7;
        assert_eq!(t.peer(3, node(9)).discovered_version, 7);
        use rand::RngCore;
        let drawn = lazy_rng(&mut t.rng[1], 42, 1).next_u64();
        let mut reference = StdRng::seed_from_u64(node_stream_seed(42, 1));
        assert_eq!(drawn, reference.next_u64());
        assert_eq!(t.rng_streams(), 1);
    }

    #[test]
    fn shards_round_robin_mapping() {
        let shards = Shards::build(3, (0..8u32).collect::<Vec<_>>());
        assert_eq!(shards.count(), 3);
        for i in 0..8usize {
            assert_eq!(shards.shard_of(node(i)), i % 3);
            assert_eq!(*shards.node(node(i)), i as u32);
        }
        assert_eq!(shards.shards[0].nodes, vec![0, 3, 6]);
        assert_eq!(shards.shards[1].nodes, vec![1, 4, 7]);
        assert_eq!(shards.shards[2].nodes, vec![2, 5]);
    }

    #[test]
    fn node_streams_are_decorrelated_and_stable() {
        use rand::{Rng, RngCore, SeedableRng};
        let mut a = StdRng::seed_from_u64(node_stream_seed(42, 0));
        let mut b = StdRng::seed_from_u64(node_stream_seed(42, 1));
        let mut a2 = StdRng::seed_from_u64(node_stream_seed(42, 0));
        assert_eq!(a.next_u64(), a2.next_u64());
        let collisions = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32))
            .count();
        assert!(collisions < 4, "streams should differ: {collisions}/64");
    }
}
