//! Sharded per-node engine state and the canonical edge store.
//!
//! The parallel dispatcher (see [`crate::dispatch`]) relies on a strict
//! ownership discipline:
//!
//! * **Node-local state** — the automaton itself, its armed timers, its
//!   per-neighbor discovery watermarks and FIFO horizons, its private
//!   RNG stream, and its drift cursor — lives in the [`Shard`] that owns
//!   the node (`shard = node mod shard_count`). During a parallel segment
//!   each worker holds `&mut` over exactly one shard, so owner-exclusive
//!   mutation is enforced by the borrow checker, not by locks.
//!
//!   Within a shard this state is a compact **struct-of-arrays**
//!   [`NodeTable`] sized by the *touched-node watermark*: the arrays grow
//!   only to the highest local index whose handlers have actually run, so
//!   a node no event ever reaches costs zero bytes of engine state. The
//!   two expensive per-node members are additionally lazy inside their
//!   slots: the RNG stream materializes on the node's **first draw**
//!   (runs under `DelayStrategy::Max` never allocate one), and the
//!   [`DriftCursor`] materializes on the node's first hardware-clock
//!   evaluation past time 0 (see [`crate::dispatch::read_hw`]). Both are
//!   trace-neutral: a stream seeds identically whenever it is created,
//!   and cursor evaluation is bit-identical to the eager schedule.
//! * **Canonical edge state** — liveness, epoch, removal version and the
//!   per-edge schedule-version counter of every edge, kept on the edge's
//!   *lower* endpoint — lives in the [`EdgeStore`], which is only ever
//!   written *between* segments (by topology pulls and applications, and
//!   by the serial startup/step paths). Entries are created
//!   **incrementally**: initial edges at build time, churned edges the
//!   moment their first event is pulled from the `TopologySource` — the
//!   store never needs to know the future, which is what lets topology
//!   stream instead of materializing. During a segment every worker
//!   reads it through a shared `&`, which is safe precisely because
//!   deliveries cannot change liveness or epochs. Writes happen only at
//!   the topology barrier between segments: serially for narrow
//!   batches, or — since the store is itself split into per-worker
//!   [`EdgeShard`]s — as disjoint `&mut` slices applied in `(seq)` order
//!   on the pinned pool workers for wide ones.
//!
//! The node → shard assignment is round-robin by id. It affects only data
//! layout, never semantics: traces are identical for every shard count
//! (pinned by `crates/bench/tests/determinism.rs`).

use crate::event::{LinkChangeKind, TimerKind};
use gcs_clocks::{DriftCursor, Time};
use gcs_net::{Edge, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Canonical per-edge state, stored on the lower endpoint's adjacency
/// vector (sorted by the higher endpoint). Entries are created on first
/// contact and are sticky: churn toggles fields instead of reshaping the
/// vector.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EdgeShared {
    /// The higher endpoint of the edge.
    pub neighbor: NodeId,
    /// Mirror of `graph.contains(edge)`.
    pub live: bool,
    /// Incremented when the edge is (re-)added. Deliveries carry the epoch
    /// they were sent in; a mismatch at delivery means the edge went down
    /// (and possibly came back) in flight.
    pub epoch: u64,
    /// Version of the most recent removal.
    pub last_remove_version: u64,
    /// Version of the most recent *applied* add (1 for initial edges).
    /// Restart rediscovery re-announces a live edge under this version —
    /// never under `versions`, which may already name a pulled-but-
    /// unapplied future change whose own discovery must not be
    /// suppressed as stale.
    pub last_add_version: u64,
    /// Monotone per-edge change-version counter: initial presence counts
    /// as version 1, every pulled topology event takes the next value.
    /// Assigned at pull time (stream order), carried by the `Topology`
    /// and `Discover` payloads, and used to suppress stale discoveries.
    pub versions: u64,
}

impl EdgeShared {
    fn new(neighbor: NodeId) -> Self {
        EdgeShared {
            neighbor,
            live: false,
            epoch: 0,
            last_remove_version: 0,
            last_add_version: 0,
            versions: 0,
        }
    }
}

/// One shard's slice of the canonical edge state: the adjacency rows of
/// every node it owns, plus that shard's slice of the topology batch
/// currently being applied. An `EdgeShard` is the unit the engine hands
/// to a pool worker during a batched topology apply — each edge's row
/// lives in exactly one shard (by lower endpoint), so per-shard
/// application in `(seq)` order produces content bit-identical to the
/// serial loop.
#[derive(Debug, Default)]
pub(crate) struct EdgeShard {
    /// `rows[local(lo)]` = sorted adjacency of node `lo`.
    rows: Vec<Vec<EdgeShared>>,
    /// This shard's slice of the current topology batch, in `(seq)`
    /// order. Filled by the engine at the batch barrier, drained by
    /// [`apply_batch`](Self::apply_batch); capacity is reused across
    /// batches.
    pub batch: Vec<(LinkChangeKind, Edge, u64)>,
}

impl EdgeShard {
    /// The canonical state of `edge` within this shard, created on first
    /// contact. `edge.lo()` must be owned by this shard.
    fn entry(&mut self, edge: Edge, shard_count: usize) -> &mut EdgeShared {
        let row = &mut self.rows[edge.lo().index() / shard_count];
        match row.binary_search_by_key(&edge.hi(), |e| e.neighbor) {
            Ok(i) => &mut row[i],
            Err(i) => {
                row.insert(i, EdgeShared::new(edge.hi()));
                &mut row[i]
            }
        }
    }

    /// Applies one topology change to this shard's slice of the edge
    /// state. The graph mirror, stats and backlog accounting stay with
    /// the engine — this is only the per-edge canonical mutation.
    pub fn apply(&mut self, kind: LinkChangeKind, edge: Edge, version: u64, shard_count: usize) {
        let entry = self.entry(edge, shard_count);
        match kind {
            LinkChangeKind::Added => {
                entry.epoch += 1;
                entry.live = true;
                entry.last_add_version = version;
            }
            LinkChangeKind::Removed => {
                entry.last_remove_version = version;
                entry.live = false;
            }
        }
    }

    /// Drains [`batch`](Self::batch), applying every change in the order
    /// it was pushed (queue-`seq` order — the engine fills batches from
    /// the sorted instant). Runs on the shard's pinned pool worker
    /// during a wide batch, inline otherwise; either way the resulting
    /// edge state is identical.
    pub fn apply_batch(&mut self, shard_count: usize) {
        let batch = std::mem::take(&mut self.batch);
        for &(kind, edge, version) in &batch {
            self.apply(kind, edge, version, shard_count);
        }
        self.batch = batch;
        self.batch.clear();
    }

    /// Heap bytes of this shard's adjacency rows.
    fn rows_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.rows.capacity() * size_of::<Vec<EdgeShared>>()
            + self
                .rows
                .iter()
                .map(|row| row.capacity() * size_of::<EdgeShared>())
                .sum::<usize>()
    }
}

/// The canonical edge state of the whole network, sharded by the lower
/// endpoint's owner so churn events route to the shard that owns them.
///
/// This is the incrementally maintained successor of the old
/// `TopologySchedule::shard_view` pre-sizing (deleted with the eager
/// pre-load): entries appear when an edge
/// first matters (initial set at build, churned edges at pull time) and
/// add/remove deltas are applied per instant as the pulled events fire.
/// Content is a function of the event stream alone — never of the shard
/// count or of pull timing — which is why traces do not depend on the
/// worker count.
///
/// Reads go through a shared reference during parallel segments; writes
/// happen only at barriers between segments — serially for narrow
/// topology batches, or split `&mut` per [`EdgeShard`] across the pool
/// for wide ones (disjoint rows, so the borrow checker enforces what the
/// old serial-only discipline promised).
#[derive(Debug)]
pub(crate) struct EdgeStore {
    /// One [`EdgeShard`] per worker shard.
    pub shards: Vec<EdgeShard>,
    shard_count: usize,
}

impl EdgeStore {
    /// An empty store over `n` nodes split into `shard_count` shards.
    pub fn new(n: usize, shard_count: usize) -> Self {
        assert!(shard_count >= 1);
        let mut shards: Vec<EdgeShard> = (0..shard_count).map(|_| EdgeShard::default()).collect();
        for (s, shard) in shards.iter_mut().enumerate() {
            let local_n = n / shard_count + usize::from(s < n % shard_count);
            shard.rows.resize(local_n, Vec::new());
        }
        EdgeStore {
            shards,
            shard_count,
        }
    }

    /// Number of edge shards (always the worker shard count).
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The shard owning `edge`'s canonical row (its lower endpoint's).
    #[inline]
    pub fn shard_of(&self, edge: Edge) -> usize {
        edge.lo().index() % self.shard_count
    }

    /// Applies one topology change serially (narrow-batch and stepped
    /// paths; the wide path goes through [`EdgeShard::apply_batch`]).
    pub fn apply(&mut self, kind: LinkChangeKind, edge: Edge, version: u64) {
        let s = self.shard_of(edge);
        self.shards[s].apply(kind, edge, version, self.shard_count);
    }

    /// Marks an initial edge live at epoch 1, change-version 1.
    pub fn insert_initial(&mut self, edge: Edge) {
        let entry = self.entry(edge);
        entry.live = true;
        entry.epoch = 1;
        entry.versions = 1;
        entry.last_add_version = 1;
    }

    /// Assigns the next change version of `edge` (creating the entry on
    /// first contact). Called at pull time, in stream order, so version
    /// numbers are monotone per edge and independent of thread count.
    pub fn next_version(&mut self, edge: Edge) -> u64 {
        let entry = self.entry(edge);
        entry.versions += 1;
        entry.versions
    }

    #[inline]
    fn row(&self, lo: NodeId) -> &Vec<EdgeShared> {
        let i = lo.index();
        &self.shards[i % self.shard_count].rows[i / self.shard_count]
    }

    /// The canonical state of `edge`, if any contact has happened.
    #[inline]
    pub fn find(&self, edge: Edge) -> Option<&EdgeShared> {
        let row = self.row(edge.lo());
        row.binary_search_by_key(&edge.hi(), |e| e.neighbor)
            .ok()
            .map(|i| &row[i])
    }

    /// The canonical state of `edge`, created on first contact.
    pub fn entry(&mut self, edge: Edge) -> &mut EdgeShared {
        let s = self.shard_of(edge);
        let shard_count = self.shard_count;
        self.shards[s].entry(edge, shard_count)
    }

    /// Heap bytes of the canonical edge state (topology plane meter).
    /// Batch buffers are scratch, metered by
    /// [`scratch_bytes`](Self::scratch_bytes) instead.
    pub fn heap_bytes(&self) -> usize {
        self.shards.capacity() * std::mem::size_of::<EdgeShard>()
            + self
                .shards
                .iter()
                .map(EdgeShard::rows_heap_bytes)
                .sum::<usize>()
    }

    /// Heap bytes of the per-shard topology batch buffers (the
    /// dispatch-scratch plane meter).
    pub fn scratch_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.batch.capacity() * std::mem::size_of::<(LinkChangeKind, Edge, u64)>())
            .sum()
    }
}

/// One node's timers, sorted by kind. An *armed* timer is an entry whose
/// `armed` flag is set and whose generation must match the alarm's;
/// cancelling bumps the generation and clears the flag but keeps the
/// entry (generation continuity — removing it would let a later `arm`
/// restart at generation 1 and alias a stale in-flight alarm); firing
/// removes the entry.
#[derive(Clone, Debug, Default)]
pub(crate) struct TimerSlots {
    /// `(kind, generation, armed)`.
    v: Vec<(TimerKind, u64, bool)>,
}

impl TimerSlots {
    #[inline]
    pub fn get(&self, kind: TimerKind) -> Option<u64> {
        self.v
            .binary_search_by_key(&kind, |e| e.0)
            .ok()
            .map(|i| self.v[i].1)
    }

    /// `set_timer`: bump the generation (inserting at 0 first) and return
    /// the new value.
    #[inline]
    pub fn arm(&mut self, kind: TimerKind) -> u64 {
        match self.v.binary_search_by_key(&kind, |e| e.0) {
            Ok(i) => {
                self.v[i].1 = self.v[i].1.wrapping_add(1);
                self.v[i].2 = true;
                self.v[i].1
            }
            Err(i) => {
                self.v.insert(i, (kind, 1, true));
                1
            }
        }
    }

    /// `cancel`: bump the generation if present (entry stays).
    #[inline]
    pub fn cancel(&mut self, kind: TimerKind) {
        if let Ok(i) = self.v.binary_search_by_key(&kind, |e| e.0) {
            self.v[i].1 = self.v[i].1.wrapping_add(1);
            self.v[i].2 = false;
        }
    }

    /// A fired alarm consumes its entry.
    #[inline]
    pub fn disarm(&mut self, kind: TimerKind) {
        if let Ok(i) = self.v.binary_search_by_key(&kind, |e| e.0) {
            self.v.remove(i);
        }
    }

    /// Crash support: bump *every* timer's generation so all in-flight
    /// alarms go stale. Entries stay present (like
    /// [`cancel`](Self::cancel)).
    pub fn cancel_all(&mut self) {
        for e in &mut self.v {
            e.1 = e.1.wrapping_add(1);
            e.2 = false;
        }
    }

    /// True if any timer is armed (an alarm is genuinely in flight).
    /// Cancelled entries — generation counters kept for continuity — do
    /// not count.
    #[inline]
    pub fn any_armed(&self) -> bool {
        self.v.iter().any(|e| e.2)
    }

    /// Heap bytes backing the entry array.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.v.capacity() * std::mem::size_of::<(TimerKind, u64, bool)>()
    }
}

/// A node's view of one neighbor: state that only this node ever touches.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PeerLocal {
    /// The other endpoint.
    pub neighbor: NodeId,
    /// Highest change version this node has been told about.
    pub discovered_version: u64,
    /// Latest delivery already scheduled from this node to `neighbor`
    /// (FIFO enforcement for the directed link).
    pub fifo_out: Time,
}

impl PeerLocal {
    fn new(neighbor: NodeId) -> Self {
        PeerLocal {
            neighbor,
            discovered_version: 0,
            fifo_out: Time::ZERO,
        }
    }
}

/// The node-local engine state of one shard, laid out struct-of-arrays
/// and sized by the **touched-node watermark**: every array covers local
/// indices `0..watermark()`, where the watermark is the highest local
/// index any event has reached (plus one). Untouched nodes occupy no
/// slots at all; touched nodes occupy compact fixed-size slots whose two
/// heap members (RNG stream, drift cursor) stay `None` until genuinely
/// needed.
#[derive(Debug, Default)]
pub(crate) struct NodeTable {
    /// Armed timers with generation counters.
    pub timers: Vec<TimerSlots>,
    /// Per-neighbor local state, sorted by neighbor id.
    pub peers: Vec<Vec<PeerLocal>>,
    /// The node's private random stream (delay/discovery sampling and
    /// `Context::rng`), seeded from `(simulation seed, node id)` on the
    /// **first draw** — identical stream whenever created, so laziness
    /// never shows in a trace.
    pub rng: Vec<Option<Box<StdRng>>>,
    /// Memoized hardware reading at `hw_time` (one drift-plane
    /// evaluation per node per instant; `H(0) = 0` makes the default
    /// slot a valid memo).
    pub hw: Vec<f64>,
    /// The time `hw` was evaluated at.
    pub hw_time: Vec<Time>,
    /// The node's lazy drift cursor — the *only* per-node state of the
    /// drift plane. `None` until the node's clock is first evaluated
    /// past time 0 (and permanently for stateless eager adapters).
    pub drift: Vec<Option<Box<DriftCursor>>>,
    /// The cold tier: a packed byte blob per evicted node, `None` while
    /// hot. The blob holds the automaton's drained heap state plus this
    /// table's timer generations and peer watermarks; the next touching
    /// event rehydrates it in place (see [`NodeTable::rehydrate`]).
    pub cold: Vec<Option<Box<[u8]>>>,
    /// Total bytes across all cold blobs (the automaton-cold meter).
    cold_blob_bytes: usize,
    /// Nodes evicted so far (engine diagnostic; deliberately *not* in
    /// [`crate::SimStats`], so stats stay equal between runs that do and
    /// do not evict).
    pub evictions: u64,
    /// Nodes rehydrated so far.
    pub rehydrations: u64,
}

impl NodeTable {
    /// Grows every array to cover `local` (the touched-node watermark).
    #[inline]
    pub fn ensure(&mut self, local: usize) {
        if local >= self.timers.len() {
            let n = local + 1;
            self.timers.resize_with(n, TimerSlots::default);
            self.peers.resize_with(n, Vec::new);
            self.rng.resize_with(n, || None);
            self.hw.resize(n, 0.0);
            self.hw_time.resize(n, Time::ZERO);
            self.drift.resize_with(n, || None);
            self.cold.resize_with(n, || None);
        }
    }

    /// Slots currently materialized (the touched-node watermark).
    #[inline]
    pub fn watermark(&self) -> usize {
        self.timers.len()
    }

    /// Node `local`'s state for neighbor `v`, created on first contact.
    #[inline]
    pub fn peer(&mut self, local: usize, v: NodeId) -> &mut PeerLocal {
        let peers = &mut self.peers[local];
        match peers.binary_search_by_key(&v, |p| p.neighbor) {
            Ok(i) => &mut peers[i],
            Err(i) => {
                peers.insert(i, PeerLocal::new(v));
                &mut peers[i]
            }
        }
    }

    /// Drift cursors materialized in this table.
    pub fn drift_cursors(&self) -> usize {
        self.drift.iter().filter(|c| c.is_some()).count()
    }

    /// RNG streams materialized in this table.
    pub fn rng_streams(&self) -> usize {
        self.rng.iter().filter(|r| r.is_some()).count()
    }

    /// True if node `local` currently lives in the cold tier.
    #[inline]
    pub fn is_cold(&self, local: usize) -> bool {
        local < self.cold.len() && self.cold[local].is_some()
    }

    /// Nodes currently in the cold tier.
    pub fn cold_nodes(&self) -> usize {
        self.cold.iter().filter(|c| c.is_some()).count()
    }

    /// Total packed bytes in the cold tier.
    #[inline]
    pub fn cold_bytes(&self) -> usize {
        self.cold_blob_bytes
    }

    /// Tries to evict node `local` into the cold tier. Succeeds only when
    /// the node is genuinely quiescent from every angle the engine can
    /// see *locally* — which is what keeps the sweep thread-invariant:
    ///
    /// * the automaton reports [`Automaton::quiescent`] and agrees to
    ///   pack (weighted nodes refuse),
    /// * no timer is armed, so every alarm still in the wheel is stale
    ///   whether checked against the hot entry (generation mismatch) or
    ///   the drained one (`get` → `None`) — alarms therefore never need
    ///   to rehydrate,
    /// * no RNG stream has materialized (stream position is not
    ///   reconstructible from the seed).
    ///
    /// On success the automaton's heap state, the timer generations and
    /// the peer watermarks are packed into one blob, their hot storage is
    /// released, and the drift cursor is dropped (re-materialization is
    /// bit-neutral by the lazy-drift contract). Inline state — clocks,
    /// hardware memo — stays hot, so snapshots of cold nodes read
    /// exactly.
    pub fn pack_node<A: crate::automaton::Automaton>(
        &mut self,
        local: usize,
        node: &mut A,
    ) -> bool {
        if self.is_cold(local)
            || local >= self.watermark()
            || self.rng[local].is_some()
            || self.timers[local].any_armed()
            || !node.quiescent()
        {
            return false;
        }
        let mut auto = Vec::new();
        if !node.pack_cold(&mut auto) {
            return false;
        }
        let timers = std::mem::take(&mut self.timers[local]);
        let peers = std::mem::take(&mut self.peers[local]);
        let mut blob = Vec::with_capacity(12 + auto.len() + 13 * timers.v.len() + 20 * peers.len());
        blob.extend_from_slice(&(auto.len() as u32).to_le_bytes());
        blob.extend_from_slice(&auto);
        blob.extend_from_slice(&(timers.v.len() as u32).to_le_bytes());
        for &(kind, generation, armed) in &timers.v {
            debug_assert!(!armed, "armed timers block eviction");
            match kind {
                TimerKind::Tick => {
                    blob.push(0);
                    blob.extend_from_slice(&0u32.to_le_bytes());
                }
                TimerKind::Lost(v) => {
                    blob.push(1);
                    blob.extend_from_slice(&(v.index() as u32).to_le_bytes());
                }
            }
            blob.extend_from_slice(&generation.to_le_bytes());
        }
        blob.extend_from_slice(&(peers.len() as u32).to_le_bytes());
        for p in &peers {
            blob.extend_from_slice(&(p.neighbor.index() as u32).to_le_bytes());
            blob.extend_from_slice(&p.discovered_version.to_le_bytes());
            blob.extend_from_slice(&p.fifo_out.seconds().to_bits().to_le_bytes());
        }
        self.drift[local] = None;
        self.cold_blob_bytes += blob.len();
        self.cold[local] = Some(blob.into_boxed_slice());
        self.evictions += 1;
        true
    }

    /// Restores a cold node in place: exact inverse of
    /// [`pack_node`](Self::pack_node). No-op when the node is hot.
    pub fn rehydrate<A: crate::automaton::Automaton>(&mut self, local: usize, node: &mut A) {
        let Some(blob) = self.cold.get_mut(local).and_then(|c| c.take()) else {
            return;
        };
        self.cold_blob_bytes -= blob.len();
        let mut r = BlobReader::new(&blob);
        let auto_len = r.u32() as usize;
        node.unpack_cold(r.bytes(auto_len));
        let timer_len = r.u32() as usize;
        let mut timers = TimerSlots::default();
        for _ in 0..timer_len {
            let tag = r.u8();
            let id = r.u32() as usize;
            let kind = match tag {
                0 => TimerKind::Tick,
                _ => TimerKind::Lost(NodeId::from_index(id)),
            };
            // Packed in sorted order; cancelled (unarmed) by invariant.
            timers.v.push((kind, r.u64(), false));
        }
        let peer_len = r.u32() as usize;
        let mut peers = Vec::with_capacity(peer_len);
        for _ in 0..peer_len {
            let neighbor = NodeId::from_index(r.u32() as usize);
            let discovered_version = r.u64();
            let fifo_out = Time::new(f64::from_bits(r.u64()));
            peers.push(PeerLocal {
                neighbor,
                discovered_version,
                fifo_out,
            });
        }
        r.finish();
        self.timers[local] = timers;
        self.peers[local] = peers;
        self.rehydrations += 1;
    }

    /// Heap bytes of the drift plane's share of this table: the hardware
    /// memo columns, the cursor column, and the materialized cursor
    /// boxes.
    pub fn drift_bytes(&self) -> usize {
        use std::mem::size_of;
        self.hw.capacity() * size_of::<f64>()
            + self.hw_time.capacity() * size_of::<Time>()
            + self.drift.capacity() * size_of::<Option<Box<DriftCursor>>>()
            + self.drift.iter().flatten().count() * size_of::<DriftCursor>()
    }

    /// Heap bytes of the engine-side node state counted into the
    /// automaton-hot plane: timer/peer/RNG/cold columns plus the nested
    /// timer and peer entries and materialized RNG boxes. (Automaton
    /// struct and heap bytes, cold blobs and drift state are metered
    /// separately.)
    pub fn engine_hot_bytes(&self) -> usize {
        use std::mem::size_of;
        let columns = self.timers.capacity() * size_of::<TimerSlots>()
            + self.peers.capacity() * size_of::<Vec<PeerLocal>>()
            + self.rng.capacity() * size_of::<Option<Box<StdRng>>>()
            + self.cold.capacity() * size_of::<Option<Box<[u8]>>>();
        let nested: usize = self
            .timers
            .iter()
            .map(TimerSlots::heap_bytes)
            .sum::<usize>()
            + self
                .peers
                .iter()
                .map(|p| p.capacity() * size_of::<PeerLocal>())
                .sum::<usize>()
            + self.rng.iter().flatten().count() * size_of::<StdRng>();
        columns + nested
    }
}

/// Little-endian cursor over a cold blob (see [`NodeTable::pack_node`]);
/// panics on truncation — blobs are produced and consumed by the same
/// code, so a short read is a bug, not an input condition.
struct BlobReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BlobReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BlobReader { bytes, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> &'a [u8] {
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        out
    }

    fn u8(&mut self) -> u8 {
        self.bytes(1)[0]
    }

    fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.bytes(4).try_into().unwrap())
    }

    fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.bytes(8).try_into().unwrap())
    }

    fn finish(self) {
        assert_eq!(self.pos, self.bytes.len(), "cold blob has trailing bytes");
    }
}

/// The node's private stream, materialized on first use (seeding is a
/// pure function of `(seed, index)`, so when it happens is unobservable).
#[inline]
pub(crate) fn lazy_rng(slot: &mut Option<Box<StdRng>>, seed: u64, index: usize) -> &mut StdRng {
    slot.get_or_insert_with(|| Box::new(StdRng::seed_from_u64(node_stream_seed(seed, index))))
}

/// Decorrelated per-node stream seed: the golden-ratio multiply spreads
/// consecutive indices across the seed space before `seed_from_u64`'s
/// SplitMix expansion. The extra constant domain-separates node streams
/// from the builder's drift-generation stream (`seed ^ GOLDEN`), which
/// node 0's stream (`seed ^ 1·GOLDEN`) would otherwise collide with —
/// correlating the delay adversary with the drift adversary.
pub(crate) fn node_stream_seed(seed: u64, index: usize) -> u64 {
    seed ^ 0xA076_1D64_78BD_642F ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The nodes owned by one worker, plus that worker's scratch buffers.
#[derive(Debug)]
pub(crate) struct Shard<A> {
    /// Automata of the owned nodes, indexed by local id.
    pub nodes: Vec<A>,
    /// Node-local engine state, struct-of-arrays, watermark-sized.
    pub table: NodeTable,
    /// Deferred effects produced during the current segment.
    pub effects: Vec<crate::dispatch::Effect>,
    /// Per-segment stats delta (merged and cleared after each segment).
    pub stats: crate::stats::SimStats,
    /// Nodes whose handlers ran in the current instant (only collected
    /// when an observer is attached).
    pub touched: Vec<NodeId>,
    /// Scratch action buffer for handler dispatch.
    pub actions: Vec<crate::automaton::Action>,
    /// This shard's slice of the current segment (reused across rounds).
    pub events: Vec<crate::event::QueuedEvent>,
    /// Never-drawn stand-in stream handed to strategies that declare
    /// [`DelayStrategy::draws`](crate::DelayStrategy::draws) `== false`,
    /// so non-random runs never materialize per-node streams.
    pub scratch_rng: StdRng,
}

/// All shards plus the id ↔ (shard, local) mapping.
#[derive(Debug)]
pub(crate) struct Shards<A> {
    pub shards: Vec<Shard<A>>,
    count: usize,
}

impl<A> Shards<A> {
    /// Distributes `n` freshly built nodes round-robin over `count`
    /// shards. Node-local engine state is **not** allocated here — the
    /// [`NodeTable`]s start empty and grow to the touched watermark.
    pub fn build(count: usize, nodes: Vec<A>) -> Self {
        assert!(count >= 1);
        let mut shards: Vec<Shard<A>> = (0..count)
            .map(|_| Shard {
                nodes: Vec::new(),
                table: NodeTable::default(),
                effects: Vec::new(),
                stats: crate::stats::SimStats::default(),
                touched: Vec::new(),
                actions: Vec::new(),
                events: Vec::new(),
                scratch_rng: StdRng::seed_from_u64(0),
            })
            .collect();
        for (i, node) in nodes.into_iter().enumerate() {
            shards[i % count].nodes.push(node);
        }
        Shards { shards, count }
    }

    /// Number of shards.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// The shard index owning `u`.
    #[inline]
    pub fn shard_of(&self, u: NodeId) -> usize {
        u.index() % self.count
    }

    /// The automaton of `u`.
    #[inline]
    pub fn node(&self, u: NodeId) -> &A {
        &self.shards[u.index() % self.count].nodes[u.index() / self.count]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_net::node;

    #[test]
    fn edge_store_routes_by_lower_endpoint_shard() {
        let mut store = EdgeStore::new(10, 3);
        let e = Edge::between(4, 7); // lo = 4 → shard 1, local 1
        assert!(store.find(e).is_none());
        store.entry(e).live = true;
        store.entry(e).epoch = 2;
        let shared = store.find(e).expect("entry created");
        assert!(shared.live);
        assert_eq!(shared.epoch, 2);
        assert_eq!(shared.neighbor, node(7));
        // A different edge off the same lower endpoint sorts after.
        store.entry(Edge::between(4, 9));
        let row: Vec<NodeId> = store.row(node(4)).iter().map(|e| e.neighbor).collect();
        assert_eq!(row, vec![node(7), node(9)]);
    }

    #[test]
    fn edge_versions_count_from_initial_presence() {
        let mut store = EdgeStore::new(6, 2);
        let seeded = Edge::between(0, 1);
        store.insert_initial(seeded);
        assert_eq!(store.find(seeded).unwrap().versions, 1);
        assert_eq!(store.next_version(seeded), 2, "first change is v2");
        assert_eq!(store.next_version(seeded), 3);
        // A churn-only edge starts counting at 1.
        let fresh = Edge::between(2, 5);
        assert_eq!(store.next_version(fresh), 1);
        assert!(!store.find(fresh).unwrap().live, "pull does not apply");
    }

    #[test]
    fn edge_shard_batch_apply_matches_serial() {
        let changes = [
            (LinkChangeKind::Added, Edge::between(0, 1), 2),
            (LinkChangeKind::Added, Edge::between(2, 5), 1),
            (LinkChangeKind::Removed, Edge::between(0, 1), 3),
            (LinkChangeKind::Added, Edge::between(0, 1), 4),
            (LinkChangeKind::Removed, Edge::between(2, 5), 2),
        ];
        let mut serial = EdgeStore::new(6, 2);
        let mut batched = EdgeStore::new(6, 2);
        for store in [&mut serial, &mut batched] {
            store.insert_initial(Edge::between(0, 1));
        }
        for &(kind, edge, version) in &changes {
            serial.apply(kind, edge, version);
        }
        for &(kind, edge, version) in &changes {
            let s = batched.shard_of(edge);
            batched.shards[s].batch.push((kind, edge, version));
        }
        for s in &mut batched.shards {
            s.apply_batch(2);
        }
        for e in [Edge::between(0, 1), Edge::between(2, 5)] {
            let a = serial.find(e).expect("serial entry");
            let b = batched.find(e).expect("batched entry");
            assert_eq!(
                (a.live, a.epoch, a.last_add_version, a.last_remove_version),
                (b.live, b.epoch, b.last_add_version, b.last_remove_version),
                "batched apply diverged on {e:?}"
            );
        }
        assert!(batched.shards.iter().all(|s| s.batch.is_empty()));
        assert!(batched.scratch_bytes() > 0, "batch capacity is retained");
    }

    #[test]
    fn timer_slots_generation_discipline() {
        let mut t = TimerSlots::default();
        assert_eq!(t.get(TimerKind::Tick), None);
        assert_eq!(t.arm(TimerKind::Tick), 1);
        assert_eq!(t.arm(TimerKind::Tick), 2);
        t.cancel(TimerKind::Tick);
        assert_eq!(t.get(TimerKind::Tick), Some(3));
        t.disarm(TimerKind::Tick);
        assert_eq!(t.get(TimerKind::Tick), None);
        // Re-arming after a fire continues the old count? No: the entry was
        // consumed, so arming restarts at 1 — matching the legacy engine's
        // HashMap semantics where a fired timer's entry was removed.
        assert_eq!(t.arm(TimerKind::Tick), 1);
    }

    #[test]
    fn node_table_grows_to_the_touched_watermark() {
        let mut t = NodeTable::default();
        assert_eq!(t.watermark(), 0, "no state before the first touch");
        t.ensure(4);
        assert_eq!(t.watermark(), 5);
        assert_eq!(t.drift_cursors(), 0, "cursors stay lazy inside slots");
        assert_eq!(t.rng_streams(), 0, "streams stay lazy inside slots");
        t.ensure(2); // never shrinks
        assert_eq!(t.watermark(), 5);
        // First contact creates a peer slot; the rng materializes on
        // first draw with the exact keyed stream.
        t.peer(3, node(9)).discovered_version = 7;
        assert_eq!(t.peer(3, node(9)).discovered_version, 7);
        use rand::RngCore;
        let drawn = lazy_rng(&mut t.rng[1], 42, 1).next_u64();
        let mut reference = StdRng::seed_from_u64(node_stream_seed(42, 1));
        assert_eq!(drawn, reference.next_u64());
        assert_eq!(t.rng_streams(), 1);
    }

    #[test]
    fn shards_round_robin_mapping() {
        let shards = Shards::build(3, (0..8u32).collect::<Vec<_>>());
        assert_eq!(shards.count(), 3);
        for i in 0..8usize {
            assert_eq!(shards.shard_of(node(i)), i % 3);
            assert_eq!(*shards.node(node(i)), i as u32);
        }
        assert_eq!(shards.shards[0].nodes, vec![0, 3, 6]);
        assert_eq!(shards.shards[1].nodes, vec![1, 4, 7]);
        assert_eq!(shards.shards[2].nodes, vec![2, 5]);
    }

    #[test]
    fn timer_slots_track_armed_state() {
        let mut t = TimerSlots::default();
        assert!(!t.any_armed());
        t.arm(TimerKind::Tick);
        assert!(t.any_armed());
        t.cancel(TimerKind::Tick);
        assert!(!t.any_armed(), "cancelled entry keeps gen, not armed");
        assert_eq!(t.get(TimerKind::Tick), Some(2), "generation continuity");
        t.arm(TimerKind::Lost(node(3)));
        t.cancel_all();
        assert!(!t.any_armed());
    }

    /// Minimal automaton with one heap member, for cold-tier round trips.
    struct PackMe {
        data: Vec<u8>,
    }

    impl crate::automaton::Automaton for PackMe {
        fn on_start(&mut self, _ctx: &mut crate::automaton::Context<'_>) {}
        fn on_receive(
            &mut self,
            _ctx: &mut crate::automaton::Context<'_>,
            _from: NodeId,
            _msg: crate::event::Message,
        ) {
        }
        fn on_discover(
            &mut self,
            _ctx: &mut crate::automaton::Context<'_>,
            _change: crate::event::LinkChange,
        ) {
        }
        fn on_alarm(&mut self, _ctx: &mut crate::automaton::Context<'_>, _kind: TimerKind) {}
        fn logical_clock(&self, hw: f64) -> f64 {
            hw
        }
        fn quiescent(&self) -> bool {
            true
        }
        fn pack_cold(&mut self, out: &mut Vec<u8>) -> bool {
            out.extend_from_slice(&self.data);
            self.data = Vec::new();
            true
        }
        fn unpack_cold(&mut self, bytes: &[u8]) {
            self.data = bytes.to_vec();
        }
        fn heap_bytes(&self) -> usize {
            self.data.capacity()
        }
    }

    #[test]
    fn cold_pack_rehydrate_roundtrips_engine_state() {
        let mut t = NodeTable::default();
        t.ensure(0);
        let mut a = PackMe {
            data: vec![9, 8, 7],
        };
        // Build engine-side state: a cancelled timer (generation must
        // survive), and a peer with a version and FIFO horizon.
        t.timers[0].arm(TimerKind::Tick);
        t.timers[0].arm(TimerKind::Lost(node(5)));
        t.timers[0].cancel(TimerKind::Tick);
        t.timers[0].cancel(TimerKind::Lost(node(5)));
        t.peer(0, node(5)).discovered_version = 3;
        t.peer(0, node(5)).fifo_out = Time::new(1.25);
        assert!(t.pack_node(0, &mut a), "quiescent node must pack");
        assert!(t.is_cold(0));
        assert_eq!(t.cold_nodes(), 1);
        assert!(t.cold_bytes() > 0);
        assert!(a.data.is_empty(), "automaton drained");
        assert_eq!(t.timers[0].get(TimerKind::Tick), None, "timers drained");
        assert!(t.peers[0].is_empty(), "peers drained");
        assert_eq!(t.evictions, 1);
        // Double eviction is refused.
        assert!(!t.pack_node(0, &mut a));

        t.rehydrate(0, &mut a);
        assert!(!t.is_cold(0));
        assert_eq!(t.cold_bytes(), 0);
        assert_eq!(a.data, vec![9, 8, 7]);
        assert_eq!(t.timers[0].get(TimerKind::Tick), Some(2));
        assert_eq!(t.timers[0].get(TimerKind::Lost(node(5))), Some(2));
        assert!(!t.timers[0].any_armed());
        assert_eq!(t.peer(0, node(5)).discovered_version, 3);
        assert_eq!(t.peer(0, node(5)).fifo_out, Time::new(1.25));
        assert_eq!(t.rehydrations, 1);
        // Rehydrating a hot node is a no-op.
        t.rehydrate(0, &mut a);
        assert_eq!(t.rehydrations, 1);
    }

    #[test]
    fn armed_timers_and_live_rng_block_eviction() {
        let mut t = NodeTable::default();
        t.ensure(1);
        let mut a = PackMe { data: vec![1] };
        t.timers[0].arm(TimerKind::Tick);
        assert!(!t.pack_node(0, &mut a), "armed timer blocks");
        assert_eq!(a.data, vec![1], "refusal must not drain");
        use rand::RngCore;
        lazy_rng(&mut t.rng[1], 7, 1).next_u64();
        assert!(!t.pack_node(1, &mut a), "materialized stream blocks");
    }

    #[test]
    fn node_streams_are_decorrelated_and_stable() {
        use rand::{Rng, RngCore, SeedableRng};
        let mut a = StdRng::seed_from_u64(node_stream_seed(42, 0));
        let mut b = StdRng::seed_from_u64(node_stream_seed(42, 1));
        let mut a2 = StdRng::seed_from_u64(node_stream_seed(42, 0));
        assert_eq!(a.next_u64(), a2.next_u64());
        let collisions = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32))
            .count();
        assert!(collisions < 4, "streams should differ: {collisions}/64");
    }
}
