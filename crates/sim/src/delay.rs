//! Message-delay adversaries.
//!
//! The environment may delay each message by any amount in `[0, T]`. The
//! lower-bound proofs pick delays adversarially — in particular the
//! Masking Lemma's execution α gives *constrained* edges a prescribed delay
//! `P(e)` and orients all other edges so that "uphill" messages take `T`
//! and "downhill" messages take `0`. [`DelayStrategy`] covers all the
//! adversaries used in the paper and the experiments.

use gcs_clocks::Time;
use gcs_net::{Edge, NodeId};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

/// How the environment assigns message delays.
#[derive(Clone, Debug)]
pub enum DelayStrategy {
    /// Every message takes exactly `delay` (must be `≤ T`).
    Constant(f64),
    /// Every message takes the maximum delay `T`.
    Max,
    /// Instant delivery (delay 0).
    Zero,
    /// Uniformly random delay in `[lo, hi] ⊆ [0, T]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// The Masking Lemma's execution-α adversary.
    ///
    /// Constrained edges (the delay mask's `E_C`) get their prescribed
    /// delay `P(e)`. Unconstrained edges are oriented by `layer` (the
    /// flexible distance `dist_M(u, ·)`): messages from lower to higher
    /// layer take `T`, messages from higher to lower layer take `0`, and
    /// messages within a layer take `intra` (the paper leaves these free;
    /// we default them to 0).
    Layered {
        /// `layer[w]` = flexible distance of node `w` from the reference.
        layer: Vec<usize>,
        /// Prescribed delays on constrained edges.
        constrained: BTreeMap<Edge, f64>,
        /// Delay for messages between same-layer unconstrained nodes.
        intra: f64,
    },
    /// Per-edge override on top of a default strategy.
    Masked {
        /// Prescribed delays for specific edges.
        pattern: BTreeMap<Edge, f64>,
        /// Fallback for everything else.
        default: Box<DelayStrategy>,
    },
    /// Replays a prescribed per-directed-link delay script — the
    /// trace-replay adversary of the model checker (`gcs-mc`): every send
    /// from `u` to `v` pops the next entry of the `(u, v)` queue, so an
    /// explored execution's exact delay choices drive the engine.
    /// **Fail-closed**: a send with no scripted entry left panics — a
    /// replay that diverges from its trace must never silently invent a
    /// delay. Deterministic at every thread count because a directed
    /// link's sends all originate at one node, whose events the engine
    /// processes in canonical sequence order.
    Scripted(DelayScript),
    /// The Masking Lemma's execution-β adversary (Lemma 4.2, Part II).
    ///
    /// In execution β a node in layer `j` has hardware clock
    /// `H^β(t) = t + min{ρt, T·j}` and message delays are chosen so that β
    /// is indistinguishable from the execution α produced by
    /// [`DelayStrategy::Layered`]: a message α-sent at `tα_s` and α-received
    /// at `tα_r` is β-sent at `tβ_s` with `H^β_x(tβ_s) = tα_s` and
    /// β-received at `tβ_r` with `H^β_y(tβ_r) = tα_r`. This variant
    /// computes `tβ_r − tβ_s` in closed form from the forward map and its
    /// inverse; the paper's four-case analysis proves the result always
    /// lies in `[0, T]` (and in `[P(e)/(1+ρ), P(e)]` on constrained edges).
    BetaLayered {
        /// `layer[w]` = flexible distance of node `w` from the reference.
        layer: Vec<usize>,
        /// Prescribed α-delays on constrained edges.
        constrained: BTreeMap<Edge, f64>,
        /// Drift bound ρ used in the layered rate schedules.
        rho: f64,
        /// α-delay for messages between same-layer unconstrained nodes.
        intra: f64,
    },
}

/// The shared queue state of [`DelayStrategy::Scripted`]: one FIFO of
/// prescribed delays per **directed** node pair, pushed in global send
/// order by the trace exporter and popped in the same order by the
/// engine. The handle is cheaply cloneable (the replay harness keeps a
/// clone to assert the script drained — a leftover entry means the engine
/// sent fewer messages than the model did).
#[derive(Clone, Debug, Default)]
pub struct DelayScript {
    queues: Arc<Mutex<ScriptQueues>>,
}

/// One FIFO of prescribed delays per directed `(from, to)` node pair.
type ScriptQueues = BTreeMap<(u32, u32), VecDeque<f64>>;

impl DelayScript {
    /// An empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a prescribed delay for the next unscripted send from
    /// `from` to `to`.
    pub fn push(&self, from: NodeId, to: NodeId, delay: f64) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "scripted delays must be finite and >= 0, got {delay}"
        );
        self.queues
            .lock()
            .expect("delay script lock poisoned")
            .entry((from.0, to.0))
            .or_default()
            .push_back(delay);
    }

    /// Prescribed delays not yet consumed (0 once the replay has used
    /// every scripted send).
    pub fn remaining(&self) -> usize {
        self.queues
            .lock()
            .expect("delay script lock poisoned")
            .values()
            .map(VecDeque::len)
            .sum()
    }

    /// Pops the next delay for a `from → to` send.
    ///
    /// # Panics
    /// Panics when the queue for that directed pair is exhausted (or was
    /// never scripted) — the fail-closed replay contract.
    fn pop(&self, from: NodeId, to: NodeId) -> f64 {
        self.queues
            .lock()
            .expect("delay script lock poisoned")
            .get_mut(&(from.0, to.0))
            .and_then(VecDeque::pop_front)
            .unwrap_or_else(|| {
                panic!(
                    "delay script exhausted for send {} -> {}: \
                     the replayed execution sent more messages than its trace",
                    from.0, to.0
                )
            })
    }
}

/// `H^β` of the Masking Lemma: `t + min{ρt, T·layer}` (Equation (1)).
#[inline]
pub fn beta_hw(t: f64, layer: usize, rho: f64, big_t: f64) -> f64 {
    t + (rho * t).min(big_t * layer as f64)
}

/// Inverse of [`beta_hw`] in `t` for fixed layer.
#[inline]
pub fn beta_hw_inverse(h: f64, layer: usize, rho: f64, big_t: f64) -> f64 {
    // The kink is at t* = layer·T/ρ, where h* = (1+ρ)·layer·T/ρ.
    let h_kink = (1.0 + rho) * big_t * layer as f64 / rho;
    if h <= h_kink {
        h / (1.0 + rho)
    } else {
        h - big_t * layer as f64
    }
}

impl DelayStrategy {
    /// True when [`delay`](Self::delay) may draw from the RNG. The engine
    /// only materializes a node's lazy private stream for drawing
    /// strategies; a non-drawing strategy is handed a never-consumed
    /// stand-in. **Contract**: any strategy that can draw must return
    /// `true` here — drawing from the stand-in would break the
    /// node-stream determinism argument.
    pub fn draws(&self) -> bool {
        match self {
            DelayStrategy::Uniform { lo, hi } => lo != hi,
            DelayStrategy::Masked { default, .. } => default.draws(),
            DelayStrategy::Constant(_)
            | DelayStrategy::Max
            | DelayStrategy::Zero
            | DelayStrategy::Layered { .. }
            | DelayStrategy::Scripted(_)
            | DelayStrategy::BetaLayered { .. } => false,
        }
    }

    /// The delay for a message sent at `now` from `from` across `edge`.
    ///
    /// `big_t` is the model's delay bound `T`; the returned value is always
    /// clamped into `[0, T]` and asserted against the strategy's own
    /// parameters in debug builds.
    pub fn delay(&self, edge: Edge, from: NodeId, now: Time, big_t: f64, rng: &mut StdRng) -> f64 {
        let raw = match self {
            DelayStrategy::Constant(d) => *d,
            DelayStrategy::Max => big_t,
            DelayStrategy::Zero => 0.0,
            DelayStrategy::Uniform { lo, hi } => {
                debug_assert!(lo <= hi && *lo >= 0.0 && *hi <= big_t);
                if lo == hi {
                    *lo
                } else {
                    rng.gen_range(*lo..=*hi)
                }
            }
            DelayStrategy::Layered {
                layer,
                constrained,
                intra,
            } => {
                if let Some(&d) = constrained.get(&edge) {
                    d
                } else {
                    let to = edge.other(from);
                    let lf = layer[from.index()];
                    let lt = layer[to.index()];
                    match lf.cmp(&lt) {
                        std::cmp::Ordering::Less => big_t,
                        std::cmp::Ordering::Greater => 0.0,
                        std::cmp::Ordering::Equal => *intra,
                    }
                }
            }
            DelayStrategy::Masked { pattern, default } => match pattern.get(&edge) {
                Some(&d) => d,
                None => default.delay(edge, from, now, big_t, rng),
            },
            DelayStrategy::Scripted(script) => script.pop(from, edge.other(from)),
            DelayStrategy::BetaLayered {
                layer,
                constrained,
                rho,
                intra,
            } => {
                let to = edge.other(from);
                let (jx, jy) = (layer[from.index()], layer[to.index()]);
                // α-delay of this message (execution α's assignment).
                let alpha_delay = if let Some(&p) = constrained.get(&edge) {
                    p
                } else {
                    match jx.cmp(&jy) {
                        std::cmp::Ordering::Less => big_t,  // uphill
                        std::cmp::Ordering::Greater => 0.0, // downhill
                        std::cmp::Ordering::Equal => *intra,
                    }
                };
                // Map through the indistinguishability correspondence.
                let tb_s = now.seconds();
                let ta_s = beta_hw(tb_s, jx, *rho, big_t);
                let ta_r = ta_s + alpha_delay;
                let tb_r = beta_hw_inverse(ta_r, jy, *rho, big_t);
                (tb_r - tb_s).max(0.0)
            }
        };
        debug_assert!(
            (0.0..=big_t + 1e-12).contains(&raw),
            "strategy produced delay {raw} outside [0, {big_t}]"
        );
        raw.clamp(0.0, big_t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_clocks::time::at;
    use gcs_net::node;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    fn e(i: usize, j: usize) -> Edge {
        Edge::between(i, j)
    }

    #[test]
    fn constant_and_extremes() {
        let mut r = rng();
        let t = at(0.0);
        assert_eq!(
            DelayStrategy::Constant(0.3).delay(e(0, 1), node(0), t, 1.0, &mut r),
            0.3
        );
        assert_eq!(
            DelayStrategy::Max.delay(e(0, 1), node(0), t, 1.0, &mut r),
            1.0
        );
        assert_eq!(
            DelayStrategy::Zero.delay(e(0, 1), node(0), t, 1.0, &mut r),
            0.0
        );
    }

    #[test]
    fn uniform_in_range() {
        let mut r = rng();
        let s = DelayStrategy::Uniform { lo: 0.2, hi: 0.8 };
        for _ in 0..100 {
            let d = s.delay(e(0, 1), node(0), at(0.0), 1.0, &mut r);
            assert!((0.2..=0.8).contains(&d));
        }
    }

    #[test]
    fn layered_orients_delays() {
        let s = DelayStrategy::Layered {
            layer: vec![0, 1, 1, 2],
            constrained: [(e(1, 2), 0.5)].into_iter().collect(),
            intra: 0.0,
        };
        let mut r = rng();
        // uphill 0->1: T
        assert_eq!(s.delay(e(0, 1), node(0), at(0.0), 1.0, &mut r), 1.0);
        // downhill 1->0: 0
        assert_eq!(s.delay(e(0, 1), node(1), at(0.0), 1.0, &mut r), 0.0);
        // constrained edge: prescribed delay regardless of direction
        assert_eq!(s.delay(e(1, 2), node(1), at(0.0), 1.0, &mut r), 0.5);
        assert_eq!(s.delay(e(1, 2), node(2), at(0.0), 1.0, &mut r), 0.5);
        // uphill 2->3 (layer 1 -> 2): T
        assert_eq!(s.delay(e(2, 3), node(2), at(0.0), 1.0, &mut r), 1.0);
    }

    #[test]
    fn masked_overrides_default() {
        let s = DelayStrategy::Masked {
            pattern: [(e(0, 1), 0.25)].into_iter().collect(),
            default: Box::new(DelayStrategy::Max),
        };
        let mut r = rng();
        assert_eq!(s.delay(e(0, 1), node(0), at(0.0), 1.0, &mut r), 0.25);
        assert_eq!(s.delay(e(1, 2), node(1), at(0.0), 1.0, &mut r), 1.0);
    }

    #[test]
    fn draws_declares_randomness_exactly() {
        assert!(!DelayStrategy::Max.draws());
        assert!(!DelayStrategy::Zero.draws());
        assert!(!DelayStrategy::Constant(0.5).draws());
        assert!(DelayStrategy::Uniform { lo: 0.1, hi: 0.9 }.draws());
        // Degenerate uniform never samples — and declares so.
        assert!(!DelayStrategy::Uniform { lo: 0.5, hi: 0.5 }.draws());
        assert!(!DelayStrategy::Masked {
            pattern: BTreeMap::new(),
            default: Box::new(DelayStrategy::Max),
        }
        .draws());
        assert!(DelayStrategy::Masked {
            pattern: BTreeMap::new(),
            default: Box::new(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 }),
        }
        .draws());
    }

    #[test]
    fn scripted_pops_per_directed_pair_in_fifo_order() {
        let script = DelayScript::new();
        script.push(node(0), node(1), 0.25);
        script.push(node(0), node(1), 0.75);
        script.push(node(1), node(0), 0.0);
        let s = DelayStrategy::Scripted(script.clone());
        assert!(!s.draws());
        assert_eq!(script.remaining(), 3);
        let mut r = rng();
        // Directed: 0 -> 1 and 1 -> 0 consume independent queues.
        assert_eq!(s.delay(e(0, 1), node(0), at(0.0), 1.0, &mut r), 0.25);
        assert_eq!(s.delay(e(0, 1), node(1), at(0.0), 1.0, &mut r), 0.0);
        assert_eq!(s.delay(e(0, 1), node(0), at(1.0), 1.0, &mut r), 0.75);
        assert_eq!(script.remaining(), 0, "script fully drained");
    }

    #[test]
    #[should_panic(expected = "delay script exhausted")]
    fn scripted_fails_closed_on_underrun() {
        let script = DelayScript::new();
        script.push(node(0), node(1), 0.5);
        let s = DelayStrategy::Scripted(script);
        let mut r = rng();
        let _ = s.delay(e(0, 1), node(0), at(0.0), 1.0, &mut r);
        let _ = s.delay(e(0, 1), node(0), at(1.0), 1.0, &mut r);
    }

    #[test]
    fn clamps_to_bound() {
        // A constant above T is clamped (and would assert in debug for the
        // strategy's own parameter — use release-style tolerance here).
        let s = DelayStrategy::Constant(0.5);
        let mut r = rng();
        let d = s.delay(e(0, 1), node(0), at(0.0), 1.0, &mut r);
        assert!(d <= 1.0);
    }
}
