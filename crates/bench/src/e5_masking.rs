//! E5 — Lemma 4.2 (the Masking Lemma): at any time
//! `t > T·d·(1 + 1/ρ)`, the adversary can have built skew
//! `≥ T·d/4` between nodes at flexible distance `d`, while every delay —
//! including on the constrained (masked) links — stays legal.
//!
//! We sweep the flexible distance on a masked path, run the real algorithm
//! under the β adversary, measure the skew, and numerically verify the
//! legality of every delay the adversary would assign (the four-case
//! analysis of the lemma's Part II).

use gcs_analysis::{parallel_map, Table};
use gcs_clocks::time::at;
use gcs_clocks::ScheduleDrift;
use gcs_core::{AlgoParams, GradientNode};
use gcs_lowerbound::mask::{flexible_layers, DelayMask};
use gcs_lowerbound::masking;
use gcs_net::{generators, node, ScheduleSource, TopologySchedule};
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder};

/// Configuration for E5.
#[derive(Clone, Debug)]
pub struct Config {
    /// Flexible distances to sweep (path length = d + masked prefix).
    pub distances: Vec<usize>,
    /// Number of constrained (masked) edges prefixed to the path.
    pub masked_prefix: usize,
    /// Model parameters.
    pub model: ModelParams,
    /// Subjective resend interval.
    pub delta_h: f64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            distances: vec![2, 4, 8, 16],
            masked_prefix: 2,
            model: ModelParams::new(0.01, 1.0, 2.0),
            delta_h: 0.5,
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Point {
    /// Flexible distance `d = dist_M(u, v)`.
    pub d: usize,
    /// Time at which the lemma guarantee applies.
    pub ready_time: f64,
    /// Measured skew in the β execution at that time.
    pub measured: f64,
    /// The bound `T·d/4`.
    pub bound: f64,
    /// Delay-legality violations found by the Part II checker (must be 0).
    pub legality_violations: usize,
}

/// Runs the sweep (parallel over distances).
pub fn run(config: &Config) -> Vec<Point> {
    parallel_map(&config.distances, |&d| {
        let n = config.masked_prefix + d + 1;
        let edges = generators::path(n);
        // Constrain the first `masked_prefix` edges at delay T.
        let mask = DelayMask::uniform(
            edges.iter().copied().take(config.masked_prefix),
            config.model.t,
        );
        let u = node(0);
        let v = node(n - 1);
        let layers = flexible_layers(n, edges.clone(), &mask, u);
        assert_eq!(layers[v.index()], d);

        // Numerically verify the Part II case analysis across all ramp
        // phases.
        let ready = masking::lemma42_ready_time(d, config.model.t, config.model.rho);
        let send_times: Vec<f64> = (0..600).map(|i| i as f64 * ready / 500.0).collect();
        let violations = masking::verify_beta_legality(
            &edges,
            &layers,
            &mask,
            config.model.rho,
            config.model.t,
            0.0,
            &send_times,
        );

        // Run the β execution against the real algorithm.
        let params = AlgoParams::with_minimal_b0(config.model, n, config.delta_h);
        let clocks = layers
            .iter()
            .map(|&j| {
                gcs_clocks::HardwareClock::new(
                    gcs_clocks::drift::layered_beta(j, config.model.rho, config.model.t),
                    config.model.rho,
                )
            })
            .collect();
        let mut sim = SimBuilder::topology(
            config.model,
            ScheduleSource::new(TopologySchedule::static_graph(n, edges)),
        )
        .drift(ScheduleDrift::new(clocks))
        .delay(DelayStrategy::BetaLayered {
            layer: layers,
            constrained: mask.pattern().clone(),
            rho: config.model.rho,
            intra: 0.0,
        })
        .build_with(|_| GradientNode::new(params));
        sim.run_until(at(ready + 10.0));
        Point {
            d,
            ready_time: ready,
            measured: (sim.logical(u) - sim.logical(v)).abs(),
            bound: masking::lemma42_skew_bound(d, config.model.t),
            legality_violations: violations.len(),
        }
    })
}

/// Renders the sweep table.
pub fn render(points: &[Point]) -> Table {
    let mut t = Table::new(
        "E5 / Lemma 4.2 — masked skew buildup vs flexible distance",
        &[
            "dist_M(u,v)",
            "ready time",
            "measured skew",
            "T·d/4 bound",
            "measured/bound",
            "illegal delays",
        ],
    );
    for p in points {
        t.row(&[
            p.d.to_string(),
            format!("{:.0}", p.ready_time),
            format!("{:.2}", p.measured),
            format!("{:.2}", p.bound),
            format!("{:.2}", p.measured / p.bound),
            p.legality_violations.to_string(),
        ]);
    }
    t
}

/// E5 behind the [`Scenario`](crate::scenario::Scenario) surface.
#[derive(Clone, Debug, Default)]
pub struct Experiment {
    /// Masking-lemma configuration.
    pub config: Config,
}

impl crate::scenario::Scenario for Experiment {
    fn id(&self) -> &'static str {
        "E5"
    }
    fn title(&self) -> &'static str {
        "skew built by legal delay masking on a chain"
    }
    fn claim(&self) -> &'static str {
        "Lemma 4.2 (Masking Lemma) — ≥ T·d/4 skew with legal delays"
    }
    fn meta(&self) -> crate::scenario::ScenarioMeta {
        crate::scenario::ScenarioMeta {
            name: "E5",
            n: self
                .config
                .distances
                .iter()
                .map(|d| d + self.config.masked_prefix + 1)
                .max(),
            family: crate::scenario::ScenarioFamily::Claim,
            fault_profile: None,
        }
    }
    fn run_scenario(&self) -> crate::scenario::ScenarioReport {
        let points = run(&self.config);
        let mut rep = crate::scenario::ScenarioReport::new();
        rep.table(render(&points));
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_skew_meets_lemma_bound() {
        let config = Config {
            distances: vec![2, 4, 8],
            ..Config::default()
        };
        let points = run(&config);
        for p in &points {
            assert_eq!(p.legality_violations, 0, "d={}: illegal delays", p.d);
            assert!(
                p.measured >= p.bound,
                "d={}: measured {} below bound {}",
                p.d,
                p.measured,
                p.bound
            );
        }
        // Shape: skew grows with flexible distance.
        assert!(points[2].measured > points[0].measured);
    }
}
