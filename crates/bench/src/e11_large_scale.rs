//! E11 — the lower-bound gradient at scale: deterministic parallel
//! dispatch on the E1-churn workload at `n = 65 536`.
//!
//! Theorem 4.1's `Ω(log n / log log n)` gradient on new edges is an
//! *asymptotic* statement — at the `n ≈ 1k` of E1–E10 the predicted
//! constant is indistinguishable from noise. E11 makes large-`n` runs
//! first-class: the same path-plus-flapping-chords workload as E1, at
//! `n = 65 536`, executed by the sharded parallel dispatcher at several
//! worker counts, with **streaming** observability
//! ([`gcs_analysis::SkewStream`]) instead of `O(n + m)` snapshots.
//!
//! The scenario reports three things:
//!
//! * events/sec per worker count (the trajectory number `run_all` also
//!   records in `BENCH_engine.json`, re-anchored to the batched serial
//!   engine as baseline),
//! * a determinism cross-check: every worker count must produce the exact
//!   same execution counters (the full bit-identity pin lives in
//!   `tests/determinism.rs`),
//! * streamed peak global/local skew with the probe's certified error
//!   bound.

use crate::engine_bench::{measure, Measurement, Workload};
use gcs_analysis::{SkewStream, Table};
use gcs_clocks::time::at;

/// Configuration for E11.
#[derive(Clone, Debug)]
pub struct Config {
    /// Node count (the headline configuration is `65 536`).
    pub n: usize,
    /// Real-time horizon.
    pub horizon: f64,
    /// Worker counts to sweep (the first is the baseline).
    pub threads: Vec<usize>,
    /// Seed for churn placement and the per-node streams.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        let w = Workload::large_scale();
        Config {
            n: w.n,
            horizon: w.horizon,
            threads: vec![1, 2, 8],
            seed: w.seed,
        }
    }
}

impl Config {
    fn workload(&self) -> Workload {
        Workload {
            n: self.n,
            horizon: self.horizon,
            churn: true,
            seed: self.seed,
            threads: 1,
        }
    }
}

/// Full result of the scale run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Per-worker-count runs, in configured order (each carries its own
    /// execution counters, which must be identical across all points).
    pub points: Vec<Measurement>,
    /// Streamed peak global skew (from the baseline run).
    pub peak_global: f64,
    /// Streamed peak local skew (from the baseline run).
    pub peak_local: f64,
    /// The probe's certified error bound on those peaks.
    pub skew_error_bound: f64,
    /// True if all worker counts produced identical counters.
    pub deterministic: bool,
}

/// Runs the sweep. The baseline (first) worker count also drives the
/// streaming skew probe; the remaining counts are pure timing runs.
pub fn run(config: &Config) -> Outcome {
    assert!(!config.threads.is_empty());
    let w = config.workload();
    let mut points = Vec::new();
    let mut probe = SkewStream::new(config.n, w.model().rho, 64);
    // Baseline run with the streaming probe attached (observability must
    // not require snapshots at this scale).
    let baseline_threads = config.threads[0];
    let mut sim = w.with_threads(baseline_threads).build();
    sim.run_until_with(at(config.horizon), |sim, t, touched| {
        probe.observe(sim, t, touched);
    });
    let baseline_stats = *sim.stats();
    drop(sim);
    // Timing runs without the probe, one per worker count; each run's own
    // counters double as the determinism cross-check against the baseline.
    for &t in &config.threads {
        points.push(measure(&w.with_threads(t)));
    }
    let deterministic = points.iter().all(|p| p.stats == baseline_stats);
    Outcome {
        points,
        peak_global: probe.peak_global_skew(),
        peak_local: probe.peak_local_skew(),
        skew_error_bound: probe.error_bound(),
        deterministic,
    }
}

/// Renders the throughput-vs-threads table.
pub fn render(outcome: &Outcome) -> Table {
    let base = outcome.points[0].events_per_sec;
    let mut t = Table::new(
        "E11 / Theorem 4.1 at scale — events/sec vs worker count (n = 65 536 class, churn on)",
        &[
            "threads",
            "events",
            "setup s",
            "wall s",
            "events/sec",
            "vs serial",
        ],
    );
    for p in &outcome.points {
        t.row(&[
            p.threads.to_string(),
            p.events.to_string(),
            format!("{:.3}", p.setup_s),
            format!("{:.2}", p.wall_s),
            format!("{:.0}", p.events_per_sec),
            format!("{:.2}x", p.events_per_sec / base),
        ]);
    }
    t
}

/// E11 behind the [`Scenario`](crate::scenario::Scenario) surface.
#[derive(Clone, Debug, Default)]
pub struct Experiment {
    /// Scale-run configuration.
    pub config: Config,
}

impl crate::scenario::Scenario for Experiment {
    fn id(&self) -> &'static str {
        "E11"
    }
    fn title(&self) -> &'static str {
        "parallel dispatch throughput and streamed skew at n = 65 536"
    }
    fn claim(&self) -> &'static str {
        "Theorem 4.1 — large-n scale-up (deterministic parallel engine)"
    }
    fn meta(&self) -> crate::scenario::ScenarioMeta {
        crate::scenario::ScenarioMeta {
            name: "E11",
            n: Some(self.config.n),
            family: crate::scenario::ScenarioFamily::Scale,
            fault_profile: None,
        }
    }
    fn run_scenario(&self) -> crate::scenario::ScenarioReport {
        let out = run(&self.config);
        let mut rep = crate::scenario::ScenarioReport::new();
        rep.table(render(&out));
        rep.note(format!(
            "determinism cross-check (equal counters at all thread counts): {}",
            if out.deterministic { "PASS" } else { "FAIL" }
        ));
        rep.note(format!(
            "streamed peaks: global {:.2}, local {:.2} (certified error <= {:.3})",
            out.peak_global, out.peak_local, out.skew_error_bound
        ));
        rep.record_memory();
        rep.note(format!(
            "peak topology backlog: {} (streamed, not pre-loaded)",
            out.points[0].peak_topology_backlog,
        ));
        rep.csv(
            "e11_large_scale.csv",
            &[
                "threads",
                "events",
                "setup_s",
                "wall_s",
                "events_per_sec",
                "peak_backlog",
            ],
            out.points
                .iter()
                .map(|p| {
                    vec![
                        p.threads as f64,
                        p.events as f64,
                        p.setup_s,
                        p.wall_s,
                        p.events_per_sec,
                        p.peak_topology_backlog as f64,
                    ]
                })
                .collect(),
        );
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_down_run_is_deterministic_and_streams_skew() {
        // The module logic at a test-friendly width; the full n = 65 536
        // configuration runs via `run_all` / `exp_large_scale`.
        let config = Config {
            n: 192,
            horizon: 12.0,
            threads: vec![1, 2, 8],
            seed: 11,
        };
        let out = run(&config);
        assert!(out.deterministic, "counters diverged across thread counts");
        assert_eq!(out.points.len(), 3);
        let events = out.points[0].events;
        assert!(events > 10_000, "workload too small: {events} events");
        assert!(out.points.iter().all(|p| p.events == events));
        assert!(out.peak_global > 0.0);
        assert!(out.skew_error_bound.is_finite());
    }
}
