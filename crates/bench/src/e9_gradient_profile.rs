//! E9 — the gradient property itself, visualized as data.
//!
//! Gradient clock synchronization means the skew between two nodes scales
//! with their *distance*: neighbors are tight, far-apart nodes may drift
//! toward the global bound. We run Algorithm 2 on a long path under the
//! block-split drift adversary and report, for each hop distance `d`, the
//! worst skew observed between any pair at that distance — the "skew
//! gradient" profile. The same profile for the max-sync baseline is flat
//! only because its *local* skew is as loose as propagation allows; under
//! a merge event (E7) its local skew explodes, which is why the profile
//! alone must be read together with E7.

use gcs_analysis::{parallel_map, Table};
use gcs_clocks::time::at;
use gcs_clocks::DriftModel;
use gcs_core::{AlgoParams, GradientNode};
use gcs_net::{generators, node, ScheduleSource, TopologySchedule};
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder};

/// Configuration for the gradient profile.
#[derive(Clone, Debug)]
pub struct Config {
    /// Path length.
    pub n: usize,
    /// Model parameters.
    pub model: ModelParams,
    /// Resend interval.
    pub delta_h: f64,
    /// Distances to report (clamped to `n−1`).
    pub distances: Vec<usize>,
    /// Steady-state observation window.
    pub window: f64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 64,
            model: ModelParams::new(0.01, 1.0, 2.0),
            delta_h: 0.5,
            distances: vec![1, 2, 4, 8, 16, 32, 63],
            window: 150.0,
        }
    }
}

/// One row of the profile.
#[derive(Clone, Debug)]
pub struct ProfileRow {
    /// Hop distance.
    pub distance: usize,
    /// Worst observed skew between any pair at that distance.
    pub worst_skew: f64,
    /// The bound that applies at this distance: `d` copies of the stable
    /// local skew, capped by the global bound.
    pub bound: f64,
}

/// Runs the profile measurement.
pub fn run(config: &Config) -> Vec<ProfileRow> {
    let n = config.n;
    let params = AlgoParams::with_minimal_b0(config.model, n, config.delta_h);
    let warmup = 8.0 * n as f64;
    let horizon = warmup + config.window;
    let schedule = TopologySchedule::static_graph(n, generators::path(n));
    let mut sim = SimBuilder::topology(config.model, ScheduleSource::new(schedule))
        .drift_model(DriftModel::FastUpTo(n / 2), horizon)
        .delay(DelayStrategy::Max)
        .build_with(|_| GradientNode::new(params));
    sim.run_until(at(warmup));

    let distances: Vec<usize> = config.distances.iter().map(|&d| d.min(n - 1)).collect();
    let mut worst = vec![0.0f64; distances.len()];
    let mut t = warmup;
    while t < horizon {
        t += 1.0;
        sim.run_until(at(t));
        let clocks = sim.logical_snapshot();
        for (k, &d) in distances.iter().enumerate() {
            for i in 0..n - d {
                worst[k] = worst[k].max((clocks[i] - clocks[i + d]).abs());
            }
        }
    }
    // A node must exist at both ends; verify the sim was sane.
    debug_assert!(sim.logical(node(0)) > 0.0);
    distances
        .into_iter()
        .zip(worst)
        .map(|(distance, worst_skew)| ProfileRow {
            distance,
            worst_skew,
            bound: (distance as f64 * params.stable_local_skew()).min(params.global_skew_bound()),
        })
        .collect()
}

/// Runs profiles for several path lengths in parallel and returns
/// `(n, profile)` pairs.
pub fn run_multi(configs: &[Config]) -> Vec<(usize, Vec<ProfileRow>)> {
    parallel_map(configs, |c| (c.n, run(c)))
}

/// Renders the profile table.
pub fn render(n: usize, rows: &[ProfileRow]) -> Table {
    let mut t = Table::new(
        format!("E9 — skew gradient on a {n}-node path"),
        &["distance", "worst skew", "d x stable bound (capped)"],
    );
    for r in rows {
        t.row(&[
            r.distance.to_string(),
            format!("{:.3}", r.worst_skew),
            format!("{:.2}", r.bound),
        ]);
    }
    t
}

/// E9 behind the [`Scenario`](crate::scenario::Scenario) surface.
#[derive(Clone, Debug, Default)]
pub struct Experiment {
    /// Profile configuration.
    pub config: Config,
}

impl crate::scenario::Scenario for Experiment {
    fn id(&self) -> &'static str {
        "E9"
    }
    fn title(&self) -> &'static str {
        "worst skew as a function of graph distance"
    }
    fn claim(&self) -> &'static str {
        "§6 gradient property — skew grows with distance, bounded per hop"
    }
    fn meta(&self) -> crate::scenario::ScenarioMeta {
        crate::scenario::ScenarioMeta {
            name: "E9",
            n: Some(self.config.n),
            family: crate::scenario::ScenarioFamily::Claim,
            fault_profile: None,
        }
    }
    fn run_scenario(&self) -> crate::scenario::ScenarioReport {
        let rows = run(&self.config);
        let mut rep = crate::scenario::ScenarioReport::new();
        rep.table(render(self.config.n, &rows));
        rep.csv(
            "e9_gradient_profile.csv",
            &["distance", "worst_skew", "bound"],
            rows.iter()
                .map(|r| vec![r.distance as f64, r.worst_skew, r.bound])
                .collect(),
        );
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_grows_with_distance_and_neighbors_stay_tight() {
        let config = Config {
            n: 32,
            distances: vec![1, 4, 16, 31],
            window: 80.0,
            ..Config::default()
        };
        let rows = run(&config);
        // Monotone non-decreasing in distance (up to small noise).
        for w in rows.windows(2) {
            assert!(
                w[1].worst_skew >= w[0].worst_skew - 1e-6,
                "profile not monotone: {:?}",
                rows
            );
        }
        // The gradient: endpoint pairs carry much more skew than
        // neighbors…
        let local = rows[0].worst_skew;
        let global = rows.last().unwrap().worst_skew;
        assert!(
            global > 3.0 * local,
            "expected a gradient: local {local} vs global {global}"
        );
        // …and every distance respects its budget-chain bound.
        for r in &rows {
            assert!(r.worst_skew <= r.bound + 1e-6);
        }
    }
}
