//! E10 — the weighted-graph extension (paper §7 / companion paper \[9\]).
//!
//! Edge weights model per-link delay uncertainty: a tight link (e.g. a
//! reference-broadcast pair) gets weight `w ≪ 1` and its budget floors at
//! `B0·w`. The visible effect appears when budgets bind — during skew
//! absorption — so we run the cluster merge with the *old* edges
//! down-weighted and sweep the weight: peak old-edge skew should scale
//! ≈ linearly with `w`, and closure time inversely (the per-edge
//! Theorem 4.1 tradeoff).

use crate::scenario;
use gcs_analysis::{parallel_map, Table};
use gcs_clocks::time::at;
use gcs_clocks::ScheduleDrift;
use gcs_core::{AlgoParams, GradientNode};
use gcs_net::{node, NodeId, ScheduleSource};
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder};
use std::collections::BTreeMap;

/// Configuration for E10.
#[derive(Clone, Debug)]
pub struct Config {
    /// Nodes in the merge scenario.
    pub n: usize,
    /// Old-edge weights to sweep (the bridge always has weight 1).
    pub weights: Vec<f64>,
    /// Model parameters.
    pub model: ModelParams,
    /// Resend interval.
    pub delta_h: f64,
    /// Target initial bridge skew.
    pub target_skew: f64,
    /// Observation window after the merge.
    pub window: f64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 16,
            weights: vec![1.0, 0.5, 0.25],
            model: ModelParams::new(0.1, 1.0, 2.0),
            delta_h: 0.5,
            target_skew: 60.0,
            window: 250.0,
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Point {
    /// Old-edge weight.
    pub weight: f64,
    /// Effective old-edge budget floor `B0·w`.
    pub floor: f64,
    /// Peak skew on any old edge during the merge wave.
    pub peak_old_edge: f64,
    /// Bridge closure time (below `1.5·B0`), if reached.
    pub closure_time: Option<f64>,
}

/// Runs the weight sweep (parallel).
pub fn run(config: &Config) -> Vec<Point> {
    parallel_map(&config.weights, |&w| {
        let params = AlgoParams::with_minimal_b0(config.model, config.n, config.delta_h);
        let t_bridge = scenario::t_bridge_for_skew(config.model, config.target_skew);
        let m = scenario::merge(config.n, config.model, t_bridge);
        let old_edges = m.old_edges.clone();
        let weights_for = |i: usize| -> BTreeMap<NodeId, f64> {
            old_edges
                .iter()
                .filter(|e| e.touches(node(i)))
                .map(|e| (e.other(node(i)), w))
                .collect()
        };
        let mut sim = SimBuilder::topology(config.model, ScheduleSource::new(m.schedule.clone()))
            .drift(ScheduleDrift::new(m.clocks.clone()))
            .delay(DelayStrategy::Max)
            .build_with(|i| GradientNode::with_weights(params, weights_for(i)));
        sim.run_until(at(t_bridge));
        let mut peak_old: f64 = 0.0;
        let mut closure_time = None;
        let mut t = t_bridge;
        while t < t_bridge + config.window {
            t += 0.5;
            sim.run_until(at(t));
            for e in &old_edges {
                peak_old = peak_old.max((sim.logical(e.lo()) - sim.logical(e.hi())).abs());
            }
            let bridge_skew = (sim.logical(m.bridge.lo()) - sim.logical(m.bridge.hi())).abs();
            if bridge_skew <= 1.5 * params.b0 {
                closure_time.get_or_insert(t - t_bridge);
            } else {
                closure_time = None;
            }
        }
        Point {
            weight: w,
            floor: w * params.b0,
            peak_old_edge: peak_old,
            closure_time,
        }
    })
}

/// Renders the sweep table.
pub fn render(points: &[Point]) -> Table {
    let mut t = Table::new(
        "E10 — weighted edges: old-edge protection vs closure speed",
        &[
            "old-edge weight",
            "budget floor B0·w",
            "peak old-edge skew",
            "closure time",
        ],
    );
    for p in points {
        t.row(&[
            format!("{:.2}", p.weight),
            format!("{:.2}", p.floor),
            format!("{:.2}", p.peak_old_edge),
            p.closure_time
                .map(|c| format!("{c:.1}"))
                .unwrap_or_else(|| "—".into()),
        ]);
    }
    t
}

/// E10 behind the [`Scenario`](crate::scenario::Scenario) surface.
#[derive(Clone, Debug, Default)]
pub struct Experiment {
    /// Weighted-extension configuration.
    pub config: Config,
}

impl crate::scenario::Scenario for Experiment {
    fn id(&self) -> &'static str {
        "E10"
    }
    fn title(&self) -> &'static str {
        "per-edge weighted budgets (reference-broadcast style links)"
    }
    fn claim(&self) -> &'static str {
        "§7 extension — stable skew floors at B0·w per edge"
    }
    fn meta(&self) -> crate::scenario::ScenarioMeta {
        crate::scenario::ScenarioMeta {
            name: "E10",
            n: Some(self.config.n),
            family: crate::scenario::ScenarioFamily::Claim,
            fault_profile: None,
        }
    }
    fn run_scenario(&self) -> crate::scenario::ScenarioReport {
        let points = run(&self.config);
        let mut rep = crate::scenario::ScenarioReport::new();
        rep.table(render(&points));
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_scales_protection_and_slows_closure() {
        let config = Config::default();
        let points = run(&config);
        assert_eq!(points.len(), 3);
        // Peak old-edge skew decreases with the weight…
        assert!(points[1].peak_old_edge < points[0].peak_old_edge);
        assert!(points[2].peak_old_edge < points[1].peak_old_edge);
        // …and closure slows down.
        let c0 = points[0].closure_time.expect("w=1 closed");
        let c2 = points[2].closure_time.expect("w=0.25 closed");
        assert!(c2 > c0, "closure {c2} should exceed {c0}");
    }
}
