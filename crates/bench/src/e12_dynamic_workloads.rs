//! E12 — the streaming dynamic-workload family at `n = 2^17`.
//!
//! The paper's subject is *dynamic* networks (§3.1–3.2: edges appear and
//! disappear under T-interval connectivity), and this scenario family is
//! where the repository actually exercises that regime at scale. Three
//! lazily generated workloads from `gcs_net::workloads` run at
//! `n = 131 072` on the streaming topology pipeline:
//!
//! * **mobility** — random-waypoint motion, geometric radius graph over
//!   a path backbone (sustained distributed churn),
//! * **partition** — periodic partition-and-heal (correlated bursts of
//!   simultaneous failures, deliberately outside Definition 3.1),
//! * **flash-crowd** — join/leave waves against rotating hubs (degree
//!   spikes and mass discovery storms).
//!
//! Every run uses [`SkewStream`] streaming observability — no `O(n + m)`
//! snapshots — and reports the three quantities the streaming pipeline
//! exists to control: **setup time** (seconds before the first event
//! runs), **peak topology backlog** (pulled-but-unapplied events, the
//! pipeline's only event buffer), and **peak RSS** (measured, via
//! `gcs_analysis::mem`). With the old eager pipeline, setup and memory
//! both grew with the total churn-event count; here the backlog is
//! bounded by the events of one pull window — it still scales with the
//! churn *rate*, but not with the horizon or the total event count.

use crate::scenario::{Scenario, ScenarioFamily, ScenarioMeta, ScenarioReport};
use gcs_analysis::{SkewStream, Table};
use gcs_clocks::time::at;
use gcs_clocks::DriftModel;
use gcs_core::{AlgoParams, GradientNode};
use gcs_net::workloads::{FlashCrowdSource, MobilitySource, PartitionSource};
use gcs_net::TopologySource;
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder, SimStats};

/// Configuration for E12.
#[derive(Clone, Debug)]
pub struct Config {
    /// Node count (the headline configuration is `2^17 = 131 072`).
    pub n: usize,
    /// Real-time horizon.
    pub horizon: f64,
    /// Seed for workload generation and per-node streams.
    pub seed: u64,
    /// Worker count for the dispatcher (trace-invariant).
    pub threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 1 << 17,
            horizon: 4.0,
            seed: 42,
            threads: crate::default_threads(),
        }
    }
}

/// The three workload families, as fresh sources for one run each.
pub fn sources(config: &Config) -> Vec<(&'static str, Box<dyn TopologySource>)> {
    let n = config.n;
    // Geometric radius for ≈ 6 expected geometric neighbors; node motion
    // covers a quarter radius per sample so edges persist a few samples.
    let radius = (6.0 / (std::f64::consts::PI * n as f64)).sqrt();
    let sample_dt = 0.5;
    let speed = radius / (4.0 * sample_dt);
    vec![
        (
            "mobility",
            Box::new(MobilitySource::new(
                n,
                radius,
                speed,
                sample_dt,
                config.horizon,
                true,
                config.seed,
            )) as Box<dyn TopologySource>,
        ),
        (
            "partition",
            Box::new(PartitionSource::new(n, 4, 2.0, 0.5, config.horizon)),
        ),
        (
            "flash-crowd",
            Box::new(FlashCrowdSource::new(
                n,
                8,
                (n / 64).max(1),
                2.0,
                0.5,
                1.0,
                config.horizon,
                config.seed,
            )),
        ),
    ]
}

/// The result of one family's run.
#[derive(Clone, Debug)]
pub struct FamilyOutcome {
    /// Family name (`"mobility"`, `"partition"`, `"flash-crowd"`).
    pub family: &'static str,
    /// Seconds spent building the simulation (generator + engine setup).
    pub setup_s: f64,
    /// Seconds spent running it.
    pub wall_s: f64,
    /// Events processed.
    pub events: u64,
    /// Throughput.
    pub events_per_sec: f64,
    /// Streamed peak global skew.
    pub peak_global: f64,
    /// Streamed peak local skew.
    pub peak_local: f64,
    /// The probe's certified error bound on those peaks.
    pub skew_error_bound: f64,
    /// Current resident set right after this family's run, while its
    /// simulation is still live — unlike the process-wide high-water
    /// mark, this reflects *this* family's footprint even when other
    /// work ran earlier in the process.
    pub current_rss_bytes: Option<u64>,
    /// Packed event-plane heap bytes (records + payload arena) at the
    /// horizon.
    pub wheel_plane_bytes: usize,
    /// Compact staging-buffer heap bytes at the horizon.
    pub staging_plane_bytes: usize,
    /// Peak pending wheel events per payload lane, in
    /// `[topology, fault, deliver, alarm, discover]` order.
    pub pending_peaks: [usize; 5],
    /// Execution counters (carries `topology_events`, `topology_pulled`,
    /// `peak_topology_backlog` and `peak_staged_events`).
    pub stats: SimStats,
}

fn model() -> ModelParams {
    crate::default_model()
}

/// Runs one family to the horizon with the streaming skew probe attached.
pub fn run_family(
    config: &Config,
    family: &'static str,
    source: Box<dyn TopologySource>,
) -> FamilyOutcome {
    let n = config.n;
    let model = model();
    let params = AlgoParams::with_minimal_b0(model, n, 0.5);
    let t0 = std::time::Instant::now();
    // One shared budget plane for all n automata.
    let shared = std::sync::Arc::new(gcs_core::GradientShared::new(params));
    let mut sim = SimBuilder::topology(model, source)
        .drift_model(DriftModel::FastUpTo(n / 2), config.horizon)
        .delay(DelayStrategy::Max)
        .seed(config.seed)
        .threads(config.threads)
        .build_with(|_| GradientNode::with_shared(shared.clone()));
    let setup_s = t0.elapsed().as_secs_f64();
    let mut probe = SkewStream::new(n, model.rho, 64);
    let t1 = std::time::Instant::now();
    sim.run_until_with(at(config.horizon), |sim, t, touched| {
        probe.observe(sim, t, touched);
    });
    let wall_s = t1.elapsed().as_secs_f64();
    let stats = *sim.stats();
    // Read while `sim` is still alive so the numbers reflect this
    // family's live allocations.
    let current_rss_bytes = gcs_analysis::current_rss_bytes();
    let planes = sim.plane_bytes();
    FamilyOutcome {
        family,
        setup_s,
        wall_s,
        events: stats.events_processed,
        events_per_sec: stats.events_processed as f64 / wall_s.max(1e-12),
        peak_global: probe.peak_global_skew(),
        peak_local: probe.peak_local_skew(),
        skew_error_bound: probe.error_bound(),
        current_rss_bytes,
        wheel_plane_bytes: planes.wheel,
        staging_plane_bytes: planes.staging,
        pending_peaks: sim.wheel_pending_peaks(),
        stats,
    }
}

/// Runs all three families in sequence (each alone, so its timing and
/// memory readings are honest).
pub fn run(config: &Config) -> Vec<FamilyOutcome> {
    sources(config)
        .into_iter()
        .map(|(family, source)| run_family(config, family, source))
        .collect()
}

/// Renders the family comparison table.
pub fn render(config: &Config, outcomes: &[FamilyOutcome]) -> Table {
    let mut t = Table::new(
        format!(
            "E12 / §3.1–3.2 dynamic workloads at n = {} — streaming topology pipeline",
            config.n
        ),
        &[
            "family",
            "setup s",
            "wall s",
            "events",
            "events/sec",
            "topo events",
            "peak backlog",
            "peak gskew",
            "err bound",
        ],
    );
    for o in outcomes {
        t.row(&[
            o.family.to_string(),
            format!("{:.3}", o.setup_s),
            format!("{:.2}", o.wall_s),
            o.events.to_string(),
            format!("{:.0}", o.events_per_sec),
            o.stats.topology_events.to_string(),
            o.stats.peak_topology_backlog.to_string(),
            format!("{:.2}", o.peak_global),
            format!("{:.3}", o.skew_error_bound),
        ]);
    }
    t
}

/// E12 behind the [`Scenario`] surface.
#[derive(Clone, Debug, Default)]
pub struct Experiment {
    /// Workload-family configuration.
    pub config: Config,
}

impl Scenario for Experiment {
    fn id(&self) -> &'static str {
        "E12"
    }
    fn title(&self) -> &'static str {
        "streaming dynamic workloads (mobility / partition / flash-crowd) at n = 2^17"
    }
    fn claim(&self) -> &'static str {
        "§3.1–3.2 — dynamic networks at scale on the streaming topology pipeline"
    }
    fn meta(&self) -> ScenarioMeta {
        ScenarioMeta {
            name: "E12",
            n: Some(self.config.n),
            family: ScenarioFamily::Scale,
            fault_profile: None,
        }
    }
    fn run_scenario(&self) -> ScenarioReport {
        report(&self.config, &run(&self.config))
    }
}

/// Builds the scenario report from already-computed outcomes (shared by
/// [`Scenario::run_scenario`] and `run_all`, which reuses one expensive
/// `n = 2^17` run for both the report and the JSON trajectory).
pub fn report(config: &Config, outcomes: &[FamilyOutcome]) -> ScenarioReport {
    let mut rep = ScenarioReport::new();
    rep.table(render(config, outcomes));
    for o in outcomes {
        rep.note(format!(
            "{}: backlog peaked at {} of {} pulled topology events ({} applied) — \
                 the streaming pipeline buffers a lookahead window, never the schedule",
            o.family,
            o.stats.peak_topology_backlog,
            o.stats.topology_pulled,
            o.stats.topology_events,
        ));
    }
    // Memory goes into the dedicated field (and `print`), never into the
    // trace-compared notes; per-family live RSS is in the JSON trajectory.
    rep.record_memory();
    rep.csv(
        "e12_dynamic_workloads.csv",
        &[
            "family",
            "setup_s",
            "wall_s",
            "events",
            "events_per_sec",
            "topology_events",
            "peak_backlog",
            "peak_global_skew",
        ],
        outcomes
            .iter()
            .enumerate()
            .map(|(i, o)| {
                vec![
                    i as f64,
                    o.setup_s,
                    o.wall_s,
                    o.events as f64,
                    o.events_per_sec,
                    o.stats.topology_events as f64,
                    o.stats.peak_topology_backlog as f64,
                    o.peak_global,
                ]
            })
            .collect(),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Config {
        Config {
            n: 128,
            horizon: 10.0,
            seed: 7,
            threads: 1,
        }
    }

    #[test]
    fn all_three_families_run_and_stream() {
        let outcomes = run(&small());
        assert_eq!(outcomes.len(), 3);
        let names: Vec<_> = outcomes.iter().map(|o| o.family).collect();
        assert_eq!(names, vec!["mobility", "partition", "flash-crowd"]);
        for o in &outcomes {
            assert!(
                o.events > 5_000,
                "{}: workload too small: {}",
                o.family,
                o.events
            );
            assert!(
                o.stats.topology_events > 0,
                "{}: no churn reached the engine",
                o.family
            );
            assert_eq!(
                o.stats.topology_pulled, o.stats.topology_events,
                "{}: every pulled event must apply by the horizon",
                o.family
            );
            assert!(o.skew_error_bound.is_finite());
        }
    }

    #[test]
    fn backlog_stays_a_window_not_the_schedule() {
        // The defining property of the streaming pipeline: the peak
        // pulled-but-unapplied backlog is a lookahead window, far below
        // the total number of topology events of a long run.
        let config = Config {
            n: 64,
            horizon: 60.0,
            seed: 3,
            threads: 1,
        };
        for o in run(&config) {
            assert!(
                o.stats.topology_events > 50,
                "{}: need sustained churn, got {}",
                o.family,
                o.stats.topology_events
            );
            assert!(
                o.stats.peak_topology_backlog < o.stats.topology_events / 2,
                "{}: backlog {} not a window of {} total events",
                o.family,
                o.stats.peak_topology_backlog,
                o.stats.topology_events
            );
        }
    }

    #[test]
    fn families_are_trace_invariant_across_thread_counts() {
        let base = small();
        let serial = run(&base);
        let parallel = run(&Config { threads: 4, ..base });
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.stats, p.stats, "{} diverged across threads", s.family);
            assert!(
                s.peak_global.to_bits() == p.peak_global.to_bits(),
                "{}: streamed peaks diverged",
                s.family
            );
        }
    }
}
