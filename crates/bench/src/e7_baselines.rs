//! E7 — the baseline comparison motivating the paper's design.
//!
//! Scenario: two clusters evolve separately (one fast, one slow) and are
//! then joined by a single bridge edge carrying skew `≫ B0`. We compare
//! three algorithms on three axes:
//!
//! * **peak old-edge skew** after the merge — MaxSync propagates the merge
//!   as a jump wave over old edges; the gradient algorithms keep old edges
//!   within budget.
//! * **peak `Lmax − L` lag at the ahead-side bridge endpoint** — the
//!   constant-budget baseline blocks that node immediately (the fresh edge
//!   already exceeds `B0`), dragging it behind the network max; the aging
//!   budget leaves fresh edges unconstrained.
//! * **bridge settle time** — MaxSync "settles" instantly (by jumping);
//!   the gradient algorithms take `Θ(skew/B0)` rounds, the price of the
//!   gradient property (and provably unavoidable, Theorem 4.1).

use gcs_analysis::Table;
use gcs_clocks::time::at;
use gcs_clocks::HardwareClock;
use gcs_clocks::ScheduleDrift;
use gcs_core::baseline::MaxSyncNode;
use gcs_core::{AlgoParams, BudgetPolicy, GradientNode};

use gcs_net::{node, Edge, ScheduleSource, TopologySchedule};
use gcs_sim::{Automaton, DelayStrategy, ModelParams, SimBuilder, Simulator};

/// Configuration for E7.
#[derive(Clone, Debug)]
pub struct Config {
    /// Total node count (two clusters of `n/2`).
    pub n: usize,
    /// Model parameters (high drift recommended).
    pub model: ModelParams,
    /// Subjective resend interval.
    pub delta_h: f64,
    /// When the bridge appears.
    pub t_bridge: f64,
    /// Observation window after the bridge.
    pub window: f64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 24,
            model: ModelParams::new(0.1, 1.0, 2.0),
            delta_h: 0.5,
            t_bridge: 500.0,
            window: 150.0,
        }
    }
}

/// Metrics for one algorithm.
#[derive(Clone, Debug)]
pub struct Row {
    /// Algorithm label.
    pub name: &'static str,
    /// Bridge skew at formation.
    pub initial_skew: f64,
    /// Worst old-edge skew during the observation window.
    pub peak_old_edge: f64,
    /// Worst `Lmax − L` at the ahead-side bridge endpoint.
    pub peak_lag: f64,
    /// First time (after formation) the bridge skew fell below the
    /// gradient stable bound, if it did.
    pub settle_time: Option<f64>,
}

/// The cluster-merge topology (see [`crate::scenario::merge`]): two
/// disjoint paths bridged at `t_bridge`, with the ahead-side bridge
/// endpoint on a slow clock so that it tracks its cluster's max by
/// chasing.
fn merge_scenario(config: &Config) -> (TopologySchedule, Vec<HardwareClock>, usize, Edge) {
    let m = crate::scenario::merge(config.n, config.model, config.t_bridge);
    let ahead = config.n / 2 - 1;
    (m.schedule, m.clocks, ahead, m.bridge)
}

fn measure<A: Automaton>(
    sim: &mut Simulator<A>,
    config: &Config,
    m: usize,
    bridge: Edge,
    old_edges: &[Edge],
    settle_threshold: f64,
) -> Row {
    sim.run_until(at(config.t_bridge));
    let initial_skew = (sim.logical(bridge.lo()) - sim.logical(bridge.hi())).abs();
    let mut peak_old_edge: f64 = 0.0;
    let mut peak_lag: f64 = 0.0;
    let mut settle_time = None;
    let mut t = config.t_bridge;
    while t < config.t_bridge + config.window {
        t += 0.5;
        sim.run_until(at(t));
        for e in old_edges {
            peak_old_edge = peak_old_edge.max((sim.logical(e.lo()) - sim.logical(e.hi())).abs());
        }
        peak_lag = peak_lag.max(sim.max_estimate_of(node(m)) - sim.logical(node(m)));
        let bridge_skew = (sim.logical(bridge.lo()) - sim.logical(bridge.hi())).abs();
        if bridge_skew <= settle_threshold {
            settle_time.get_or_insert(t - config.t_bridge);
        } else {
            settle_time = None;
        }
    }
    Row {
        name: "",
        initial_skew,
        peak_old_edge,
        peak_lag,
        settle_time,
    }
}

/// Runs the three algorithms through the same scenario.
pub fn run(config: &Config) -> Vec<Row> {
    let (schedule, clocks, m, bridge) = merge_scenario(config);
    let old_edges: Vec<Edge> = schedule.initial_edges().collect();
    let b0 = AlgoParams::with_minimal_b0(config.model, config.n, config.delta_h).b0;
    let aging = AlgoParams::with_policy(
        config.model,
        config.n,
        config.delta_h,
        b0,
        BudgetPolicy::Aging,
    );
    let threshold = aging.stable_local_skew();

    let mut rows = Vec::new();
    for policy in [BudgetPolicy::Aging, BudgetPolicy::Constant] {
        let params = AlgoParams::with_policy(config.model, config.n, config.delta_h, b0, policy);
        let mut sim = SimBuilder::topology(config.model, ScheduleSource::new(schedule.clone()))
            .drift(ScheduleDrift::new(clocks.clone()))
            .delay(DelayStrategy::Max)
            .build_with(|_| GradientNode::new(params));
        let mut row = measure(&mut sim, config, m, bridge, &old_edges, threshold);
        row.name = match policy {
            BudgetPolicy::Aging => "Algorithm 2 (aging budget)",
            BudgetPolicy::Constant => "constant budget [13]",
            BudgetPolicy::Custom { .. } => unreachable!("E7 compares the named policies"),
        };
        rows.push(row);
    }
    {
        let delta_h = config.delta_h;
        let mut sim = SimBuilder::topology(config.model, ScheduleSource::new(schedule))
            .drift(ScheduleDrift::new(clocks))
            .delay(DelayStrategy::Max)
            .build_with(|_| MaxSyncNode::new(delta_h));
        let mut row = measure(&mut sim, config, m, bridge, &old_edges, threshold);
        row.name = "max-sync [18]";
        rows.push(row);
    }
    rows
}

/// Renders the comparison table.
pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E7 — cluster merge: gradient vs baselines",
        &[
            "algorithm",
            "initial bridge skew",
            "peak old-edge skew",
            "peak Lmax−L lag",
            "bridge settle time",
        ],
    );
    for r in rows {
        t.row(&[
            r.name.to_string(),
            format!("{:.2}", r.initial_skew),
            format!("{:.2}", r.peak_old_edge),
            format!("{:.2}", r.peak_lag),
            r.settle_time
                .map(|s| format!("{s:.1}"))
                .unwrap_or_else(|| "—".into()),
        ]);
    }
    t
}

/// E7 behind the [`Scenario`](crate::scenario::Scenario) surface.
#[derive(Clone, Debug, Default)]
pub struct Experiment {
    /// Baseline-comparison configuration.
    pub config: Config,
}

impl crate::scenario::Scenario for Experiment {
    fn id(&self) -> &'static str {
        "E7"
    }
    fn title(&self) -> &'static str {
        "aging budget vs constant budget vs max-sync on a cluster merge"
    }
    fn claim(&self) -> &'static str {
        "§1 motivation — only the aging budget gives a dynamic gradient"
    }
    fn meta(&self) -> crate::scenario::ScenarioMeta {
        crate::scenario::ScenarioMeta {
            name: "E7",
            n: Some(self.config.n),
            family: crate::scenario::ScenarioFamily::Claim,
            fault_profile: None,
        }
    }
    fn run_scenario(&self) -> crate::scenario::ScenarioReport {
        let rows = run(&self.config);
        let mut rep = crate::scenario::ScenarioReport::new();
        rep.table(render(&rows));
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_separate_as_the_paper_predicts() {
        let config = Config::default();
        let rows = run(&config);
        let aging = &rows[0];
        let constant = &rows[1];
        let max_sync = &rows[2];
        // Everyone starts from the same (large) bridge skew.
        assert!(aging.initial_skew > 20.0);
        assert!((aging.initial_skew - max_sync.initial_skew).abs() < aging.initial_skew * 0.5);
        // MaxSync's merge wave hits old edges with ~the full skew; the
        // gradient algorithms keep old edges an order of magnitude lower.
        assert!(
            max_sync.peak_old_edge > 3.0 * aging.peak_old_edge,
            "max-sync old-edge {} vs aging {}",
            max_sync.peak_old_edge,
            aging.peak_old_edge
        );
        // The constant budget blocks the ahead endpoint; the aging budget
        // does not.
        assert!(
            constant.peak_lag > aging.peak_lag + 1.0,
            "constant lag {} vs aging lag {}",
            constant.peak_lag,
            aging.peak_lag
        );
    }
}
