//! E6 — Lemma 6.8 (Max Propagation): under `(T+D)`-interval connectivity,
//! `Lmax(t) − Lmax_u(t) ≤ ((1+ρ)T + 2ρD)(n−1)` for every node `u` — even
//! when the topology never stabilizes.
//!
//! We run the algorithm on a rotating star (every edge lives only a little
//! longer than `T+D`) and on a staggered ring, track the worst estimate
//! gap over time, and compare with the lemma's bound.

use gcs_analysis::{parallel_map, Table};
use gcs_clocks::time::at;
use gcs_clocks::{DriftModel, Duration};
use gcs_core::{AlgoParams, GradientNode};
use gcs_net::{churn, connectivity, node, ScheduleSource};
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder};

/// Which churn pattern to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Churn {
    /// Star whose hub migrates continuously.
    RotatingStar,
    /// Ring whose edges take turns failing.
    StaggeredRing,
}

/// Configuration for E6.
#[derive(Clone, Debug)]
pub struct Config {
    /// Node counts to sweep.
    pub ns: Vec<usize>,
    /// Churn pattern.
    pub churn: Churn,
    /// Model parameters.
    pub model: ModelParams,
    /// Subjective resend interval.
    pub delta_h: f64,
    /// Run length.
    pub horizon: f64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            ns: vec![8, 16, 32],
            churn: Churn::RotatingStar,
            model: ModelParams::new(0.01, 1.0, 2.0),
            delta_h: 0.5,
            horizon: 400.0,
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Point {
    /// Node count.
    pub n: usize,
    /// Worst estimate gap `max_u (Lmax − Lmax_u)` observed.
    pub worst_gap: f64,
    /// The Lemma 6.8 bound `((1+ρ)T + 2ρD)(n−1)`.
    pub bound: f64,
    /// Whether the generated schedule was verified `(T+D)`-interval
    /// connected.
    pub interval_connected: bool,
}

/// Runs the sweep (parallel over `n`).
pub fn run(config: &Config) -> Vec<Point> {
    parallel_map(&config.ns, |&n| {
        let schedule = match config.churn {
            Churn::RotatingStar => {
                // Overlap just above T+D keeps the schedule
                // (T+D)-interval connected while every edge is short-lived.
                let overlap = config.model.t + config.model.d + 1.0;
                churn::rotating_star(n, 2.5 * overlap, overlap, config.horizon)
            }
            Churn::StaggeredRing => churn::staggered_ring(
                n,
                2.0 * (config.model.t + config.model.d),
                config.model.t,
                5.0,
                config.horizon,
            ),
        };
        let interval_connected = connectivity::is_interval_connected(
            &schedule,
            Duration::new(config.model.t + config.model.d),
            at(config.horizon),
        );
        let params = AlgoParams::with_minimal_b0(config.model, n, config.delta_h);
        let mut sim = SimBuilder::topology(config.model, ScheduleSource::new(schedule))
            .drift_model(DriftModel::SplitExtremes, config.horizon)
            .delay(DelayStrategy::Max)
            .build_with(|_| GradientNode::new(params));
        let mut worst_gap: f64 = 0.0;
        let mut t = 0.0;
        while t < config.horizon {
            t += 2.0;
            sim.run_until(at(t));
            let estimates: Vec<f64> = (0..n).map(|i| sim.max_estimate_of(node(i))).collect();
            let lmax = estimates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let min = estimates.iter().cloned().fold(f64::INFINITY, f64::min);
            worst_gap = worst_gap.max(lmax - min);
        }
        Point {
            n,
            worst_gap,
            bound: params.global_skew_bound(),
            interval_connected,
        }
    })
}

/// Renders the sweep table.
pub fn render(points: &[Point], churn: Churn) -> Table {
    let mut t = Table::new(
        format!("E6 / Lemma 6.8 — max-estimate propagation under churn ({churn:?})"),
        &[
            "n",
            "worst gap",
            "bound",
            "gap/bound",
            "(T+D)-interval connected",
        ],
    );
    for p in points {
        t.row(&[
            p.n.to_string(),
            format!("{:.3}", p.worst_gap),
            format!("{:.2}", p.bound),
            format!("{:.3}", p.worst_gap / p.bound),
            p.interval_connected.to_string(),
        ]);
    }
    t
}

/// E6 behind the [`Scenario`](crate::scenario::Scenario) surface; runs
/// both churn regimes of the experiment.
#[derive(Clone, Debug, Default)]
pub struct Experiment {
    /// Base configuration (the churn field is overridden per regime).
    pub config: Config,
}

impl crate::scenario::Scenario for Experiment {
    fn id(&self) -> &'static str {
        "E6"
    }
    fn title(&self) -> &'static str {
        "max-estimate propagation under rotating-star and staggered-ring churn"
    }
    fn claim(&self) -> &'static str {
        "Lemma 6.8 — Lmax reaches every node within the propagation window"
    }
    fn meta(&self) -> crate::scenario::ScenarioMeta {
        crate::scenario::ScenarioMeta {
            name: "E6",
            n: self.config.ns.iter().copied().max(),
            family: crate::scenario::ScenarioFamily::Claim,
            fault_profile: None,
        }
    }
    fn run_scenario(&self) -> crate::scenario::ScenarioReport {
        let mut rep = crate::scenario::ScenarioReport::new();
        for churn in [Churn::RotatingStar, Churn::StaggeredRing] {
            let config = Config {
                churn,
                ..self.config.clone()
            };
            let points = run(&config);
            rep.table(render(&points, churn));
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_gap_bounded_on_rotating_star() {
        let config = Config {
            ns: vec![8, 16],
            horizon: 200.0,
            ..Config::default()
        };
        let points = run(&config);
        for p in &points {
            assert!(p.interval_connected, "n={}: churn schedule broken", p.n);
            assert!(
                p.worst_gap <= p.bound,
                "n={}: gap {} exceeds bound {}",
                p.n,
                p.worst_gap,
                p.bound
            );
            assert!(p.worst_gap > 0.0);
        }
    }

    #[test]
    fn estimate_gap_bounded_on_staggered_ring() {
        let config = Config {
            ns: vec![8],
            churn: Churn::StaggeredRing,
            horizon: 150.0,
            ..Config::default()
        };
        let points = run(&config);
        assert!(points[0].interval_connected);
        assert!(points[0].worst_gap <= points[0].bound);
    }
}
