//! The experiment surface: the [`Scenario`] trait plus shared workloads.
//!
//! Every quantitative claim reproduced by this repository runs behind the
//! same fail-closed interface: a [`Scenario`] names itself (`E1`…`E10` or
//! an example binary), states the paper claim it reproduces, and produces
//! a [`ScenarioReport`] — rendered tables, free-form notes, and CSV series
//! for the perf/shape trajectory. [`all_scenarios`] enumerates E1–E10 so
//! `run_all` (and any future driver) cannot silently drop an experiment,
//! and [`run_parallel`] fans scenarios out over scoped threads via
//! [`gcs_analysis::sweep::fan_out`].
//!
//! The *cluster merge* below is the shared workload behind E2, E3 and E7
//! (and the paper's motivating story): two halves of the network evolve
//! separately — one on fast hardware clocks, one on slow — so their
//! logical clocks drift apart at rate `2ρ`; at `t_bridge` an edge joins
//! them, instantly carrying skew `≈ 2ρ·t_bridge`. Scaling `t_bridge` with
//! `n` yields the `Θ(n)` initial skew of the paper's analysis with an
//! honest execution (clocks all start at 0; the skew is genuinely
//! accumulated, not injected).

use gcs_analysis::Table;
use gcs_clocks::HardwareClock;
use gcs_net::schedule::add_at;
use gcs_net::{Edge, TopologySchedule};
use gcs_sim::ModelParams;
use std::path::Path;

/// One CSV output series of a scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct CsvSeries {
    /// File name (relative to the experiment output directory).
    pub filename: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<f64>>,
}

/// Everything a scenario produces: human-readable tables and notes plus
/// machine-readable CSV series, and (optionally) the process peak RSS
/// observed after the run.
///
/// `PartialEq` is deliberate and *manual*: the determinism regression
/// tests assert that whole reports — rendered tables, notes, and every
/// CSV cell — are identical across engine thread counts. The memory
/// reading is a host fact, not a trace fact (it varies run to run), so
/// it is excluded from equality.
#[derive(Clone, Debug, Default)]
pub struct ScenarioReport {
    /// Rendered paper-vs-measured tables.
    pub tables: Vec<Table>,
    /// Free-form findings (fits, slopes, assertions that held).
    pub notes: Vec<String>,
    /// CSV series for the trajectory directory.
    pub series: Vec<CsvSeries>,
    /// Process peak RSS in bytes after the scenario ran, if measured
    /// (see [`ScenarioReport::record_memory`]). Process-wide: only
    /// meaningful for scenarios that run alone, like E11/E12.
    pub peak_rss_bytes: Option<u64>,
    /// Per-plane heap census read while the scenario's simulation was
    /// still live (see [`ScenarioReport::record_planes`]). Excluded from
    /// equality like `peak_rss_bytes`: totals are trace facts but the
    /// census counts *capacities*, whose growth rounding varies with the
    /// shard (= worker) count.
    pub plane_bytes: Option<gcs_analysis::mem::PlaneBytes>,
}

impl PartialEq for ScenarioReport {
    fn eq(&self, other: &Self) -> bool {
        // `peak_rss_bytes` and `plane_bytes` deliberately excluded — see
        // the type docs.
        self.tables == other.tables && self.notes == other.notes && self.series == other.series
    }
}

impl ScenarioReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stamps the process peak RSS (high-water mark) into the report so
    /// memory claims are measured, not asserted. Call at the end of a
    /// scenario that runs alone; `None` on platforms without
    /// `/proc/self/status`.
    pub fn record_memory(&mut self) -> &mut Self {
        self.peak_rss_bytes = gcs_analysis::peak_rss_bytes();
        self
    }

    /// Stamps a per-plane heap census into the report. Read the census
    /// (`Simulator::plane_bytes`) while the simulation is still live,
    /// then pass it here.
    pub fn record_planes(&mut self, planes: gcs_analysis::mem::PlaneBytes) -> &mut Self {
        self.plane_bytes = Some(planes);
        self
    }

    /// Adds a rendered table.
    pub fn table(&mut self, t: Table) -> &mut Self {
        self.tables.push(t);
        self
    }

    /// Adds a note line.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Adds a CSV series.
    pub fn csv(
        &mut self,
        filename: impl Into<String>,
        header: &[&str],
        rows: Vec<Vec<f64>>,
    ) -> &mut Self {
        self.series.push(CsvSeries {
            filename: filename.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows,
        });
        self
    }

    /// Prints tables, notes, then the memory reading (if recorded) to
    /// stdout. The memory line lives here — not in `notes` — so host
    /// facts never leak into the trace-compared report content.
    pub fn print(&self) {
        for t in &self.tables {
            t.print();
            println!();
        }
        for n in &self.notes {
            println!("{n}");
        }
        if let Some(bytes) = self.peak_rss_bytes {
            println!(
                "process peak RSS: {} MiB (process-lifetime high-water mark — \
                 faithful only in a fresh process, e.g. the standalone bins)",
                gcs_analysis::mem::fmt_mib(Some(bytes))
            );
        }
        if let Some(planes) = &self.plane_bytes {
            println!(
                "plane bytes (MiB): {} — total {:.1}",
                gcs_analysis::mem::fmt_planes(planes),
                planes.total() as f64 / (1024.0 * 1024.0)
            );
        }
    }

    /// Writes every CSV series under `dir` (created if needed).
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for s in &self.series {
            let header: Vec<&str> = s.header.iter().map(String::as_str).collect();
            gcs_analysis::csv::write_csv(dir.join(&s.filename), &header, &s.rows)?;
        }
        Ok(())
    }
}

/// Which batch of the driver a scenario belongs to. Typed — `run_all`
/// partitions on this instead of matching id strings, so adding a
/// scenario can never silently land it in the wrong batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioFamily {
    /// Reproduces a paper claim at small `n`; safe to fan out in
    /// parallel with its siblings.
    Claim,
    /// Is itself a wall-clock/memory benchmark; must run alone.
    Scale,
    /// Injects faults or adversarial topology control; runs alone after
    /// the claim batch (its runs are deterministic but CPU-heavy).
    Fault,
    /// An `examples/` binary behind the scenario surface.
    Example,
}

/// Structured self-description of a scenario — the typed replacement
/// for matching on [`Scenario::id`] strings in drivers and registries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioMeta {
    /// Short identifier, identical to [`Scenario::id`].
    pub name: &'static str,
    /// The (largest) node count the scenario runs at, when meaningful.
    pub n: Option<usize>,
    /// Driver batch.
    pub family: ScenarioFamily,
    /// Human-readable summary of the fault injections, for
    /// [`ScenarioFamily::Fault`] scenarios.
    pub fault_profile: Option<&'static str>,
}

/// A named, self-describing experiment.
///
/// Implemented by all `E*` experiment modules (each wraps its `Config`
/// in an `Experiment` struct) and by the `examples/` binaries, so every
/// entry point into the reproduction goes through one documented surface.
pub trait Scenario: Send + Sync {
    /// Short identifier (`"E1"`, `"tdma"`, …).
    fn id(&self) -> &'static str;
    /// What the scenario measures.
    fn title(&self) -> &'static str;
    /// The paper claim it reproduces (section/theorem).
    fn claim(&self) -> &'static str;
    /// Structured metadata. The default marks the scenario an
    /// [`ScenarioFamily::Example`] with unspecified size — the
    /// `examples/` binaries take it as-is; every registry experiment
    /// overrides it.
    fn meta(&self) -> ScenarioMeta {
        ScenarioMeta {
            name: self.id(),
            n: None,
            family: ScenarioFamily::Example,
            fault_profile: None,
        }
    }
    /// Runs the workload and collects the report.
    fn run_scenario(&self) -> ScenarioReport;
}

/// All fifteen experiments, in order (E1–E10 reproduce paper claims at
/// small `n`; E11 is the large-scale parallel-engine run; E12 is the
/// streaming dynamic-workload family at `n = 2^17`; E13 is the lazy
/// clock plane's scale-ceiling run at `n = 2^20`; E14 is the compact
/// automaton plane's memory-ceiling run at `n = 2^23`; E15 is the fault
/// and adversary family).
pub fn all_scenarios() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(crate::e1_global_skew::Experiment::default()),
        Box::new(crate::e2_local_skew::Experiment::default()),
        Box::new(crate::e3_tradeoff::Experiment::default()),
        Box::new(crate::e4_lowerbound::Experiment::default()),
        Box::new(crate::e5_masking::Experiment::default()),
        Box::new(crate::e6_max_prop::Experiment::default()),
        Box::new(crate::e7_baselines::Experiment::default()),
        Box::new(crate::e8_ablations::Experiment::default()),
        Box::new(crate::e9_gradient_profile::Experiment::default()),
        Box::new(crate::e10_weighted::Experiment::default()),
        Box::new(crate::e11_large_scale::Experiment::default()),
        Box::new(crate::e12_dynamic_workloads::Experiment::default()),
        Box::new(crate::e13_scale_ceiling::Experiment::default()),
        Box::new(crate::e14_memory_ceiling::Experiment::default()),
        Box::new(crate::e15_faults::Experiment::default()),
    ]
}

/// An ordered batch of boxed registry scenarios.
pub type ScenarioBatch = Vec<Box<dyn Scenario>>;

/// The registry scenarios belonging to `family`, in registry order.
pub fn scenarios_in(family: ScenarioFamily) -> Vec<Box<dyn Scenario>> {
    all_scenarios()
        .into_iter()
        .filter(|s| s.meta().family == family)
        .collect()
}

/// The driver's execution plan, derived from typed scenario metadata:
/// `(claim batch, solo batch)`. The claim batch fans out in parallel;
/// the solo batch — [`ScenarioFamily::Scale`] runs (themselves
/// wall-clock/memory benchmarks) and [`ScenarioFamily::Fault`] runs
/// (CPU-heavy adversary search) — executes alone afterwards, in
/// registry order. `run_all` consumes this instead of re-partitioning,
/// so the driver and the registry cannot drift apart.
pub fn driver_plan() -> (ScenarioBatch, ScenarioBatch) {
    let mut claim = Vec::new();
    let mut solo = Vec::new();
    for s in all_scenarios() {
        match s.meta().family {
            ScenarioFamily::Claim => claim.push(s),
            ScenarioFamily::Scale | ScenarioFamily::Fault => solo.push(s),
            ScenarioFamily::Example => {
                unreachable!("registry scenarios must not use the Example default meta")
            }
        }
    }
    (claim, solo)
}

/// Runs scenarios in parallel over scoped threads, preserving order.
pub fn run_parallel(scenarios: &[Box<dyn Scenario>]) -> Vec<ScenarioReport> {
    let jobs: Vec<Box<dyn FnOnce() -> ScenarioReport + Send + '_>> = scenarios
        .iter()
        .map(|s| Box::new(move || s.run_scenario()) as Box<dyn FnOnce() -> ScenarioReport + Send>)
        .collect();
    gcs_analysis::sweep::fan_out(jobs)
}

/// A cluster-merge workload.
#[derive(Clone, Debug)]
pub struct Merge {
    /// Schedule: two disjoint paths, bridged at `t_bridge`.
    pub schedule: TopologySchedule,
    /// Per-node hardware clocks (left half fast, right half slow).
    pub clocks: Vec<HardwareClock>,
    /// The bridge edge.
    pub bridge: Edge,
    /// The pre-existing edges.
    pub old_edges: Vec<Edge>,
    /// When the bridge appears.
    pub t_bridge: f64,
}

/// Builds a cluster merge over `n` nodes (`n ≥ 4`, even split).
///
/// The left cluster is nodes `0..n/2`, the right cluster `n/2..n`; the
/// bridge is `{n/2 − 1, n/2}`. Hardware rates: the left cluster runs at
/// `1+ρ` **except its bridge endpoint `n/2 − 1`, which runs at `1−ρ`** —
/// it tracks the fast cluster's max by *chasing* (discrete jumps), so any
/// mechanism that blocks jumping shows up as a measurable `Lmax − L` lag
/// there. The right cluster runs at `1−ρ`. Expected skew on the bridge at
/// formation: `≈ 2ρ·t_bridge`.
pub fn merge(n: usize, model: ModelParams, t_bridge: f64) -> Merge {
    assert!(n >= 4, "merge scenario needs n >= 4");
    let half = n / 2;
    let bridge = Edge::between(half - 1, half);
    let mut old_edges: Vec<Edge> = (0..half - 1).map(|i| Edge::between(i, i + 1)).collect();
    old_edges.extend((half..n - 1).map(|i| Edge::between(i, i + 1)));
    let schedule = TopologySchedule::static_graph(n, old_edges.clone())
        .with_extra_events(vec![add_at(t_bridge, bridge)]);
    let clocks = (0..n)
        .map(|i| {
            let rate = if i < half - 1 {
                1.0 + model.rho
            } else {
                1.0 - model.rho
            };
            HardwareClock::constant(rate, model.rho)
        })
        .collect();
    Merge {
        schedule,
        clocks,
        bridge,
        old_edges,
        t_bridge,
    }
}

/// The `t_bridge` that yields initial bridge skew ≈ `target_skew`.
pub fn t_bridge_for_skew(model: ModelParams, target_skew: f64) -> f64 {
    assert!(target_skew > 0.0);
    target_skew / (2.0 * model.rho)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_clocks::time::at;

    #[test]
    fn registry_lists_all_fifteen_experiments_in_order() {
        let ids: Vec<&str> = all_scenarios().iter().map(|s| s.id()).collect();
        assert_eq!(
            ids,
            vec![
                "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13",
                "E14", "E15"
            ]
        );
        for s in all_scenarios() {
            assert!(!s.title().is_empty(), "{} needs a title", s.id());
            assert!(!s.claim().is_empty(), "{} needs a claim", s.id());
            let meta = s.meta();
            assert_eq!(meta.name, s.id(), "meta name must equal id");
            assert_ne!(
                meta.family,
                ScenarioFamily::Example,
                "{}: registry experiments must override the default meta",
                s.id()
            );
        }
    }

    #[test]
    fn families_partition_the_registry() {
        let claim = scenarios_in(ScenarioFamily::Claim);
        let scale = scenarios_in(ScenarioFamily::Scale);
        let fault = scenarios_in(ScenarioFamily::Fault);
        assert_eq!(claim.len(), 10, "E1-E10 are the claim batch");
        let scale_ids: Vec<&str> = scale.iter().map(|s| s.id()).collect();
        assert_eq!(scale_ids, vec!["E11", "E12", "E13", "E14"]);
        let fault_ids: Vec<&str> = fault.iter().map(|s| s.id()).collect();
        assert_eq!(fault_ids, vec!["E15"]);
        for s in fault {
            assert!(
                s.meta().fault_profile.is_some(),
                "fault scenarios must describe their injections"
            );
        }
        assert_eq!(claim.len() + scale_ids.len() + fault_ids.len(), 15);
    }

    #[test]
    fn every_scenario_lands_in_exactly_one_family() {
        // The family partition is exact: summing the per-family slices
        // recovers the registry with no scenario dropped or duplicated.
        let registry: Vec<&str> = all_scenarios().iter().map(|s| s.id()).collect();
        let mut partitioned: Vec<&str> = Vec::new();
        for family in [
            ScenarioFamily::Claim,
            ScenarioFamily::Scale,
            ScenarioFamily::Fault,
            ScenarioFamily::Example,
        ] {
            for s in scenarios_in(family) {
                assert!(
                    !partitioned.contains(&s.id()),
                    "{} appears in more than one family",
                    s.id()
                );
                partitioned.push(s.id());
            }
        }
        assert_eq!(partitioned.len(), 15);
        let mut sorted_registry = registry;
        let mut sorted_partitioned = partitioned;
        sorted_registry.sort_unstable();
        sorted_partitioned.sort_unstable();
        assert_eq!(sorted_registry, sorted_partitioned);
    }

    #[test]
    fn driver_plan_fan_out_matches_the_registry() {
        // The run_all smoke: the plan's claim batch is exactly the Claim
        // family, the solo batch is Scale + Fault in registry order, and
        // together they cover the registry.
        let (claim, solo) = driver_plan();
        let claim_ids: Vec<&str> = claim.iter().map(|s| s.id()).collect();
        let solo_ids: Vec<&str> = solo.iter().map(|s| s.id()).collect();
        let expected_claim: Vec<&str> = scenarios_in(ScenarioFamily::Claim)
            .iter()
            .map(|s| s.id())
            .collect();
        let mut expected_solo: Vec<&str> = scenarios_in(ScenarioFamily::Scale)
            .iter()
            .map(|s| s.id())
            .collect();
        expected_solo.extend(scenarios_in(ScenarioFamily::Fault).iter().map(|s| s.id()));
        assert_eq!(claim_ids, expected_claim);
        assert_eq!(solo_ids, expected_solo);
        let planned: Vec<&str> = claim_ids.into_iter().chain(solo_ids).collect();
        let registry: Vec<&str> = all_scenarios().iter().map(|s| s.id()).collect();
        assert_eq!(
            planned, registry,
            "driver plan must cover the registry in order"
        );
        for s in claim {
            assert_eq!(s.meta().family, ScenarioFamily::Claim);
        }
        for s in solo {
            assert_ne!(s.meta().family, ScenarioFamily::Claim);
        }
    }

    #[test]
    fn report_equality_ignores_memory_readings() {
        let mut a = ScenarioReport::new();
        a.note("same trace");
        let mut b = a.clone();
        a.peak_rss_bytes = Some(1);
        b.peak_rss_bytes = Some(2);
        a.record_planes(gcs_analysis::mem::PlaneBytes {
            automaton_hot: 7,
            ..Default::default()
        });
        assert_eq!(a, b, "host memory facts must not break determinism pins");
        b.note("different trace");
        assert_ne!(a, b);
    }

    #[test]
    fn report_collects_and_writes() {
        struct Tiny;
        impl Scenario for Tiny {
            fn id(&self) -> &'static str {
                "tiny"
            }
            fn title(&self) -> &'static str {
                "plumbing check"
            }
            fn claim(&self) -> &'static str {
                "n/a"
            }
            fn run_scenario(&self) -> ScenarioReport {
                let mut rep = ScenarioReport::new();
                rep.table(Table::new("t", &["a"])).note("done").csv(
                    "tiny.csv",
                    &["x", "y"],
                    vec![vec![1.0, 2.0]],
                );
                rep
            }
        }
        let scenarios: Vec<Box<dyn Scenario>> = vec![Box::new(Tiny), Box::new(Tiny)];
        let reports = run_parallel(&scenarios);
        assert_eq!(reports.len(), 2);
        for rep in &reports {
            assert_eq!(rep.tables.len(), 1);
            assert_eq!(rep.notes, vec!["done".to_string()]);
            assert_eq!(rep.series.len(), 1);
        }
        let dir = std::env::temp_dir().join("gcs_scenario_report_test");
        reports[0].write_csv(&dir).unwrap();
        let written = std::fs::read_to_string(dir.join("tiny.csv")).unwrap();
        assert!(written.starts_with("x,y"));
        let _ = std::fs::remove_dir_all(&dir);
    }
    use gcs_clocks::ScheduleDrift;
    use gcs_core::{AlgoParams, GradientNode};
    use gcs_net::ScheduleSource;
    use gcs_sim::{DelayStrategy, SimBuilder};

    #[test]
    fn merge_accumulates_predicted_skew() {
        let model = ModelParams::new(0.05, 1.0, 2.0);
        let n = 16;
        let m = merge(n, model, 200.0);
        let params = AlgoParams::with_minimal_b0(model, n, 0.5);
        let mut sim = SimBuilder::topology(model, ScheduleSource::new(m.schedule.clone()))
            .drift(ScheduleDrift::new(m.clocks.clone()))
            .delay(DelayStrategy::Max)
            .build_with(|_| GradientNode::new(params));
        sim.run_until(at(200.0));
        let skew = (sim.logical(m.bridge.lo()) - sim.logical(m.bridge.hi())).abs();
        let predicted = 2.0 * model.rho * 200.0;
        assert!(
            (skew - predicted).abs() < predicted * 0.15,
            "skew {skew} vs predicted {predicted}"
        );
    }

    #[test]
    fn t_bridge_helper_inverts() {
        let model = ModelParams::new(0.05, 1.0, 2.0);
        let t = t_bridge_for_skew(model, 30.0);
        assert!((2.0 * model.rho * t - 30.0).abs() < 1e-9);
    }
}
