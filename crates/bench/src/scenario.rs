//! Shared experiment scenarios.
//!
//! The *cluster merge* is the workload behind E2, E3 and E7 (and the
//! paper's motivating story): two halves of the network evolve separately
//! — one on fast hardware clocks, one on slow — so their logical clocks
//! drift apart at rate `2ρ`; at `t_bridge` an edge joins them, instantly
//! carrying skew `≈ 2ρ·t_bridge`. Scaling `t_bridge` with `n` yields the
//! `Θ(n)` initial skew of the paper's analysis with an honest execution
//! (clocks all start at 0; the skew is genuinely accumulated, not
//! injected).

use gcs_clocks::HardwareClock;
use gcs_net::schedule::add_at;
use gcs_net::{Edge, TopologySchedule};
use gcs_sim::ModelParams;

/// A cluster-merge workload.
#[derive(Clone, Debug)]
pub struct Merge {
    /// Schedule: two disjoint paths, bridged at `t_bridge`.
    pub schedule: TopologySchedule,
    /// Per-node hardware clocks (left half fast, right half slow).
    pub clocks: Vec<HardwareClock>,
    /// The bridge edge.
    pub bridge: Edge,
    /// The pre-existing edges.
    pub old_edges: Vec<Edge>,
    /// When the bridge appears.
    pub t_bridge: f64,
}

/// Builds a cluster merge over `n` nodes (`n ≥ 4`, even split).
///
/// The left cluster is nodes `0..n/2`, the right cluster `n/2..n`; the
/// bridge is `{n/2 − 1, n/2}`. Hardware rates: the left cluster runs at
/// `1+ρ` **except its bridge endpoint `n/2 − 1`, which runs at `1−ρ`** —
/// it tracks the fast cluster's max by *chasing* (discrete jumps), so any
/// mechanism that blocks jumping shows up as a measurable `Lmax − L` lag
/// there. The right cluster runs at `1−ρ`. Expected skew on the bridge at
/// formation: `≈ 2ρ·t_bridge`.
pub fn merge(n: usize, model: ModelParams, t_bridge: f64) -> Merge {
    assert!(n >= 4, "merge scenario needs n >= 4");
    let half = n / 2;
    let bridge = Edge::between(half - 1, half);
    let mut old_edges: Vec<Edge> = (0..half - 1).map(|i| Edge::between(i, i + 1)).collect();
    old_edges.extend((half..n - 1).map(|i| Edge::between(i, i + 1)));
    let schedule = TopologySchedule::static_graph(n, old_edges.clone())
        .with_extra_events(vec![add_at(t_bridge, bridge)]);
    let clocks = (0..n)
        .map(|i| {
            let rate = if i < half - 1 {
                1.0 + model.rho
            } else {
                1.0 - model.rho
            };
            HardwareClock::constant(rate, model.rho)
        })
        .collect();
    Merge {
        schedule,
        clocks,
        bridge,
        old_edges,
        t_bridge,
    }
}

/// The `t_bridge` that yields initial bridge skew ≈ `target_skew`.
pub fn t_bridge_for_skew(model: ModelParams, target_skew: f64) -> f64 {
    assert!(target_skew > 0.0);
    target_skew / (2.0 * model.rho)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_clocks::time::at;
    use gcs_core::{AlgoParams, GradientNode};
    use gcs_sim::{DelayStrategy, SimBuilder};

    #[test]
    fn merge_accumulates_predicted_skew() {
        let model = ModelParams::new(0.05, 1.0, 2.0);
        let n = 16;
        let m = merge(n, model, 200.0);
        let params = AlgoParams::with_minimal_b0(model, n, 0.5);
        let mut sim = SimBuilder::new(model, m.schedule.clone())
            .clocks(m.clocks.clone())
            .delay(DelayStrategy::Max)
            .build_with(|_| GradientNode::new(params));
        sim.run_until(at(200.0));
        let skew = (sim.logical(m.bridge.lo()) - sim.logical(m.bridge.hi())).abs();
        let predicted = 2.0 * model.rho * 200.0;
        assert!(
            (skew - predicted).abs() < predicted * 0.15,
            "skew {skew} vs predicted {predicted}"
        );
    }

    #[test]
    fn t_bridge_helper_inverts() {
        let model = ModelParams::new(0.05, 1.0, 2.0);
        let t = t_bridge_for_skew(model, 30.0);
        assert!((2.0 * model.rho * t - 30.0).abs() < 1e-9);
    }
}
