//! E14 — the memory-ceiling run: the compact automaton plane at
//! `n = 2^23`.
//!
//! PR 5 made drift state lazy (E13, `n = 2^20`); the ceiling that
//! remained was the automaton plane itself: per-neighbor `f64` pairs in
//! every `Γ_u`, a privately sampled budget curve per node, and hot
//! engine-side state for every node that was ever touched, *forever*.
//! This scenario runs **eight times** E13's width — `n = 8 388 608` —
//! on the compact plane:
//!
//! * all automata resolve budgets against **one shared
//!   [`gcs_core::GradientShared`]** (quantized curve table, exact-path
//!   fallback), so the curve is sampled once for the whole run,
//! * **idle parking** is on: a node with empty `Υ_u` holds no armed
//!   tick timer, so the untouched majority never enters the event loop
//!   (protocol-invisible — empty `Υ` forces `L = Lmax` anyway),
//! * between phases the engine **evicts quiescent nodes** into the
//!   packed cold tier (`Simulator::evict_quiescent`), which rehydrates
//!   bit-exactly on touch.
//!
//! The workload makes eviction *matter*: a small path backbone of
//! always-ticking nodes (low contiguous ids, so the touched watermark
//! stays a prefix), plus waves of one-shot **visitors** that each join
//! a backbone host briefly and leave. After a wave departs, its
//! visitors go quiescent; the sweep at the next chunk boundary packs
//! them. The untouched majority above the visitor band never claims a
//! node-state slot at all.
//!
//! Reported: the per-plane byte census ([`gcs_sim::PlaneBytes`]),
//! eviction/rehydration counters, cold-tier census, and measured RSS —
//! the acceptance number for "break the memory ceiling" is peak RSS at
//! `n = 2^23`, recorded in `BENCH_engine.json`.

use crate::scenario::{Scenario, ScenarioFamily, ScenarioMeta, ScenarioReport};
use gcs_analysis::mem::PlaneBytes;
use gcs_analysis::Table;
use gcs_clocks::time::at;
use gcs_core::{AlgoParams, GradientNode, GradientShared};
use gcs_net::schedule::{add_at, remove_at, TopologyEvent};
use gcs_net::{Edge, ScheduleSource, TopologySchedule};
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder, SimStats};
use std::sync::Arc;

/// E14's model: tighter latency bounds than [`crate::default_model`]
/// (`T = 0.25`, `D = 0.6` — still `D > ΔH/(1−ρ)` for `ΔH = 0.5`) so a
/// visitor's one-chunk stay is long enough to be discovered, exchange a
/// round, and have its departure discovered well before the next sweep
/// boundary.
pub fn model() -> ModelParams {
    ModelParams::new(0.01, 0.25, 0.6)
}

/// Configuration for E14.
#[derive(Clone, Debug)]
pub struct Config {
    /// Node count (the headline configuration is `2^23 = 8 388 608`).
    pub n: usize,
    /// Path-backbone width (always-ticking nodes, ids `0..backbone`).
    pub backbone: usize,
    /// Number of visitor waves.
    pub waves: usize,
    /// Visitors per wave (each visits one backbone host, then leaves).
    pub wave_visitors: usize,
    /// Real-time horizon.
    pub horizon: f64,
    /// Seed for the engine's streams.
    pub seed: u64,
    /// Worker count for the dispatcher (trace-invariant).
    pub threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 1 << 23,
            backbone: 1 << 16,
            waves: 8,
            wave_visitors: 1 << 15,
            // 10 chunks of 1.8 s — each comfortably dominates D + T.
            horizon: 18.0,
            seed: 42,
            threads: crate::default_threads(),
        }
    }
}

impl Config {
    /// The headline configuration shrunk to `n` nodes (CI smoke): the
    /// backbone and visitor bands scale with `n`, keeping the same
    /// shape — touched prefix, departing waves, untouched majority.
    pub fn scaled_to(n: usize) -> Config {
        let d = Config::default();
        if n >= d.n {
            return d;
        }
        Config {
            n,
            backbone: (n / 128).max(8),
            wave_visitors: (n / 256).max(4),
            ..d
        }
    }

    /// Gap between chunk boundaries (one wave per chunk, plus a lead-in
    /// and a drain chunk).
    fn chunk(&self) -> f64 {
        self.horizon / (self.waves + 2) as f64
    }

    /// Total distinct visitor ids, directly above the backbone band.
    pub fn visitor_band(&self) -> usize {
        self.waves * self.wave_visitors
    }

    /// The workload schedule: a static path over `0..backbone`, plus per
    /// wave `w` one add/remove pair per visitor. Wave `w`'s visitors are
    /// ids `backbone + w·wave_visitors ..`, each joining host
    /// `j % backbone` shortly after chunk `w+1` opens and leaving near
    /// its end — so the join is discovered (`+D`), a round is exchanged
    /// (`+T`), the departure is discovered, and the visitor's next tick
    /// re-parks it before the sweep at chunk boundary `w+3`.
    pub fn schedule(&self) -> TopologySchedule {
        assert!(self.backbone >= 2, "backbone needs at least one edge");
        assert!(
            self.backbone + self.visitor_band() <= self.n,
            "backbone + visitors must fit under n"
        );
        let backbone_edges: Vec<Edge> = (0..self.backbone - 1)
            .map(|i| Edge::between(i, i + 1))
            .collect();
        let chunk = self.chunk();
        assert!(
            chunk >= 2.0 * (model().d + model().t),
            "chunks must dominate the discovery/delay bounds for visits \
             to be live; widen the horizon"
        );
        let mut events: Vec<TopologyEvent> = Vec::with_capacity(2 * self.visitor_band());
        for w in 0..self.waves {
            let t_join = (w as f64 + 1.1) * chunk;
            let t_leave = (w as f64 + 1.9) * chunk;
            for j in 0..self.wave_visitors {
                let visitor = self.backbone + w * self.wave_visitors + j;
                let host = j % self.backbone;
                let e = Edge::between(visitor, host);
                events.push(add_at(t_join, e));
                events.push(remove_at(t_leave, e));
            }
        }
        TopologySchedule::static_graph(self.n, backbone_edges).with_extra_events(events)
    }
}

/// The result of one memory-ceiling run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Seconds spent building the simulation.
    pub setup_s: f64,
    /// Seconds spent running it (including eviction sweeps).
    pub wall_s: f64,
    /// Events processed.
    pub events: u64,
    /// Throughput.
    pub events_per_sec: f64,
    /// Nodes moved to the cold tier over the whole run.
    pub evictions: u64,
    /// Cold nodes pulled back on touch.
    pub rehydrations: u64,
    /// Nodes resident in the cold tier at the horizon.
    pub cold_nodes: usize,
    /// Packed bytes in the cold tier at the horizon.
    pub cold_bytes: usize,
    /// Node-state slots materialized (the touched watermark).
    pub node_state_watermark: usize,
    /// Drift cursors materialized at the horizon.
    pub drift_cursors: usize,
    /// Per-plane heap census at the horizon.
    pub planes: PlaneBytes,
    /// Peak pending wheel events per payload lane, in
    /// `[topology, fault, deliver, alarm, discover]` order.
    pub pending_peaks: [usize; 5],
    /// Current resident set right after the run, simulation still live.
    pub current_rss_bytes: Option<u64>,
    /// Execution counters.
    pub stats: SimStats,
}

/// Runs the workload in chunks, sweeping the cold tier at every chunk
/// boundary (a deterministic, trace-invariant cadence).
pub fn run(config: &Config) -> Outcome {
    let model = model();
    let params = AlgoParams::with_minimal_b0(model, config.n, 0.5);
    let t0 = std::time::Instant::now();
    // One shared budget plane for all n automata, with idle parking so
    // the untouched majority never arms a timer.
    let shared = Arc::new(GradientShared::new(params).with_idle_parking(true));
    let mut sim = SimBuilder::topology(model, ScheduleSource::new(config.schedule()))
        .delay(DelayStrategy::Max)
        .seed(config.seed)
        .threads(config.threads)
        .build_with(|_| GradientNode::with_shared(shared.clone()));
    let setup_s = t0.elapsed().as_secs_f64();
    let chunk = config.chunk();
    let t1 = std::time::Instant::now();
    for k in 1..=(config.waves + 2) {
        sim.run_until(at((k as f64 * chunk).min(config.horizon)));
        sim.evict_quiescent();
    }
    sim.run_until(at(config.horizon));
    let wall_s = t1.elapsed().as_secs_f64();
    let stats = *sim.stats();
    // Read while `sim` is still alive so the numbers reflect this run's
    // live allocations.
    let current_rss_bytes = gcs_analysis::current_rss_bytes();
    Outcome {
        setup_s,
        wall_s,
        events: stats.events_processed,
        events_per_sec: stats.events_processed as f64 / wall_s.max(1e-12),
        evictions: sim.evictions(),
        rehydrations: sim.rehydrations(),
        cold_nodes: sim.cold_nodes(),
        cold_bytes: sim.cold_bytes(),
        node_state_watermark: sim.node_state_watermark(),
        drift_cursors: sim.drift_cursors(),
        planes: sim.plane_bytes(),
        pending_peaks: sim.wheel_pending_peaks(),
        current_rss_bytes,
        stats,
    }
}

/// Renders the memory-ceiling table.
pub fn render(config: &Config, o: &Outcome) -> Table {
    let mib = |b: usize| format!("{:.1}", b as f64 / (1024.0 * 1024.0));
    let mut t = Table::new(
        format!(
            "E14 / §3+§5 memory ceiling at n = {} — compact automaton plane, cold tier",
            config.n
        ),
        &["metric", "value", "", "plane", "MiB"],
    );
    let planes = [
        ("topology", o.planes.topology),
        ("drift", o.planes.drift),
        ("automaton hot", o.planes.automaton_hot),
        ("automaton cold", o.planes.automaton_cold),
        ("wheel", o.planes.wheel),
        ("staging", o.planes.staging),
    ];
    let metrics = [
        ("events", o.events.to_string()),
        ("events/sec", format!("{:.0}", o.events_per_sec)),
        ("evictions", o.evictions.to_string()),
        ("rehydrations", o.rehydrations.to_string()),
        ("cold nodes", o.cold_nodes.to_string()),
    ];
    for i in 0..planes.len().max(metrics.len()) {
        let (m, mv) = metrics
            .get(i)
            .map(|(k, v)| (*k, v.clone()))
            .unwrap_or(("", String::new()));
        let (p, pv) = planes
            .get(i)
            .map(|(k, v)| (*k, mib(*v)))
            .unwrap_or(("", String::new()));
        t.row(&[m.to_string(), mv, String::new(), p.to_string(), pv]);
    }
    t
}

/// Builds the scenario report from an already-computed outcome (shared
/// by [`Scenario::run_scenario`] and `run_all`).
pub fn report(config: &Config, o: &Outcome) -> ScenarioReport {
    let mut rep = ScenarioReport::new();
    rep.table(render(config, o));
    rep.note(format!(
        "touched watermark {} of n = {} — the untouched majority above the \
         visitor band claims no node-state slot (idle parking keeps it out \
         of the event loop entirely)",
        o.node_state_watermark, config.n,
    ));
    rep.note(format!(
        "cold tier holds {} nodes in {} packed bytes at the horizon \
         ({} evictions, {} rehydrations over the run)",
        o.cold_nodes, o.cold_bytes, o.evictions, o.rehydrations,
    ));
    rep.record_memory();
    rep.record_planes(o.planes);
    rep.csv(
        "e14_memory_ceiling.csv",
        &[
            "events",
            "events_per_sec",
            "evictions",
            "rehydrations",
            "cold_nodes",
            "cold_bytes",
            "node_state_watermark",
            "plane_topology_bytes",
            "plane_drift_bytes",
            "plane_automaton_hot_bytes",
            "plane_automaton_cold_bytes",
            "plane_wheel_bytes",
            "plane_staging_bytes",
        ],
        vec![vec![
            o.events as f64,
            o.events_per_sec,
            o.evictions as f64,
            o.rehydrations as f64,
            o.cold_nodes as f64,
            o.cold_bytes as f64,
            o.node_state_watermark as f64,
            o.planes.topology as f64,
            o.planes.drift as f64,
            o.planes.automaton_hot as f64,
            o.planes.automaton_cold as f64,
            o.planes.wheel as f64,
            o.planes.staging as f64,
        ]],
    );
    rep
}

/// E14 behind the [`Scenario`] surface.
#[derive(Clone, Debug, Default)]
pub struct Experiment {
    /// Memory-ceiling configuration.
    pub config: Config,
}

impl Scenario for Experiment {
    fn id(&self) -> &'static str {
        "E14"
    }
    fn title(&self) -> &'static str {
        "compact automaton plane — evictable cold tier at n = 2^23"
    }
    fn claim(&self) -> &'static str {
        "§3/§5 at scale — shared budget table, quiescent-node eviction"
    }
    fn meta(&self) -> ScenarioMeta {
        ScenarioMeta {
            name: "E14",
            n: Some(self.config.n),
            family: ScenarioFamily::Scale,
            fault_profile: None,
        }
    }
    fn run_scenario(&self) -> ScenarioReport {
        let config = self.config.clone();
        report(&config, &run(&config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Config {
        Config {
            n: 4096,
            backbone: 64,
            waves: 3,
            wave_visitors: 32,
            horizon: 10.0,
            seed: 7,
            threads: 1,
        }
    }

    #[test]
    fn waves_evict_and_the_majority_stays_untouched() {
        let config = small();
        let o = run(&config);
        assert!(o.events > 1_000, "workload too small: {}", o.events);
        assert!(
            o.evictions > 0,
            "departed visitor waves must reach the cold tier"
        );
        assert!(o.cold_nodes > 0, "cold tier empty at the horizon");
        assert!(o.cold_bytes > 0, "cold nodes must hold packed bytes");
        assert_eq!(
            o.cold_nodes as u64,
            o.evictions - o.rehydrations,
            "cold census must balance the counters"
        );
        let touched_band = config.backbone + config.visitor_band();
        assert!(
            o.node_state_watermark <= touched_band,
            "watermark {} exceeds the touched band {} — an untouched node \
             claimed a slot",
            o.node_state_watermark,
            touched_band
        );
        assert!(
            o.planes.automaton_cold > 0,
            "plane census must see the cold tier"
        );
        assert!(o.planes.automaton_hot > 0 && o.planes.topology > 0);
    }

    #[test]
    fn outcome_is_trace_invariant_across_thread_counts() {
        let base = small();
        let serial = run(&base);
        let parallel = run(&Config { threads: 4, ..base });
        assert_eq!(serial.stats, parallel.stats, "counters diverged");
        assert_eq!(serial.evictions, parallel.evictions, "eviction census");
        assert_eq!(
            serial.rehydrations, parallel.rehydrations,
            "rehydration census"
        );
        assert_eq!(serial.cold_nodes, parallel.cold_nodes);
        assert_eq!(serial.cold_bytes, parallel.cold_bytes);
        assert_eq!(serial.node_state_watermark, parallel.node_state_watermark);
    }
}
