//! E4 — Theorem 4.1 and Figure 1: the two-chain lower-bound scenario.
//!
//! Phase 1 (Figure 1(a)): run the algorithm under the Masking Lemma's β
//! adversary on the two-chain network until `T1`, building `Ω(n)` skew
//! between the designated chain-A nodes `u` and `v` (and hence between
//! `w0` and `wn`).
//!
//! Phase 2 (Figure 1(b)): apply Lemma 4.3 to the B-chain clocks at `T1`
//! to place new edges `E_new`, each carrying skew in `[I−S, I]`.
//!
//! Phase 3 (Figure 1(c)): rerun with `E_new` inserted at `T1` and measure
//! the skew still on the new edges at `T2 = T1 + k·T/(1+ρ)` — the theorem
//! says no algorithm can have reduced it below a constant fraction of `I`,
//! because the nodes around `u` and `v` cannot even have heard about the
//! new edges yet.

use gcs_analysis::Table;
use gcs_clocks::time::at;
use gcs_clocks::ScheduleDrift;
use gcs_core::{AlgoParams, GradientNode};
use gcs_lowerbound::Theorem41Scenario;
use gcs_net::schedule::add_at;
use gcs_net::{Edge, NodeId, ScheduleSource};
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder, Simulator};
use std::collections::BTreeMap;

/// Configuration for E4.
#[derive(Clone, Debug)]
pub struct Config {
    /// Total node count of the two-chain network.
    pub n: usize,
    /// Block parameter `k` (constrained hops near `w0`/`wn`).
    pub k: f64,
    /// Model parameters.
    pub model: ModelParams,
    /// Subjective resend interval.
    pub delta_h: f64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 48,
            k: 3.0,
            model: ModelParams::new(0.01, 1.0, 2.0),
            delta_h: 0.5,
        }
    }
}

/// The Figure 1(d)-style clock profile of the four designated nodes.
#[derive(Clone, Debug)]
pub struct ClockProfile {
    /// `L_{w0}`.
    pub w0: f64,
    /// `L_u`.
    pub u: f64,
    /// `L_v`.
    pub v: f64,
    /// `L_{wn}`.
    pub wn: f64,
}

/// Result of the scenario.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Flexible distance `dist_M(u, v)`.
    pub flexible_distance: usize,
    /// `T1` (when the skew is established and `E_new` appears).
    pub t1: f64,
    /// `T2 = T1 + k·T/(1+ρ)`.
    pub t2: f64,
    /// Skew between `u` and `v` at `T1` (Figure 1(a)); the lemma
    /// guarantees ≥ `T·d/4`.
    pub skew_uv_t1: f64,
    /// The Lemma 4.2 bound `T·d/4`.
    pub lemma_bound: f64,
    /// Prescribed per-edge skew `I` for `E_new`.
    pub i_skew: f64,
    /// Per-edge skew bound `S` used in Lemma 4.3.
    pub s: f64,
    /// The new edges and their skews at `T1` (all in `[I−S, I]`).
    pub new_edges_t1: Vec<(Edge, f64)>,
    /// The same edges' skews at `T2` (the theorem says they remain a
    /// constant fraction of `I`).
    pub new_edges_t2: Vec<(Edge, f64)>,
    /// Clock profile at `T1` (Figure 1(d)).
    pub profile_t1: ClockProfile,
    /// Time (after `T1`) until every new edge's skew dropped below `S` —
    /// the adaptation the tradeoff says takes `Ω(n/s̄)` (None if not within
    /// the observed horizon).
    pub settle_time: Option<f64>,
    /// The reference scale `n/B0` for the settle time.
    pub n_over_b0: f64,
}

fn profile(sim: &Simulator<GradientNode>, sc: &Theorem41Scenario) -> ClockProfile {
    ClockProfile {
        w0: sim.logical(sc.tc.w0()),
        u: sim.logical(sc.u()),
        v: sim.logical(sc.v()),
        wn: sim.logical(sc.tc.wn()),
    }
}

/// Runs the full three-phase scenario.
pub fn run(config: &Config) -> Outcome {
    let sc = Theorem41Scenario::new(config.n, config.k, config.model.rho, config.model.t);
    let params = AlgoParams::with_minimal_b0(config.model, config.n, config.delta_h);
    let t1 = sc.ready_time() + 20.0;
    let t2 = t1 + config.k * config.model.t / (1.0 + config.model.rho);

    // Phase 1: establish the Figure 1(a) configuration.
    let mut sim = SimBuilder::topology(config.model, ScheduleSource::new(sc.schedule()))
        .drift(ScheduleDrift::new(sc.beta_clocks()))
        .delay(sc.beta_delays())
        .build_with(|_| GradientNode::new(params));
    sim.run_until(at(t1));
    let skew_uv_t1 = (sim.logical(sc.u()) - sim.logical(sc.v())).abs();
    let profile_t1 = profile(&sim, &sc);

    // Phase 2: place E_new from the B-chain clocks (Figure 1(b)). The
    // paper takes S = ξ·s̄(n), the *guaranteed* bound on adjacent B-chain
    // skew; Lemma 4.3 only needs S to bound the actual adjacent gaps, so
    // we use the measured bound (much tighter at these network sizes,
    // which lets the construction place several edges).
    let b_clocks: Vec<f64> = sc.b_chain().iter().map(|&w| sim.logical(w)).collect();
    let s = b_clocks
        .windows(2)
        .map(|w| (w[0] - w[1]).abs())
        .fold(0.0f64, f64::max)
        .max(1e-3);
    // I must exceed S and leave room for several edges within the total
    // B-chain spread.
    let i_skew = (skew_uv_t1 / 3.0).max(2.5 * s);
    let new_edges = sc.place_new_edges(&b_clocks, i_skew, s);
    let clock_at = |sim: &Simulator<GradientNode>, w: NodeId| sim.logical(w);
    let new_edges_t1: Vec<(Edge, f64)> = new_edges
        .iter()
        .map(|&e| (e, (clock_at(&sim, e.lo()) - clock_at(&sim, e.hi())).abs()))
        .collect();

    // Phase 3: rerun with E_new inserted at T1 (deterministic prefix), and
    // measure the new edges at T2 (Figure 1(c)). Delays on E_new are
    // "arbitrary" in the paper; we pin them to T.
    let pattern: BTreeMap<Edge, f64> = new_edges.iter().map(|&e| (e, config.model.t)).collect();
    let schedule2 = sc
        .schedule()
        .with_extra_events(new_edges.iter().map(|&e| add_at(t1, e)).collect());
    let mut sim2 = SimBuilder::topology(config.model, ScheduleSource::new(schedule2))
        .drift(ScheduleDrift::new(sc.beta_clocks()))
        .delay(DelayStrategy::Masked {
            pattern,
            default: Box::new(sc.beta_delays()),
        })
        .build_with(|_| GradientNode::new(params));
    sim2.run_until(at(t2));
    let new_edges_t2: Vec<(Edge, f64)> = new_edges
        .iter()
        .map(|&e| (e, (clock_at(&sim2, e.lo()) - clock_at(&sim2, e.hi())).abs()))
        .collect();

    // Phase 4: how long until the new edges actually settle below the
    // target skew S? The tradeoff (Theorem 4.1 + Corollary 6.14) predicts
    // Θ(n/B0)-scale adaptation.
    let settle_horizon = t2 + 20.0 * (config.n as f64 / params.b0 + 1.0) * params.tau();
    let mut settle_time = None;
    let target = i_skew.max(2.0 * s) / 2.0;
    let mut t = t2;
    while t < settle_horizon {
        t += 1.0;
        sim2.run_until(at(t));
        let worst = new_edges
            .iter()
            .map(|&e| (clock_at(&sim2, e.lo()) - clock_at(&sim2, e.hi())).abs())
            .fold(0.0f64, f64::max);
        if worst <= target {
            settle_time.get_or_insert(t - t1);
        } else {
            settle_time = None;
        }
    }

    Outcome {
        flexible_distance: sc.flexible_distance_uv(),
        t1,
        t2,
        skew_uv_t1,
        lemma_bound: sc.skew_bound(),
        i_skew,
        s,
        new_edges_t1,
        new_edges_t2,
        profile_t1,
        settle_time,
        n_over_b0: config.n as f64 / params.b0,
    }
}

/// Renders the Figure 1 tables.
pub fn render(outcome: &Outcome) -> Vec<Table> {
    let mut fig_a = Table::new(
        "E4 / Figure 1(a) — skew established by the masking adversary",
        &["quantity", "value"],
    );
    fig_a.row(&[
        "flexible distance d(u,v)".into(),
        outcome.flexible_distance.to_string(),
    ]);
    fig_a.row(&["T1".into(), format!("{:.1}", outcome.t1)]);
    fig_a.row(&[
        "skew(u,v) at T1".into(),
        format!("{:.2}", outcome.skew_uv_t1),
    ]);
    fig_a.row(&[
        "Lemma 4.2 bound T·d/4".into(),
        format!("{:.2}", outcome.lemma_bound),
    ]);

    let mut fig_d = Table::new(
        "E4 / Figure 1(d) — clock profile at T1",
        &["node", "logical clock"],
    );
    fig_d.row(&["w0".into(), format!("{:.2}", outcome.profile_t1.w0)]);
    fig_d.row(&["u".into(), format!("{:.2}", outcome.profile_t1.u)]);
    fig_d.row(&["v".into(), format!("{:.2}", outcome.profile_t1.v)]);
    fig_d.row(&["wn".into(), format!("{:.2}", outcome.profile_t1.wn)]);

    let mut fig_bc = Table::new(
        format!(
            "E4 / Figure 1(b,c) — E_new skews (I = {:.2}, S = {:.2}, T2−T1 = {:.2})",
            outcome.i_skew,
            outcome.s,
            outcome.t2 - outcome.t1
        ),
        &["edge", "skew at T1", "skew at T2", "T2/T1 ratio"],
    );
    for ((e, s1), (_, s2)) in outcome.new_edges_t1.iter().zip(&outcome.new_edges_t2) {
        fig_bc.row(&[
            format!("{e}"),
            format!("{s1:.2}"),
            format!("{s2:.2}"),
            format!("{:.3}", s2 / s1),
        ]);
    }

    let mut settle = Table::new(
        "E4 — adaptation after T1 (the Ω(n/s̄) tradeoff)",
        &["quantity", "value"],
    );
    settle.row(&[
        "new-edge settle time (to I/2)".into(),
        outcome
            .settle_time
            .map(|s| format!("{s:.1}"))
            .unwrap_or_else(|| "—".into()),
    ]);
    settle.row(&[
        "n/B0 reference scale".into(),
        format!("{:.2}", outcome.n_over_b0),
    ]);
    vec![fig_a, fig_d, fig_bc, settle]
}

/// E4 behind the [`Scenario`](crate::scenario::Scenario) surface.
#[derive(Clone, Debug, Default)]
pub struct Experiment {
    /// Two-chain scenario configuration.
    pub config: Config,
}

impl crate::scenario::Scenario for Experiment {
    fn id(&self) -> &'static str {
        "E4"
    }
    fn title(&self) -> &'static str {
        "two-chain lower-bound scenario (Figure 1)"
    }
    fn claim(&self) -> &'static str {
        "Theorem 4.1 — new edges cannot be exploited instantly"
    }
    fn meta(&self) -> crate::scenario::ScenarioMeta {
        crate::scenario::ScenarioMeta {
            name: "E4",
            n: Some(self.config.n),
            family: crate::scenario::ScenarioFamily::Claim,
            fault_profile: None,
        }
    }
    fn run_scenario(&self) -> crate::scenario::ScenarioReport {
        let out = run(&self.config);
        let mut rep = crate::scenario::ScenarioReport::new();
        for t in render(&out) {
            rep.table(t);
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_reproduces_theorem_shape() {
        let config = Config {
            n: 24,
            k: 2.0,
            ..Config::default()
        };
        let out = run(&config);
        // Figure 1(a): the β execution builds at least the lemma's skew.
        assert!(
            out.skew_uv_t1 >= out.lemma_bound,
            "skew {} below lemma bound {}",
            out.skew_uv_t1,
            out.lemma_bound
        );
        // Figure 1(b): every new edge carries skew in [I−S, I].
        assert!(!out.new_edges_t1.is_empty());
        for (e, s1) in &out.new_edges_t1 {
            assert!(
                *s1 >= out.i_skew - out.s - 1e-6 && *s1 <= out.i_skew + 1e-6,
                "edge {e:?} carries {s1}, want [{}, {}]",
                out.i_skew - out.s,
                out.i_skew
            );
        }
        // Figure 1(c): at T2 the new edges still carry a constant fraction
        // of I — information cannot have propagated yet.
        for (e, s2) in &out.new_edges_t2 {
            assert!(
                *s2 >= 0.5 * out.i_skew,
                "edge {e:?} skew fell to {s2} < I/2 = {} within k·T/(1+ρ)",
                0.5 * out.i_skew
            );
        }
    }
}
