//! E2 — Corollary 6.13: the dynamic local skew function.
//!
//! Two clusters drift apart for `t_bridge` time, then a bridge edge joins
//! them, carrying skew `≈ 2ρ·t_bridge` (the cluster-merge scenario, see
//! [`crate::scenario`]). We sample the bridge skew as a function of edge
//! age and compare against the paper's envelope
//! `s(n, Δt) = B((1−ρ)(Δt − ΔT − D − W)⁺) + 2ρW`, while also tracking the
//! worst *old*-edge skew — which must stay within the stable bound
//! throughout (the gradient property).

use crate::scenario;
use gcs_analysis::Table;
use gcs_clocks::time::at;
use gcs_clocks::ScheduleDrift;
use gcs_core::{AlgoParams, GradientNode};
use gcs_net::ScheduleSource;
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder};

/// Configuration for E2.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of nodes (two clusters of `n/2`).
    pub n: usize,
    /// Model parameters (high drift recommended so skew accumulates
    /// quickly).
    pub model: ModelParams,
    /// Subjective resend interval.
    pub delta_h: f64,
    /// Target skew on the bridge at formation (sets `t_bridge`; capped
    /// in spirit by `B(0) > 5·G(n)` so the envelope stays honest).
    pub target_skew: f64,
    /// Sampling cadence after the bridge.
    pub sample_dt: f64,
    /// How many stabilization windows `W` to observe.
    pub windows: f64,
    /// Engine worker count (`None` = engine default). Traces — and
    /// therefore the whole report — are identical for every value.
    pub threads: Option<usize>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 48,
            model: ModelParams::new(0.05, 1.0, 2.0),
            delta_h: 0.5,
            target_skew: 60.0,
            sample_dt: 2.0,
            windows: 2.0,
            threads: None,
        }
    }
}

/// One sampled point of the decay curve.
#[derive(Clone, Debug)]
pub struct DecayPoint {
    /// Edge age `Δt` (real time since the bridge appeared).
    pub age: f64,
    /// Measured bridge skew.
    pub bridge_skew: f64,
    /// The envelope `s(n, Δt)`.
    pub bound: f64,
    /// Worst skew over the old edges at this instant.
    pub worst_old_edge: f64,
}

/// Result of the decay experiment.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Skew on the bridge at formation.
    pub initial_skew: f64,
    /// Decay curve.
    pub curve: Vec<DecayPoint>,
    /// The stable local skew bound `B0 + 2ρW`.
    pub stable_bound: f64,
    /// Algorithm parameters used.
    pub params: AlgoParams,
}

/// Runs the decay experiment.
pub fn run(config: &Config) -> Outcome {
    let n = config.n;
    let params = AlgoParams::with_minimal_b0(config.model, n, config.delta_h);
    let t_bridge = scenario::t_bridge_for_skew(config.model, config.target_skew);
    let m = scenario::merge(n, config.model, t_bridge);
    let horizon = t_bridge + config.windows * params.w() + 100.0;
    let mut builder = SimBuilder::topology(config.model, ScheduleSource::new(m.schedule.clone()))
        .drift(ScheduleDrift::new(m.clocks.clone()))
        .delay(DelayStrategy::Max);
    if let Some(t) = config.threads {
        builder = builder.threads(t);
    }
    let mut sim = builder.build_with(|_| GradientNode::new(params));

    sim.run_until(at(t_bridge));
    let initial_skew = (sim.logical(m.bridge.lo()) - sim.logical(m.bridge.hi())).abs();

    let mut curve = Vec::new();
    let mut t = t_bridge;
    while t < horizon {
        t = (t + config.sample_dt).min(horizon);
        sim.run_until(at(t));
        let age = t - t_bridge;
        let worst_old_edge = m
            .old_edges
            .iter()
            .map(|e| (sim.logical(e.lo()) - sim.logical(e.hi())).abs())
            .fold(0.0, f64::max);
        curve.push(DecayPoint {
            age,
            bridge_skew: (sim.logical(m.bridge.lo()) - sim.logical(m.bridge.hi())).abs(),
            bound: params.dynamic_local_skew(age),
            worst_old_edge,
        });
    }
    Outcome {
        initial_skew,
        curve,
        stable_bound: params.stable_local_skew(),
        params,
    }
}

/// Renders the decay table (subsampled to ~14 rows).
pub fn render(outcome: &Outcome) -> Table {
    let mut t = Table::new(
        format!(
            "E2 / Corollary 6.13 — bridge-edge skew vs edge age (initial skew {:.1})",
            outcome.initial_skew
        ),
        &[
            "age",
            "bridge skew",
            "s(n, age)",
            "worst old edge",
            "stable bound",
        ],
    );
    let stride = (outcome.curve.len() / 14).max(1);
    for p in outcome.curve.iter().step_by(stride) {
        t.row(&[
            format!("{:.0}", p.age),
            format!("{:.3}", p.bridge_skew),
            format!("{:.3}", p.bound),
            format!("{:.3}", p.worst_old_edge),
            format!("{:.3}", outcome.stable_bound),
        ]);
    }
    t
}

/// E2 behind the [`Scenario`](crate::scenario::Scenario) surface.
#[derive(Clone, Debug, Default)]
pub struct Experiment {
    /// Decay-curve configuration.
    pub config: Config,
}

impl crate::scenario::Scenario for Experiment {
    fn id(&self) -> &'static str {
        "E2"
    }
    fn title(&self) -> &'static str {
        "bridge-edge skew decay vs edge age (cluster merge)"
    }
    fn claim(&self) -> &'static str {
        "Corollary 6.13 — dynamic local skew envelope s(n, Δt)"
    }
    fn meta(&self) -> crate::scenario::ScenarioMeta {
        crate::scenario::ScenarioMeta {
            name: "E2",
            n: Some(self.config.n),
            family: crate::scenario::ScenarioFamily::Claim,
            fault_profile: None,
        }
    }
    fn run_scenario(&self) -> crate::scenario::ScenarioReport {
        let out = run(&self.config);
        let mut rep = crate::scenario::ScenarioReport::new();
        rep.table(render(&out));
        rep.note(format!(
            "initial bridge skew {:.2}, stable bound {:.2}",
            out.initial_skew, out.stable_bound
        ));
        rep.csv(
            "e2_local_skew_decay.csv",
            &["age", "bridge_skew", "envelope", "worst_old_edge"],
            out.curve
                .iter()
                .map(|p| vec![p.age, p.bridge_skew, p.bound, p.worst_old_edge])
                .collect(),
        );
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_respects_envelope_and_old_edges() {
        let config = Config {
            n: 24,
            target_skew: 40.0,
            windows: 1.5,
            ..Config::default()
        };
        let out = run(&config);
        assert!(
            out.initial_skew > 2.0 * out.stable_bound,
            "need substantial skew to decay, got {} vs stable bound {}",
            out.initial_skew,
            out.stable_bound
        );
        for p in &out.curve {
            assert!(
                p.bridge_skew <= p.bound + 1e-6,
                "age {}: skew {} above envelope {}",
                p.age,
                p.bridge_skew,
                p.bound
            );
            assert!(
                p.worst_old_edge <= out.stable_bound + 1e-6,
                "old-edge skew {} above stable bound",
                p.worst_old_edge
            );
        }
        // Shape: the bridge settles to (well below) the stable bound.
        let last = out.curve.last().unwrap();
        assert!(last.bridge_skew <= out.stable_bound + 1e-6);
        assert!(last.bridge_skew < out.initial_skew / 4.0);
    }
}
