//! E3 — Corollary 6.14: the adaptability tradeoff.
//!
//! The time to bring a fresh edge's skew down to the stable bound is
//! `O(n/B0)`, and the lower bound (Theorem 4.1) shows `Ω(n/s̄(n))` is
//! unavoidable — so doubling the stable budget should roughly halve the
//! stabilization time, and scaling the accumulated skew with `n` (as the
//! paper's analysis does) should scale it back up. We run the cluster
//! merge with initial skew proportional to `n`, sweep `B0` multipliers
//! and `n`, measure the settle time of the bridge edge, and fit the
//! log–log slope of settle time against `B0` (expected ≈ −1).

use crate::scenario;
use gcs_analysis::stats::loglog_slope;
use gcs_analysis::{parallel_map, Recorder, Table};
use gcs_clocks::time::at;
use gcs_clocks::ScheduleDrift;
use gcs_core::{AlgoParams, GradientNode};
use gcs_net::ScheduleSource;
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder};

/// Configuration for E3.
#[derive(Clone, Debug)]
pub struct Config {
    /// Node counts to sweep.
    pub ns: Vec<usize>,
    /// Multipliers applied to the minimal admissible `B0`.
    pub b0_multipliers: Vec<f64>,
    /// Model parameters.
    pub model: ModelParams,
    /// Subjective resend interval.
    pub delta_h: f64,
    /// Initial bridge skew per node (`target skew = skew_per_node · n`).
    pub skew_per_node: f64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            ns: vec![24, 48],
            b0_multipliers: vec![1.0, 2.0, 4.0, 8.0],
            model: ModelParams::new(0.05, 1.0, 2.0),
            delta_h: 0.5,
            skew_per_node: 2.0,
        }
    }
}

/// One sweep cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Node count.
    pub n: usize,
    /// Stable budget used.
    pub b0: f64,
    /// Skew on the bridge at formation.
    pub initial_skew: f64,
    /// Measured time until the bridge skew stayed at or below the settle
    /// threshold (`None` if it never settled within the horizon).
    pub settle_time: Option<f64>,
    /// The reference scale `n/B0`.
    pub n_over_b0: f64,
}

/// Sweep outcome.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// All sweep cells.
    pub cells: Vec<Cell>,
    /// Log–log slope of settle time vs `B0` at the largest `n` (expected
    /// negative, ideally ≈ −1: inverse proportionality).
    pub slope_vs_b0: f64,
}

/// Runs the sweep (parallel over cells).
pub fn run(config: &Config) -> Outcome {
    let mut tasks = Vec::new();
    for &n in &config.ns {
        for &m in &config.b0_multipliers {
            tasks.push((n, m));
        }
    }
    let cells = parallel_map(&tasks, |&(n, mult)| run_cell(config, n, mult));
    let n_max = *config.ns.iter().max().expect("non-empty ns");
    let fit_cells: Vec<&Cell> = cells
        .iter()
        .filter(|c| c.n == n_max && c.settle_time.is_some())
        .collect();
    let slope_vs_b0 = if fit_cells.len() >= 2 {
        let xs: Vec<f64> = fit_cells.iter().map(|c| c.b0).collect();
        let ys: Vec<f64> = fit_cells.iter().map(|c| c.settle_time.unwrap()).collect();
        loglog_slope(&xs, &ys)
    } else {
        f64::NAN
    };
    Outcome { cells, slope_vs_b0 }
}

fn run_cell(config: &Config, n: usize, b0_multiplier: f64) -> Cell {
    let minimal = AlgoParams::with_minimal_b0(config.model, n, config.delta_h);
    let b0 = minimal.b0 * b0_multiplier;
    let params = AlgoParams::new(config.model, n, config.delta_h, b0);
    let target_skew = config.skew_per_node * n as f64;
    let t_bridge = scenario::t_bridge_for_skew(config.model, target_skew);
    let m = scenario::merge(n, config.model, t_bridge);
    // Horizon: generous multiple of the expected closure time plus the
    // stabilization window.
    let horizon = t_bridge + 6.0 * (target_skew / b0 + 1.0) * params.tau() + 4.0 * params.w();
    let mut sim = SimBuilder::topology(config.model, ScheduleSource::new(m.schedule.clone()))
        .drift(ScheduleDrift::new(m.clocks.clone()))
        .delay(DelayStrategy::Max)
        .build_with(|_| GradientNode::new(params));
    sim.run_until(at(t_bridge));
    let initial_skew = (sim.logical(m.bridge.lo()) - sim.logical(m.bridge.hi())).abs();
    let mut rec = Recorder::new(0.5).watch(m.bridge);
    rec.run(&mut sim, at(horizon));
    // Settle threshold: a fixed small multiple of B0 (comparing different
    // B0 runs against their own stable skew would move the goalposts).
    let threshold = 1.5 * minimal.b0;
    let settle_time = rec.settle_time(0, threshold).map(|t| t - t_bridge);
    Cell {
        n,
        b0,
        initial_skew,
        settle_time,
        n_over_b0: n as f64 / b0,
    }
}

/// Renders the tradeoff table.
pub fn render(outcome: &Outcome) -> Table {
    let mut t = Table::new(
        "E3 / Corollary 6.14 — stabilization time vs B0 and n",
        &["n", "B0", "initial skew", "settle time", "n/B0"],
    );
    for c in &outcome.cells {
        t.row(&[
            c.n.to_string(),
            format!("{:.1}", c.b0),
            format!("{:.2}", c.initial_skew),
            c.settle_time
                .map(|s| format!("{s:.1}"))
                .unwrap_or_else(|| "—".into()),
            format!("{:.2}", c.n_over_b0),
        ]);
    }
    t
}

/// E3 behind the [`Scenario`](crate::scenario::Scenario) surface.
#[derive(Clone, Debug, Default)]
pub struct Experiment {
    /// Tradeoff-sweep configuration.
    pub config: Config,
}

impl crate::scenario::Scenario for Experiment {
    fn id(&self) -> &'static str {
        "E3"
    }
    fn title(&self) -> &'static str {
        "stabilization time vs stable budget B0"
    }
    fn claim(&self) -> &'static str {
        "Corollary 6.14 — settle time proportional to n/B0"
    }
    fn meta(&self) -> crate::scenario::ScenarioMeta {
        crate::scenario::ScenarioMeta {
            name: "E3",
            n: self.config.ns.iter().copied().max(),
            family: crate::scenario::ScenarioFamily::Claim,
            fault_profile: None,
        }
    }
    fn run_scenario(&self) -> crate::scenario::ScenarioReport {
        let out = run(&self.config);
        let mut rep = crate::scenario::ScenarioReport::new();
        rep.table(render(&out));
        rep.note(format!(
            "log-log slope of settle time vs B0: {:.3}",
            out.slope_vs_b0
        ));
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_budget_settles_faster() {
        let config = Config {
            ns: vec![24],
            b0_multipliers: vec![1.0, 4.0],
            ..Config::default()
        };
        let out = run(&config);
        let small = &out.cells[0];
        let large = &out.cells[1];
        assert!(small.b0 < large.b0);
        let ts = small.settle_time.expect("small-B0 cell settled");
        let tl = large.settle_time.expect("large-B0 cell settled");
        assert!(
            tl < ts,
            "larger budget should settle faster: B0={} took {ts}, B0={} took {tl}",
            small.b0,
            large.b0
        );
    }

    #[test]
    fn more_skew_takes_longer_at_fixed_budget() {
        // n doubles ⇒ accumulated skew doubles ⇒ settle time grows.
        let config = Config {
            ns: vec![16, 32],
            b0_multipliers: vec![1.0],
            ..Config::default()
        };
        let out = run(&config);
        // The minimal B0 depends only on the model and ΔH (τ is
        // n-independent), so the two cells share the same budget and the
        // comparison is apples-to-apples.
        assert_eq!(out.cells[0].b0, out.cells[1].b0);
        let t16 = out.cells[0].settle_time.expect("n=16 settled");
        let t32 = out.cells[1].settle_time.expect("n=32 settled");
        assert!(
            t32 > t16,
            "doubling the accumulated skew should slow stabilization: {t16} vs {t32}"
        );
    }
}
