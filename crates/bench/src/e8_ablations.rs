//! E8 — ablations of the algorithm's design choices (beyond the paper's
//! stated results; validates the *reasons* behind the budget function's
//! shape, per DESIGN.md §5).
//!
//! * **Initial-budget ablation.** The paper sets `B(0) = 5G(n) + (1+ρ)τ +
//!   B0 > G(n)` so a fresh edge can never constrain anyone. We sweep the
//!   initial value below and above the accumulated skew: once `B(0)`
//!   drops below the skew a new edge carries, the ahead endpoint gets
//!   blocked and lags behind `Lmax` — the failure the paper's choice
//!   avoids by construction.
//! * **Slope ablation.** The paper hardens the budget at rate
//!   `B0/((1+ρ)τ)`. Hardening much faster re-introduces blocking before
//!   the skew has closed; hardening much slower just delays the moment
//!   the stable guarantee attaches (the local skew bound converges later).
//! * **Wrong-`n` ablation.** Nodes only know `n` (the paper assumes they
//!   do, §5). Overestimating `n` inflates `G(n)` — safe but with weaker
//!   stable guarantees; underestimating it shrinks the fresh-edge budget
//!   below the real skew — the same blocking failure.
//! * **ΔH sensitivity.** Faster resends shrink `ΔT`, `τ`, and therefore
//!   the admissible `B0` and the achieved local skew, at the cost of more
//!   messages — the cost/precision knob of the protocol.

use crate::scenario;
use gcs_analysis::{parallel_map, Table};
use gcs_clocks::time::at;
use gcs_clocks::DriftModel;
use gcs_clocks::ScheduleDrift;
use gcs_core::{AlgoParams, BudgetPolicy, GradientNode};
use gcs_net::{generators, node, ScheduleSource, TopologySchedule};
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder};

/// Configuration for the budget-shape ablations.
#[derive(Clone, Debug)]
pub struct Config {
    /// Nodes in the merge scenario.
    pub n: usize,
    /// Model (high drift so skew accumulates fast).
    pub model: ModelParams,
    /// Resend interval.
    pub delta_h: f64,
    /// Initial bridge skew to accumulate.
    pub target_skew: f64,
    /// Observation window after the merge.
    pub window: f64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 24,
            model: ModelParams::new(0.1, 1.0, 2.0),
            delta_h: 0.5,
            target_skew: 80.0,
            window: 120.0,
        }
    }
}

/// One ablation cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Human-readable variant label.
    pub label: String,
    /// Peak `Lmax − L` lag at the ahead-side bridge endpoint.
    pub peak_lag: f64,
    /// Time until the bridge settled below `1.5 × B0` (None = never).
    pub settle_time: Option<f64>,
}

fn run_merge_with(config: &Config, params: AlgoParams, label: String) -> Cell {
    let t_bridge = scenario::t_bridge_for_skew(config.model, config.target_skew);
    let m = scenario::merge(config.n, config.model, t_bridge);
    let mut sim = SimBuilder::topology(config.model, ScheduleSource::new(m.schedule.clone()))
        .drift(ScheduleDrift::new(m.clocks.clone()))
        .delay(DelayStrategy::Max)
        .build_with(|_| GradientNode::new(params));
    sim.run_until(at(t_bridge));
    // The ahead endpoint is the fast-cluster side of the bridge.
    let ahead = m.bridge.lo();
    let mut peak_lag: f64 = 0.0;
    let mut settle_time = None;
    let threshold = 1.5 * params.b0;
    let mut t = t_bridge;
    while t < t_bridge + config.window {
        t += 0.5;
        sim.run_until(at(t));
        peak_lag = peak_lag.max(sim.max_estimate_of(ahead) - sim.logical(ahead));
        let skew = (sim.logical(m.bridge.lo()) - sim.logical(m.bridge.hi())).abs();
        if skew <= threshold {
            settle_time.get_or_insert(t - t_bridge);
        } else {
            settle_time = None;
        }
    }
    Cell {
        label,
        peak_lag,
        settle_time,
    }
}

/// Initial-budget ablation: `B(0)` as a multiple of the accumulated skew.
pub fn run_initial_budget(config: &Config) -> Vec<Cell> {
    let base = AlgoParams::with_minimal_b0(config.model, config.n, config.delta_h);
    let paper_slope = base.b0 / ((1.0 + config.model.rho) * base.tau());
    let multipliers = [0.25, 0.5, 1.0, 2.0];
    let mut variants: Vec<(String, AlgoParams)> = multipliers
        .iter()
        .map(|&m| {
            let initial = m * config.target_skew;
            let params = AlgoParams::with_policy(
                config.model,
                config.n,
                config.delta_h,
                base.b0,
                BudgetPolicy::Custom {
                    initial,
                    slope: paper_slope,
                },
            );
            (format!("B(0) = {m:.2} x skew"), params)
        })
        .collect();
    variants.push(("paper: B(0) = 5G+(1+rho)tau+B0".into(), base));
    parallel_map(&variants, |(label, params)| {
        run_merge_with(config, *params, label.clone())
    })
}

/// Slope ablation: hardening rate as a multiple of the paper's.
pub fn run_slope(config: &Config) -> Vec<Cell> {
    let base = AlgoParams::with_minimal_b0(config.model, config.n, config.delta_h);
    let paper_slope = base.b0 / ((1.0 + config.model.rho) * base.tau());
    let initial = base.budget(0.0);
    let variants: Vec<(String, AlgoParams)> = [0.25, 1.0, 4.0, 16.0]
        .iter()
        .map(|&m| {
            let params = AlgoParams::with_policy(
                config.model,
                config.n,
                config.delta_h,
                base.b0,
                BudgetPolicy::Custom {
                    initial,
                    slope: m * paper_slope,
                },
            );
            (format!("slope = {m:.2} x paper"), params)
        })
        .collect();
    parallel_map(&variants, |(label, params)| {
        run_merge_with(config, *params, label.clone())
    })
}

/// Wrong-`n` ablation: nodes believe the network has `n_assumed` nodes.
pub fn run_wrong_n(config: &Config) -> Vec<Cell> {
    let variants: Vec<(String, AlgoParams)> = [
        (config.n / 4, "n/4 (underestimate)"),
        (config.n, "n (exact)"),
        (4 * config.n, "4n (overestimate)"),
    ]
    .iter()
    .map(|&(n_assumed, label)| {
        let params = AlgoParams::with_minimal_b0(config.model, n_assumed, config.delta_h);
        (label.to_string(), params)
    })
    .collect();
    parallel_map(&variants, |(label, params)| {
        run_merge_with(config, *params, label.clone())
    })
}

/// ΔH sensitivity on a static path: achieved steady local skew vs message
/// cost.
#[derive(Clone, Debug)]
pub struct DeltaHCell {
    /// Resend interval.
    pub delta_h: f64,
    /// Minimal admissible stable budget for that ΔH.
    pub b0: f64,
    /// Steady-state worst local skew.
    pub steady_local_skew: f64,
    /// Messages sent over the run.
    pub messages: u64,
}

/// Runs the ΔH sweep.
pub fn run_delta_h(model: ModelParams, n: usize, delta_hs: &[f64]) -> Vec<DeltaHCell> {
    parallel_map(delta_hs, |&delta_h| {
        let params = AlgoParams::with_minimal_b0(model, n, delta_h);
        let horizon = 300.0;
        let schedule = TopologySchedule::static_graph(n, generators::path(n));
        let mut sim = SimBuilder::topology(model, ScheduleSource::new(schedule))
            .drift_model(DriftModel::FastUpTo(n / 2), horizon)
            .delay(DelayStrategy::Max)
            .build_with(|_| GradientNode::new(params));
        sim.run_until(at(horizon * 0.75));
        let mut worst: f64 = 0.0;
        let mut t = horizon * 0.75;
        while t < horizon {
            t += 1.0;
            sim.run_until(at(t));
            for i in 0..n - 1 {
                worst = worst.max((sim.logical(node(i)) - sim.logical(node(i + 1))).abs());
            }
        }
        DeltaHCell {
            delta_h,
            b0: params.b0,
            steady_local_skew: worst,
            messages: sim.stats().messages_sent,
        }
    })
}

/// Renders the merge-scenario ablations.
pub fn render_cells(title: &str, cells: &[Cell]) -> Table {
    let mut t = Table::new(title, &["variant", "peak Lmax−L lag", "settle time"]);
    for c in cells {
        t.row(&[
            c.label.clone(),
            format!("{:.2}", c.peak_lag),
            c.settle_time
                .map(|s| format!("{s:.1}"))
                .unwrap_or_else(|| "—".into()),
        ]);
    }
    t
}

/// Renders the ΔH sweep.
pub fn render_delta_h(cells: &[DeltaHCell]) -> Table {
    let mut t = Table::new(
        "E8d — ΔH sensitivity (path, steady state)",
        &["ΔH", "minimal B0", "steady local skew", "messages"],
    );
    for c in cells {
        t.row(&[
            format!("{:.2}", c.delta_h),
            format!("{:.1}", c.b0),
            format!("{:.3}", c.steady_local_skew),
            c.messages.to_string(),
        ]);
    }
    t
}

/// E8 behind the [`Scenario`](crate::scenario::Scenario) surface; runs
/// all four ablations.
#[derive(Clone, Debug, Default)]
pub struct Experiment {
    /// Shared ablation configuration.
    pub config: Config,
}

impl crate::scenario::Scenario for Experiment {
    fn id(&self) -> &'static str {
        "E8"
    }
    fn title(&self) -> &'static str {
        "parameter ablations: B(0), hardening slope, assumed n, ΔH"
    }
    fn claim(&self) -> &'static str {
        "§5–6 — every parameter choice in Algorithm 2 is load-bearing"
    }
    fn meta(&self) -> crate::scenario::ScenarioMeta {
        crate::scenario::ScenarioMeta {
            name: "E8",
            n: Some(self.config.n),
            family: crate::scenario::ScenarioFamily::Claim,
            fault_profile: None,
        }
    }
    fn run_scenario(&self) -> crate::scenario::ScenarioReport {
        let mut rep = crate::scenario::ScenarioReport::new();
        rep.table(render_cells(
            "E8a — initial budget B(0)",
            &run_initial_budget(&self.config),
        ));
        rep.table(render_cells(
            "E8b — hardening slope",
            &run_slope(&self.config),
        ));
        rep.table(render_cells("E8c — assumed n", &run_wrong_n(&self.config)));
        rep.table(render_delta_h(&run_delta_h(
            crate::default_model(),
            32,
            &[0.25, 0.5, 1.0, 1.9],
        )));
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> Config {
        Config {
            n: 16,
            target_skew: 60.0,
            window: 80.0,
            ..Config::default()
        }
    }

    #[test]
    fn small_initial_budget_blocks_ahead_endpoint() {
        let cells = run_initial_budget(&quick_config());
        let tight = &cells[0]; // B(0) = 0.25 x skew
        let paper = cells.last().unwrap();
        assert!(
            tight.peak_lag > paper.peak_lag + 1.0,
            "undersized B(0) should cause blocking: tight {} vs paper {}",
            tight.peak_lag,
            paper.peak_lag
        );
    }

    #[test]
    fn paper_slope_avoids_blocking_but_fast_slopes_do_not() {
        let cells = run_slope(&quick_config());
        let paper = &cells[1];
        let fastest = &cells[3]; // 16x hardening
        assert!(
            fastest.peak_lag > paper.peak_lag,
            "over-fast hardening should block: fast {} vs paper {}",
            fastest.peak_lag,
            paper.peak_lag
        );
        assert!(paper.peak_lag < 0.5, "paper slope should not block");
    }

    #[test]
    fn underestimating_n_blocks_overestimating_is_safe() {
        let cells = run_wrong_n(&quick_config());
        let under = &cells[0];
        let exact = &cells[1];
        let over = &cells[2];
        assert!(
            under.peak_lag > exact.peak_lag + 1.0,
            "n/4: {} vs exact {}",
            under.peak_lag,
            exact.peak_lag
        );
        assert!(over.peak_lag <= exact.peak_lag + 0.5);
    }

    #[test]
    fn faster_resends_buy_tighter_local_skew_for_more_messages() {
        let model = ModelParams::new(0.01, 1.0, 2.0);
        let cells = run_delta_h(model, 16, &[0.25, 1.0]);
        assert!(cells[0].messages > cells[1].messages);
        assert!(cells[0].b0 < cells[1].b0, "smaller ΔH admits smaller B0");
    }
}
