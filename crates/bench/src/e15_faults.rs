//! E15 — the fault-and-adversary scenario family.
//!
//! Three sub-families stress what E1–E13 deliberately keep clean:
//!
//! * **Fault recovery** — a path network under a typed [`FaultPlan`]:
//!   two crash/restart cycles with full state loss, a global message-loss
//!   window, and a delay spike pinned to the model bound `T`. The paper's
//!   analysis assumes none of these; the experiment measures how far the
//!   execution departs (peak global skew) and how quickly the gradient
//!   protocol re-enters the Theorem 6.9 envelope after the last restart.
//! * **Adversarial chords** — the empirical companion to Theorem 4.1:
//!   [`greedy_worst_case`] searches chord placement and timing on the
//!   two-island path whose halves drift apart at the full model rate
//!   ([`DriftModel::FastUpTo`]), maximizing the peak *local* skew the
//!   moment distant clocks become neighbors. The score is compared
//!   against the best well-behaved workload (the E2/E7 cluster merge) at
//!   the same `n`: the searched attack must dominate, because the
//!   adversary also *chooses* the bridging instant the merge fixes.
//! * **Negative control** — a drift excursion pushes one node's observed
//!   hardware rate *outside* `[1−ρ, 1+ρ]`, deliberately breaking the
//!   model assumption. The run is correct only if the
//!   [`InvariantMonitor`] trips (max-rate, Property 6.7): a monitor that
//!   stays silent here would be vacuous, so E15 fails closed on a clean
//!   report.
//!
//! All three run under the engine's canonical event order, so every
//! number is bit-identical at any worker count — pinned by
//! `crates/bench/tests/faults.rs`.

use crate::scenario::{merge, ScenarioFamily, ScenarioMeta, ScenarioReport};
use gcs_analysis::Recorder;
use gcs_clocks::time::at;
use gcs_clocks::DriftModel;
use gcs_core::{AlgoParams, GradientNode, InvariantMonitor};
use gcs_net::{
    generators, greedy_worst_case, AdversarialChurnSource, BridgeAttack, Edge, ScheduleSource,
    TopologySchedule,
};
use gcs_sim::{DelayStrategy, FaultEvent, FaultPlan, ModelParams, SimBuilder, Simulator};

/// E15 configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Node count of the fault and adversary families.
    pub n: usize,
    /// Real-time horizon per run.
    pub horizon: f64,
    /// Model parameters.
    pub model: ModelParams,
    /// Subjective resend interval.
    pub delta_h: f64,
    /// Sampling interval for skew trajectories and the monitor.
    pub sample_dt: f64,
    /// Hill-climb refinement rounds of the adversary search.
    pub refine_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 64,
            horizon: 600.0,
            model: ModelParams::new(0.05, 1.0, 2.0),
            delta_h: 0.5,
            sample_dt: 1.0,
            refine_steps: 4,
        }
    }
}

impl Config {
    fn params(&self) -> AlgoParams {
        AlgoParams::with_minimal_b0(self.model, self.n, self.delta_h)
    }
}

/// The fault plan of the recovery family: two crash/restart cycles, one
/// global loss window, one delay spike at the model bound `T`. All times
/// scale with the horizon so smoke runs exercise every fault kind.
pub fn recovery_plan(config: &Config) -> FaultPlan {
    let h = config.horizon;
    let quarter = config.n / 4;
    let half = config.n / 2;
    FaultPlan::new(vec![
        FaultEvent::crash(0.20 * h, gcs_net::node(quarter)),
        FaultEvent::restart(0.30 * h, gcs_net::node(quarter)),
        FaultEvent::crash(0.45 * h, gcs_net::node(half)),
        FaultEvent::restart(0.55 * h, gcs_net::node(half)),
        FaultEvent::drop_window(0.60 * h, 0.05 * h),
        FaultEvent::delay_spike(0.70 * h, config.model.t, 0.05 * h),
    ])
}

/// Outcome of the fault-recovery family.
#[derive(Clone, Debug)]
pub struct FaultOutcome {
    /// Peak global skew over the sampled trajectory.
    pub peak_global: f64,
    /// Global skew at the horizon.
    pub final_global: f64,
    /// Real time from the last restart until global skew re-entered the
    /// Theorem 6.9 envelope `G(n)` (`None` if it never did).
    pub recovery_s: Option<f64>,
    /// Fault-plane counters from the engine.
    pub crashes: u64,
    /// Restarts applied.
    pub restarts: u64,
    /// Deliveries lost to crashed nodes plus loss windows.
    pub dropped: u64,
    /// Sends whose delay was overridden by the spike window.
    pub delay_spiked: u64,
    /// Total events dispatched.
    pub events: u64,
}

/// Outcome of the adversary family.
#[derive(Clone, Debug)]
pub struct AdversaryOutcome {
    /// The attack the greedy search settled on.
    pub attack: BridgeAttack,
    /// Peak local skew under that attack.
    pub peak_local: f64,
    /// Peak local skew of the best well-behaved workload (cluster merge)
    /// at the same `n` — the yardstick the attack must beat.
    pub baseline_peak_local: f64,
    /// Candidates (including refinements) the search evaluated.
    pub evaluations: usize,
}

/// Outcome of the negative-control family.
#[derive(Clone, Debug)]
pub struct ControlOutcome {
    /// Monitor violations recorded (must be `> 0`).
    pub violations: u64,
    /// First violation, for the report.
    pub first_violation: Option<String>,
}

/// All three family outcomes.
#[derive(Clone, Debug)]
pub struct Outcomes {
    /// Crash/restart + windows family.
    pub fault: FaultOutcome,
    /// Worst-case chord family.
    pub adversary: AdversaryOutcome,
    /// Drift-excursion negative control.
    pub control: ControlOutcome,
}

fn path_sim(config: &Config, faults: Option<FaultPlan>) -> Simulator<GradientNode> {
    let params = config.params();
    let schedule = TopologySchedule::static_graph(config.n, generators::path(config.n));
    let mut builder = SimBuilder::topology(config.model, ScheduleSource::new(schedule))
        .drift_model(DriftModel::SplitExtremes, config.horizon)
        .delay(DelayStrategy::Max);
    if let Some(plan) = faults {
        builder = builder.faults(plan);
    }
    builder.build_with(move |_| GradientNode::new(params))
}

/// Runs the fault-recovery family.
pub fn run_fault(config: &Config) -> FaultOutcome {
    let mut sim = path_sim(config, Some(recovery_plan(config)));
    let mut rec = Recorder::new(config.sample_dt);
    rec.run(&mut sim, at(config.horizon));
    let g = config.params().global_skew_bound();
    let last_restart = 0.55 * config.horizon;
    let peak_global = rec
        .samples()
        .iter()
        .map(|s| s.global_skew)
        .fold(0.0, f64::max);
    let final_global = rec.samples().last().map(|s| s.global_skew).unwrap_or(0.0);
    let recovery_s = rec
        .samples()
        .iter()
        .find(|s| s.t >= last_restart && s.global_skew <= g)
        .map(|s| s.t - last_restart);
    let stats = sim.stats();
    FaultOutcome {
        peak_global,
        final_global,
        recovery_s,
        crashes: stats.crashes,
        restarts: stats.restarts,
        dropped: stats.dropped_crashed + stats.dropped_fault_window,
        delay_spiked: stats.delay_spiked,
        events: stats.events_processed,
    }
}

/// Peak local skew of the gradient protocol under one chord attack on
/// the two-island path whose left island runs fast
/// ([`DriftModel::FastUpTo`]).
pub fn attack_peak_local(config: &Config, attack: BridgeAttack) -> f64 {
    let params = config.params();
    let source = AdversarialChurnSource::new(config.n, vec![attack]);
    let mut sim = SimBuilder::topology(config.model, source)
        .drift_model(DriftModel::FastUpTo(config.n / 2), config.horizon)
        .delay(DelayStrategy::Max)
        .build_with(move |_| GradientNode::new(params));
    let mut rec = Recorder::new(config.sample_dt);
    rec.run(&mut sim, at(config.horizon));
    rec.peak_local_skew()
}

/// Peak local skew of the best *well-behaved* workload at the same `n`:
/// the E2/E7 cluster merge, bridged mid-run.
pub fn baseline_peak_local(config: &Config) -> f64 {
    let params = config.params();
    let m = merge(config.n, config.model, 0.5 * config.horizon);
    let mut sim = SimBuilder::topology(config.model, ScheduleSource::new(m.schedule))
        .drift(gcs_clocks::ScheduleDrift::new(m.clocks))
        .delay(DelayStrategy::Max)
        .build_with(move |_| GradientNode::new(params));
    let mut rec = Recorder::new(config.sample_dt);
    rec.run(&mut sim, at(config.horizon));
    rec.peak_local_skew()
}

/// The candidate attacks the greedy search starts from: three chord
/// spans (full path, half path, middle half) × three insertion times.
pub fn candidate_attacks(config: &Config) -> Vec<BridgeAttack> {
    let n = config.n;
    let edges = [
        Edge::between(0, n - 1),
        Edge::between(0, n / 2),
        Edge::between(n / 4, 3 * n / 4),
    ];
    let times = [0.3, 0.5, 0.7].map(|f| f * config.horizon);
    let mut out = Vec::new();
    for e in edges {
        for t in times {
            out.push(BridgeAttack::permanent(t, e));
        }
    }
    out
}

/// Runs the adversary family: greedy worst-case search vs the merge
/// baseline.
pub fn run_adversary(config: &Config) -> AdversaryOutcome {
    let mut evaluations = 0;
    let (attack, peak_local) =
        greedy_worst_case(candidate_attacks(config), config.refine_steps, |a| {
            evaluations += 1;
            attack_peak_local(config, a)
        });
    AdversaryOutcome {
        attack,
        peak_local,
        baseline_peak_local: baseline_peak_local(config),
        evaluations,
    }
}

/// Runs the negative control: a 16-node ring with one node's observed
/// rate warped far outside `[1−ρ, 1+ρ]` mid-run. The invariant monitor
/// must trip (max-rate, Property 6.7) — silence is the failure mode.
pub fn run_control(config: &Config) -> ControlOutcome {
    let n = 16;
    let params = AlgoParams::with_minimal_b0(config.model, n, config.delta_h);
    let horizon = 120.0_f64.min(config.horizon);
    let schedule = TopologySchedule::static_graph(n, generators::ring(n));
    // Rate delta +1.0 doubles node 0's observed rate for a sixth of the
    // run — far beyond 1+ρ, so Lmax grows at a rate the monitor rejects.
    let plan = FaultPlan::new(vec![FaultEvent::drift_excursion(
        0.4 * horizon,
        gcs_net::node(0),
        1.0,
        horizon / 6.0,
    )]);
    let mut sim = SimBuilder::topology(config.model, ScheduleSource::new(schedule))
        .drift_model(DriftModel::Perfect, horizon)
        .delay(DelayStrategy::Max)
        .faults(plan)
        .build_with(move |_| GradientNode::new(params));
    let mut rec = Recorder::new(config.sample_dt).with_monitor(InvariantMonitor::new(params));
    rec.run(&mut sim, at(horizon));
    let monitor = rec.monitor().expect("monitor attached");
    ControlOutcome {
        violations: monitor.violations().len() as u64,
        first_violation: monitor
            .violations()
            .first()
            .map(|v| format!("t={:.1}: {}", v.time.seconds(), v.what)),
    }
}

/// Runs all three families.
pub fn run(config: &Config) -> Outcomes {
    Outcomes {
        fault: run_fault(config),
        adversary: run_adversary(config),
        control: run_control(config),
    }
}

/// Renders the outcomes into a scenario report.
pub fn report(config: &Config, out: &Outcomes) -> ScenarioReport {
    let mut rep = ScenarioReport::new();
    let g = config.params().global_skew_bound();
    let mut t = gcs_analysis::Table::new(
        format!("E15 fault & adversary families (n = {})", config.n),
        &["family", "metric", "value"],
    );
    t.row(&[
        "fault".into(),
        "peak global skew".into(),
        format!("{:.2}", out.fault.peak_global),
    ]);
    t.row(&[
        "fault".into(),
        "final global skew".into(),
        format!("{:.2} (G(n) = {:.2})", out.fault.final_global, g),
    ]);
    t.row(&[
        "fault".into(),
        "recovery after last restart".into(),
        out.fault
            .recovery_s
            .map(|s| format!("{s:.1}s"))
            .unwrap_or_else(|| "never".into()),
    ]);
    t.row(&[
        "adversary".into(),
        "worst attack".into(),
        format!(
            "chord {:?} at t = {:.1}",
            out.adversary.attack.edge, out.adversary.attack.time
        ),
    ]);
    t.row(&[
        "adversary".into(),
        "peak local skew".into(),
        format!(
            "{:.2} (merge baseline {:.2})",
            out.adversary.peak_local, out.adversary.baseline_peak_local
        ),
    ]);
    t.row(&[
        "control".into(),
        "monitor violations".into(),
        format!("{} (must be > 0)", out.control.violations),
    ]);
    rep.table(t);
    rep.note(format!(
        "fault plane: {} crashes, {} restarts, {} deliveries dropped, {} sends spiked over {} events",
        out.fault.crashes, out.fault.restarts, out.fault.dropped, out.fault.delay_spiked,
        out.fault.events
    ));
    rep.note(format!(
        "adversary search: {} evaluations; attack peak {:.2} >= merge baseline {:.2}: {}",
        out.adversary.evaluations,
        out.adversary.peak_local,
        out.adversary.baseline_peak_local,
        out.adversary.peak_local >= out.adversary.baseline_peak_local
    ));
    if let Some(v) = &out.control.first_violation {
        rep.note(format!("negative control tripped as required: {v}"));
    }
    rep.csv(
        "e15_faults.csv",
        &["family", "peak", "final_or_baseline"],
        vec![
            vec![0.0, out.fault.peak_global, out.fault.final_global],
            vec![
                1.0,
                out.adversary.peak_local,
                out.adversary.baseline_peak_local,
            ],
            vec![2.0, out.control.violations as f64, 0.0],
        ],
    );
    rep
}

/// E15 behind the [`Scenario`](crate::scenario::Scenario) surface.
#[derive(Clone, Debug, Default)]
pub struct Experiment {
    /// Family configuration.
    pub config: Config,
}

impl crate::scenario::Scenario for Experiment {
    fn id(&self) -> &'static str {
        "E15"
    }
    fn title(&self) -> &'static str {
        "fault & adversary families (crash/restart, loss, spikes, worst-case chords)"
    }
    fn claim(&self) -> &'static str {
        "Theorem 4.1 (adversarial chord skew) + fail-closed model-violation detection"
    }
    fn meta(&self) -> ScenarioMeta {
        ScenarioMeta {
            name: "E15",
            n: Some(self.config.n),
            family: ScenarioFamily::Fault,
            fault_profile: Some("crash-restart + loss/delay windows + drift excursion + chords"),
        }
    }
    fn run_scenario(&self) -> ScenarioReport {
        let out = run(&self.config);
        report(&self.config, &out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Config {
        Config {
            n: 16,
            horizon: 120.0,
            refine_steps: 1,
            ..Config::default()
        }
    }

    #[test]
    fn fault_family_recovers_into_the_envelope() {
        let out = run_fault(&small());
        assert_eq!(out.crashes, 2);
        assert_eq!(out.restarts, 2);
        assert!(out.delay_spiked > 0, "spike window must override delays");
        assert!(
            out.recovery_s.is_some(),
            "global skew must re-enter G(n) after the last restart (peak {:.2}, final {:.2})",
            out.peak_global,
            out.final_global
        );
    }

    #[test]
    fn adversary_beats_the_well_behaved_baseline() {
        let config = small();
        let out = run_adversary(&config);
        assert!(
            out.peak_local >= out.baseline_peak_local,
            "searched attack ({:.3}) must dominate the merge baseline ({:.3})",
            out.peak_local,
            out.baseline_peak_local
        );
        assert!(out.evaluations >= candidate_attacks(&config).len());
    }

    #[test]
    fn negative_control_trips_the_monitor() {
        let out = run_control(&small());
        assert!(
            out.violations > 0,
            "a drift excursion outside [1-rho, 1+rho] must trip the invariant monitor"
        );
    }
}
