//! E1 — Theorem 6.9: the algorithm guarantees a global skew of
//! `G(n) = ((1+ρ)T + 2ρD)(n−1)` at all times.
//!
//! We sweep `n` over paths (worst diameter) under the block-split drift
//! adversary (the left half of the path at `1+ρ`, the right half at
//! `1−ρ`, so skew accumulates across the whole diameter) and maximal
//! message delays, measure the peak global skew over a long horizon, and
//! check (a) the bound holds, (b) the measured skew grows linearly in `n`
//! (the paper's shape), via a least-squares fit.

use gcs_analysis::stats::linear_fit;
use gcs_analysis::{parallel_map, Recorder, Table};
use gcs_clocks::time::at;
use gcs_clocks::DriftModel;
use gcs_core::{AlgoParams, GradientNode, InvariantMonitor};
use gcs_net::{generators, ScheduleSource, TopologySchedule};
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder};

/// Configuration for E1.
#[derive(Clone, Debug)]
pub struct Config {
    /// Node counts to sweep.
    pub ns: Vec<usize>,
    /// Model parameters.
    pub model: ModelParams,
    /// Subjective resend interval.
    pub delta_h: f64,
    /// Engine worker count (`None` = engine default). Traces — and
    /// therefore the whole report — are identical for every value.
    pub threads: Option<usize>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            ns: vec![8, 16, 32, 64, 128],
            model: ModelParams::new(0.01, 1.0, 2.0),
            delta_h: 0.5,
            threads: None,
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Point {
    /// Node count.
    pub n: usize,
    /// Peak measured global skew.
    pub measured: f64,
    /// The bound `G(n)`.
    pub bound: f64,
    /// Invariant violations observed (must be 0).
    pub violations: usize,
}

/// Full result of the sweep.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Per-`n` measurements.
    pub points: Vec<Point>,
    /// Least-squares fit of measured skew against `n`: (slope, intercept,
    /// r²).
    pub fit: (f64, f64, f64),
}

/// Runs the sweep (parallel over `n`).
pub fn run(config: &Config) -> Outcome {
    let points = parallel_map(&config.ns, |&n| {
        let params = AlgoParams::with_minimal_b0(config.model, n, config.delta_h);
        // Long enough for the worst-case skew profile to form across the
        // whole diameter.
        let horizon = 8.0 * n as f64 + 200.0;
        let schedule = TopologySchedule::static_graph(n, generators::path(n));
        let mut builder = SimBuilder::topology(config.model, ScheduleSource::new(schedule))
            .drift_model(DriftModel::FastUpTo(n / 2), horizon)
            .delay(DelayStrategy::Max);
        if let Some(t) = config.threads {
            builder = builder.threads(t);
        }
        let mut sim = builder.build_with(|_| GradientNode::new(params));
        let mut rec = Recorder::new(2.0).with_monitor(InvariantMonitor::new(params));
        rec.run(&mut sim, at(horizon));
        Point {
            n,
            measured: rec.peak_global_skew(),
            bound: params.global_skew_bound(),
            violations: rec.monitor().unwrap().violations().len(),
        }
    });
    let xs: Vec<f64> = points.iter().map(|p| p.n as f64).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.measured).collect();
    let fit = linear_fit(&xs, &ys);
    Outcome { points, fit }
}

/// Renders the paper-vs-measured table.
pub fn render(outcome: &Outcome) -> Table {
    let mut t = Table::new(
        "E1 / Theorem 6.9 — global skew vs n (path, split drift, max delays)",
        &[
            "n",
            "G(n) bound",
            "measured peak",
            "measured/bound",
            "violations",
        ],
    );
    for p in &outcome.points {
        t.row(&[
            p.n.to_string(),
            format!("{:.2}", p.bound),
            format!("{:.2}", p.measured),
            format!("{:.3}", p.measured / p.bound),
            p.violations.to_string(),
        ]);
    }
    t
}

/// E1 behind the [`Scenario`](crate::scenario::Scenario) surface.
#[derive(Clone, Debug, Default)]
pub struct Experiment {
    /// Sweep configuration.
    pub config: Config,
}

impl crate::scenario::Scenario for Experiment {
    fn id(&self) -> &'static str {
        "E1"
    }
    fn title(&self) -> &'static str {
        "global skew vs n (path, split drift, max delays)"
    }
    fn claim(&self) -> &'static str {
        "Theorem 6.9 — global skew ≤ G(n), linear in n"
    }
    fn meta(&self) -> crate::scenario::ScenarioMeta {
        crate::scenario::ScenarioMeta {
            name: "E1",
            n: self.config.ns.iter().copied().max(),
            family: crate::scenario::ScenarioFamily::Claim,
            fault_profile: None,
        }
    }
    fn run_scenario(&self) -> crate::scenario::ScenarioReport {
        let out = run(&self.config);
        let mut rep = crate::scenario::ScenarioReport::new();
        rep.table(render(&out));
        let (slope, _, r2) = out.fit;
        rep.note(format!("linear fit: slope {slope:.4}, r^2 {r2:.4}"));
        rep.csv(
            "e1_global_skew.csv",
            &["n", "bound", "measured"],
            out.points
                .iter()
                .map(|p| vec![p.n as f64, p.bound, p.measured])
                .collect(),
        );
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_respects_bound_and_is_linear() {
        let config = Config {
            ns: vec![8, 16, 32],
            ..Config::default()
        };
        let out = run(&config);
        for p in &out.points {
            assert_eq!(p.violations, 0, "n={} had violations", p.n);
            assert!(
                p.measured <= p.bound,
                "n={}: {} > {}",
                p.n,
                p.measured,
                p.bound
            );
            assert!(p.measured > 0.0);
        }
        // Shape: linear fit of measured vs n explains the data well and
        // has positive slope.
        let (slope, _, r2) = out.fit;
        assert!(slope > 0.0, "skew should grow with n");
        assert!(r2 > 0.9, "expected near-linear growth, r² = {r2}");
    }
}
