//! The engine-throughput workloads: E1's global-skew scenario with churn,
//! at the classic `n = 1024` and at the E11 large-scale `n = 65 536`.
//!
//! One canonical workload shape, three consumers:
//!
//! * the criterion groups in `benches/engine.rs` (events/sec of the
//!   batched serial engine, and of the parallel dispatcher at
//!   `threads ∈ {1, 2, 8}`),
//! * `run_all`, which records the same comparison as machine-readable
//!   `BENCH_engine.json` (the perf trajectory future PRs diff against) —
//!   since the frozen pre-rewrite engine was deleted, the **batched
//!   serial engine (`threads = 1`) is the baseline** every speedup is
//!   measured against,
//! * the determinism regression tests in `tests/determinism.rs`.
//!
//! The workload is the E1 topology (a path, worst diameter) with the
//! block-split drift adversary, plus randomly flapping chord edges so the
//! discovery/epoch machinery is exercised — "churn on" in the experiment
//! table.

use gcs_clocks::time::at;
use gcs_clocks::DriftModel;
use gcs_core::{AlgoParams, GradientNode};
use gcs_net::{churn, generators, ScheduleSource, TopologySchedule};
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder, SimStats, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of the throughput workload.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Node count.
    pub n: usize,
    /// Real-time horizon to simulate.
    pub horizon: f64,
    /// Whether chord edges flap on top of the path backbone.
    pub churn: bool,
    /// Seed for churn placement and the engine's per-node streams.
    pub seed: u64,
    /// Worker count for the parallel dispatcher (1 = batched serial).
    pub threads: usize,
}

impl Workload {
    /// The serial-baseline configuration of the batched-rewrite PR:
    /// `n = 1024`, churn on, one worker.
    pub fn acceptance() -> Self {
        Workload {
            n: 1024,
            horizon: 60.0,
            churn: true,
            seed: 42,
            threads: 1,
        }
    }

    /// The E11 large-scale configuration: `n = 65 536`, churn on. The
    /// horizon is short — at this width a single simulated second is
    /// hundreds of thousands of events.
    pub fn large_scale() -> Self {
        Workload {
            n: 65_536,
            horizon: 10.0,
            churn: true,
            seed: 42,
            threads: 1,
        }
    }

    /// The same workload with a different worker count (trace-invariant).
    pub fn with_threads(self, threads: usize) -> Self {
        Workload { threads, ..self }
    }

    /// Model parameters (the E1 defaults).
    pub fn model(&self) -> ModelParams {
        ModelParams::new(0.01, 1.0, 2.0)
    }

    /// Algorithm parameters (the E1 defaults).
    pub fn params(&self) -> AlgoParams {
        AlgoParams::with_minimal_b0(self.model(), self.n, 0.5)
    }

    /// The topology schedule: path backbone, plus `n/4` flapping chords
    /// when churn is enabled.
    pub fn schedule(&self) -> TopologySchedule {
        let backbone = generators::path(self.n);
        if !self.churn {
            return TopologySchedule::static_graph(self.n, backbone);
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x000c_4e1d);
        churn::random_churn(
            self.n,
            backbone,
            self.n / 4,
            (6.0, 12.0),
            (2.0, 4.0),
            self.horizon,
            &mut rng,
        )
    }

    /// Builds the workload on the engine with this workload's threads.
    /// All `n` automata share one budget plane (`Arc<GradientShared>`) —
    /// the curve table is sampled once, not per node.
    pub fn build(&self) -> Simulator<GradientNode> {
        let shared = std::sync::Arc::new(gcs_core::GradientShared::new(self.params()));
        SimBuilder::topology(self.model(), ScheduleSource::new(self.schedule()))
            .drift_model(DriftModel::FastUpTo(self.n / 2), self.horizon)
            .delay(DelayStrategy::Max)
            .seed(self.seed)
            .threads(self.threads)
            .build_with(|_| GradientNode::with_shared(shared.clone()))
    }
}

/// One timed engine run.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Engine label, e.g. `"batched-serial"` or `"parallel-8t"`.
    pub engine: String,
    /// Worker count used.
    pub threads: usize,
    /// Events processed over the run.
    pub events: u64,
    /// Wall-clock seconds spent *building* the simulation (schedule
    /// generation + engine construction). With eager schedules this is
    /// the serial setup phase the streaming pipeline removes; tracked in
    /// `BENCH_engine.json` so the trajectory shows it.
    pub setup_s: f64,
    /// Wall-clock seconds of the run itself.
    pub wall_s: f64,
    /// Throughput.
    pub events_per_sec: f64,
    /// Peak pulled-but-unapplied topology events (the streaming
    /// pipeline's event backlog; equals the stats field of the run).
    pub peak_topology_backlog: u64,
    /// Wall-clock seconds spent inside topology batch application
    /// (graph mirror + sharded edge-store apply), a slice of `wall_s`.
    pub topology_apply_s: f64,
    /// Segments dispatched across worker lanes (scheduling-only counter,
    /// recorded for the trajectory; not trace-relevant).
    pub segments_parallel: u64,
    /// Execution counters of the run (identical across thread counts —
    /// consumers use this for determinism cross-checks without re-running).
    pub stats: SimStats,
}

/// Times one full run of `w` on the parallel dispatcher at `w.threads`.
pub fn measure(w: &Workload) -> Measurement {
    let engine = if w.threads == 1 {
        "batched-serial".to_string()
    } else {
        format!("parallel-{}t", w.threads)
    };
    let t0 = std::time::Instant::now();
    let mut sim = w.build();
    let setup_s = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    sim.run_until(at(w.horizon));
    let wall_s = t1.elapsed().as_secs_f64();
    let stats = *sim.stats();
    let events = stats.events_processed;
    Measurement {
        engine,
        threads: w.threads,
        events,
        setup_s,
        wall_s,
        events_per_sec: events as f64 / wall_s.max(1e-12),
        peak_topology_backlog: stats.peak_topology_backlog,
        topology_apply_s: sim.topology_apply_seconds(),
        segments_parallel: stats.segments_parallel,
        stats,
    }
}

/// The environment variable CI smoke jobs use to shrink the large-scale
/// experiment widths (`GCS_SMOKE_N=4096 cargo run ... --bin
/// exp_large_scale`), so the scale paths run on every push instead of
/// only in benches.
pub const SMOKE_N_ENV: &str = "GCS_SMOKE_N";

/// The configured large-scale width: `full` unless [`SMOKE_N_ENV`]
/// overrides it with a smaller value (floored at 16 nodes).
pub fn smoke_n(full: usize) -> usize {
    std::env::var(SMOKE_N_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.clamp(16, full))
        .unwrap_or(full)
}

/// Runs `w` at each worker count, `repeats` times each, and returns the
/// best (lowest-wall) measurement per count — criterion-style
/// minimum-of-samples, cheap enough to live inside `run_all`.
pub fn measure_threads(w: &Workload, thread_counts: &[usize], repeats: usize) -> Vec<Measurement> {
    assert!(repeats >= 1);
    thread_counts
        .iter()
        .map(|&t| {
            let wt = w.with_threads(t);
            let mut runs: Vec<Measurement> = (0..repeats).map(|_| measure(&wt)).collect();
            runs.sort_by(|a, b| a.wall_s.total_cmp(&b.wall_s));
            runs.remove(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_runs_identically_across_thread_counts() {
        let w = Workload {
            n: 16,
            horizon: 10.0,
            churn: true,
            seed: 7,
            threads: 1,
        };
        let serial = measure(&w);
        let parallel = measure(&w.with_threads(4));
        assert_eq!(
            serial.events, parallel.events,
            "thread counts must process identical event counts"
        );
        assert!(
            serial.events > 1000,
            "workload too small: {} events",
            serial.events
        );
        assert!(serial.events_per_sec > 0.0 && parallel.events_per_sec > 0.0);
        assert_eq!(serial.engine, "batched-serial");
        assert_eq!(parallel.engine, "parallel-4t");
    }

    #[test]
    fn churn_workload_actually_churns() {
        let w = Workload {
            n: 32,
            horizon: 20.0,
            churn: true,
            seed: 3,
            threads: 1,
        };
        assert!(!w.schedule().events().is_empty());
        let mut sim = w.build();
        sim.run_until(at(w.horizon));
        assert!(sim.stats().topology_events > 0);
        // Without churn the schedule is static.
        let quiet = Workload { churn: false, ..w };
        assert!(quiet.schedule().events().is_empty());
    }

    #[test]
    fn measure_threads_covers_requested_counts() {
        let w = Workload {
            n: 12,
            horizon: 5.0,
            churn: false,
            seed: 1,
            threads: 1,
        };
        let ms = measure_threads(&w, &[1, 2], 1);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].threads, 1);
        assert_eq!(ms[1].threads, 2);
        assert_eq!(ms[0].events, ms[1].events);
    }
}
