//! The engine-throughput workload: E1's global-skew scenario with churn.
//!
//! One canonical workload, three consumers:
//!
//! * the criterion group in `benches/engine.rs` (events/sec of the batched
//!   time-wheel engine vs the frozen [`gcs_sim::legacy`] engine),
//! * `run_all --` which records the same comparison as machine-readable
//!   `BENCH_engine.json` (the perf trajectory future PRs diff against),
//! * the trace-equivalence regression tests in
//!   `tests/engine_equivalence.rs`.
//!
//! The workload is the E1 topology (a path, worst diameter) with the
//! block-split drift adversary, plus randomly flapping chord edges so the
//! discovery/epoch machinery is exercised — "churn on" in the experiment
//! table.

use gcs_clocks::time::at;
use gcs_clocks::DriftModel;
use gcs_core::{AlgoParams, GradientNode};
use gcs_net::{churn, generators, TopologySchedule};
use gcs_sim::{
    DelayStrategy, LegacySimBuilder, LegacySimulator, ModelParams, SimBuilder, Simulator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of the throughput workload.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Node count (the acceptance target is `n = 1024`).
    pub n: usize,
    /// Real-time horizon to simulate.
    pub horizon: f64,
    /// Whether chord edges flap on top of the path backbone.
    pub churn: bool,
    /// Seed for churn placement and the engines' internal randomness.
    pub seed: u64,
}

impl Workload {
    /// The acceptance-criteria configuration: `n = 1024`, churn on.
    pub fn acceptance() -> Self {
        Workload {
            n: 1024,
            horizon: 60.0,
            churn: true,
            seed: 42,
        }
    }

    /// Model parameters (the E1 defaults).
    pub fn model(&self) -> ModelParams {
        ModelParams::new(0.01, 1.0, 2.0)
    }

    /// Algorithm parameters (the E1 defaults).
    pub fn params(&self) -> AlgoParams {
        AlgoParams::with_minimal_b0(self.model(), self.n, 0.5)
    }

    /// The topology schedule: path backbone, plus `n/4` flapping chords
    /// when churn is enabled.
    pub fn schedule(&self) -> TopologySchedule {
        let backbone = generators::path(self.n);
        if !self.churn {
            return TopologySchedule::static_graph(self.n, backbone);
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x000c_4e1d);
        churn::random_churn(
            self.n,
            backbone,
            self.n / 4,
            (6.0, 12.0),
            (2.0, 4.0),
            self.horizon,
            &mut rng,
        )
    }

    /// Builds the workload on the batched time-wheel engine.
    pub fn build(&self) -> Simulator<GradientNode> {
        let params = self.params();
        SimBuilder::new(self.model(), self.schedule())
            .drift(DriftModel::FastUpTo(self.n / 2), self.horizon)
            .delay(DelayStrategy::Max)
            .seed(self.seed)
            .build_with(|_| GradientNode::new(params))
    }

    /// Builds the identical workload on the frozen pre-rewrite engine.
    pub fn build_legacy(&self) -> LegacySimulator<GradientNode> {
        let params = self.params();
        LegacySimBuilder::new(self.model(), self.schedule())
            .drift(DriftModel::FastUpTo(self.n / 2), self.horizon)
            .delay(DelayStrategy::Max)
            .seed(self.seed)
            .build_with(|_| GradientNode::new(params))
    }
}

/// One timed engine run.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// `"wheel-batched"` or `"legacy-heap"`.
    pub engine: &'static str,
    /// Events processed over the run.
    pub events: u64,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Throughput.
    pub events_per_sec: f64,
}

fn timed(engine: &'static str, events: impl FnOnce() -> u64) -> Measurement {
    let t0 = std::time::Instant::now();
    let events = events();
    let wall_s = t0.elapsed().as_secs_f64();
    Measurement {
        engine,
        events,
        wall_s,
        events_per_sec: events as f64 / wall_s.max(1e-12),
    }
}

/// Times one full run on the batched time-wheel engine.
pub fn measure_wheel(w: &Workload) -> Measurement {
    let mut sim = w.build();
    timed("wheel-batched", move || {
        sim.run_until(at(w.horizon));
        sim.stats().events_processed
    })
}

/// Times one full run on the frozen legacy engine.
pub fn measure_legacy(w: &Workload) -> Measurement {
    let mut sim = w.build_legacy();
    timed("legacy-heap", move || {
        sim.run_until(at(w.horizon));
        sim.stats().events_processed
    })
}

/// Runs both engines `repeats` times and returns the best (lowest-wall)
/// measurement of each — criterion-style minimum-of-samples, cheap enough
/// to live inside `run_all`.
pub fn compare(w: &Workload, repeats: usize) -> (Measurement, Measurement) {
    assert!(repeats >= 1);
    let best = |mut runs: Vec<Measurement>| {
        runs.sort_by(|a, b| a.wall_s.total_cmp(&b.wall_s));
        runs.remove(0)
    };
    let wheel = best((0..repeats).map(|_| measure_wheel(w)).collect());
    let legacy = best((0..repeats).map(|_| measure_legacy(w)).collect());
    (wheel, legacy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds_and_runs_on_both_engines() {
        let w = Workload {
            n: 16,
            horizon: 10.0,
            churn: true,
            seed: 7,
        };
        let (wheel, legacy) = compare(&w, 1);
        assert_eq!(
            wheel.events, legacy.events,
            "engines must process identical event counts"
        );
        assert!(
            wheel.events > 1000,
            "workload too small: {} events",
            wheel.events
        );
        assert!(wheel.events_per_sec > 0.0 && legacy.events_per_sec > 0.0);
    }

    #[test]
    fn churn_workload_actually_churns() {
        let w = Workload {
            n: 32,
            horizon: 20.0,
            churn: true,
            seed: 3,
        };
        assert!(!w.schedule().events().is_empty());
        let mut sim = w.build();
        sim.run_until(at(w.horizon));
        assert!(sim.stats().topology_events > 0);
        // Without churn the schedule is static.
        let quiet = Workload { churn: false, ..w };
        assert!(quiet.schedule().events().is_empty());
    }
}
