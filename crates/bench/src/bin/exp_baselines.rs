//! E7 — baseline comparison: aging budget vs constant budget vs max-sync.
//!
//! `cargo run --release -p gcs-bench --bin exp_baselines`

use gcs_bench::e7_baselines as e7;

fn main() {
    let config = e7::Config::default();
    println!("scenario: two clusters drift apart, then a bridge joins them (skew >> B0).");
    println!("expected separation:");
    println!("  - max-sync [18]: bridge 'settles' instantly but the jump wave hits old edges");
    println!("    with the full skew — no gradient property.");
    println!("  - constant budget [13]: old edges safe, but the fresh edge blocks its ahead");
    println!("    endpoint, dragging it behind Lmax (violating the Theorem 6.9 argument).");
    println!("  - Algorithm 2 (aging budget): old edges safe AND nobody stalls; the bridge");
    println!("    closes in Theta(skew/B0) — the provably unavoidable price (Theorem 4.1).\n");
    let rows = e7::run(&config);
    e7::render(&rows).print();
}
