//! E8 — ablations of the budget function's design (initial value, slope,
//! assumed `n`, resend interval).
//!
//! `cargo run --release -p gcs-bench --bin exp_ablations`

use gcs_bench::e8_ablations as e8;
use gcs_sim::ModelParams;

fn main() {
    let config = e8::Config::default();
    println!("why the budget looks the way it does — each ablation breaks one design choice.\n");

    let cells = e8::run_initial_budget(&config);
    e8::render_cells(
        "E8a — initial budget B(0) (paper: 5G(n) + (1+rho)tau + B0 > any possible skew)",
        &cells,
    )
    .print();
    println!();

    let cells = e8::run_slope(&config);
    e8::render_cells("E8b — hardening slope (paper: B0 / ((1+rho)tau))", &cells).print();
    println!();

    let cells = e8::run_wrong_n(&config);
    e8::render_cells("E8c — assumed n (paper: nodes know n)", &cells).print();
    println!();

    let cells = e8::run_delta_h(ModelParams::new(0.01, 1.0, 2.0), 32, &[0.25, 0.5, 1.0, 1.9]);
    e8::render_delta_h(&cells).print();
    println!();
    println!("readings: a lag of ~0 means nobody was blocked; '—' means the bridge never");
    println!("settled within the window. Underestimating B(0), over-fast hardening and");
    println!("underestimating n all reintroduce the blocking failure of the constant budget.");
}
