//! E14 — the compact automaton plane at `n = 2^23` (shared budget
//! table, idle parking, quiescent-node eviction into the cold tier).
//!
//! `cargo run --release -p gcs-bench --bin exp_memory_ceiling`
//!
//! CI smoke runs shrink the width with `GCS_SMOKE_N=4096` so the
//! compact-plane code path is exercised on every push. The peak-RSS
//! assertion at the end is **fail-closed**: the binary exits nonzero
//! when the run does not fit the memory budget for its width.

use gcs_bench::e14_memory_ceiling as e14;
use gcs_bench::engine_bench::smoke_n;

fn main() {
    let config = e14::Config::scaled_to(smoke_n(e14::Config::default().n));
    println!(
        "claim: the automaton plane needs one shared budget curve, no armed timer on idle\n\
         nodes, and only packed bytes for quiescent ones — so n = 2^23 fits where the\n\
         flat plane would not\n"
    );
    println!(
        "running n = {}, backbone {}, {} waves x {} visitors, horizon {}s, threads {} \
         (host cpus: {})...\n",
        config.n,
        config.backbone,
        config.waves,
        config.wave_visitors,
        config.horizon,
        config.threads,
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    let o = e14::run(&config);
    e14::render(&config, &o).print();
    println!();
    println!(
        "evictions {} / rehydrations {} -> {} cold nodes in {} packed bytes; \
         watermark {} of n = {}; live RSS after run {} MiB",
        o.evictions,
        o.rehydrations,
        o.cold_nodes,
        o.cold_bytes,
        o.node_state_watermark,
        config.n,
        gcs_analysis::mem::fmt_mib(o.current_rss_bytes),
    );
    println!(
        "plane bytes (MiB): {}",
        gcs_analysis::mem::fmt_planes(&o.planes)
    );
    assert_eq!(
        o.stats.topology_pulled, o.stats.topology_events,
        "pulled events must all apply by the horizon"
    );
    assert!(
        o.evictions > 0 && o.cold_nodes > 0,
        "departed waves must reach the cold tier"
    );
    assert!(
        o.node_state_watermark <= config.backbone + config.visitor_band(),
        "an untouched node claimed a node-state slot"
    );
    // Fail closed on the packed event plane: the v8 recording held
    // 1 168 912 384 wheel bytes at the headline width; the compact plane
    // (24-byte records + slab payload arena) must stay under half of
    // that. Smoke widths get a generous 256 MiB ceiling — far above a
    // healthy run, but a fat-record regression would still blow it.
    let wheel_limit: usize = if config.n >= (1 << 23) {
        584_456_192
    } else {
        256 << 20
    };
    assert!(
        o.planes.wheel < wheel_limit,
        "wheel plane {} bytes exceeds the {} byte budget at n = {} — \
         the packed event plane regressed",
        o.planes.wheel,
        wheel_limit,
        config.n
    );
    let peak = gcs_analysis::peak_rss_bytes();
    println!(
        "process peak RSS: {} MiB (measured via /proc/self/status)",
        gcs_analysis::mem::fmt_mib(peak),
    );
    // Fail closed on the memory budget: 8 GiB for the headline width,
    // 2 GiB for smoke sizes (generous — a smoke run sits far below it,
    // but a flat-plane regression at smoke scale would still blow it).
    if let Some(peak) = peak {
        let limit: u64 = if config.n >= (1 << 23) {
            8 << 30
        } else {
            2 << 30
        };
        assert!(
            peak < limit,
            "peak RSS {} bytes exceeds the {} byte budget at n = {}",
            peak,
            limit,
            config.n
        );
    }
}
