//! Regenerates every experiment table (E1–E10) in one run and exports the
//! main series as CSV under `target/experiments/`.
//!
//! `cargo run --release -p gcs-bench --bin run_all`

use gcs_bench::*;

fn csv_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("target/experiments");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

fn main() {
    let t0 = std::time::Instant::now();
    let dir = csv_dir();

    println!("=== E1 / Theorem 6.9 ===");
    let e1 = e1_global_skew::run(&e1_global_skew::Config::default());
    e1_global_skew::render(&e1).print();
    let (slope, _, r2) = e1.fit;
    println!("linear fit: slope {slope:.4}, r^2 {r2:.4}\n");
    let _ = gcs_analysis::csv::write_csv(
        dir.join("e1_global_skew.csv"),
        &["n", "bound", "measured"],
        &e1.points
            .iter()
            .map(|p| vec![p.n as f64, p.bound, p.measured])
            .collect::<Vec<_>>(),
    );

    println!("=== E2 / Corollary 6.13 ===");
    let e2 = e2_local_skew::run(&e2_local_skew::Config::default());
    e2_local_skew::render(&e2).print();
    println!();
    let _ = gcs_analysis::csv::write_csv(
        dir.join("e2_local_skew_decay.csv"),
        &["age", "bridge_skew", "envelope", "worst_old_edge"],
        &e2.curve
            .iter()
            .map(|p| vec![p.age, p.bridge_skew, p.bound, p.worst_old_edge])
            .collect::<Vec<_>>(),
    );

    println!("=== E3 / Corollary 6.14 ===");
    let e3 = e3_tradeoff::run(&e3_tradeoff::Config::default());
    e3_tradeoff::render(&e3).print();
    println!(
        "log-log slope of settle time vs B0: {:.3}\n",
        e3.slope_vs_b0
    );

    println!("=== E4 / Theorem 4.1, Figure 1 ===");
    let e4 = e4_lowerbound::run(&e4_lowerbound::Config::default());
    for t in e4_lowerbound::render(&e4) {
        t.print();
        println!();
    }

    println!("=== E5 / Lemma 4.2 ===");
    let e5 = e5_masking::run(&e5_masking::Config::default());
    e5_masking::render(&e5).print();
    println!();

    println!("=== E6 / Lemma 6.8 ===");
    for churn in [
        e6_max_prop::Churn::RotatingStar,
        e6_max_prop::Churn::StaggeredRing,
    ] {
        let config = e6_max_prop::Config {
            churn,
            ..e6_max_prop::Config::default()
        };
        let points = e6_max_prop::run(&config);
        e6_max_prop::render(&points, churn).print();
        println!();
    }

    println!("=== E7 / baselines ===");
    let e7 = e7_baselines::run(&e7_baselines::Config::default());
    e7_baselines::render(&e7).print();
    println!();

    println!("=== E8 / ablations ===");
    let e8cfg = e8_ablations::Config::default();
    e8_ablations::render_cells(
        "E8a — initial budget B(0)",
        &e8_ablations::run_initial_budget(&e8cfg),
    )
    .print();
    println!();
    e8_ablations::render_cells("E8b — hardening slope", &e8_ablations::run_slope(&e8cfg)).print();
    println!();
    e8_ablations::render_cells("E8c — assumed n", &e8_ablations::run_wrong_n(&e8cfg)).print();
    println!();
    e8_ablations::render_delta_h(&e8_ablations::run_delta_h(
        default_model(),
        32,
        &[0.25, 0.5, 1.0, 1.9],
    ))
    .print();
    println!();

    println!("=== E9 / gradient profile ===");
    let e9 = e9_gradient_profile::run(&e9_gradient_profile::Config::default());
    e9_gradient_profile::render(e9_gradient_profile::Config::default().n, &e9).print();
    let _ = gcs_analysis::csv::write_csv(
        dir.join("e9_gradient_profile.csv"),
        &["distance", "worst_skew", "bound"],
        &e9.iter()
            .map(|r| vec![r.distance as f64, r.worst_skew, r.bound])
            .collect::<Vec<_>>(),
    );
    println!();

    println!("=== E10 / weighted edges (§7 extension) ===");
    let e10 = e10_weighted::run(&e10_weighted::Config::default());
    e10_weighted::render(&e10).print();

    println!(
        "\nall experiments regenerated in {:.1}s; CSV series in {}",
        t0.elapsed().as_secs_f64(),
        dir.display()
    );
}
