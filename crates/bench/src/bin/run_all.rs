//! Regenerates every experiment table (E1–E15) in one run, exports the
//! main series as CSV under `target/experiments/`, and records the engine
//! perf trajectory as machine-readable `BENCH_engine.json`.
//!
//! `cargo run --release -p gcs-bench --bin run_all`
//! `cargo run --release -p gcs-bench --bin run_all -- --engine-only`
//!
//! All scenarios come from [`gcs_bench::scenario::all_scenarios`]. E1–E10
//! are fanned out in parallel over scoped threads; E11–E14 are themselves
//! wall-clock/memory benchmarks, so they run **alone** after the parallel
//! batch. The final phase times the engine on the E1 workload
//! (`n = 1024`, continuity with the PR 2 numbers) and on the E11 workload
//! (`n = 65 536`, churn on) at worker counts {1, 2, 8}.
//!
//! Before overwriting a committed `BENCH_engine.json`, the run compares
//! the new E14 per-plane byte meters — plus the per-family E12/E13
//! wheel-plane meters, where churn backlogs make the packed event plane
//! the largest plane — against the recorded ones and warns loudly when
//! any meter grew by more than 10% — a silent memory-plane regression
//! would otherwise hide until the `n = 2^23` run stops fitting.
//!
//! With the frozen pre-rewrite engine deleted, the **batched serial
//! engine (`threads = 1`) is the baseline** every speedup is measured
//! against. `host_cpus` records how much hardware parallelism the
//! recording machine actually had; when it is 1 the JSON carries
//! `"thread_sweep_valid": false` and the run prints a loud warning —
//! single-core thread-sweep numbers measure dispatch overhead, not
//! speedup, and must not be read against the scaling target.

use gcs_bench::engine_bench::{measure_threads, Measurement, Workload};
use gcs_bench::scenario::{driver_plan, run_parallel, Scenario};
use std::io::Write;

/// One explored model-check suite for the JSON trajectory.
struct McSuite {
    n: usize,
    scenarios: usize,
    states: usize,
    runs: usize,
    max_depth: usize,
    wall_s: f64,
    violations: usize,
}

/// Runs the bounded explorer over the CI suites at `n = 2..=4` (the same
/// suites the fail-closed `model_check` bin verifies) and records the
/// state-space size and wall time per `n`.
fn run_model_check() -> Vec<McSuite> {
    use gcs_core::GradientNode;
    (2..=4usize)
        .map(|n| {
            let start = std::time::Instant::now();
            let mut suite = McSuite {
                n,
                scenarios: 0,
                states: 0,
                runs: 0,
                max_depth: 0,
                wall_s: 0.0,
                violations: 0,
            };
            for sc in gcs_mc::explore::suite(n) {
                let report = gcs_mc::explore(&sc, |_| GradientNode::new(sc.algo), 2_000_000);
                suite.scenarios += 1;
                suite.states += report.states;
                suite.runs += report.runs;
                suite.max_depth = suite.max_depth.max(report.max_depth);
                suite.violations += usize::from(report.violation.is_some());
            }
            suite.wall_s = start.elapsed().as_secs_f64();
            suite
        })
        .collect()
}

fn mc_entry(s: &McSuite) -> String {
    format!(
        "    {{\n      \"n\": {},\n      \"scenarios\": {},\n      \"states\": {},\n      \"runs\": {},\n      \"max_depth\": {},\n      \"wall_s\": {:.6},\n      \"violations\": {}\n    }}",
        s.n, s.scenarios, s.states, s.runs, s.max_depth, s.wall_s, s.violations
    )
}

fn csv_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("target/experiments");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

fn entry(m: &Measurement) -> String {
    format!(
        "    {{\n      \"engine\": \"{}\",\n      \"threads\": {},\n      \"events\": {},\n      \"setup_s\": {:.6},\n      \"wall_s\": {:.6},\n      \"events_per_sec\": {:.1},\n      \"peak_topology_backlog\": {},\n      \"topology_apply_s\": {:.6},\n      \"segments_parallel\": {}\n    }}",
        m.engine,
        m.threads,
        m.events,
        m.setup_s,
        m.wall_s,
        m.events_per_sec,
        m.peak_topology_backlog,
        m.topology_apply_s,
        m.segments_parallel
    )
}

fn e12_entry(o: &gcs_bench::e12_dynamic_workloads::FamilyOutcome) -> String {
    format!(
        "    {{\n      \"family\": \"{}\",\n      \"events\": {},\n      \"setup_s\": {:.6},\n      \"wall_s\": {:.6},\n      \"events_per_sec\": {:.1},\n      \"topology_events\": {},\n      \"peak_topology_backlog\": {},\n      \"wheel_staged_events\": {},\n      \"peak_pending_deliver\": {},\n      \"peak_pending_alarm\": {},\n      \"peak_pending_topology\": {},\n      \"plane_wheel_bytes\": {},\n      \"plane_staging_bytes\": {},\n      \"current_rss_bytes\": {}\n    }}",
        o.family,
        o.events,
        o.setup_s,
        o.wall_s,
        o.events_per_sec,
        o.stats.topology_events,
        o.stats.peak_topology_backlog,
        o.stats.peak_staged_events,
        o.pending_peaks[2],
        o.pending_peaks[3],
        o.pending_peaks[0],
        o.wheel_plane_bytes,
        o.staging_plane_bytes,
        json_opt_u64(o.current_rss_bytes)
    )
}

fn e13_entry(o: &gcs_bench::e13_scale_ceiling::FamilyOutcome) -> String {
    format!(
        "    {{\n      \"family\": \"{}\",\n      \"events\": {},\n      \"setup_s\": {:.6},\n      \"wall_s\": {:.6},\n      \"topology_apply_s\": {:.6},\n      \"events_per_sec\": {:.1},\n      \"topology_events\": {},\n      \"peak_topology_backlog\": {},\n      \"wheel_staged_events\": {},\n      \"peak_pending_deliver\": {},\n      \"peak_pending_alarm\": {},\n      \"peak_pending_topology\": {},\n      \"plane_wheel_bytes\": {},\n      \"plane_staging_bytes\": {},\n      \"drift_cursors\": {},\n      \"node_state_watermark\": {},\n      \"rng_streams\": {},\n      \"current_rss_bytes\": {}\n    }}",
        o.family,
        o.events,
        o.setup_s,
        o.wall_s,
        o.topology_apply_s,
        o.events_per_sec,
        o.stats.topology_events,
        o.stats.peak_topology_backlog,
        o.stats.peak_staged_events,
        o.pending_peaks[2],
        o.pending_peaks[3],
        o.pending_peaks[0],
        o.wheel_plane_bytes,
        o.staging_plane_bytes,
        o.drift_cursors,
        o.node_state_watermark,
        o.rng_streams,
        json_opt_u64(o.current_rss_bytes)
    )
}

fn e14_entry(n: usize, o: &gcs_bench::e14_memory_ceiling::Outcome) -> String {
    format!(
        "  \"e14_memory_ceiling\": {{\n  \"n\": {},\n  \"events\": {},\n  \"setup_s\": {:.6},\n  \"wall_s\": {:.6},\n  \"events_per_sec\": {:.1},\n  \"evictions\": {},\n  \"rehydrations\": {},\n  \"cold_nodes\": {},\n  \"cold_bytes\": {},\n  \"node_state_watermark\": {},\n  \"drift_cursors\": {},\n  \"wheel_staged_events\": {},\n  \"peak_pending_deliver\": {},\n  \"peak_pending_alarm\": {},\n  \"peak_pending_topology\": {},\n  \"plane_topology_bytes\": {},\n  \"plane_drift_bytes\": {},\n  \"plane_automaton_hot_bytes\": {},\n  \"plane_automaton_cold_bytes\": {},\n  \"plane_wheel_bytes\": {},\n  \"plane_staging_bytes\": {},\n  \"plane_dispatch_scratch_bytes\": {},\n  \"current_rss_bytes\": {}\n  }}",
        n,
        o.events,
        o.setup_s,
        o.wall_s,
        o.events_per_sec,
        o.evictions,
        o.rehydrations,
        o.cold_nodes,
        o.cold_bytes,
        o.node_state_watermark,
        o.drift_cursors,
        o.stats.peak_staged_events,
        o.pending_peaks[2],
        o.pending_peaks[3],
        o.pending_peaks[0],
        o.planes.topology,
        o.planes.drift,
        o.planes.automaton_hot,
        o.planes.automaton_cold,
        o.planes.wheel,
        o.planes.staging,
        o.planes.dispatch_scratch,
        json_opt_u64(o.current_rss_bytes)
    )
}

/// A byte/count meter from a committed `BENCH_engine.json`, keyed by
/// JSON field name and scoped to the first occurrence **after**
/// `anchor` — the same field name now appears in the E12, E13 and E14
/// sections, so an unanchored lookup would read the wrong experiment.
/// Hand-rolled extraction (the file is written by this binary,
/// field-per-line) — no JSON dependency needed.
fn committed_bytes_after(json: &str, anchor: &str, key: &str) -> Option<usize> {
    let from = json.find(anchor)? + anchor.len();
    let needle = format!("\"{key}\":");
    let at = from + json[from..].find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Warns loudly when any E14 plane meter grew >10% over the committed
/// recording. Purely advisory — recording continues either way.
fn warn_on_plane_regressions(committed: &str, planes: &gcs_sim::PlaneBytes) {
    let meters = [
        ("plane_topology_bytes", planes.topology),
        ("plane_drift_bytes", planes.drift),
        ("plane_automaton_hot_bytes", planes.automaton_hot),
        ("plane_automaton_cold_bytes", planes.automaton_cold),
        ("plane_wheel_bytes", planes.wheel),
        ("plane_staging_bytes", planes.staging),
        ("plane_dispatch_scratch_bytes", planes.dispatch_scratch),
    ];
    for (key, now) in meters {
        let Some(was) = committed_bytes_after(committed, "\"e14_memory_ceiling\"", key) else {
            continue;
        };
        warn_on_meter_regression("E14", key, was, now);
    }
}

/// Warns loudly when a per-family E12/E13 wheel-plane meter grew >10%
/// over the committed recording — the packed event plane is the largest
/// plane under churn backlogs, and a silent regression there would hide
/// until the next full-scale recording. Purely advisory.
fn warn_on_wheel_regressions(
    committed: &str,
    e12: &[gcs_bench::e12_dynamic_workloads::FamilyOutcome],
    e13: &[gcs_bench::e13_scale_ceiling::FamilyOutcome],
) {
    let meters = e12
        .iter()
        .map(|o| ("E12", o.family, o.wheel_plane_bytes))
        .chain(e13.iter().map(|o| ("E13", o.family, o.wheel_plane_bytes)));
    for (exp, family, now) in meters {
        let anchor = format!("\"family\": \"{family}\"");
        let Some(was) = committed_bytes_after(committed, &anchor, "plane_wheel_bytes") else {
            continue;
        };
        warn_on_meter_regression(&format!("{exp} {family}"), "plane_wheel_bytes", was, now);
    }
}

fn warn_on_meter_regression(scope: &str, key: &str, was: usize, now: usize) {
    if was > 0 && now as f64 > was as f64 * 1.10 {
        eprintln!(
            "\nWARNING: {scope} {key} regressed {} -> {} bytes (+{:.1}%) vs the committed\n\
             BENCH_engine.json — a memory-plane regression; investigate before recording.\n",
            was,
            now,
            (now as f64 / was as f64 - 1.0) * 100.0
        );
    }
}

fn json_opt_u64(v: Option<u64>) -> String {
    v.map(|b| b.to_string())
        .unwrap_or_else(|| "null".to_string())
}

fn e15_section(n: usize, o: &gcs_bench::e15_faults::Outcomes) -> String {
    format!(
        "  \"e15_faults\": {{\n  \"n\": {},\n  \"fault\": {{\n    \"peak_global_skew\": {:.4},\n    \"final_global_skew\": {:.4},\n    \"recovery_s\": {},\n    \"crashes\": {},\n    \"restarts\": {},\n    \"dropped\": {},\n    \"delay_spiked\": {}\n  }},\n  \"adversary\": {{\n    \"attack_edge\": \"{}-{}\",\n    \"attack_time_s\": {:.3},\n    \"peak_local_skew\": {:.4},\n    \"baseline_peak_local_skew\": {:.4},\n    \"dominates_baseline\": {},\n    \"evaluations\": {}\n  }},\n  \"negative_control\": {{\n    \"monitor_violations\": {},\n    \"tripped\": {}\n  }}\n  }}",
        n,
        o.fault.peak_global,
        o.fault.final_global,
        o.fault
            .recovery_s
            .map(|s| format!("{s:.1}"))
            .unwrap_or_else(|| "null".to_string()),
        o.fault.crashes,
        o.fault.restarts,
        o.fault.dropped,
        o.fault.delay_spiked,
        o.adversary.attack.edge.lo().index(),
        o.adversary.attack.edge.hi().index(),
        o.adversary.attack.time,
        o.adversary.peak_local,
        o.adversary.baseline_peak_local,
        o.adversary.peak_local >= o.adversary.baseline_peak_local,
        o.adversary.evaluations,
        o.control.violations,
        o.control.violations > 0,
    )
}

#[allow(clippy::too_many_arguments)]
fn engine_json(
    host_cpus: usize,
    e1: &(Workload, Measurement),
    e11: &(Workload, Vec<Measurement>),
    e12: &[gcs_bench::e12_dynamic_workloads::FamilyOutcome],
    e12_n: usize,
    e13: &[gcs_bench::e13_scale_ceiling::FamilyOutcome],
    e13_n: usize,
    e14: &gcs_bench::e14_memory_ceiling::Outcome,
    e14_n: usize,
    e15: &gcs_bench::e15_faults::Outcomes,
    e15_n: usize,
    mc: &[McSuite],
    peak_rss_bytes: Option<u64>,
) -> String {
    let workload = |w: &Workload| {
        format!(
            "  \"workload\": {{\n    \"n\": {},\n    \"churn\": {},\n    \"horizon_s\": {:.1},\n    \"delay\": \"max\",\n    \"drift\": \"split\"\n  }}",
            w.n, w.churn, w.horizon
        )
    };
    let e11_entries: Vec<String> = e11.1.iter().map(entry).collect();
    let serial = e11.1.iter().find(|m| m.threads == 1);
    let best_parallel = e11
        .1
        .iter()
        .filter(|m| m.threads > 1)
        .max_by(|a, b| a.events_per_sec.total_cmp(&b.events_per_sec));
    let speedup = match (serial, best_parallel) {
        (Some(s), Some(p)) => p.events_per_sec / s.events_per_sec,
        _ => 1.0,
    };
    let thread_sweep_valid = host_cpus > 1;
    let e12_entries: Vec<String> = e12.iter().map(e12_entry).collect();
    let e13_entries: Vec<String> = e13.iter().map(e13_entry).collect();
    let mc_entries: Vec<String> = mc.iter().map(mc_entry).collect();
    format!(
        "{{\n  \"schema\": \"bench-engine/v9\",\n  \"generated_by\": \"gcs-bench run_all\",\n  \"baseline\": \"batched-serial (threads = 1); the pre-rewrite heap engine was deleted after its equivalence history\",\n  \"host_cpus\": {host_cpus},\n  \"thread_sweep_valid\": {thread_sweep_valid},\n  \"peak_rss_bytes\": {},\n  \"e1_n1024\": {{\n  {},\n  \"engines\": [\n{}\n  ]\n  }},\n  \"e11_large_scale\": {{\n  {},\n  \"engines\": [\n{}\n  ],\n  \"best_parallel_speedup_vs_serial\": {:.3}\n  }},\n  \"e12_dynamic_workloads\": {{\n  \"n\": {},\n  \"families\": [\n{}\n  ]\n  }},\n  \"e13_scale_ceiling\": {{\n  \"n\": {},\n  \"families\": [\n{}\n  ]\n  }},\n{},\n{},\n  \"model_check\": {{\n  \"suites\": [\n{}\n  ]\n  }}\n}}\n",
        json_opt_u64(peak_rss_bytes),
        workload(&e1.0),
        entry(&e1.1),
        workload(&e11.0),
        e11_entries.join(",\n"),
        speedup,
        e12_n,
        e12_entries.join(",\n"),
        e13_n,
        e13_entries.join(",\n"),
        e14_entry(e14_n, e14),
        e15_section(e15_n, e15),
        mc_entries.join(",\n"),
    )
}

fn print_report(
    s: &dyn Scenario,
    rep: &gcs_bench::scenario::ScenarioReport,
    dir: &std::path::Path,
) {
    println!("=== {} / {} ===", s.id(), s.claim());
    rep.print();
    if let Err(e) = rep.write_csv(dir) {
        eprintln!("warning: could not write CSV for {}: {e}", s.id());
    }
    println!();
}

fn main() {
    let t0 = std::time::Instant::now();
    let engine_only = std::env::args().any(|a| a == "--engine-only");
    let dir = csv_dir();

    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    if host_cpus == 1 {
        eprintln!(
            "\nWARNING: host_cpus = 1 — the thread sweep below measures DISPATCH OVERHEAD,\n\
             not parallel speedup. BENCH_engine.json will carry \"thread_sweep_valid\": false;\n\
             re-record on a multi-core host before reading any speedup number.\n"
        );
    }

    // E12–E15 run in both modes: their outcomes feed the JSON
    // trajectory.
    let e12_config = gcs_bench::e12_dynamic_workloads::Config::default();
    let e13_config = gcs_bench::e13_scale_ceiling::Config::default();
    let e14_config = gcs_bench::e14_memory_ceiling::Config::scaled_to(
        gcs_bench::engine_bench::smoke_n(gcs_bench::e14_memory_ceiling::Config::default().n),
    );
    let e15_config = gcs_bench::e15_faults::Config::default();

    let mut e12_outcomes = None;
    let mut e13_outcomes = None;
    let mut e14_outcome = None;
    let mut e15_outcomes = None;
    if !engine_only {
        // The typed execution plan: the claim batch fans out in
        // parallel; scale scenarios (themselves wall-clock/memory
        // benchmarks) and the fault family (CPU-heavy adversary search)
        // run alone afterwards, in registry order.
        let (claim_batch, solo) = driver_plan();
        println!(
            "running {} claim experiments in parallel over scoped threads, then {} alone...\n",
            claim_batch.len(),
            solo.iter().map(|s| s.id()).collect::<Vec<_>>().join(", ")
        );
        let reports = run_parallel(&claim_batch);
        for (s, rep) in claim_batch.iter().zip(&reports) {
            print_report(s.as_ref(), rep, &dir);
        }
        // E12 at n = 2^17, E13 at n = 2^20, E14 at n = 2^23 and E15's
        // adversary search are expensive: run each outcome set once and
        // reuse it for both the report and the JSON trajectory below.
        for s in &solo {
            match s.meta().name {
                "E12" => {
                    let outcomes = gcs_bench::e12_dynamic_workloads::run(&e12_config);
                    print_report(
                        s.as_ref(),
                        &gcs_bench::e12_dynamic_workloads::report(&e12_config, &outcomes),
                        &dir,
                    );
                    e12_outcomes = Some(outcomes);
                }
                "E13" => {
                    let outcomes = gcs_bench::e13_scale_ceiling::run(&e13_config);
                    print_report(
                        s.as_ref(),
                        &gcs_bench::e13_scale_ceiling::report(&e13_config, &outcomes),
                        &dir,
                    );
                    e13_outcomes = Some(outcomes);
                }
                "E14" => {
                    let outcome = gcs_bench::e14_memory_ceiling::run(&e14_config);
                    print_report(
                        s.as_ref(),
                        &gcs_bench::e14_memory_ceiling::report(&e14_config, &outcome),
                        &dir,
                    );
                    e14_outcome = Some(outcome);
                }
                "E15" => {
                    let outcomes = gcs_bench::e15_faults::run(&e15_config);
                    print_report(
                        s.as_ref(),
                        &gcs_bench::e15_faults::report(&e15_config, &outcomes),
                        &dir,
                    );
                    e15_outcomes = Some(outcomes);
                }
                _ => print_report(s.as_ref(), &s.run_scenario(), &dir),
            }
        }
    }

    println!("=== engine trajectory (baseline: batched serial; host_cpus = {host_cpus}) ===");
    let w1 = Workload::acceptance();
    let m1 = measure_threads(&w1, &[1], 2).remove(0);
    println!(
        "E1  n={:>6} {:>16}: {:>10.0} events/s  ({} events in {:.2}s, setup {:.3}s)",
        w1.n, m1.engine, m1.events_per_sec, m1.events, m1.wall_s, m1.setup_s
    );
    let w11 = Workload::large_scale();
    // Two repeats, best-of: the first large-n run pays page faults for
    // freshly allocated memory, which would otherwise masquerade as a
    // thread-count effect.
    let sweep = measure_threads(&w11, &[1, 2, 8], 2);
    for m in &sweep {
        println!(
            "E11 n={:>6} {:>16}: {:>10.0} events/s  ({} events in {:.2}s, setup {:.3}s, backlog {})",
            w11.n, m.engine, m.events_per_sec, m.events, m.wall_s, m.setup_s, m.peak_topology_backlog
        );
    }
    // The E12 streaming families, timed once each for the trajectory.
    let e12_for_json = e12_outcomes
        .take()
        .unwrap_or_else(|| gcs_bench::e12_dynamic_workloads::run(&e12_config));
    for o in &e12_for_json {
        println!(
            "E12 n={:>6} {:>16}: {:>10.0} events/s  ({} events in {:.2}s, setup {:.3}s, backlog {})",
            e12_config.n,
            o.family,
            o.events_per_sec,
            o.events,
            o.wall_s,
            o.setup_s,
            o.stats.peak_topology_backlog
        );
    }
    // The E13 scale-ceiling families on the lazy clock plane.
    let e13_for_json = e13_outcomes
        .take()
        .unwrap_or_else(|| gcs_bench::e13_scale_ceiling::run(&e13_config));
    for o in &e13_for_json {
        println!(
            "E13 n={:>7} {:>16}: {:>10.0} events/s  ({} events in {:.2}s, setup {:.3}s, {} cursors / {} touched)",
            e13_config.n,
            o.family,
            o.events_per_sec,
            o.events,
            o.wall_s,
            o.setup_s,
            o.drift_cursors,
            o.node_state_watermark
        );
    }
    // The E14 compact-automaton-plane census at the memory ceiling.
    let e14_for_json = e14_outcome
        .take()
        .unwrap_or_else(|| gcs_bench::e14_memory_ceiling::run(&e14_config));
    println!(
        "E14 n={:>7} {:>16}: {:>10.0} events/s  ({} events in {:.2}s, {} evicted / {} rehydrated, planes {})",
        e14_config.n,
        "compact plane",
        e14_for_json.events_per_sec,
        e14_for_json.events,
        e14_for_json.wall_s,
        e14_for_json.evictions,
        e14_for_json.rehydrations,
        gcs_analysis::mem::fmt_planes(&e14_for_json.planes)
    );
    // The E15 fault/adversary outcomes for the trajectory.
    let e15_for_json = e15_outcomes
        .take()
        .unwrap_or_else(|| gcs_bench::e15_faults::run(&e15_config));
    println!(
        "E15 n={:>6} {:>16}: adversary peak local {:.2} (baseline {:.2}), {} crashes/{} restarts, control violations {}",
        e15_config.n,
        "fault+adversary",
        e15_for_json.adversary.peak_local,
        e15_for_json.adversary.baseline_peak_local,
        e15_for_json.fault.crashes,
        e15_for_json.fault.restarts,
        e15_for_json.control.violations
    );
    // The bounded model-check suites, for the trajectory.
    let mc_suites = run_model_check();
    for s in &mc_suites {
        println!(
            "MC  n={:>6} {:>16}: {:>10} states  ({} runs over {} scenarios, max depth {}, {:.2}s, {} violations)",
            s.n, "explorer", s.states, s.runs, s.scenarios, s.max_depth, s.wall_s, s.violations
        );
    }
    let json = engine_json(
        host_cpus,
        &(w1, m1),
        &(w11, sweep),
        &e12_for_json,
        e12_config.n,
        &e13_for_json,
        e13_config.n,
        &e14_for_json,
        e14_config.n,
        &e15_for_json,
        e15_config.n,
        &mc_suites,
        gcs_analysis::peak_rss_bytes(),
    );
    if let Ok(committed) = std::fs::read_to_string("BENCH_engine.json") {
        warn_on_plane_regressions(&committed, &e14_for_json.planes);
        warn_on_wheel_regressions(&committed, &e12_for_json, &e13_for_json);
    }
    match std::fs::File::create("BENCH_engine.json").and_then(|mut f| f.write_all(json.as_bytes()))
    {
        Ok(()) => println!("wrote BENCH_engine.json"),
        Err(e) => eprintln!("warning: could not write BENCH_engine.json: {e}"),
    }
    if host_cpus == 1 {
        eprintln!(
            "WARNING: recorded with host_cpus = 1 (thread_sweep_valid = false) — \
             speedup columns are dispatch overhead only."
        );
    }

    println!(
        "\ndone in {:.1}s; CSV series in {}",
        t0.elapsed().as_secs_f64(),
        dir.display()
    );
}
