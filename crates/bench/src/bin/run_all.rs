//! Regenerates every experiment table (E1–E10) in one run, exports the
//! main series as CSV under `target/experiments/`, and records the engine
//! perf trajectory as machine-readable `BENCH_engine.json`.
//!
//! `cargo run --release -p gcs-bench --bin run_all`
//!
//! All ten scenarios come from [`gcs_bench::scenario::all_scenarios`] and
//! are fanned out in parallel over scoped threads; reports print in
//! experiment order once everything finishes. The final phase times the
//! batched time-wheel engine against the frozen pre-rewrite engine on the
//! E1 workload (`n = 1024`, churn on) so every future PR can diff
//! events/sec against this one.

use gcs_bench::engine_bench::{compare, Measurement, Workload};
use gcs_bench::scenario::{all_scenarios, run_parallel};
use std::io::Write;

fn csv_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("target/experiments");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

fn engine_json(w: &Workload, wheel: &Measurement, legacy: &Measurement) -> String {
    let entry = |m: &Measurement| {
        format!(
            "    {{\n      \"engine\": \"{}\",\n      \"events\": {},\n      \"wall_s\": {:.6},\n      \"events_per_sec\": {:.1}\n    }}",
            m.engine, m.events, m.wall_s, m.events_per_sec
        )
    };
    format!(
        "{{\n  \"schema\": \"bench-engine/v1\",\n  \"generated_by\": \"gcs-bench run_all\",\n  \"workload\": {{\n    \"scenario\": \"e1_global_skew\",\n    \"n\": {},\n    \"churn\": {},\n    \"horizon_s\": {:.1},\n    \"delay\": \"max\",\n    \"drift\": \"split\"\n  }},\n  \"engines\": [\n{},\n{}\n  ],\n  \"speedup_events_per_sec\": {:.3}\n}}\n",
        w.n,
        w.churn,
        w.horizon,
        entry(wheel),
        entry(legacy),
        wheel.events_per_sec / legacy.events_per_sec
    )
}

fn main() {
    let t0 = std::time::Instant::now();
    let dir = csv_dir();

    let scenarios = all_scenarios();
    println!(
        "running {} experiments in parallel over scoped threads...\n",
        scenarios.len()
    );
    let reports = run_parallel(&scenarios);
    for (s, rep) in scenarios.iter().zip(&reports) {
        println!("=== {} / {} ===", s.id(), s.claim());
        rep.print();
        if let Err(e) = rep.write_csv(&dir) {
            eprintln!("warning: could not write CSV for {}: {e}", s.id());
        }
        println!();
    }

    println!("=== engine trajectory (batched time-wheel vs frozen legacy) ===");
    let w = Workload::acceptance();
    let (wheel, legacy) = compare(&w, 2);
    println!(
        "{}: {:>10.0} events/s  ({} events in {:.2}s)",
        wheel.engine, wheel.events_per_sec, wheel.events, wheel.wall_s
    );
    println!(
        "{}:   {:>10.0} events/s  ({} events in {:.2}s)",
        legacy.engine, legacy.events_per_sec, legacy.events, legacy.wall_s
    );
    println!(
        "speedup: {:.2}x on E1 (n = {}, churn on)",
        wheel.events_per_sec / legacy.events_per_sec,
        w.n
    );
    let json = engine_json(&w, &wheel, &legacy);
    match std::fs::File::create("BENCH_engine.json").and_then(|mut f| f.write_all(json.as_bytes()))
    {
        Ok(()) => println!("wrote BENCH_engine.json"),
        Err(e) => eprintln!("warning: could not write BENCH_engine.json: {e}"),
    }

    println!(
        "\nall experiments regenerated in {:.1}s; CSV series in {}",
        t0.elapsed().as_secs_f64(),
        dir.display()
    );
}
