//! Regenerates every experiment table (E1–E11) in one run, exports the
//! main series as CSV under `target/experiments/`, and records the engine
//! perf trajectory as machine-readable `BENCH_engine.json`.
//!
//! `cargo run --release -p gcs-bench --bin run_all`
//! `cargo run --release -p gcs-bench --bin run_all -- --engine-only`
//!
//! All scenarios come from [`gcs_bench::scenario::all_scenarios`] and are
//! fanned out in parallel over scoped threads; reports print in experiment
//! order once everything finishes. The final phase times the engine on the
//! E1 workload (`n = 1024`, continuity with the PR 2 numbers) and on the
//! E11 workload (`n = 65 536`, churn on) at worker counts {1, 2, 8}.
//!
//! With the frozen pre-rewrite engine deleted, the **batched serial
//! engine (`threads = 1`) is the baseline** every speedup in the JSON is
//! measured against. `host_cpus` records how much hardware parallelism
//! the recording machine actually had — thread-sweep numbers from a
//! single-core host measure dispatch overhead, not speedup.

use gcs_bench::engine_bench::{measure_threads, Measurement, Workload};
use gcs_bench::scenario::{all_scenarios, run_parallel};
use std::io::Write;

fn csv_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("target/experiments");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

fn entry(m: &Measurement) -> String {
    format!(
        "    {{\n      \"engine\": \"{}\",\n      \"threads\": {},\n      \"events\": {},\n      \"wall_s\": {:.6},\n      \"events_per_sec\": {:.1}\n    }}",
        m.engine, m.threads, m.events, m.wall_s, m.events_per_sec
    )
}

fn engine_json(
    host_cpus: usize,
    e1: &(Workload, Measurement),
    e11: &(Workload, Vec<Measurement>),
) -> String {
    let workload = |w: &Workload| {
        format!(
            "  \"workload\": {{\n    \"n\": {},\n    \"churn\": {},\n    \"horizon_s\": {:.1},\n    \"delay\": \"max\",\n    \"drift\": \"split\"\n  }}",
            w.n, w.churn, w.horizon
        )
    };
    let e11_entries: Vec<String> = e11.1.iter().map(entry).collect();
    let serial = e11.1.iter().find(|m| m.threads == 1);
    let best_parallel = e11
        .1
        .iter()
        .filter(|m| m.threads > 1)
        .max_by(|a, b| a.events_per_sec.total_cmp(&b.events_per_sec));
    let speedup = match (serial, best_parallel) {
        (Some(s), Some(p)) => p.events_per_sec / s.events_per_sec,
        _ => 1.0,
    };
    format!(
        "{{\n  \"schema\": \"bench-engine/v2\",\n  \"generated_by\": \"gcs-bench run_all\",\n  \"baseline\": \"batched-serial (threads = 1); the pre-rewrite heap engine was deleted after its equivalence history\",\n  \"host_cpus\": {host_cpus},\n  \"e1_n1024\": {{\n  {},\n  \"engines\": [\n{}\n  ]\n  }},\n  \"e11_large_scale\": {{\n  {},\n  \"engines\": [\n{}\n  ],\n  \"best_parallel_speedup_vs_serial\": {:.3}\n  }}\n}}\n",
        workload(&e1.0),
        entry(&e1.1),
        workload(&e11.0),
        e11_entries.join(",\n"),
        speedup
    )
}

fn main() {
    let t0 = std::time::Instant::now();
    let engine_only = std::env::args().any(|a| a == "--engine-only");
    let dir = csv_dir();

    if !engine_only {
        // E11 is itself a wall-clock benchmark: it must not time its runs
        // while ten other CPU-bound experiments share the machine, so it
        // runs alone after the parallel batch.
        let mut scenarios = all_scenarios();
        let e11 = scenarios.pop().expect("registry is non-empty");
        assert_eq!(e11.id(), "E11", "E11 must be last in the registry");
        println!(
            "running {} experiments in parallel over scoped threads, then E11 alone...\n",
            scenarios.len()
        );
        let mut reports = run_parallel(&scenarios);
        reports.push(e11.run_scenario());
        scenarios.push(e11);
        for (s, rep) in scenarios.iter().zip(&reports) {
            println!("=== {} / {} ===", s.id(), s.claim());
            rep.print();
            if let Err(e) = rep.write_csv(&dir) {
                eprintln!("warning: could not write CSV for {}: {e}", s.id());
            }
            println!();
        }
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("=== engine trajectory (baseline: batched serial; host_cpus = {host_cpus}) ===");
    let w1 = Workload::acceptance();
    let m1 = measure_threads(&w1, &[1], 2).remove(0);
    println!(
        "E1  n={:>6} {:>16}: {:>10.0} events/s  ({} events in {:.2}s)",
        w1.n, m1.engine, m1.events_per_sec, m1.events, m1.wall_s
    );
    let w11 = Workload::large_scale();
    // Two repeats, best-of: the first large-n run pays page faults for
    // freshly allocated memory, which would otherwise masquerade as a
    // thread-count effect.
    let sweep = measure_threads(&w11, &[1, 2, 8], 2);
    for m in &sweep {
        println!(
            "E11 n={:>6} {:>16}: {:>10.0} events/s  ({} events in {:.2}s)",
            w11.n, m.engine, m.events_per_sec, m.events, m.wall_s
        );
    }
    let json = engine_json(host_cpus, &(w1, m1), &(w11, sweep));
    match std::fs::File::create("BENCH_engine.json").and_then(|mut f| f.write_all(json.as_bytes()))
    {
        Ok(()) => println!("wrote BENCH_engine.json"),
        Err(e) => eprintln!("warning: could not write BENCH_engine.json: {e}"),
    }

    println!(
        "\ndone in {:.1}s; CSV series in {}",
        t0.elapsed().as_secs_f64(),
        dir.display()
    );
}
