//! E9 — the skew gradient: worst pairwise skew as a function of hop
//! distance.
//!
//! `cargo run --release -p gcs-bench --bin exp_gradient_profile`

use gcs_bench::e9_gradient_profile as e9;

fn main() {
    println!("the gradient property: neighbor clocks are tight; skew grows with distance");
    println!("toward (but below) the global bound.\n");
    let configs: Vec<e9::Config> = [32usize, 64, 128]
        .iter()
        .map(|&n| e9::Config {
            n,
            distances: vec![1, 2, 4, 8, 16, 32, 64, 127],
            ..e9::Config::default()
        })
        .collect();
    for (n, rows) in e9::run_multi(&configs) {
        e9::render(n, &rows).print();
        println!();
    }
}
