//! E5 — Lemma 4.2 (the Masking Lemma).
//!
//! `cargo run --release -p gcs-bench --bin exp_masking`

use gcs_bench::e5_masking as e5;

fn main() {
    let config = e5::Config::default();
    println!("paper claim (Lemma 4.2): for any delay mask and t > T d (1 + 1/rho), an adversary");
    println!("can build skew >= T d / 4 between nodes at flexible distance d, keeping every");
    println!("masked link's delay inside its prescribed band.\n");
    let points = e5::run(&config);
    e5::render(&points).print();
    println!();
    println!("expected shape: measured skew grows linearly with d and stays above T d / 4;");
    println!("the legality checker must report zero illegal delays (the Part II case analysis).");
}
