//! E3 — Corollary 6.14: stabilization time ∝ n/B0.
//!
//! `cargo run --release -p gcs-bench --bin exp_tradeoff`

use gcs_bench::e3_tradeoff as e3;

fn main() {
    let config = e3::Config::default();
    println!("paper claim: for B0 >= lambda sqrt(rho n), the stable local skew is O(B0) and the");
    println!("time to reach it on a new edge is O(n/B0) — matching the Omega(n/s) lower bound");
    println!("(Corollary 6.14). Doubling B0 should roughly halve the settle time.\n");
    let outcome = e3::run(&config);
    e3::render(&outcome).print();
    println!();
    println!(
        "log-log slope of settle time vs B0 (largest n): {:.3}  (expected ~ -1)",
        outcome.slope_vs_b0
    );
}
