//! E11 — parallel dispatch throughput and streamed skew at `n = 65 536`.
//!
//! `cargo run --release -p gcs-bench --bin exp_large_scale`
//!
//! CI smoke runs shrink the width with `GCS_SMOKE_N=4096` so the
//! large-scale code path is exercised on every push.

use gcs_bench::e11_large_scale as e11;
use gcs_bench::engine_bench::smoke_n;

fn main() {
    let mut config = e11::Config::default();
    config.n = smoke_n(config.n);
    println!(
        "claim: Theorem 4.1's gradient only emerges at large n; the engine must scale there\n"
    );
    println!(
        "running n = {}, horizon {}s, threads {:?} (host cpus: {})...\n",
        config.n,
        config.horizon,
        config.threads,
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    let out = e11::run(&config);
    e11::render(&out).print();
    println!();
    println!(
        "determinism cross-check: {}",
        if out.deterministic { "PASS" } else { "FAIL" }
    );
    println!(
        "streamed peaks: global {:.2}, local {:.2} (certified error <= {:.3})",
        out.peak_global, out.peak_local, out.skew_error_bound
    );
    println!(
        "peak topology backlog: {} (streamed, not pre-loaded); process peak RSS: {} MiB",
        out.points[0].peak_topology_backlog,
        gcs_analysis::mem::fmt_mib(gcs_analysis::peak_rss_bytes()),
    );
    assert!(out.deterministic, "thread counts diverged");
}
