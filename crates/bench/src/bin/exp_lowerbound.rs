//! E4 — Theorem 4.1 / Figure 1: the two-chain lower-bound scenario.
//!
//! `cargo run --release -p gcs-bench --bin exp_lowerbound`

use gcs_bench::e4_lowerbound as e4;

fn main() {
    let config = e4::Config::default();
    println!("paper claim (Theorem 4.1): reducing the skew on newly formed edges by a constant");
    println!("factor takes Omega(n / s(n)) time, almost independently of the initial skew.");
    println!("The figure-1 pipeline: masking adversary builds Omega(n) skew (a), Lemma 4.3");
    println!("places new edges with prescribed skew in [I-S, I] (b), and at T2 = T1 + kT/(1+rho)");
    println!("the new edges still carry a constant fraction of I (c).\n");
    let outcome = e4::run(&config);
    for table in e4::render(&outcome) {
        table.print();
        println!();
    }
    let worst_ratio = outcome
        .new_edges_t1
        .iter()
        .zip(&outcome.new_edges_t2)
        .map(|((_, s1), (_, s2))| s2 / s1)
        .fold(f64::INFINITY, f64::min);
    println!("minimum skew retention across E_new after T2−T1: {worst_ratio:.3} (theorem: bounded below by a constant)");
}
