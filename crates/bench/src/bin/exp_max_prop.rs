//! E6 — Lemma 6.8: max-estimate propagation under churn.
//!
//! `cargo run --release -p gcs-bench --bin exp_max_prop`

use gcs_bench::e6_max_prop as e6;

fn main() {
    println!("paper claim (Lemma 6.8): under (T+D)-interval connectivity,");
    println!("  Lmax(t) - Lmax_u(t) <= ((1+rho)T + 2 rho D)(n-1)");
    println!("for every node u, even when no edge lives much longer than T+D.\n");
    for churn in [e6::Churn::RotatingStar, e6::Churn::StaggeredRing] {
        let config = e6::Config {
            churn,
            ..e6::Config::default()
        };
        let points = e6::run(&config);
        e6::render(&points, churn).print();
        println!();
    }
    println!("expected shape: the gap stays below the bound for every n and churn pattern.");
}
