//! E15 — the fault-and-adversary scenario family: crash/restart with
//! state loss, loss and delay-spike windows, the greedy worst-case chord
//! adversary (Theorem 4.1's empirical companion), and the
//! drift-excursion negative control that must trip the invariant
//! monitor.
//!
//! `cargo run --release -p gcs-bench --bin exp_faults`
//!
//! CI smoke runs shrink the width with `GCS_SMOKE_N` so the fault plane
//! and the adversary search are exercised on every push.

use gcs_bench::e15_faults as e15;
use gcs_bench::engine_bench::smoke_n;

fn main() {
    let mut config = e15::Config::default();
    config.n = smoke_n(config.n);
    println!(
        "claim: Theorem 4.1 — a chord between drifted-apart regions creates worst-case\n\
         local skew; plus fail-closed detection of model violations\n"
    );
    println!(
        "running n = {}, horizon {}s, {} refinement rounds...\n",
        config.n, config.horizon, config.refine_steps
    );
    let outcomes = e15::run(&config);
    e15::report(&config, &outcomes).print();
    println!();
    assert!(
        outcomes.control.violations > 0,
        "negative control must trip the invariant monitor — a silent monitor is vacuous"
    );
    assert!(
        outcomes.adversary.peak_local >= outcomes.adversary.baseline_peak_local,
        "the searched attack ({:.3}) must dominate the well-behaved merge baseline ({:.3})",
        outcomes.adversary.peak_local,
        outcomes.adversary.baseline_peak_local
    );
    assert_eq!(outcomes.fault.crashes, outcomes.fault.restarts);
    println!(
        "all E15 acceptance gates held: adversary dominates baseline, control tripped ({} violations), {} crash/restart cycles applied",
        outcomes.control.violations, outcomes.fault.crashes
    );
}
