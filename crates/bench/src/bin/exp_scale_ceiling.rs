//! E13 — the lazy clock plane at `n = 2^20` (churn-walk and
//! flash-crowd-alt families under multi-segment drift).
//!
//! `cargo run --release -p gcs-bench --bin exp_scale_ceiling`
//!
//! CI smoke runs shrink the width with `GCS_SMOKE_N=4096` so the
//! scale-ceiling code path is exercised on every push.

use gcs_bench::e13_scale_ceiling as e13;
use gcs_bench::engine_bench::smoke_n;

fn main() {
    let mut config = e13::Config::default();
    config.n = smoke_n(config.n);
    println!(
        "claim: §3 only requires rates to be *queryable* at touched instants — the drift\n\
         plane evaluates on demand, so per-node rate state is an O(1) cursor for touched\n\
         nodes and zero bytes for untouched ones\n"
    );
    println!(
        "running n = {}, horizon {}s, threads {} (host cpus: {})...\n",
        config.n,
        config.horizon,
        config.threads,
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    let outcomes = e13::run(&config);
    e13::render(&config, &outcomes).print();
    println!();
    for o in &outcomes {
        println!(
            "{:>16}: {} drift cursors / {} touched slots / {} rng streams; \
             streamed peak skew {:.2} (err <= {:.3}); live RSS after run {} MiB",
            o.family,
            o.drift_cursors,
            o.node_state_watermark,
            o.rng_streams,
            o.peak_global,
            o.skew_error_bound,
            gcs_analysis::mem::fmt_mib(o.current_rss_bytes),
        );
        assert_eq!(
            o.stats.topology_pulled, o.stats.topology_events,
            "{}: pulled events must all apply by the horizon",
            o.family
        );
        assert!(
            o.drift_cursors <= o.node_state_watermark,
            "{}: at most one cursor per touched node",
            o.family
        );
        assert_eq!(
            o.rng_streams, 0,
            "{}: max delays must not materialize node streams",
            o.family
        );
    }
    println!(
        "process peak RSS: {} MiB (measured via /proc/self/status)",
        gcs_analysis::mem::fmt_mib(gcs_analysis::peak_rss_bytes()),
    );
}
