//! E1 — Theorem 6.9: global skew vs `n`.
//!
//! `cargo run --release -p gcs-bench --bin exp_global_skew`

use gcs_bench::e1_global_skew as e1;

fn main() {
    let config = e1::Config::default();
    println!(
        "paper claim: global skew <= G(n) = ((1+rho)T + 2 rho D)(n-1) at all times (Theorem 6.9)\n"
    );
    let outcome = e1::run(&config);
    e1::render(&outcome).print();
    let (slope, intercept, r2) = outcome.fit;
    println!();
    println!("linear fit of measured skew vs n: slope = {slope:.4}, intercept = {intercept:.3}, r^2 = {r2:.4}");
    println!("expected shape: linear in n (r^2 close to 1), always below the bound.");
}
