//! E12 — the streaming dynamic-workload family (mobility, partition,
//! flash-crowd) at `n = 2^17` on the lazy topology pipeline.
//!
//! `cargo run --release -p gcs-bench --bin exp_dynamic_workloads`
//!
//! CI smoke runs shrink the width with `GCS_SMOKE_N=4096` so the
//! streaming-scale code path is exercised on every push.

use gcs_bench::e12_dynamic_workloads as e12;
use gcs_bench::engine_bench::smoke_n;

fn main() {
    let mut config = e12::Config::default();
    config.n = smoke_n(config.n);
    println!(
        "claim: §3.1–3.2 dynamic networks at scale — topology streams from lazy sources,\n\
         so peak memory is independent of the total churn-event count\n"
    );
    println!(
        "running n = {}, horizon {}s, threads {} (host cpus: {})...\n",
        config.n,
        config.horizon,
        config.threads,
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    let outcomes = e12::run(&config);
    e12::render(&config, &outcomes).print();
    println!();
    for o in &outcomes {
        println!(
            "{:>12}: backlog peaked at {} of {} pulled events; streamed peak skew {:.2} \
             (err <= {:.3}); live RSS after run {} MiB",
            o.family,
            o.stats.peak_topology_backlog,
            o.stats.topology_pulled,
            o.peak_global,
            o.skew_error_bound,
            gcs_analysis::mem::fmt_mib(o.current_rss_bytes),
        );
        assert_eq!(
            o.stats.topology_pulled, o.stats.topology_events,
            "{}: pulled events must all apply by the horizon",
            o.family
        );
    }
    println!(
        "process peak RSS: {} MiB (measured via /proc/self/status)",
        gcs_analysis::mem::fmt_mib(gcs_analysis::peak_rss_bytes()),
    );
}
