//! E2 — Corollary 6.13: dynamic local skew decay on a new edge.
//!
//! `cargo run --release -p gcs-bench --bin exp_local_skew`

use gcs_bench::e2_local_skew as e2;

fn main() {
    let config = e2::Config::default();
    println!("paper claim: an edge of age dt carries skew at most");
    println!("  s(n, dt) = B((1-rho)(dt - dT - D - W)+) + 2 rho W   (Corollary 6.13)");
    println!("independently of its initial skew, while old edges stay within the stable bound.\n");
    let outcome = e2::run(&config);
    e2::render(&outcome).print();
    println!();
    println!(
        "W = {:.1}, budget settle age = {:.1}, stable bound = {:.3}",
        outcome.params.w(),
        outcome.params.budget_settle_age(),
        outcome.stable_bound
    );
    println!(
        "expected shape: bridge skew decays below the (also decaying) envelope; old edges flat."
    );
}
