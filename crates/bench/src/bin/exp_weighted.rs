//! E10 — the weighted-graph extension (paper §7).
//!
//! `cargo run --release -p gcs-bench --bin exp_weighted`

use gcs_bench::e10_weighted as e10;

fn main() {
    println!("weighted edges (paper §7): an edge's weight scales its stable budget to B0·w,");
    println!("so tight links (reference broadcast, w << 1) get proportionally tighter skew.");
    println!("The budgets bind during skew absorption, so down-weighting the old edges of the");
    println!("merge scenario shrinks their peak skew and slows the bridge closure in step.\n");
    let points = e10::run(&e10::Config::default());
    e10::render(&points).print();
}
