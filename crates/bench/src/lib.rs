//! # gcs-bench
//!
//! The experiment harness. Every quantitative claim of the paper runs
//! behind the [`scenario::Scenario`] trait: one module per experiment,
//! each exposing a `run(config)` function, a rendered table, and an
//! `Experiment` wrapper registered in [`scenario::all_scenarios`]. The
//! binaries in `src/bin/` are thin wrappers (`run_all` fans them all out
//! in parallel and records the engine perf trajectory as
//! `BENCH_engine.json`); criterion microbenchmarks live in `benches/`,
//! with the throughput workloads (serial baseline and the parallel
//! dispatcher's thread sweep) in [`engine_bench`].
//!
//! | id | claim | module |
//! |----|-------|--------|
//! | E1 | Theorem 6.9 — global skew `≤ G(n)`, linear in `n` | [`e1_global_skew`] |
//! | E2 | Corollary 6.13 — dynamic local skew decay on a new edge | [`e2_local_skew`] |
//! | E3 | Corollary 6.14 — stabilization time ∝ `n/B0` | [`e3_tradeoff`] |
//! | E4 | Theorem 4.1 / Figure 1 — the two-chain lower-bound scenario | [`e4_lowerbound`] |
//! | E5 | Lemma 4.2 — masking builds `≥ T·d/4` skew with legal delays | [`e5_masking`] |
//! | E6 | Lemma 6.8 — max-estimate propagation under churn | [`e6_max_prop`] |
//! | E7 | §1 — baseline comparison (aging vs constant budget vs max-sync) | [`e7_baselines`] |
//! | E8 | §5–6 — parameter ablations (`B(0)`, slope, assumed `n`, `ΔH`) | [`e8_ablations`] |
//! | E9 | §6 — gradient profile: worst skew vs graph distance | [`e9_gradient_profile`] |
//! | E10 | §7 — weighted per-edge budget floors | [`e10_weighted`] |
//! | E11 | Theorem 4.1 at scale — parallel dispatch at `n = 65 536` | [`e11_large_scale`] |
//! | E12 | §3.1–3.2 — streaming dynamic workloads at `n = 2^17` | [`e12_dynamic_workloads`] |
//! | E13 | §3 drift axioms at scale — lazy clock plane at `n = 2^20` | [`e13_scale_ceiling`] |
//! | E14 | §3/§5 at scale — compact automaton plane at `n = 2^23` | [`e14_memory_ceiling`] |
//! | E15 | Theorem 4.1 adversary + fault injection + negative controls | [`e15_faults`] |
//!
//! # Example
//!
//! The experiment registry is itself checkable — every scenario names
//! the claim it reproduces and carries typed metadata
//! ([`scenario::ScenarioMeta`]) that drivers partition on:
//!
//! ```
//! use gcs_bench::scenario::{all_scenarios, scenarios_in, ScenarioFamily};
//!
//! let scenarios = all_scenarios();
//! assert_eq!(scenarios.len(), 15);
//! assert_eq!(scenarios[0].id(), "E1");
//! assert!(scenarios[0].claim().contains("Theorem 6.9"));
//! assert_eq!(scenarios[14].id(), "E15");
//! assert_eq!(scenarios_in(ScenarioFamily::Claim).len(), 10);
//! assert_eq!(scenarios_in(ScenarioFamily::Scale).len(), 4);
//! assert_eq!(scenarios_in(ScenarioFamily::Fault).len(), 1);
//! assert!(scenarios.iter().all(|s| !s.title().is_empty()));
//! ```

pub mod e10_weighted;
pub mod e11_large_scale;
pub mod e12_dynamic_workloads;
pub mod e13_scale_ceiling;
pub mod e14_memory_ceiling;
pub mod e15_faults;
pub mod e1_global_skew;
pub mod e2_local_skew;
pub mod e3_tradeoff;
pub mod e4_lowerbound;
pub mod e5_masking;
pub mod e6_max_prop;
pub mod e7_baselines;
pub mod e8_ablations;
pub mod e9_gradient_profile;
pub mod engine_bench;
pub mod scenario;

use gcs_sim::ModelParams;

/// Default worker count for the scale-experiment configs: the engine's
/// `GCS_SIM_THREADS` variable (floored at 1), so the CI smoke matrix can
/// drive the same binaries through both the batched-serial and the
/// pooled parallel dispatch paths. Explicit `Config { threads, .. }`
/// always wins.
pub fn default_threads() -> usize {
    std::env::var(gcs_sim::THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|t| t.max(1))
        .unwrap_or(1)
}

/// The model parameters shared by the experiments unless a claim needs a
/// different drift regime: `ρ = 0.01`, `T = 1`, `D = 2`.
pub fn default_model() -> ModelParams {
    ModelParams::new(0.01, 1.0, 2.0)
}

/// A high-drift regime (`ρ = 0.05`) used where visible skew must build up
/// quickly (local-skew decay, tradeoff, baselines).
pub fn high_drift_model() -> ModelParams {
    ModelParams::new(0.05, 1.0, 2.0)
}
