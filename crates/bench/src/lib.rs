//! # gcs-bench
//!
//! The experiment harness: one module per quantitative claim of the paper
//! (see `DESIGN.md` §4 for the experiment index). Each experiment exposes
//! a `run(config) -> ...Result` function plus a default configuration, and
//! the binaries in `src/bin/` are thin wrappers that print the
//! paper-vs-measured tables. Criterion microbenchmarks live in `benches/`.
//!
//! | id | claim | module |
//! |----|-------|--------|
//! | E1 | Theorem 6.9 — global skew `≤ G(n)`, linear in `n` | [`e1_global_skew`] |
//! | E2 | Corollary 6.13 — dynamic local skew decay on a new edge | [`e2_local_skew`] |
//! | E3 | Corollary 6.14 — stabilization time ∝ `n/B0` | [`e3_tradeoff`] |
//! | E4 | Theorem 4.1 / Figure 1 — the two-chain lower-bound scenario | [`e4_lowerbound`] |
//! | E5 | Lemma 4.2 — masking builds `≥ T·d/4` skew with legal delays | [`e5_masking`] |
//! | E6 | Lemma 6.8 — max-estimate propagation under churn | [`e6_max_prop`] |
//! | E7 | §1 — baseline comparison (aging vs constant budget vs max-sync) | [`e7_baselines`] |

pub mod e10_weighted;
pub mod e1_global_skew;
pub mod e2_local_skew;
pub mod e3_tradeoff;
pub mod e4_lowerbound;
pub mod e5_masking;
pub mod e6_max_prop;
pub mod e7_baselines;
pub mod e8_ablations;
pub mod e9_gradient_profile;
pub mod scenario;

use gcs_sim::ModelParams;

/// The model parameters shared by the experiments unless a claim needs a
/// different drift regime: `ρ = 0.01`, `T = 1`, `D = 2`.
pub fn default_model() -> ModelParams {
    ModelParams::new(0.01, 1.0, 2.0)
}

/// A high-drift regime (`ρ = 0.05`) used where visible skew must build up
/// quickly (local-skew decay, tradeoff, baselines).
pub fn high_drift_model() -> ModelParams {
    ModelParams::new(0.05, 1.0, 2.0)
}
