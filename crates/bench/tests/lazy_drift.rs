//! Lazy-vs-eager drift equivalence: the on-demand clock plane must be
//! *bit-identical* to running the same workload with every node's
//! `RateSchedule` fully materialized up front.
//!
//! Both paths go through the one `DriftSource` plane — the eager side is
//! served by `ScheduleDrift`, exactly as `ScheduleSource` serves eager
//! topology — so these tests pin the contract that makes lazy drift
//! safe: a model plane and its materialized schedules describe the same
//! execution (same logical-clock bits at every checkpoint, same
//! counters) at every thread count, with the lazy side holding only O(1)
//! cursors for touched nodes and the eager side holding none.

use gcs_bench::engine_bench::Workload;
use gcs_clocks::time::at;
use gcs_clocks::{DriftModel, HardwareClock, ModelDrift, ScheduleDrift};
use gcs_core::{AlgoParams, GradientNode};
use gcs_net::churn::ChurnSource;
use gcs_net::generators;
use gcs_net::ScheduleSource;
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder, Simulator};

const THREAD_COUNTS: [usize; 2] = [1, 8];

/// The engine's model-plane seed derivation (`SimBuilder::drift` keys
/// the lazy plane off `seed ^ GOLDEN`; see `build_with`).
fn plane_for(model: DriftModel, rho: f64, horizon: f64, seed: u64) -> ModelDrift {
    ModelDrift::new(model, rho, horizon, seed ^ 0x9e37_79b9_7f4a_7c15)
}

fn run_and_compare(
    mut eager: Simulator<GradientNode>,
    mut lazy: Simulator<GradientNode>,
    horizon: f64,
    step: f64,
) {
    let mut t = 0.0;
    while t < horizon {
        t = (t + step).min(horizon);
        eager.run_until(at(t));
        lazy.run_until(at(t));
        for (i, (x, y)) in eager
            .logical_snapshot()
            .iter()
            .zip(lazy.logical_snapshot())
            .enumerate()
        {
            assert!(
                x.to_bits() == y.to_bits(),
                "t={t}: node {i} diverged: lazy {y:?} vs eager {x:?}"
            );
        }
    }
    assert_eq!(eager.stats(), lazy.stats(), "counters diverged");
    assert_eq!(
        eager.drift_cursors(),
        0,
        "materialized clocks must keep the plane stateless"
    );
    assert!(
        lazy.drift_cursors() > 0,
        "the lazy plane should be holding cursors for touched nodes"
    );
    assert!(
        lazy.drift_cursors() <= lazy.node_state_watermark(),
        "at most one cursor per touched node"
    );
}

/// E1-style churn under the multi-segment random-walk adversary — the
/// workload class E13 runs at n = 2^20, pinned here at test width.
#[test]
fn e1_churn_lazy_vs_materialized_drift_bit_identical() {
    let (n, horizon, seed) = (96, 40.0, 77);
    let model = ModelParams::new(0.01, 1.0, 2.0);
    let params = AlgoParams::with_minimal_b0(model, n, 0.5);
    let drift = DriftModel::RandomWalk { step: 3.0 };
    let plane = plane_for(drift, model.rho, horizon, seed);
    let clocks: Vec<HardwareClock> = (0..n).map(|i| plane.clock(i)).collect();
    let source = || {
        ChurnSource::new(
            n,
            generators::path(n),
            n / 4,
            (6.0, 12.0),
            (2.0, 4.0),
            horizon,
            seed ^ 0x000c_4e1d,
        )
    };
    for threads in THREAD_COUNTS {
        let eager = SimBuilder::topology(model, source())
            .drift(ScheduleDrift::new(clocks.clone()))
            .delay(DelayStrategy::Max)
            .seed(seed)
            .threads(threads)
            .build_with(|_| GradientNode::new(params));
        let lazy = SimBuilder::topology(model, source())
            .drift_model(drift, horizon)
            .delay(DelayStrategy::Max)
            .seed(seed)
            .threads(threads)
            .build_with(|_| GradientNode::new(params));
        run_and_compare(eager, lazy, horizon, 2.0);
    }
}

/// Alternating square-wave drift plus random delays and random discovery
/// latencies: lazy drift composes with every other randomized subsystem
/// without perturbing any stream.
#[test]
fn alternating_drift_with_random_delays_bit_identical() {
    let (n, horizon, seed) = (48, 30.0, 5);
    let model = ModelParams::new(0.02, 1.0, 2.0);
    let params = AlgoParams::with_minimal_b0(model, n, 0.5);
    let drift = DriftModel::Alternating { period: 2.5 };
    let plane = plane_for(drift, model.rho, horizon, seed);
    let clocks: Vec<HardwareClock> = (0..n).map(|i| plane.clock(i)).collect();
    let mk = |lazy: bool, threads: usize| {
        let b = SimBuilder::topology(
            model,
            ScheduleSource::new(
                Workload {
                    n,
                    horizon,
                    churn: true,
                    seed,
                    threads: 1,
                }
                .schedule(),
            ),
        )
        .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
        .seed(seed)
        .threads(threads);
        let b = if lazy {
            b.drift_model(drift, horizon)
        } else {
            b.drift(ScheduleDrift::new(clocks.clone()))
        };
        b.build_with(|_| GradientNode::new(params))
    };
    for threads in THREAD_COUNTS {
        run_and_compare(mk(false, threads), mk(true, threads), horizon, 1.5);
    }
}

/// The large-scale workload shape (what E11/E13 run), under the E13
/// multi-segment random-walk adversary so the plane actually holds
/// cursors, is thread-count invariant — including the cursor census
/// (cursor creation is part of the trace, not of the scheduling).
#[test]
fn workload_lazy_drift_thread_invariant() {
    let w = Workload {
        n: 32,
        horizon: 15.0,
        churn: true,
        seed: 9,
        threads: 1,
    };
    let model = w.model();
    let params = w.params();
    let mk = |threads: usize| {
        SimBuilder::topology(model, ScheduleSource::new(w.schedule()))
            .drift_model(DriftModel::RandomWalk { step: 3.0 }, w.horizon)
            .delay(DelayStrategy::Max)
            .seed(w.seed)
            .threads(threads)
            .build_with(|_| GradientNode::new(params))
    };
    let mut batched = mk(1);
    batched.run_until(at(w.horizon));
    let mut wide = mk(8);
    wide.run_until(at(w.horizon));
    assert_eq!(batched.stats(), wide.stats());
    assert!(
        batched.drift_cursors() > 0,
        "multi-segment drift must cursor"
    );
    assert_eq!(batched.drift_cursors(), wide.drift_cursors());
    for (x, y) in batched
        .logical_snapshot()
        .iter()
        .zip(wide.logical_snapshot())
    {
        assert!(x.to_bits() == y.to_bits(), "wide diverged from batched");
    }
}
