//! Eager-vs-streaming equivalence: the lazily pulled topology pipeline
//! must be *bit-identical* to running the same event stream from a fully
//! materialized [`TopologySchedule`].
//!
//! Both paths go through the one streaming engine (an eager schedule is
//! served by `ScheduleSource`), so these tests pin the contract that
//! makes lazy generation safe: a source and its collected schedule
//! describe the same execution — same logical-clock bits at every
//! checkpoint, same execution counters (including the pull/backlog
//! counters) — at every thread count, and regardless of how `run_until`
//! is chunked.

use gcs_bench::scenario;
use gcs_clocks::time::at;
use gcs_clocks::{DriftModel, ScheduleDrift, Time};
use gcs_core::{AlgoParams, GradientNode};
use gcs_net::churn::ChurnSource;
use gcs_net::source::{collect_schedule, TopologySource};
use gcs_net::{generators, Edge, ScheduleSource, TopologyEvent, TopologySchedule};
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder, Simulator};

const THREAD_COUNTS: [usize; 2] = [1, 8];

fn e1_model() -> ModelParams {
    ModelParams::new(0.01, 1.0, 2.0)
}

fn e1_churn_source(n: usize, horizon: f64, seed: u64) -> ChurnSource {
    ChurnSource::new(
        n,
        generators::path(n),
        n / 4,
        (6.0, 12.0),
        (2.0, 4.0),
        horizon,
        seed ^ 0x000c_4e1d,
    )
}

fn run_and_compare(
    mut eager: Simulator<GradientNode>,
    mut streaming: Simulator<GradientNode>,
    horizon: f64,
    step: f64,
) {
    let mut t = 0.0;
    while t < horizon {
        t = (t + step).min(horizon);
        eager.run_until(at(t));
        streaming.run_until(at(t));
        for (i, (x, y)) in eager
            .logical_snapshot()
            .iter()
            .zip(streaming.logical_snapshot())
            .enumerate()
        {
            assert!(
                x.to_bits() == y.to_bits(),
                "t={t}: node {i} diverged: streaming {y:?} vs eager {x:?}"
            );
        }
    }
    assert_eq!(
        eager.stats(),
        streaming.stats(),
        "counters diverged (including pull/backlog counters)"
    );
    assert!(eager.stats().topology_events > 0, "workload must churn");
}

#[test]
fn e1_churn_eager_vs_streaming_bit_identical() {
    let (n, horizon, seed) = (96, 40.0, 1234);
    let model = e1_model();
    let params = AlgoParams::with_minimal_b0(model, n, 0.5);
    // The lazy generator's stream, fully collected and validated.
    let schedule: TopologySchedule = collect_schedule(e1_churn_source(n, horizon, seed));
    for threads in THREAD_COUNTS {
        let mk = |sched: Option<TopologySchedule>| {
            let b = match sched {
                Some(s) => SimBuilder::topology(model, ScheduleSource::new(s)),
                None => SimBuilder::topology(model, e1_churn_source(n, horizon, seed)),
            };
            b.drift_model(DriftModel::FastUpTo(n / 2), horizon)
                .delay(DelayStrategy::Max)
                .seed(seed)
                .threads(threads)
                .build_with(|_| GradientNode::new(params))
        };
        run_and_compare(mk(Some(schedule.clone())), mk(None), horizon, 2.0);
    }
}

/// A hand-written lazy source for the E2 merge workload: the bridge add
/// is *computed on demand*, never materialized up front.
struct LazyMerge {
    n: usize,
    initial: Vec<Edge>,
    bridge: Edge,
    t_bridge: Time,
    emitted: bool,
}

impl TopologySource for LazyMerge {
    fn n(&self) -> usize {
        self.n
    }
    fn initial_edges(&mut self) -> Vec<Edge> {
        std::mem::take(&mut self.initial)
    }
    fn peek_time(&mut self) -> Option<Time> {
        (!self.emitted).then_some(self.t_bridge)
    }
    fn pull_until(&mut self, until: Time, buf: &mut Vec<TopologyEvent>) {
        if !self.emitted && self.t_bridge <= until {
            buf.push(gcs_net::schedule::add_at(
                self.t_bridge.seconds(),
                self.bridge,
            ));
            self.emitted = true;
        }
    }
}

#[test]
fn e2_merge_eager_vs_streaming_bit_identical() {
    let n = 96;
    let model = ModelParams::new(0.05, 1.0, 2.0);
    let params = AlgoParams::with_minimal_b0(model, n, 0.5);
    let t_bridge = scenario::t_bridge_for_skew(model, 40.0);
    let m = scenario::merge(n, model, t_bridge);
    let horizon = t_bridge + params.w() + 50.0;
    for threads in THREAD_COUNTS {
        let eager = SimBuilder::topology(model, ScheduleSource::new(m.schedule.clone()))
            .drift(ScheduleDrift::new(m.clocks.clone()))
            .delay(DelayStrategy::Max)
            .seed(9)
            .threads(threads)
            .build_with(|_| GradientNode::new(params));
        let lazy = LazyMerge {
            n,
            // Same sorted order the schedule's BTreeSet iterates in.
            initial: m.schedule.initial_edges().collect(),
            bridge: m.bridge,
            t_bridge: at(t_bridge),
            emitted: false,
        };
        let streaming = SimBuilder::topology(model, lazy)
            .drift(ScheduleDrift::new(m.clocks.clone()))
            .delay(DelayStrategy::Max)
            .seed(9)
            .threads(threads)
            .build_with(|_| GradientNode::new(params));
        run_and_compare(eager, streaming, horizon, 5.0);
    }
}

#[test]
fn streaming_pull_pattern_invariant_under_run_until_chunking() {
    // Pull decisions must depend only on the wheel/source state — never
    // on the `run_until` target — so chunked and one-shot drains agree.
    let (n, horizon, seed) = (48, 30.0, 7);
    let model = e1_model();
    let params = AlgoParams::with_minimal_b0(model, n, 0.5);
    let mk = || {
        SimBuilder::topology(model, e1_churn_source(n, horizon, seed))
            .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
            .seed(seed)
            .build_with(|_| GradientNode::new(params))
    };
    let mut one_shot = mk();
    one_shot.run_until(at(horizon));
    let mut chunked = mk();
    let mut t = 0.0;
    while t < horizon {
        t = (t + 0.7).min(horizon);
        chunked.run_until(at(t));
    }
    for (x, y) in one_shot
        .logical_snapshot()
        .iter()
        .zip(chunked.logical_snapshot())
    {
        assert!(x.to_bits() == y.to_bits());
    }
    assert_eq!(one_shot.stats(), chunked.stats());
    assert!(one_shot.stats().peak_topology_backlog > 0);
    assert!(
        one_shot.stats().peak_topology_backlog < one_shot.stats().topology_pulled,
        "backlog must be a window, not the whole stream"
    );
}
