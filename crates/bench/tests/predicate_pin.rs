//! Bit-identity pins for the blocked/advance predicate extraction.
//!
//! PR 7 moved the decision logic of Algorithm 2 — the Definition 6.1
//! *blocked* predicate and the `AdjustClock` advance target — out of
//! `GradientNode`'s handlers into the pure functions of
//! `gcs_core::predicate`, so the model checker (`gcs-mc`) can evaluate the
//! same arithmetic on model states (encode once, call twice). The refactor
//! must be invisible in traces: the goldens below are FNV-1a hashes over
//! the raw `f64::to_bits` of every node's `L` and `Lmax` at sampled
//! instants of an E1-style churn run and an E2-style cluster-merge run,
//! captured from the pre-refactor implementation. Any arithmetic
//! re-ordering inside the extraction shows up here as a changed hash.

use gcs_bench::engine_bench::Workload;
use gcs_bench::scenario;
use gcs_clocks::time::at;
use gcs_clocks::ScheduleDrift;
use gcs_core::{AlgoParams, GradientNode};
use gcs_net::ScheduleSource;
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder};

/// FNV-1a over a stream of `u64`s — stable, dependency-free fingerprint.
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[test]
fn e1_churn_trace_is_bit_identical_to_pre_extraction_golden() {
    let w = Workload {
        n: 48,
        horizon: 30.0,
        churn: true,
        seed: 2024,
        threads: 1,
    };
    let mut sim = w.build();
    let mut words = Vec::new();
    let mut t = 0.0;
    while t < w.horizon {
        t = (t + 3.0).min(w.horizon);
        sim.run_until(at(t));
        for u in 0..sim.n() {
            words.push(sim.logical(gcs_net::node(u)).to_bits());
            words.push(sim.max_estimate_of(gcs_net::node(u)).to_bits());
        }
    }
    assert_eq!(
        fnv1a(words),
        0x2e5a_a76b_ca24_dd85,
        "E1 churn trace diverged from the pre-extraction golden"
    );
}

#[test]
fn e2_merge_trace_is_bit_identical_to_pre_extraction_golden() {
    let n = 32;
    let model = ModelParams::new(0.05, 1.0, 2.0);
    let params = AlgoParams::with_minimal_b0(model, n, 0.5);
    let t_bridge = scenario::t_bridge_for_skew(model, 30.0);
    let m = scenario::merge(n, model, t_bridge);
    let horizon = t_bridge + params.w() + 20.0;
    let mut sim = SimBuilder::topology(model, ScheduleSource::new(m.schedule.clone()))
        .drift(ScheduleDrift::new(m.clocks.clone()))
        .delay(DelayStrategy::Max)
        .seed(7)
        .threads(1)
        .build_with(|_| GradientNode::new(params));
    let mut words = Vec::new();
    let mut t = 0.0;
    while t < horizon {
        t = (t + 10.0).min(horizon);
        sim.run_until(at(t));
        for u in 0..sim.n() {
            words.push(sim.logical(gcs_net::node(u)).to_bits());
            words.push(sim.max_estimate_of(gcs_net::node(u)).to_bits());
        }
    }
    assert_eq!(
        fnv1a(words),
        0xcb40_2997_d0fd_dd72,
        "E2 merge trace diverged from the pre-extraction golden"
    );
}
