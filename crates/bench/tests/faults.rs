//! Fault-plane regression tests: injections must not cost determinism.
//!
//! Faults join the same canonical `(time, class, seq)` event order as
//! topology changes, so a run with crashes, restarts, loss windows,
//! delay spikes, and adversarial chords must stay *bit-identical* across
//! worker counts and across replays — the fault stream is part of the
//! trace's pure input, not a side channel. Divergence here is a
//! dispatcher bug, never tolerance noise.

use gcs_bench::e15_faults;
use gcs_bench::scenario::Scenario;
use gcs_clocks::time::at;
use gcs_clocks::DriftModel;
use gcs_core::{AlgoParams, GradientNode, InvariantMonitor};
use gcs_net::{
    generators, AdversarialChurnSource, BridgeAttack, Edge, ScheduleSource, TopologySchedule,
};
use gcs_sim::{DelayStrategy, FaultEvent, FaultPlan, ModelParams, SimBuilder, Simulator};

const THREAD_COUNTS: [usize; 2] = [1, 8];

fn model() -> ModelParams {
    ModelParams::new(0.05, 1.0, 2.0)
}

/// A plan exercising every fault kind in one run.
fn full_plan(n: usize, horizon: f64) -> FaultPlan {
    FaultPlan::new(vec![
        FaultEvent::crash(0.15 * horizon, gcs_net::node(n / 3)),
        FaultEvent::restart(0.25 * horizon, gcs_net::node(n / 3)),
        FaultEvent::drop_window(0.30 * horizon, 0.05 * horizon),
        FaultEvent::drop_edge(0.40 * horizon, Edge::between(0, 1), 0.10 * horizon),
        FaultEvent::delay_spike(0.55 * horizon, model().t, 0.05 * horizon),
        FaultEvent::drift_excursion(0.70 * horizon, gcs_net::node(n / 2), 0.5, 0.1 * horizon),
    ])
}

fn faulted_sim(n: usize, horizon: f64, threads: usize) -> Simulator<GradientNode> {
    let m = model();
    let params = AlgoParams::with_minimal_b0(m, n, 0.5);
    let schedule = TopologySchedule::static_graph(n, generators::path(n));
    SimBuilder::topology(m, ScheduleSource::new(schedule))
        .drift_model(DriftModel::SplitExtremes, horizon)
        .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
        .seed(4242)
        .threads(threads)
        .faults(full_plan(n, horizon))
        .build_with(move |_| GradientNode::new(params))
}

#[test]
fn faulted_traces_bit_identical_across_thread_counts() {
    // n = 96 crosses the dispatcher's parallel threshold, so worker
    // threads genuinely run; randomized delays make the ordering
    // contract load-bearing.
    let (n, horizon) = (96, 60.0);
    let mut sims: Vec<Simulator<GradientNode>> = THREAD_COUNTS
        .iter()
        .map(|&t| faulted_sim(n, horizon, t))
        .collect();
    let mut t = 0.0;
    while t < horizon {
        t = (t + 2.5).min(horizon);
        let mut reference: Option<Vec<f64>> = None;
        for (sim, &threads) in sims.iter_mut().zip(&THREAD_COUNTS) {
            sim.run_until(at(t));
            let snap = sim.logical_snapshot();
            match &reference {
                None => reference = Some(snap),
                Some(r) => {
                    for (i, (x, y)) in r.iter().zip(&snap).enumerate() {
                        assert!(
                            x.to_bits() == y.to_bits(),
                            "t={t}: node {i} diverged at {threads} threads: {y:?} vs serial {x:?}"
                        );
                    }
                }
            }
        }
    }
    let reference_stats = *sims[0].stats();
    for (sim, &threads) in sims.iter().zip(&THREAD_COUNTS) {
        assert_eq!(
            *sim.stats(),
            reference_stats,
            "counters diverged at {threads} threads"
        );
    }
    // Every fault kind must actually have fired.
    assert_eq!(reference_stats.crashes, 1);
    assert_eq!(reference_stats.restarts, 1);
    assert!(reference_stats.dropped_crashed + reference_stats.suppressed_crashed > 0);
    assert!(reference_stats.dropped_fault_window > 0);
    assert!(reference_stats.delay_spiked > 0);
    assert_eq!(reference_stats.faults_applied, 6);
}

#[test]
fn adversary_source_traces_bit_identical_across_thread_counts() {
    let (n, horizon) = (96, 60.0);
    let m = model();
    let params = AlgoParams::with_minimal_b0(m, n, 0.5);
    let attack = BridgeAttack::transient(0.4 * horizon, Edge::between(0, n - 1), 0.3 * horizon);
    let mut sims: Vec<Simulator<GradientNode>> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            SimBuilder::topology(m, AdversarialChurnSource::new(n, vec![attack]))
                .drift_model(DriftModel::FastUpTo(n / 2), horizon)
                .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
                .seed(7)
                .threads(threads)
                .build_with(move |_| GradientNode::new(params))
        })
        .collect();
    for sim in sims.iter_mut() {
        sim.run_until(at(horizon));
    }
    let reference = sims[0].logical_snapshot();
    for sim in &sims[1..] {
        for (x, y) in reference.iter().zip(sim.logical_snapshot()) {
            assert!(x.to_bits() == y.to_bits());
        }
        assert_eq!(*sim.stats(), *sims[0].stats());
    }
    // The chord was added and later removed.
    assert!(sims[0].stats().topology_events >= 2);
}

#[test]
fn crash_restart_replay_is_bit_identical() {
    // Rebooted state is a pure function of the trace: two independent
    // runs of the same faulted workload must agree bit-for-bit at every
    // sample instant, including instants while the node is down.
    let (n, horizon) = (48, 50.0);
    let mut a = faulted_sim(n, horizon, 1);
    let mut b = faulted_sim(n, horizon, 8);
    let mut t = 0.0;
    while t < horizon {
        t = (t + 1.0).min(horizon);
        a.run_until(at(t));
        b.run_until(at(t));
        for (x, y) in a.logical_snapshot().iter().zip(b.logical_snapshot()) {
            assert!(x.to_bits() == y.to_bits(), "replay diverged at t={t}");
        }
    }
    assert_eq!(*a.stats(), *b.stats());
    assert_eq!(a.stats().crashes, 1);
    assert_eq!(a.stats().restarts, 1);
}

#[test]
fn e15_reports_identical_across_thread_counts() {
    // The whole E15 report — every table cell, note, and CSV value — is
    // a pure function of the traces, so it must match across worker
    // counts too. GCS_SIM_THREADS is the env knob; the builder setting
    // is its per-run equivalent and overrides it.
    let config = e15_faults::Config {
        n: 16,
        horizon: 120.0,
        refine_steps: 1,
        ..Default::default()
    };
    let reports: Vec<_> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            std::env::set_var("GCS_SIM_THREADS", t.to_string());
            let rep = e15_faults::Experiment {
                config: config.clone(),
            }
            .run_scenario();
            std::env::remove_var("GCS_SIM_THREADS");
            rep
        })
        .collect();
    assert_eq!(reports[0], reports[1], "E15 report diverged across threads");
}

#[test]
fn drift_excursion_negative_control_trips_the_monitor() {
    // A run that violates the drift model must be *detected* — the
    // monitor staying silent would make every green report vacuous.
    let n = 16;
    let m = model();
    let params = AlgoParams::with_minimal_b0(m, n, 0.5);
    let horizon = 120.0;
    let schedule = TopologySchedule::static_graph(n, generators::ring(n));
    let plan = FaultPlan::new(vec![FaultEvent::drift_excursion(
        0.4 * horizon,
        gcs_net::node(0),
        1.0,
        horizon / 6.0,
    )]);
    let mut sim = SimBuilder::topology(m, ScheduleSource::new(schedule))
        .drift_model(DriftModel::Perfect, horizon)
        .delay(DelayStrategy::Max)
        .faults(plan)
        .build_with(move |_| GradientNode::new(params));
    let mut rec = gcs_analysis::Recorder::new(1.0).with_monitor(InvariantMonitor::new(params));
    rec.run(&mut sim, at(horizon));
    let violations = rec.monitor().expect("monitor attached").violations();
    assert!(
        !violations.is_empty(),
        "excursion outside [1-rho, 1+rho] must trip the invariant monitor"
    );

    // And the control's dual: the identical run *without* the excursion
    // must stay clean, or the monitor is just noisy.
    let clean_schedule = TopologySchedule::static_graph(n, generators::ring(n));
    let mut clean = SimBuilder::topology(m, ScheduleSource::new(clean_schedule))
        .drift_model(DriftModel::Perfect, horizon)
        .delay(DelayStrategy::Max)
        .build_with(move |_| GradientNode::new(params));
    let mut rec = gcs_analysis::Recorder::new(1.0).with_monitor(InvariantMonitor::new(params));
    rec.run(&mut clean, at(horizon));
    assert!(rec.monitor().unwrap().violations().is_empty());
}
