//! Deprecated-adapter compatibility: the old `SimBuilder` entry points
//! (`new`, `from_source`, `clocks`, `drift_source`) must keep producing
//! traces bit-identical to the canonical `topology`/`drift`/`faults`
//! triple until they are removed.
//!
//! This is the ONE file in the workspace allowed `allow(deprecated)` —
//! CI greps for any other use, so migrations can't quietly regress back
//! onto the old surface.
#![allow(deprecated)]

use gcs_clocks::time::at;
use gcs_clocks::{HardwareClock, ScheduleDrift};
use gcs_core::{AlgoParams, GradientNode};
use gcs_net::{generators, ScheduleSource, TopologySchedule};
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder, Simulator};

fn model() -> ModelParams {
    ModelParams::new(0.05, 1.0, 2.0)
}

fn schedule(n: usize) -> TopologySchedule {
    TopologySchedule::static_graph(n, generators::path(n))
}

fn clocks(n: usize) -> Vec<HardwareClock> {
    // The SplitExtremes pattern, spelled out by hand: even nodes slow,
    // odd nodes fast, at the drift bound.
    let m = model();
    (0..n)
        .map(|i| {
            let rate = if i % 2 == 0 { 1.0 - m.rho } else { 1.0 + m.rho };
            HardwareClock::constant(rate, m.rho)
        })
        .collect()
}

fn run(mut sim: Simulator<GradientNode>, horizon: f64) -> Vec<f64> {
    sim.run_until(at(horizon));
    sim.logical_snapshot()
}

#[test]
fn deprecated_new_matches_canonical_topology() {
    let (n, horizon) = (32, 40.0);
    let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
    let old = SimBuilder::new(model(), schedule(n))
        .clocks(clocks(n))
        .delay(DelayStrategy::Max)
        .build_with(move |_| GradientNode::new(params));
    let new = SimBuilder::topology(model(), ScheduleSource::new(schedule(n)))
        .drift(ScheduleDrift::new(clocks(n)))
        .delay(DelayStrategy::Max)
        .build_with(move |_| GradientNode::new(params));
    let (a, b) = (run(old, horizon), run(new, horizon));
    for (x, y) in a.iter().zip(&b) {
        assert!(x.to_bits() == y.to_bits(), "adapter trace diverged");
    }
}

#[test]
fn deprecated_from_source_and_drift_source_match_canonical() {
    let (n, horizon) = (32, 40.0);
    let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
    let old = SimBuilder::from_source(model(), ScheduleSource::new(schedule(n)))
        .drift_source(ScheduleDrift::new(clocks(n)))
        .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
        .seed(99)
        .build_with(move |_| GradientNode::new(params));
    let new = SimBuilder::topology(model(), ScheduleSource::new(schedule(n)))
        .drift(ScheduleDrift::new(clocks(n)))
        .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
        .seed(99)
        .build_with(move |_| GradientNode::new(params));
    let (a, b) = (run(old, horizon), run(new, horizon));
    for (x, y) in a.iter().zip(&b) {
        assert!(x.to_bits() == y.to_bits(), "renamed-adapter trace diverged");
    }
}

#[test]
fn adapters_compose_with_the_fault_plane() {
    // Old-style construction with the new `.faults(...)` stage: adapters
    // must not fork the builder into a parallel type that misses new
    // capabilities.
    use gcs_sim::{FaultEvent, FaultPlan};
    let (n, horizon) = (32, 40.0);
    let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
    let plan = || {
        FaultPlan::new(vec![
            FaultEvent::crash(10.0, gcs_net::node(3)),
            FaultEvent::restart(20.0, gcs_net::node(3)),
        ])
    };
    let old = SimBuilder::new(model(), schedule(n))
        .clocks(clocks(n))
        .delay(DelayStrategy::Max)
        .faults(plan())
        .build_with(move |_| GradientNode::new(params));
    let new = SimBuilder::topology(model(), ScheduleSource::new(schedule(n)))
        .drift(ScheduleDrift::new(clocks(n)))
        .delay(DelayStrategy::Max)
        .faults(plan())
        .build_with(move |_| GradientNode::new(params));
    let mut sims = [old, new];
    for sim in sims.iter_mut() {
        sim.run_until(at(horizon));
    }
    for (x, y) in sims[0]
        .logical_snapshot()
        .iter()
        .zip(sims[1].logical_snapshot())
    {
        assert!(x.to_bits() == y.to_bits());
    }
    assert_eq!(*sims[0].stats(), *sims[1].stats());
    assert_eq!(sims[0].stats().crashes, 1);
    assert_eq!(sims[0].stats().restarts, 1);
}
