//! Differential regression tests: the batched time-wheel engine must be
//! *trace-identical* to the frozen pre-rewrite engine (`gcs_sim::legacy`).
//!
//! "Identical" here is the strongest possible reading — bit-equal `f64`
//! logical clocks at every sample instant and equal execution counters —
//! because the rewrite changed data structures and dispatch shape, not
//! semantics: the time wheel pops in the same `(time, seq)` order as the
//! old heap, batching preserves per-event handler order, and the flat
//! neighbor tables iterate in the old `BTreeMap` order. Any divergence is
//! a bug in the rewrite, not tolerance noise.
//!
//! The workloads are the two experiments named in the roadmap issue:
//! E1 (global skew on a path, with churn) and E2 (cluster merge / dynamic
//! local skew decay), both under a fixed seed.

use gcs_bench::engine_bench::Workload;
use gcs_bench::scenario;
use gcs_clocks::time::at;
use gcs_core::{AlgoParams, GradientNode};
use gcs_sim::{DelayStrategy, LegacySimBuilder, ModelParams, SimBuilder};

/// Steps both engines through the same sample instants and asserts
/// bit-identical logical snapshots plus (at the end) equal stats.
fn assert_traces_identical<FNew, FLegacy>(
    horizon: f64,
    sample_dt: f64,
    mut new_at: FNew,
    mut legacy_at: FLegacy,
) where
    FNew: FnMut(f64) -> Vec<f64>,
    FLegacy: FnMut(f64) -> Vec<f64>,
{
    let mut t = 0.0;
    while t < horizon {
        t = (t + sample_dt).min(horizon);
        let a = new_at(t);
        let b = legacy_at(t);
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "t={t}: node {i} diverged: wheel {x:?} vs legacy {y:?}"
            );
        }
    }
}

#[test]
fn e1_churn_traces_are_bit_identical() {
    let w = Workload {
        n: 24,
        horizon: 60.0,
        churn: true,
        seed: 1234,
    };
    let mut sim = w.build();
    let mut old = w.build_legacy();
    assert_traces_identical(
        w.horizon,
        2.0,
        |t| {
            sim.run_until(at(t));
            sim.logical_snapshot()
        },
        |t| {
            old.run_until(at(t));
            old.logical_snapshot()
        },
    );
    assert_eq!(
        *sim.stats(),
        *old.stats(),
        "execution counters must match event-for-event"
    );
    // The workload must have exercised the interesting paths: churned
    // topology, dropped messages, stale discoveries.
    assert!(sim.stats().topology_events > 0);
    assert!(sim.stats().total_dropped() > 0);
}

#[test]
fn e2_merge_traces_are_bit_identical() {
    let n = 24;
    let model = ModelParams::new(0.05, 1.0, 2.0);
    let params = AlgoParams::with_minimal_b0(model, n, 0.5);
    let t_bridge = scenario::t_bridge_for_skew(model, 40.0);
    let m = scenario::merge(n, model, t_bridge);
    let horizon = t_bridge + params.w() + 50.0;

    let mut sim = SimBuilder::new(model, m.schedule.clone())
        .clocks(m.clocks.clone())
        .delay(DelayStrategy::Max)
        .seed(9)
        .build_with(|_| GradientNode::new(params));
    let mut old = LegacySimBuilder::new(model, m.schedule.clone())
        .clocks(m.clocks.clone())
        .delay(DelayStrategy::Max)
        .seed(9)
        .build_with(|_| GradientNode::new(params));

    let bridge = m.bridge;
    assert_traces_identical(
        horizon,
        2.5,
        |t| {
            sim.run_until(at(t));
            sim.logical_snapshot()
        },
        |t| {
            old.run_until(at(t));
            old.logical_snapshot()
        },
    );
    assert_eq!(*sim.stats(), *old.stats());
    // Identical traces imply identical bridge-skew decay curves; spot-check
    // the headline E2 quantity explicitly.
    let skew_new = (sim.logical(bridge.lo()) - sim.logical(bridge.hi())).abs();
    let skew_old = (old.logical(bridge.lo()) - old.logical(bridge.hi())).abs();
    assert!(skew_new.to_bits() == skew_old.to_bits());
}

#[test]
fn random_delay_traces_are_bit_identical() {
    // The benchmark workload uses Max delays (the E1 setting); this variant
    // keeps the random-delay RNG path under differential coverage.
    let w = Workload {
        n: 20,
        horizon: 50.0,
        churn: true,
        seed: 555,
    };
    let params = w.params();
    let mut sim = SimBuilder::new(w.model(), w.schedule())
        .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
        .seed(w.seed)
        .build_with(|_| GradientNode::new(params));
    let mut old = LegacySimBuilder::new(w.model(), w.schedule())
        .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
        .seed(w.seed)
        .build_with(|_| GradientNode::new(params));
    assert_traces_identical(
        w.horizon,
        1.5,
        |t| {
            sim.run_until(at(t));
            sim.logical_snapshot()
        },
        |t| {
            old.run_until(at(t));
            old.logical_snapshot()
        },
    );
    assert_eq!(*sim.stats(), *old.stats());
    assert!(sim.stats().messages_delivered > 0);
}

#[test]
fn per_event_step_matches_batched_run_until() {
    // `Simulator::step` (no batching) and `run_until` (batched) must agree
    // with each other too: drive one copy by single steps.
    let w = Workload {
        n: 12,
        horizon: 30.0,
        churn: true,
        seed: 77,
    };
    let mut batched = w.build();
    let mut stepped = w.build();
    batched.run_until(at(w.horizon));
    while let Some(t) = {
        // Step until the queue is exhausted up to the horizon.
        let more = stepped.step();
        more.then(|| stepped.now())
    } {
        if t > at(w.horizon) {
            break;
        }
    }
    // Align the query instant, then compare.
    let final_t = at(w.horizon.max(stepped.now().seconds()));
    batched.run_until(final_t);
    stepped.run_until(final_t);
    for (x, y) in batched
        .logical_snapshot()
        .iter()
        .zip(stepped.logical_snapshot())
    {
        assert!(x.to_bits() == y.to_bits());
    }
}
