//! Compact-plane equivalence: eviction sweeps must be *bit-invisible*.
//! Running a workload with quiescent nodes packed into the cold tier at
//! deterministic boundaries must produce the same logical-clock bits at
//! every checkpoint and the same execution counters as the identical run
//! that never evicts — at every thread count. The sweeps ride on the
//! shared budget table and idle parking (the other two compact-plane
//! legs), so these pins cover the full PR 8 stack: table lookups
//! reproduce the exact curve, parking stops no protocol-visible tick,
//! and pack/rehydrate round-trips every byte of automaton state.
//!
//! The churn builders keep a connected backbone, so no backbone node
//! ever isolates; eviction is exercised by overlaying E14-style
//! *visitors* — extra nodes hanging off the backbone by one edge that
//! departs mid-run (every even visitor later returns, forcing a
//! rehydration on contact).

use gcs_bench::engine_bench::Workload;
use gcs_clocks::time::at;
use gcs_clocks::DriftModel;
use gcs_core::{AlgoParams, GradientNode, GradientShared};
use gcs_net::schedule::{add_at, remove_at};
use gcs_net::{churn, generators, Edge, ScheduleSource, TopologySchedule};
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const THREAD_COUNTS: [usize; 2] = [1, 8];
const VISITORS: usize = 16;

/// Appends `VISITORS` visitor nodes to `base`: visitor `i` starts
/// attached to backbone node `(7·i) mod n`, departs at `8 + i/2`
/// seconds, and — when `i` is even — reattaches at `26 + i/4` seconds.
/// Departed visitors park, quiesce, and become evictable; returning
/// ones must rehydrate on the discovery touch.
fn with_visitors(base: &TopologySchedule) -> TopologySchedule {
    let n = base.n() + VISITORS;
    let mut initial: Vec<Edge> = base.initial_edges().collect();
    let mut events = base.events().to_vec();
    for i in 0..VISITORS {
        let e = Edge::between(base.n() + i, (7 * i) % base.n());
        initial.push(e);
        events.push(remove_at(8.0 + i as f64 * 0.5, e));
        if i % 2 == 0 {
            events.push(add_at(26.0 + i as f64 * 0.25, e));
        }
    }
    TopologySchedule::new(n, initial, events)
}

/// Runs `evicting` with a cold-tier sweep at every checkpoint and
/// `flat` without any, comparing logical bits at each boundary and the
/// full counter set at the horizon. Eviction totals live on the engine
/// (not in `SimStats`), so counter equality is exact.
fn run_and_compare(
    mut evicting: Simulator<GradientNode>,
    mut flat: Simulator<GradientNode>,
    horizon: f64,
    step: f64,
) {
    let mut t = 0.0;
    while t < horizon {
        t = (t + step).min(horizon);
        evicting.run_until(at(t));
        evicting.evict_quiescent();
        flat.run_until(at(t));
        for (i, (x, y)) in flat
            .logical_snapshot()
            .iter()
            .zip(evicting.logical_snapshot())
            .enumerate()
        {
            assert!(
                x.to_bits() == y.to_bits(),
                "t={t}: node {i} diverged: evicting {y:?} vs flat {x:?}"
            );
        }
    }
    assert_eq!(evicting.stats(), flat.stats(), "counters diverged");
    assert!(
        evicting.evictions() > 0,
        "the sweep never packed a node — the pin is vacuous"
    );
    assert!(
        evicting.rehydrations() > 0,
        "no evicted node was ever touched again — rehydration is unexercised"
    );
    assert_eq!(flat.evictions(), 0, "the flat run must never evict");
}

/// E1-style churn (the engine-bench workload schedule: path backbone
/// plus flapping chords) with the visitor overlay, pinned at test width.
#[test]
fn e1_churn_eviction_sweeps_bit_identical() {
    let w = Workload {
        n: 80,
        horizon: 40.0,
        churn: true,
        seed: 77,
        threads: 1,
    };
    let schedule = with_visitors(&w.schedule());
    let n = schedule.n();
    let shared = Arc::new(
        GradientShared::new(AlgoParams::with_minimal_b0(w.model(), n, 0.5)).with_idle_parking(true),
    );
    let mk = |threads: usize| {
        SimBuilder::topology(w.model(), ScheduleSource::new(schedule.clone()))
            .delay(DelayStrategy::Max)
            .seed(w.seed)
            .threads(threads)
            .build_with(|_| GradientNode::with_shared(shared.clone()))
    };
    for threads in THREAD_COUNTS {
        run_and_compare(mk(threads), mk(threads), w.horizon, 2.0);
    }
}

/// The E13 churn-walk combination — multi-segment random-walk drift over
/// a churning path — exercises eviction against the lazy clock plane:
/// packing a node drops its drift cursor, and the snapshot/rehydrate
/// paths must rebuild it bit-exactly.
#[test]
fn e13_churn_walk_eviction_sweeps_bit_identical() {
    let (n, horizon, seed) = (80usize, 40.0, 77u64);
    let model = ModelParams::new(0.01, 1.0, 2.0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x000c_4e1d);
    let schedule = with_visitors(&churn::random_churn(
        n,
        generators::path(n),
        n / 4,
        (6.0, 12.0),
        (2.0, 4.0),
        horizon,
        &mut rng,
    ));
    let total = schedule.n();
    let shared = Arc::new(
        GradientShared::new(AlgoParams::with_minimal_b0(model, total, 0.5)).with_idle_parking(true),
    );
    let mk = |threads: usize| {
        SimBuilder::topology(model, ScheduleSource::new(schedule.clone()))
            .drift_model(DriftModel::RandomWalk { step: 3.0 }, horizon)
            .delay(DelayStrategy::Max)
            .seed(seed)
            .threads(threads)
            .build_with(|_| GradientNode::with_shared(shared.clone()))
    };
    for threads in THREAD_COUNTS {
        run_and_compare(mk(threads), mk(threads), horizon, 2.0);
    }
}

/// The eviction census: a packed node frees its hot heap bytes (they
/// move into the cold tier), the logical snapshot still reads it
/// correctly while cold, and touching it again restores the identical
/// hot state.
#[test]
fn eviction_census_frees_hot_bytes_and_snapshot_survives() {
    let (n, horizon, seed) = (64usize, 40.0, 5u64);
    let model = ModelParams::new(0.01, 1.0, 2.0);
    let schedule = with_visitors(&TopologySchedule::static_graph(n, generators::path(n)));
    let total = schedule.n();
    let shared = Arc::new(
        GradientShared::new(AlgoParams::with_minimal_b0(model, total, 0.5)).with_idle_parking(true),
    );
    let mk = || {
        SimBuilder::topology(model, ScheduleSource::new(schedule.clone()))
            .delay(DelayStrategy::Max)
            .seed(seed)
            .threads(1)
            .build_with(|_| GradientNode::with_shared(shared.clone()))
    };
    let mut sim = mk();
    // By t = 22 every visitor has departed (last removal at 15.5),
    // parked, and shed its armed timers; none has returned yet (first
    // re-add at 26).
    sim.run_until(at(22.0));
    let before_planes = sim.plane_bytes();
    let before_snapshot = sim.logical_snapshot();
    let evicted = sim.evict_quiescent();
    assert_eq!(evicted, VISITORS, "every departed visitor must pack");
    let after_planes = sim.plane_bytes();
    assert!(
        after_planes.automaton_hot < before_planes.automaton_hot,
        "packing must free hot bytes ({} -> {})",
        before_planes.automaton_hot,
        after_planes.automaton_hot
    );
    assert!(
        after_planes.automaton_cold > 0,
        "packed bytes must show up in the cold plane"
    );
    assert_eq!(sim.cold_nodes(), evicted, "census disagrees with sweep");
    assert!(sim.cold_bytes() > 0);
    // The snapshot reads cold nodes from their inline scalars — packing
    // must not move a single bit of any logical value.
    for (i, (x, y)) in before_snapshot
        .iter()
        .zip(sim.logical_snapshot())
        .enumerate()
    {
        assert!(
            x.to_bits() == y.to_bits(),
            "node {i} moved while being packed: {x:?} -> {y:?}"
        );
    }
    // Running on rehydrates the even visitors as they reattach; the
    // horizon state must match the never-evicted twin bit for bit.
    sim.run_until(at(horizon));
    assert_eq!(
        sim.rehydrations() as usize,
        VISITORS / 2,
        "every returning visitor must rehydrate on contact"
    );
    let mut flat = mk();
    flat.run_until(at(horizon));
    assert_eq!(sim.stats(), flat.stats());
    for (x, y) in flat.logical_snapshot().iter().zip(sim.logical_snapshot()) {
        assert!(x.to_bits() == y.to_bits(), "rehydrated state diverged");
    }
}
