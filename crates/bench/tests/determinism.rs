//! Determinism regression tests: the parallel dispatcher must be
//! *trace-identical* across worker counts.
//!
//! "Identical" is the strongest possible reading — bit-equal `f64`
//! logical clocks at every sample instant, equal execution counters, and
//! equal whole `ScenarioReport`s — because the sharded dispatch changes
//! scheduling, not semantics: events of one instant are split at topology
//! barriers, owner-exclusive state is only ever touched by the owner's
//! events in their queue order, random draws come from per-node streams,
//! and emitted events merge back into the wheel in a canonical
//! `(trigger seq, emission idx)` order. Any divergence between thread
//! counts is a bug in the dispatcher, not tolerance noise.
//!
//! The workloads are the two experiments named in the issue: E1 (global
//! skew on a path, with churn) and E2 (cluster merge / dynamic local skew
//! decay), both under a fixed seed, at `n` large enough that segments
//! exceed the parallel threshold and real worker threads run.

use gcs_bench::engine_bench::Workload;
use gcs_bench::scenario::{self, Scenario};
use gcs_bench::{e1_global_skew, e2_local_skew};
use gcs_clocks::time::at;
use gcs_clocks::{DriftModel, ScheduleDrift};
use gcs_core::{AlgoParams, GradientNode};
use gcs_net::churn::ChurnSource;
use gcs_net::{generators, ScheduleSource};
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder, Simulator};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn e1_churn_traces_bit_identical_across_thread_counts() {
    // n = 96 makes same-instant delivery fan-in wide enough to cross the
    // dispatcher's parallel threshold, so worker threads genuinely run.
    let w = Workload {
        n: 96,
        horizon: 40.0,
        churn: true,
        seed: 1234,
        threads: 1,
    };
    let mut sims: Vec<Simulator<GradientNode>> = THREAD_COUNTS
        .iter()
        .map(|&t| w.with_threads(t).build())
        .collect();
    let mut t = 0.0;
    while t < w.horizon {
        t = (t + 2.0).min(w.horizon);
        let mut reference: Option<Vec<f64>> = None;
        for (sim, &threads) in sims.iter_mut().zip(&THREAD_COUNTS) {
            sim.run_until(at(t));
            let snap = sim.logical_snapshot();
            match &reference {
                None => reference = Some(snap),
                Some(r) => {
                    for (i, (x, y)) in r.iter().zip(&snap).enumerate() {
                        assert!(
                            x.to_bits() == y.to_bits(),
                            "t={t}: node {i} diverged at {threads} threads: {y:?} vs serial {x:?}"
                        );
                    }
                }
            }
        }
    }
    let reference_stats = *sims[0].stats();
    for (sim, &threads) in sims.iter().zip(&THREAD_COUNTS) {
        assert_eq!(
            *sim.stats(),
            reference_stats,
            "counters diverged at {threads} threads"
        );
    }
    // The workload must have exercised the interesting paths: churned
    // topology, dropped messages, stale discoveries.
    assert!(reference_stats.topology_events > 0);
    assert!(reference_stats.total_dropped() > 0);
}

#[test]
fn e2_merge_traces_bit_identical_across_thread_counts() {
    let n = 96;
    let model = ModelParams::new(0.05, 1.0, 2.0);
    let params = AlgoParams::with_minimal_b0(model, n, 0.5);
    let t_bridge = scenario::t_bridge_for_skew(model, 40.0);
    let m = scenario::merge(n, model, t_bridge);
    let horizon = t_bridge + params.w() + 50.0;

    let mut sims: Vec<Simulator<GradientNode>> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            SimBuilder::topology(model, ScheduleSource::new(m.schedule.clone()))
                .drift(ScheduleDrift::new(m.clocks.clone()))
                .delay(DelayStrategy::Max)
                .seed(9)
                .threads(threads)
                .build_with(|_| GradientNode::new(params))
        })
        .collect();
    let mut t = 0.0;
    while t < horizon {
        t = (t + 5.0).min(horizon);
        let mut reference: Option<Vec<f64>> = None;
        for sim in sims.iter_mut() {
            sim.run_until(at(t));
            let snap = sim.logical_snapshot();
            match &reference {
                None => reference = Some(snap),
                Some(r) => {
                    for (x, y) in r.iter().zip(&snap) {
                        assert!(x.to_bits() == y.to_bits());
                    }
                }
            }
        }
    }
    for sim in &sims[1..] {
        assert_eq!(*sim.stats(), *sims[0].stats());
    }
    // Identical traces imply identical bridge-skew decay; spot-check the
    // headline E2 quantity explicitly.
    let skews: Vec<f64> = sims
        .iter()
        .map(|s| (s.logical(m.bridge.lo()) - s.logical(m.bridge.hi())).abs())
        .collect();
    assert!(skews.iter().all(|s| s.to_bits() == skews[0].to_bits()));
}

#[test]
fn scenario_reports_identical_across_thread_counts() {
    // Whole reports — tables, notes, every CSV cell — must match, because
    // they are pure functions of the traces.
    let e1_reports: Vec<_> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            e1_global_skew::Experiment {
                config: e1_global_skew::Config {
                    ns: vec![8, 16],
                    threads: Some(t),
                    ..Default::default()
                },
            }
            .run_scenario()
        })
        .collect();
    assert_eq!(e1_reports[0], e1_reports[1], "E1 report diverged at 2t");
    assert_eq!(e1_reports[0], e1_reports[2], "E1 report diverged at 8t");

    let e2_reports: Vec<_> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            e2_local_skew::Experiment {
                config: e2_local_skew::Config {
                    n: 24,
                    target_skew: 40.0,
                    windows: 1.0,
                    threads: Some(t),
                    ..Default::default()
                },
            }
            .run_scenario()
        })
        .collect();
    assert_eq!(e2_reports[0], e2_reports[1], "E2 report diverged at 2t");
    assert_eq!(e2_reports[0], e2_reports[2], "E2 report diverged at 8t");
    assert!(!e1_reports[0].series.is_empty() && !e2_reports[0].series.is_empty());
}

#[test]
fn per_event_step_matches_parallel_run_until() {
    // `Simulator::step` (strictly serial, one event at a time) and the
    // parallel `run_until` must agree too: same dispatch core, same
    // canonical effect order.
    let w = Workload {
        n: 72,
        horizon: 30.0,
        churn: true,
        seed: 77,
        threads: 1,
    };
    let mut batched = w.with_threads(8).build();
    let mut stepped = w.build();
    batched.run_until(at(w.horizon));
    while let Some(t) = {
        let more = stepped.step();
        more.then(|| stepped.now())
    } {
        if t > at(w.horizon) {
            break;
        }
    }
    // Align the query instant, then compare.
    let final_t = at(w.horizon.max(stepped.now().seconds()));
    batched.run_until(final_t);
    stepped.run_until(final_t);
    for (x, y) in batched
        .logical_snapshot()
        .iter()
        .zip(stepped.logical_snapshot())
    {
        assert!(x.to_bits() == y.to_bits());
    }
}

#[test]
fn random_delay_traces_bit_identical_across_thread_counts() {
    // Per-node streams are what keep *randomized* delay adversaries
    // thread-count invariant; pin that separately from the Max-delay runs.
    let w = Workload {
        n: 80,
        horizon: 25.0,
        churn: true,
        seed: 555,
        threads: 1,
    };
    let params = w.params();
    let mut sims: Vec<Simulator<GradientNode>> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            SimBuilder::topology(w.model(), ScheduleSource::new(w.schedule()))
                .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
                .seed(w.seed)
                .threads(threads)
                .build_with(|_| GradientNode::new(params))
        })
        .collect();
    let mut t = 0.0;
    while t < w.horizon {
        t = (t + 1.5).min(w.horizon);
        let mut reference: Option<Vec<f64>> = None;
        for sim in sims.iter_mut() {
            sim.run_until(at(t));
            let snap = sim.logical_snapshot();
            match &reference {
                None => reference = Some(snap),
                Some(r) => {
                    for (x, y) in r.iter().zip(&snap) {
                        assert!(x.to_bits() == y.to_bits());
                    }
                }
            }
        }
    }
    for sim in &sims[1..] {
        assert_eq!(*sim.stats(), *sims[0].stats());
    }
    assert!(sims[0].stats().messages_delivered > 0);
}

#[test]
fn e13_churn_walk_traces_bit_identical_across_threads_and_backends() {
    // The E13 "churn-walk" family (lazily pulled `ChurnSource` chords +
    // random-walk drift) keeps the topology batch path warm for the whole
    // run. Pin that the persistent pool, the retained
    // fork/join backend, and every thread count agree bit-for-bit —
    // including the batch counters, which are trace-relevant and part of
    // `SimStats` equality.
    let n = 64;
    let horizon = 6.0;
    let model = gcs_bench::default_model();
    let params = AlgoParams::with_minimal_b0(model, n, 0.5);
    let build = |threads: usize, pool: bool| {
        let source = ChurnSource::new(
            n,
            generators::path(n),
            n / 4,
            (0.3 * horizon, 0.6 * horizon),
            (0.1 * horizon, 0.2 * horizon),
            horizon,
            0xc4e1d,
        );
        SimBuilder::topology(model, source)
            .drift_model(
                DriftModel::RandomWalk {
                    step: horizon / 4.0,
                },
                horizon,
            )
            .delay(DelayStrategy::Max)
            .seed(4242)
            .threads(threads)
            .persistent_pool(pool)
            .build_with(|_| GradientNode::new(params))
    };
    let mut sims = [
        build(1, true),
        build(2, true),
        build(8, true),
        build(8, false),
    ];
    let labels = ["1t/pool", "2t/pool", "8t/pool", "8t/forkjoin"];
    let mut t = 0.0;
    while t < horizon {
        t = (t + 1.0_f64).min(horizon);
        let mut reference: Option<Vec<f64>> = None;
        for (sim, label) in sims.iter_mut().zip(labels) {
            sim.run_until(at(t));
            let snap = sim.logical_snapshot();
            match &reference {
                None => reference = Some(snap),
                Some(r) => {
                    for (i, (x, y)) in r.iter().zip(&snap).enumerate() {
                        assert!(
                            x.to_bits() == y.to_bits(),
                            "t={t}: node {i} diverged under {label}: {y:?} vs {x:?}"
                        );
                    }
                }
            }
        }
    }
    let reference_stats = *sims[0].stats();
    for (sim, label) in sims.iter().zip(labels) {
        assert_eq!(*sim.stats(), reference_stats, "counters diverged: {label}");
    }
    // The batch counters are trace-relevant (compared above via `SimStats`
    // equality); check the workload actually exercised the batch path.
    // Churn-walk flap times are drawn from continuous ranges, so its
    // instants are width-1 batches — the wide-batch determinism pin (many
    // link changes sharing one instant) lives in `crates/sim/tests/pool.rs`
    // with a scheduled chord-burst topology.
    assert!(reference_stats.topology_batches > 0);
    assert!(reference_stats.topology_events >= reference_stats.topology_batches);
}
