//! Algorithm-level microbenchmarks: the `on_receive` + `AdjustClock` hot
//! path of Algorithm 2 at varying neighborhood sizes, and the baseline for
//! comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gcs_clocks::Time;
use gcs_core::baseline::MaxSyncNode;
use gcs_core::{AlgoParams, GradientNode};
use gcs_net::{node, Edge};
use gcs_sim::{Automaton, Context, LinkChange, LinkChangeKind, Message, ModelParams, TimerKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn params(n: usize) -> AlgoParams {
    AlgoParams::with_minimal_b0(ModelParams::new(0.01, 1.0, 2.0), n, 0.5)
}

/// Preloads a gradient node with `deg` Γ-neighbors.
fn loaded_node(deg: usize) -> GradientNode {
    let mut gn = GradientNode::new(params(deg + 2));
    let mut actions = Vec::new();
    let mut rng = StdRng::seed_from_u64(0);
    for i in 1..=deg {
        let mut ctx = Context::new(node(0), Time::new(1.0), 1.0, &mut actions, &mut rng);
        gn.on_receive(
            &mut ctx,
            node(i),
            Message {
                logical: 1.0,
                max_estimate: 1.0,
            },
        );
        actions.clear();
    }
    gn
}

fn bench_receive_adjust(c: &mut Criterion) {
    let mut group = c.benchmark_group("gradient_on_receive");
    for deg in [2usize, 8, 32] {
        let mut gn = loaded_node(deg);
        let mut actions = Vec::with_capacity(4);
        let mut rng = StdRng::seed_from_u64(0);
        let mut hw = 10.0;
        group.bench_function(format!("deg{deg}"), |b| {
            b.iter(|| {
                hw += 0.01;
                actions.clear();
                let mut ctx = Context::new(node(0), Time::new(hw), hw, &mut actions, &mut rng);
                gn.on_receive(
                    &mut ctx,
                    node(1),
                    Message {
                        logical: black_box(hw - 0.5),
                        max_estimate: black_box(hw + 0.5),
                    },
                );
                black_box(gn.logical_clock(hw))
            })
        });
    }
    group.finish();
}

fn bench_tick_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("gradient_tick");
    for deg in [2usize, 8, 32] {
        let mut gn = loaded_node(deg);
        let mut actions = Vec::with_capacity(deg + 2);
        let mut rng = StdRng::seed_from_u64(0);
        let mut hw = 10.0;
        group.bench_function(format!("deg{deg}"), |b| {
            b.iter(|| {
                hw += 0.5;
                actions.clear();
                let mut ctx = Context::new(node(0), Time::new(hw), hw, &mut actions, &mut rng);
                gn.on_alarm(&mut ctx, TimerKind::Tick);
                black_box(actions.len())
            })
        });
    }
    group.finish();
}

fn bench_max_sync_receive(c: &mut Criterion) {
    let mut ms = MaxSyncNode::new(0.5);
    let mut actions = Vec::new();
    let mut rng = StdRng::seed_from_u64(0);
    {
        let mut ctx = Context::new(node(0), Time::new(0.5), 0.5, &mut actions, &mut rng);
        ms.on_discover(
            &mut ctx,
            LinkChange {
                kind: LinkChangeKind::Added,
                edge: Edge::between(0, 1),
            },
        );
    }
    let mut hw = 1.0;
    c.bench_function("max_sync_on_receive", |b| {
        b.iter(|| {
            hw += 0.01;
            actions.clear();
            let mut ctx = Context::new(node(0), Time::new(hw), hw, &mut actions, &mut rng);
            ms.on_receive(
                &mut ctx,
                node(1),
                Message {
                    logical: black_box(hw),
                    max_estimate: black_box(hw + 0.2),
                },
            );
            black_box(ms.logical_clock(hw))
        })
    });
}

criterion_group!(
    benches,
    bench_receive_adjust,
    bench_tick_broadcast,
    bench_max_sync_receive
);
criterion_main!(benches);
