//! Microbenchmarks for the clock substrate: rate-schedule evaluation and
//! inversion (the subjective-timer hot path) and budget evaluation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gcs_clocks::time::at;
use gcs_clocks::{
    drift, ClockVar, DriftModel, DriftSource, ModelDrift, RateSchedule, ScheduleDrift,
};
use gcs_core::budget::aging_budget;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn big_schedule(segments: usize) -> RateSchedule {
    let mut rng = StdRng::seed_from_u64(1);
    let mut pairs = Vec::with_capacity(segments);
    let mut t = 0.0;
    for i in 0..segments {
        if i > 0 {
            t += rng.gen_range(0.5..5.0);
        }
        pairs.push((t, 1.0 + rng.gen_range(-0.01..0.01)));
    }
    RateSchedule::from_pairs(&pairs)
}

fn bench_schedule_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("rate_schedule");
    for segments in [4usize, 64, 1024] {
        let sched = big_schedule(segments);
        let horizon = sched.segments().last().unwrap().start.seconds().max(1.0);
        group.bench_function(format!("value_at/{segments}seg"), |b| {
            let mut t = 0.0;
            b.iter(|| {
                t = (t + 13.7) % horizon;
                black_box(sched.value_at(at(t)))
            })
        });
        group.bench_function(format!("time_at_value/{segments}seg"), |b| {
            let max_h = sched.value_at(at(horizon));
            let mut h = 0.0;
            b.iter(|| {
                h = (h + 11.3) % max_h;
                black_box(sched.time_at_value(h))
            })
        });
    }
    group.finish();
}

/// Rate-evaluation throughput through the lazy drift plane: a forward
/// cursor streaming over a multi-segment random-walk adversary, against
/// binary-searched `value_at` on the materialized schedule (served via
/// the `ScheduleDrift` adapter, the engine's eager path) and against the
/// cold `read_at` walk. This is the engine's per-instant clock read at
/// E13 scale, where the cursor must hold its own against the
/// materialized plane it replaced.
fn bench_drift_plane(c: &mut Criterion) {
    let mut group = c.benchmark_group("drift_plane");
    for segments in [16usize, 256] {
        let step = 2.0;
        let horizon = step * segments as f64;
        let plane = ModelDrift::new(DriftModel::RandomWalk { step }, 0.01, horizon, 7);
        let adapter = ScheduleDrift::new(vec![plane.clock(0)]);
        // Forward streaming reads, re-initialized each wrap — the hot
        // path shape (monotone per-node query times).
        group.bench_function(format!("cursor_stream/{segments}seg"), |b| {
            let mut cursor = plane.init(0);
            let mut t = 0.0;
            b.iter(|| {
                t += 13.7;
                if t >= horizon {
                    t %= horizon;
                    cursor = plane.init(0);
                }
                black_box(plane.read(0, &mut cursor, at(t)))
            })
        });
        group.bench_function(format!("materialized_value_at/{segments}seg"), |b| {
            let mut t = 0.0;
            b.iter(|| {
                t = (t + 13.7) % horizon;
                black_box(adapter.read_at(0, at(t)))
            })
        });
        group.bench_function(format!("cold_read_at/{segments}seg"), |b| {
            let mut t = 0.0;
            b.iter(|| {
                t = (t + 13.7) % horizon;
                black_box(plane.read_at(0, at(t)))
            })
        });
    }
    group.finish();
}

fn bench_layered_beta(c: &mut Criterion) {
    c.bench_function("layered_beta_build", |b| {
        b.iter(|| black_box(drift::layered_beta(black_box(16), 0.01, 1.0)))
    });
}

fn bench_clockvar(c: &mut Criterion) {
    c.bench_function("clockvar_ops", |b| {
        let mut v = ClockVar::zeroed();
        let mut hw = 0.0;
        b.iter(|| {
            hw += 0.5;
            v.raise_to(hw + 1.0, hw);
            black_box(v.value(hw))
        })
    });
}

fn bench_budget(c: &mut Criterion) {
    c.bench_function("aging_budget_eval", |b| {
        let mut dt = 0.0;
        b.iter(|| {
            dt = (dt + 7.3) % 1000.0;
            black_box(aging_budget(black_box(dt), 20.0, 100.0, 0.01, 5.0))
        })
    });
}

criterion_group!(
    benches,
    bench_schedule_eval,
    bench_drift_plane,
    bench_layered_beta,
    bench_clockvar,
    bench_budget
);
criterion_main!(benches);
