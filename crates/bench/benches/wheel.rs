//! The packed event plane: push / pop / instant-drain throughput on
//! [`gcs_sim::TimeWheel`] under backlogs of 0, 4 096 and 262 144
//! pending events.
//!
//! Context for reading the numbers: before the compact event plane the
//! wheel stored one 56-byte `QueuedEvent` per pending event, found the
//! next non-empty bucket by linear probe over all 512 ring slots, and
//! sorted full payloads on every bucket drain. The packed plane stores a
//! 24-byte record per event (payloads live in per-class slab arenas),
//! skips empty buckets through a 512-bit occupancy bitmap, and sorts the
//! slim records only. The backlog axis is what separates the two: at
//! backlog 0 both designs do almost no work, while the 256k point is the
//! E13 churn-walk regime where record width and bucket probing dominate.
//! Compare `wheel_plane/*` means across the two designs on the same
//! machine; within one checkout the axis shows how throughput degrades
//! as the backlog grows.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gcs_clocks::time::at;
use gcs_net::node;
use gcs_sim::event::{EventPayload, TimerKind};
use gcs_sim::{Message, TimeWheel};

/// Events pushed / popped per timed routine call.
const OPS: usize = 4096;
/// Width of the mass-discovery instant drained by `pop_instant`.
const INSTANT_WIDTH: usize = 1024;
/// Backlog sizes: empty, a mid e12-style pull window, the e13
/// churn-walk regime.
const BACKLOGS: [usize; 3] = [0, 4096, 262_144];

/// A deliver/alarm payload mix, alternating so both slab lanes are hot.
fn payload(i: usize) -> EventPayload {
    if i.is_multiple_of(2) {
        EventPayload::Deliver {
            from: node(i % 977),
            to: node((i + 1) % 977),
            msg: Message {
                logical: i as f64,
                max_estimate: i as f64,
            },
            epoch: 1,
        }
    } else {
        EventPayload::Alarm {
            node: node(i % 977),
            kind: TimerKind::Tick,
            generation: 1,
        }
    }
}

/// A wheel holding `backlog` events spread from `t = 100 s` upward
/// (0.01 s apart — a mix of in-horizon ring buckets and overflow), so
/// the timed operations below always act in front of the backlog.
fn prefilled(backlog: usize) -> TimeWheel {
    let mut wheel = TimeWheel::new(0.25);
    for j in 0..backlog {
        wheel.push(at(100.0 + j as f64 * 0.01), payload(j));
    }
    wheel
}

fn bench_wheel_plane(c: &mut Criterion) {
    let mut group = c.benchmark_group("wheel_plane");
    // iter_batched re-runs the (untimed) prefill per sample; keep the
    // sample count moderate so the 256k setup does not dominate wall
    // time.
    group.sample_size(30);
    for backlog in BACKLOGS {
        group.throughput(Throughput::Elements(OPS as u64));
        group.bench_function(format!("push/backlog_{backlog}"), |b| {
            b.iter_batched(
                || prefilled(backlog),
                |mut wheel| {
                    for i in 0..OPS {
                        wheel.push(at(1.0 + i as f64 * 1e-3), payload(i));
                    }
                    wheel
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("pop/backlog_{backlog}"), |b| {
            b.iter_batched(
                || {
                    let mut wheel = prefilled(backlog);
                    // The events the routine pops, in front of the backlog.
                    for i in 0..OPS {
                        wheel.push(at(1.0 + i as f64 * 1e-3), payload(i));
                    }
                    wheel
                },
                |mut wheel| {
                    for _ in 0..OPS {
                        black_box(wheel.pop());
                    }
                    wheel
                },
                BatchSize::LargeInput,
            )
        });
        group.throughput(Throughput::Elements(INSTANT_WIDTH as u64));
        group.bench_function(format!("pop_instant/backlog_{backlog}"), |b| {
            b.iter_batched(
                || {
                    let mut wheel = prefilled(backlog);
                    // One mass-discovery-storm instant at the front.
                    for i in 0..INSTANT_WIDTH {
                        wheel.push(at(1.0), payload(i));
                    }
                    wheel
                },
                |mut wheel| {
                    let mut buf = Vec::with_capacity(INSTANT_WIDTH);
                    wheel.pop_instant(&mut buf);
                    black_box(buf.len());
                    wheel
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wheel_plane);
criterion_main!(benches);
