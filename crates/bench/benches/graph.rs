//! Microbenchmarks for the dynamic-graph substrate: generation, distance
//! computation, and T-interval connectivity verification.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gcs_clocks::time::at;
use gcs_clocks::Duration;
use gcs_net::{churn, connectivity, distance, generators, node, TopologySchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.bench_function("path_1024", |b| {
        b.iter(|| black_box(generators::path(1024)))
    });
    group.bench_function("grid_32x32", |b| {
        b.iter(|| black_box(generators::grid(32, 32)))
    });
    group.bench_function("two_chain_256", |b| {
        b.iter(|| black_box(generators::TwoChain::new(256).edges()))
    });
    group.finish();
}

fn bench_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance");
    let grid = generators::grid(32, 32);
    group.bench_function("bfs_grid_1024", |b| {
        b.iter(|| black_box(distance::bfs_distance(1024, grid.iter().copied(), node(0))))
    });
    let ring = generators::ring(512);
    group.bench_function("diameter_ring_512", |b| {
        b.iter(|| black_box(distance::diameter(512, ring.iter().copied())))
    });
    group.finish();
}

fn bench_connectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("connectivity");
    let n = 64;
    let star = churn::rotating_star(n, 12.0, 4.0, 400.0);
    group.bench_function("interval_check_rotating_star_64", |b| {
        b.iter(|| {
            black_box(connectivity::is_interval_connected(
                &star,
                Duration::new(3.0),
                at(400.0),
            ))
        })
    });
    let staggered = churn::staggered_ring(n, 8.0, 2.0, 5.0, 400.0);
    group.bench_function("interval_check_staggered_ring_64", |b| {
        b.iter(|| {
            black_box(connectivity::is_interval_connected(
                &staggered,
                Duration::new(2.0),
                at(400.0),
            ))
        })
    });
    let mut rng = StdRng::seed_from_u64(5);
    let edges = generators::gnp_connected(256, 0.05, &mut rng);
    let sched = TopologySchedule::static_graph(256, edges);
    group.bench_function("edges_at_static_256", |b| {
        b.iter(|| black_box(sched.edges_at(at(100.0)).len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generators,
    bench_distance,
    bench_connectivity
);
criterion_main!(benches);
