//! Dispatcher-overhead A/B: the persistent shard-resident worker pool
//! against the retained per-segment fork/join backend, and batched
//! sharded topology apply against the serial path.
//!
//! `segment_*` isolates per-segment dispatch cost: a timer-only automaton
//! whose instants are exactly one wide segment each, so one benchmark
//! iteration advances one segment and the measured time *is* the
//! per-segment cost (handler work is a few nanoseconds). The fork/join
//! backend pays two thread spawns + joins per segment; the pool pays two
//! channel round-trips. The PR 9 acceptance gate on a single-CPU host is
//! `segment_pool` at least 5x cheaper than `segment_forkjoin`.
//!
//! `topology_*` replays an E13-shaped instant — hundreds of link changes
//! sharing one time — through the batched sharded apply (pool backend)
//! and the serial apply (fork/join backend), measured in link-changes/s.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gcs_clocks::time::at;
use gcs_net::schedule::{add_at, remove_at};
use gcs_net::{generators, Edge, NodeId, ScheduleSource, TopologySchedule};
use gcs_sim::{
    Automaton, Context, LinkChange, Message, ModelParams, SimBuilder, Simulator, TimerKind,
};

fn model() -> ModelParams {
    ModelParams::new(0.01, 1.0, 2.0)
}

/// Re-arms its timer and does nothing else: every instant is one wide
/// all-nodes alarm segment with near-zero handler work.
struct Tick;

impl Automaton for Tick {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(0.5, TimerKind::Tick);
    }

    fn on_receive(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _msg: Message) {}

    fn on_discover(&mut self, _ctx: &mut Context<'_>, _change: LinkChange) {}

    fn on_alarm(&mut self, ctx: &mut Context<'_>, _kind: TimerKind) {
        ctx.set_timer(0.5, TimerKind::Tick);
    }

    fn logical_clock(&self, hw: f64) -> f64 {
        hw
    }
}

/// No timers, empty handlers: the run is topology + discovery only.
struct Inert;

impl Automaton for Inert {
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    fn on_receive(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _msg: Message) {}

    fn on_discover(&mut self, _ctx: &mut Context<'_>, _change: LinkChange) {}

    fn on_alarm(&mut self, _ctx: &mut Context<'_>, _kind: TimerKind) {}

    fn logical_clock(&self, hw: f64) -> f64 {
        hw
    }
}

fn bench_segment_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_overhead");
    // One alarm instant (= one parallel segment) per iteration.
    group.throughput(Throughput::Elements(1));
    // `segment_inline` (threads = 1, no parallel dispatch at all) is the
    // zero-overhead floor: overhead(backend) = backend − inline.
    for (label, threads, pool) in [
        ("segment_inline", 1, true),
        ("segment_forkjoin", 4, false),
        ("segment_pool", 4, true),
    ] {
        let schedule = TopologySchedule::static_graph(32, generators::ring(32));
        let mut sim = SimBuilder::topology(model(), ScheduleSource::new(schedule))
            .threads(threads)
            .par_threshold(1)
            .persistent_pool(pool)
            .build_with(|_| Tick);
        let mut t = 0.0;
        group.bench_function(label, |b| {
            b.iter(|| {
                t += 0.5;
                sim.run_until(at(t));
            })
        });
        if threads > 1 {
            assert!(sim.stats().segments_parallel > 0);
        }
    }
    group.finish();
}

const BURSTS: usize = 8;
const PER_BURST: usize = 512;

/// Ring of `n` plus `BURSTS` instants each carrying `PER_BURST` chord
/// changes at one shared time — the E13 flash-crowd shape.
fn burst_schedule(n: usize) -> TopologySchedule {
    let mut events = Vec::new();
    for b in 0..BURSTS {
        let t = 0.1 * (b + 1) as f64;
        for i in (0..2 * PER_BURST).step_by(2) {
            let chord = Edge::between(i, (i + 2) % n);
            events.push(if b % 2 == 0 {
                add_at(t, chord)
            } else {
                remove_at(t, chord)
            });
        }
    }
    TopologySchedule::new(n, generators::ring(n), events)
}

fn bench_topology_apply(c: &mut Criterion) {
    let n = 2048;
    let mut group = c.benchmark_group("dispatch_overhead");
    group.throughput(Throughput::Elements((BURSTS * PER_BURST) as u64));
    for (label, pool) in [("topology_serial", false), ("topology_batched", true)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    SimBuilder::topology(model(), ScheduleSource::new(burst_schedule(n)))
                        .threads(8)
                        .par_threshold(256)
                        .persistent_pool(pool)
                        .build_with(|_| Inert)
                },
                |mut sim: Simulator<Inert>| {
                    sim.run_until(at(1.0));
                    sim // defer the drop (pool join) out of the timing
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_segment_dispatch, bench_topology_apply);
criterion_main!(benches);
