//! Engine throughput: events per second on representative workloads.
//!
//! The `engine_e1_churn_n1024` group is the E1 workload (path, split
//! drift, max delays) with churn at `n = 1024`, swept over dispatcher
//! worker counts `threads ∈ {1, 2, 8}` — `threads = 1` is the batched
//! serial baseline every speedup is measured against (the frozen
//! pre-rewrite engine was deleted once its equivalence history had
//! accumulated). `run_all` records the same sweep, at the E11 scale
//! (`n = 65 536`), as `BENCH_engine.json`.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gcs_bench::engine_bench::Workload;
use gcs_clocks::time::at;
use gcs_clocks::DriftModel;
use gcs_core::{AlgoParams, GradientNode};
use gcs_net::{churn, generators, ScheduleSource, TopologySchedule};
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder, Simulator};

fn model() -> ModelParams {
    ModelParams::new(0.01, 1.0, 2.0)
}

fn build_ring(n: usize) -> Simulator<GradientNode> {
    let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
    SimBuilder::topology(
        model(),
        ScheduleSource::new(TopologySchedule::static_graph(n, generators::ring(n))),
    )
    .drift_model(DriftModel::SplitExtremes, 200.0)
    .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
    .seed(3)
    .build_with(|_| GradientNode::new(params))
}

fn bench_ring_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_ring");
    // Whole-simulation iterations are expensive; bound the bench budget.
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8));
    for n in [16usize, 64, 256] {
        // Count events once to report meaningful throughput.
        let mut probe = build_ring(n);
        probe.run_until(at(50.0));
        let events = probe.stats().events_processed;
        group.throughput(Throughput::Elements(events));
        group.bench_function(format!("n{n}_50s"), |b| {
            b.iter_batched(
                || build_ring(n),
                |mut sim| {
                    sim.run_until(at(50.0));
                    black_box(sim.stats().events_processed)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_churn_throughput(c: &mut Criterion) {
    let n = 32;
    let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
    let mut group = c.benchmark_group("engine_churn");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8));
    group.bench_function("rotating_star_32_100s", |b| {
        b.iter_batched(
            || {
                let schedule = churn::rotating_star(n, 12.0, 4.0, 100.0);
                SimBuilder::topology(model(), ScheduleSource::new(schedule))
                    .drift_model(DriftModel::SplitExtremes, 100.0)
                    .delay(DelayStrategy::Max)
                    .build_with(|_| GradientNode::new(params))
            },
            |mut sim| {
                sim.run_until(at(100.0));
                black_box(sim.stats().events_processed)
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_e1_churn_threads(c: &mut Criterion) {
    let w = Workload {
        n: 1024,
        horizon: 20.0,
        churn: true,
        seed: 42,
        threads: 1,
    };
    // Count events once so throughput is reported per event, not per run.
    let mut probe = w.build();
    probe.run_until(at(w.horizon));
    let events = probe.stats().events_processed;

    let mut group = c.benchmark_group("engine_e1_churn_n1024");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(10));
    group.throughput(Throughput::Elements(events));
    for threads in [1usize, 2, 8] {
        let wt = w.with_threads(threads);
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter_batched(
                || wt.build(),
                |mut sim| {
                    sim.run_until(at(wt.horizon));
                    black_box(sim.stats().events_processed)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ring_throughput,
    bench_churn_throughput,
    bench_e1_churn_threads
);
criterion_main!(benches);
