//! The compact automaton plane's budget path: the shared `B(·)` curve
//! table against the exact closed-form evaluation it reproduces
//! bit-for-bit on the quantized grid, and the cost of pulling a node out
//! of the cold tier to answer a budget query.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gcs_clocks::Time;
use gcs_core::{AlgoParams, GradientNode, GradientShared};
use gcs_net::node;
use gcs_sim::{Automaton, Context, Message, ModelParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn params(n: usize) -> AlgoParams {
    AlgoParams::with_minimal_b0(ModelParams::new(0.01, 1.0, 2.0), n, 0.5)
}

/// A gradient node on the shared plane with `deg` Γ-neighbors, plus the
/// plane it lives on.
fn loaded_node(deg: usize) -> (Arc<GradientShared>, GradientNode) {
    let shared = Arc::new(GradientShared::new(params(deg + 2)));
    let mut gn = GradientNode::with_shared(shared.clone());
    let mut actions = Vec::new();
    let mut rng = StdRng::seed_from_u64(0);
    for i in 1..=deg {
        let mut ctx = Context::new(node(0), Time::new(1.0), 1.0, &mut actions, &mut rng);
        gn.on_receive(
            &mut ctx,
            node(i),
            Message {
                logical: 1.0,
                max_estimate: 1.0,
            },
        );
        actions.clear();
    }
    (shared, gn)
}

fn bench_budget_plane(c: &mut Criterion) {
    let mut group = c.benchmark_group("budget_plane");
    let p = params(64);
    let shared = GradientShared::new(p);
    let table = shared.table();
    // On-grid ages: what every cold join stamp quantizes to, i.e. the
    // hot-path case the table exists for.
    let ages: Vec<f64> = (0..table.len())
        .map(|k| k as f64 * table.quantum())
        .collect();
    group.bench_function("table_lookup", |b| {
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 1) % ages.len();
            black_box(table.lookup(black_box(ages[k])).unwrap())
        })
    });
    group.bench_function("exact_unfloored", |b| {
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 1) % ages.len();
            black_box(p.budget_unfloored(black_box(ages[k])))
        })
    });
    // The slow path the cold tier trades for memory: unpack a packed
    // automaton blob into a fresh node and read a budget through it.
    let (plane, mut gn) = loaded_node(8);
    let mut blob = Vec::new();
    assert!(gn.pack_cold(&mut blob), "unweighted node must pack");
    group.bench_function("cold_rehydrate_and_read", |b| {
        b.iter(|| {
            let mut cold = GradientNode::with_shared(plane.clone());
            cold.unpack_cold(black_box(&blob));
            black_box(cold.budget_for(node(1), 1.5))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_budget_plane);
criterion_main!(benches);
