//! Flat per-neighbor state containers, indexed by [`NodeId`].
//!
//! Algorithm 2 touches its per-neighbor state (`Γ_u`, `Υ_u`, `L^v_u`,
//! `C^v_u`, edge weights) on **every** receive, tick and discovery — it is
//! the algorithm's hot data. The original implementation kept it in
//! `BTreeMap`/`BTreeSet`, which costs a pointer chase per node visited;
//! these containers store the same state as one compact entry array kept
//! **sorted by [`NodeId`]**:
//!
//! * membership and lookup are a binary search over the compact array —
//!   `O(log degree)`, and degree is tiny for the bounded-degree topologies
//!   the experiments run,
//! * iteration is cache-linear in ascending node id — exactly the order
//!   the old tree maps iterated, so deterministic traces (message emission
//!   order, blocking-neighbor selection) are preserved bit-for-bit,
//! * memory is `O(degree)` per node. An earlier revision kept an auxiliary
//!   dense `pos` index (`O(max neighbor id)` per node) for `O(1)` lookup;
//!   at the `n = 65 536` scale of E11 that costs `O(n²)` bytes across the
//!   network — gigabytes — for a lookup that a two-probe binary search
//!   over a few cache-resident entries already wins. The dense index is
//!   gone.
//!
//! Inserts and removals shift the compact tail — `O(degree)` — while the
//! per-event read path (the actual hot loop) stays branch-predictable
//! array walking.

use gcs_net::NodeId;

/// A map from [`NodeId`] to `T` backed by a compact entry array sorted by
/// node id. Iteration order is ascending node id.
#[derive(Clone, Debug, Default)]
pub struct FlatMap<T> {
    /// Compact, sorted by node id.
    entries: Vec<(NodeId, T)>,
}

impl<T> FlatMap<T> {
    /// An empty map.
    pub fn new() -> Self {
        FlatMap {
            entries: Vec::new(),
        }
    }

    #[inline]
    fn slot(&self, v: NodeId) -> Option<usize> {
        self.entries.binary_search_by_key(&v, |e| e.0).ok()
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the map holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if `v` has an entry.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.slot(v).is_some()
    }

    /// The entry for `v`, if present.
    #[inline]
    pub fn get(&self, v: NodeId) -> Option<&T> {
        self.slot(v).map(|i| &self.entries[i].1)
    }

    /// Mutable entry for `v`, if present.
    #[inline]
    pub fn get_mut(&mut self, v: NodeId) -> Option<&mut T> {
        match self.slot(v) {
            Some(i) => Some(&mut self.entries[i].1),
            None => None,
        }
    }

    /// Inserts or replaces the entry for `v`; returns the previous value.
    pub fn insert(&mut self, v: NodeId, value: T) -> Option<T> {
        match self.entries.binary_search_by_key(&v, |e| e.0) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(at) => {
                self.entries.insert(at, (v, value));
                None
            }
        }
    }

    /// Removes the entry for `v`, returning it if present.
    pub fn remove(&mut self, v: NodeId) -> Option<T> {
        let i = self.slot(v)?;
        let (_, value) = self.entries.remove(i);
        Some(value)
    }

    /// Entries in ascending node-id order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> {
        self.entries.iter().map(|(v, t)| (*v, t))
    }

    /// Node ids in ascending order.
    #[inline]
    pub fn keys(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|(v, _)| *v)
    }

    /// Heap bytes backing the entry array (plane accounting: this is the
    /// dominant per-node term the cold tier reclaims).
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(NodeId, T)>()
    }
}

/// A set of [`NodeId`]s with the same sorted compact layout as
/// [`FlatMap`]. Iteration order is ascending node id.
#[derive(Clone, Debug, Default)]
pub struct IdSet {
    items: Vec<NodeId>,
}

impl IdSet {
    /// An empty set.
    pub fn new() -> Self {
        IdSet { items: Vec::new() }
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True if `v` is a member.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.items.binary_search(&v).is_ok()
    }

    /// Adds `v`; returns true if it was newly inserted.
    pub fn insert(&mut self, v: NodeId) -> bool {
        match self.items.binary_search(&v) {
            Ok(_) => false,
            Err(at) => {
                self.items.insert(at, v);
                true
            }
        }
    }

    /// Removes `v`; returns true if it was a member.
    pub fn remove(&mut self, v: NodeId) -> bool {
        match self.items.binary_search(&v) {
            Ok(i) => {
                self.items.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Members in ascending node-id order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.items.iter().copied()
    }

    /// Heap bytes backing the member array (plane accounting).
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.items.capacity() * std::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_net::node;
    use std::collections::{BTreeMap, BTreeSet};

    #[test]
    fn map_insert_get_remove_roundtrip() {
        let mut m = FlatMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(node(5), "five"), None);
        assert_eq!(m.insert(node(2), "two"), None);
        assert_eq!(m.insert(node(9), "nine"), None);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(node(5)), Some(&"five"));
        assert_eq!(m.get(node(3)), None);
        assert!(m.contains(node(2)));
        assert_eq!(m.insert(node(5), "FIVE"), Some("five"));
        assert_eq!(m.remove(node(2)), Some("two"));
        assert_eq!(m.remove(node(2)), None);
        assert_eq!(m.keys().collect::<Vec<_>>(), vec![node(5), node(9)]);
    }

    #[test]
    fn map_iterates_in_sorted_order_like_btreemap() {
        let ids = [7usize, 1, 30, 4, 12, 0, 25];
        let mut flat = FlatMap::new();
        let mut tree = BTreeMap::new();
        for (rank, &i) in ids.iter().enumerate() {
            flat.insert(node(i), rank);
            tree.insert(node(i), rank);
        }
        let f: Vec<_> = flat.iter().map(|(v, &r)| (v, r)).collect();
        let t: Vec<_> = tree.iter().map(|(&v, &r)| (v, r)).collect();
        assert_eq!(f, t);
    }

    #[test]
    fn map_get_mut_updates_in_place() {
        let mut m = FlatMap::new();
        m.insert(node(3), 10);
        *m.get_mut(node(3)).unwrap() += 5;
        assert_eq!(m.get(node(3)), Some(&15));
        assert!(m.get_mut(node(4)).is_none());
    }

    #[test]
    fn map_survives_shifting_inserts_and_removals() {
        // Insert in descending order (worst shifting), then remove from the
        // middle and verify every remaining lookup.
        let mut m = FlatMap::new();
        for i in (0..20).rev() {
            m.insert(node(i), i * 100);
        }
        m.remove(node(10));
        m.remove(node(0));
        m.remove(node(19));
        for i in 0..20 {
            let expect = (![0, 10, 19].contains(&i)).then_some(i * 100);
            assert_eq!(m.get(node(i)).copied(), expect, "id {i}");
        }
        assert_eq!(m.len(), 17);
    }

    #[test]
    fn map_memory_is_degree_bound_for_huge_ids() {
        // A node whose only neighbor has a huge id must not allocate
        // proportionally to that id (the n = 65k scale requirement).
        let mut m = FlatMap::new();
        m.insert(node(65_535), 1u8);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(node(65_535)), Some(&1));
        assert_eq!(m.get(node(65_534)), None);
    }

    #[test]
    fn set_matches_btreeset_semantics() {
        let ops = [3usize, 1, 4, 1, 5, 9, 2, 6, 5, 3];
        let mut flat = IdSet::new();
        let mut tree = BTreeSet::new();
        for &i in &ops {
            assert_eq!(flat.insert(node(i)), tree.insert(node(i)), "insert {i}");
        }
        assert_eq!(
            flat.iter().collect::<Vec<_>>(),
            tree.iter().copied().collect::<Vec<_>>()
        );
        for &i in &[1usize, 7, 5] {
            assert_eq!(flat.remove(node(i)), tree.remove(&node(i)), "remove {i}");
        }
        assert_eq!(
            flat.iter().collect::<Vec<_>>(),
            tree.iter().copied().collect::<Vec<_>>()
        );
        assert_eq!(flat.len(), tree.len());
        assert!(!flat.is_empty());
    }
}
