//! The budget function `B` of Section 5, in isolation.
//!
//! ```text
//! B(Δt) = max{ B0,  5·G(n) + (1+ρ)τ + B0 − B0/((1+ρ)τ) · Δt }
//! ```
//!
//! `Δt` is the *subjective* age of the edge's `Γ`-membership
//! (`H_u − C^v_u`). The initial value `B(0) = 5G(n) + (1+ρ)τ + B0` exceeds
//! the global skew bound, so a fresh edge imposes no effective constraint;
//! the budget then decays linearly with slope `B0/((1+ρ)τ)` per subjective
//! time unit until it reaches the floor `B0`.

/// Evaluates the aging budget.
///
/// * `dt` — subjective age `H_u − C^v_u` (clamped at 0 from below),
/// * `b0` — the stable budget floor `B0`,
/// * `g` — the global skew bound `G(n)`,
/// * `rho` — drift bound,
/// * `tau` — the staleness bound `τ`.
///
/// This sits on the per-event hot path (`AdjustClock` evaluates it once
/// per neighbor, over the flat entries of
/// [`crate::neighbors::FlatMap`]), hence the `#[inline]`.
#[inline]
pub fn aging_budget(dt: f64, b0: f64, g: f64, rho: f64, tau: f64) -> f64 {
    debug_assert!(dt >= -1e-9, "edge age must be non-negative, got {dt}");
    let t1 = (1.0 + rho) * tau;
    let linear = 5.0 * g + t1 + b0 - b0 / t1 * dt.max(0.0);
    linear.max(b0)
}

/// The subjective age at which the budget first equals `b0`.
pub fn settle_age(b0: f64, g: f64, rho: f64, tau: f64) -> f64 {
    let t1 = (1.0 + rho) * tau;
    (5.0 * g + t1) * t1 / b0
}

/// A shared sampling of a budget curve on a uniform grid of subjective
/// ages — the one `B(·)` table behind the compact automaton plane.
///
/// Storing the aging budget per neighbor costs two `f64`s per edge; at
/// `n = 2^23` that term dominates memory. Instead, every node holding an
/// `Arc` of one `BudgetTable` resolves an edge age `Δt` against the
/// shared curve:
///
/// * **on-grid** ages — `Δt == k·q` *bit-for-bit* for the grid quantum
///   `q` and some `k < len` — read `values[k]`, which was computed by
///   evaluating the *exact same* budget expression at the *exact same*
///   float `k·q`, so a table hit reproduces the direct evaluation
///   bit-for-bit by construction (the exact-float contract; pinned by
///   tests here and in `gradient`),
/// * **off-grid** ages fall back to the exact evaluation path
///   ([`lookup`](Self::lookup) returns `None` and the caller evaluates
///   directly), so oracle and model-checker results are unchanged for
///   every input.
///
/// The grid quantum is chosen as a fraction of the tick interval `ΔH`:
/// under perfect drift and deterministic delays, hardware readings — and
/// with them edge ages `H_u − C^v_u` — land on multiples of the event
/// grid, so the table absorbs the hot path while arbitrary drifted ages
/// stay exact via the fallback.
#[derive(Clone, Debug)]
pub struct BudgetTable {
    /// Grid spacing in subjective time.
    quantum: f64,
    /// `values[k] = f(k as f64 * quantum)` for the sampled curve `f`.
    values: Vec<f64>,
}

impl BudgetTable {
    /// Samples `f` (the unfloored budget of some
    /// `AlgoParams`) at `k·quantum` for `k in 0..len`. The closure is
    /// evaluated at exactly the float `(k as f64) * quantum` that
    /// [`lookup`](Self::lookup) later reconstructs, which is what makes
    /// table hits bit-identical to direct evaluation.
    pub fn sample(quantum: f64, len: usize, f: impl Fn(f64) -> f64) -> Self {
        assert!(
            quantum.is_finite() && quantum > 0.0,
            "grid quantum must be positive, got {quantum}"
        );
        assert!(len >= 1, "table needs at least one entry");
        let values = (0..len).map(|k| f(k as f64 * quantum)).collect();
        BudgetTable { quantum, values }
    }

    /// Grid spacing.
    #[inline]
    pub fn quantum(&self) -> f64 {
        self.quantum
    }

    /// Number of sampled grid points.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the table holds no entries (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The grid index of `dt`, if `dt` is **exactly** `k·quantum` for
    /// some sampled `k`: the reconstruction `(k as f64) * quantum == dt`
    /// is checked bitwise-equivalently (f64 `==`), so a `Some(k)` answer
    /// guarantees `values[k]` was computed at precisely this age.
    #[inline]
    pub fn grid_index(&self, dt: f64) -> Option<usize> {
        let r = dt / self.quantum;
        if !(r >= 0.0 && r < self.values.len() as f64) {
            return None;
        }
        let k = r.round() as usize;
        (k < self.values.len() && (k as f64) * self.quantum == dt).then_some(k)
    }

    /// The sampled value at `dt` when `dt` lies exactly on the grid,
    /// `None` otherwise (callers fall back to the exact evaluation).
    #[inline]
    pub fn lookup(&self, dt: f64) -> Option<f64> {
        self.grid_index(dt).map(|k| self.values[k])
    }

    /// Heap bytes held by the sample array (plane accounting).
    pub fn heap_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B0: f64 = 20.0;
    const G: f64 = 100.0;
    const RHO: f64 = 0.01;
    const TAU: f64 = 5.0;

    #[test]
    fn initial_value_formula() {
        let b = aging_budget(0.0, B0, G, RHO, TAU);
        assert!((b - (5.0 * G + 1.01 * TAU + B0)).abs() < 1e-12);
        assert!(b > G, "fresh edges must not constrain");
    }

    #[test]
    fn linear_slope() {
        let t1 = 1.01 * TAU;
        let b_a = aging_budget(1.0, B0, G, RHO, TAU);
        let b_b = aging_budget(2.0, B0, G, RHO, TAU);
        assert!(((b_a - b_b) - B0 / t1).abs() < 1e-9);
    }

    #[test]
    fn floors_at_b0() {
        let s = settle_age(B0, G, RHO, TAU);
        assert!((aging_budget(s, B0, G, RHO, TAU) - B0).abs() < 1e-9);
        assert_eq!(aging_budget(s + 100.0, B0, G, RHO, TAU), B0);
        assert_eq!(aging_budget(1e12, B0, G, RHO, TAU), B0);
    }

    #[test]
    fn settle_age_is_where_linear_hits_floor() {
        let s = settle_age(B0, G, RHO, TAU);
        assert!(aging_budget(s * 0.999, B0, G, RHO, TAU) > B0);
    }

    #[test]
    fn monotone_non_increasing() {
        let mut last = f64::INFINITY;
        for i in 0..1000 {
            let b = aging_budget(i as f64, B0, G, RHO, TAU);
            assert!(b <= last);
            last = b;
        }
    }

    #[test]
    fn negative_age_clamped() {
        // Tiny negative ages (floating point) behave like zero.
        assert_eq!(
            aging_budget(-1e-12, B0, G, RHO, TAU),
            aging_budget(0.0, B0, G, RHO, TAU)
        );
    }

    fn unfloored(dt: f64) -> f64 {
        let t1 = (1.0 + RHO) * TAU;
        5.0 * G + t1 + B0 - B0 / t1 * dt.max(0.0)
    }

    #[test]
    fn table_hits_are_bit_exact_on_the_grid() {
        let table = BudgetTable::sample(0.125, 256, unfloored);
        for k in 0..256usize {
            let dt = k as f64 * 0.125;
            let hit = table.lookup(dt).expect("grid point must hit");
            assert_eq!(
                hit.to_bits(),
                unfloored(dt).to_bits(),
                "grid point k={k} must reproduce the exact evaluation"
            );
        }
    }

    #[test]
    fn off_grid_ages_fall_back_to_exact_path() {
        let table = BudgetTable::sample(0.125, 256, unfloored);
        assert_eq!(table.lookup(0.1), None);
        assert_eq!(table.lookup(0.125 + 1e-12), None);
        assert_eq!(table.lookup(f64::NAN), None);
        assert_eq!(table.lookup(f64::INFINITY), None);
    }

    #[test]
    fn out_of_range_ages_miss() {
        let table = BudgetTable::sample(0.125, 256, unfloored);
        assert_eq!(table.lookup(-0.125), None);
        assert_eq!(table.lookup(256.0 * 0.125), None, "one past the end");
        assert_eq!(table.lookup(1e9), None);
        // Index 0 covers zero (and negative zero normalises onto it).
        assert!(table.lookup(0.0).is_some());
        assert_eq!(table.grid_index(-0.0), Some(0));
    }

    #[test]
    fn grid_index_survives_awkward_quanta() {
        // A non-dyadic quantum: dt/q may round either way, but the
        // reconstruction check keeps every Some() answer exact.
        let q = 0.1;
        let table = BudgetTable::sample(q, 1000, unfloored);
        for k in 0..1000usize {
            let dt = k as f64 * q;
            if let Some(j) = table.grid_index(dt) {
                assert_eq!(j, k, "a hit must land on the generating index");
            }
        }
    }
}
