//! The budget function `B` of Section 5, in isolation.
//!
//! ```text
//! B(Δt) = max{ B0,  5·G(n) + (1+ρ)τ + B0 − B0/((1+ρ)τ) · Δt }
//! ```
//!
//! `Δt` is the *subjective* age of the edge's `Γ`-membership
//! (`H_u − C^v_u`). The initial value `B(0) = 5G(n) + (1+ρ)τ + B0` exceeds
//! the global skew bound, so a fresh edge imposes no effective constraint;
//! the budget then decays linearly with slope `B0/((1+ρ)τ)` per subjective
//! time unit until it reaches the floor `B0`.

/// Evaluates the aging budget.
///
/// * `dt` — subjective age `H_u − C^v_u` (clamped at 0 from below),
/// * `b0` — the stable budget floor `B0`,
/// * `g` — the global skew bound `G(n)`,
/// * `rho` — drift bound,
/// * `tau` — the staleness bound `τ`.
///
/// This sits on the per-event hot path (`AdjustClock` evaluates it once
/// per neighbor, over the flat entries of
/// [`crate::neighbors::FlatMap`]), hence the `#[inline]`.
#[inline]
pub fn aging_budget(dt: f64, b0: f64, g: f64, rho: f64, tau: f64) -> f64 {
    debug_assert!(dt >= -1e-9, "edge age must be non-negative, got {dt}");
    let t1 = (1.0 + rho) * tau;
    let linear = 5.0 * g + t1 + b0 - b0 / t1 * dt.max(0.0);
    linear.max(b0)
}

/// The subjective age at which the budget first equals `b0`.
pub fn settle_age(b0: f64, g: f64, rho: f64, tau: f64) -> f64 {
    let t1 = (1.0 + rho) * tau;
    (5.0 * g + t1) * t1 / b0
}

#[cfg(test)]
mod tests {
    use super::*;

    const B0: f64 = 20.0;
    const G: f64 = 100.0;
    const RHO: f64 = 0.01;
    const TAU: f64 = 5.0;

    #[test]
    fn initial_value_formula() {
        let b = aging_budget(0.0, B0, G, RHO, TAU);
        assert!((b - (5.0 * G + 1.01 * TAU + B0)).abs() < 1e-12);
        assert!(b > G, "fresh edges must not constrain");
    }

    #[test]
    fn linear_slope() {
        let t1 = 1.01 * TAU;
        let b_a = aging_budget(1.0, B0, G, RHO, TAU);
        let b_b = aging_budget(2.0, B0, G, RHO, TAU);
        assert!(((b_a - b_b) - B0 / t1).abs() < 1e-9);
    }

    #[test]
    fn floors_at_b0() {
        let s = settle_age(B0, G, RHO, TAU);
        assert!((aging_budget(s, B0, G, RHO, TAU) - B0).abs() < 1e-9);
        assert_eq!(aging_budget(s + 100.0, B0, G, RHO, TAU), B0);
        assert_eq!(aging_budget(1e12, B0, G, RHO, TAU), B0);
    }

    #[test]
    fn settle_age_is_where_linear_hits_floor() {
        let s = settle_age(B0, G, RHO, TAU);
        assert!(aging_budget(s * 0.999, B0, G, RHO, TAU) > B0);
    }

    #[test]
    fn monotone_non_increasing() {
        let mut last = f64::INFINITY;
        for i in 0..1000 {
            let b = aging_budget(i as f64, B0, G, RHO, TAU);
            assert!(b <= last);
            last = b;
        }
    }

    #[test]
    fn negative_age_clamped() {
        // Tiny negative ages (floating point) behave like zero.
        assert_eq!(
            aging_budget(-1e-12, B0, G, RHO, TAU),
            aging_budget(0.0, B0, G, RHO, TAU)
        );
    }
}
