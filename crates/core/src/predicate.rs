//! The blocked/advance decision logic of Algorithm 2 as pure functions.
//!
//! These five functions are the *entire* decision core of Algorithm 2:
//! the Definition 6.1 **blocked** predicate and the `AdjustClock` advance
//! rule, expressed over plain `f64` values with no node state attached.
//! [`GradientNode`](crate::GradientNode) calls them from its handlers, and
//! the model checker (`gcs-mc`) calls the *same* functions when it
//! recomputes the predicate over explored states — encode once, call
//! twice. Because both callers execute identical operations in identical
//! order, the automaton and the checker cannot drift apart in the last
//! `f64` bit (pinned end to end by `crates/bench/tests/predicate_pin.rs`).
//!
//! A *cap* below is the pair `(L^v_u, B^v_u)` for one neighbor
//! `v ∈ Γ_u`: the estimate of `v`'s logical clock and the current budget
//! toward `v`. Cap iterators must yield neighbors in **ascending node-id
//! order** — the order `FlatMap` iterates — because `f64::min` folds are
//! order-sensitive in the presence of ties broken by NaN-free but unequal
//! rounding; both callers iterate the same order so this is a contract,
//! not a tolerance.

/// The effective budget toward a neighbor: the aging curve value floored
/// at the (possibly weight-scaled) `B0` floor —
/// `B^v_u = max{floor, B(Δt)}`.
///
/// `unfloored` is [`AlgoParams::budget_unfloored`](crate::AlgoParams::budget_unfloored)
/// at the edge age, `floor` is `B0 · w_v`.
#[inline]
pub fn effective_budget(unfloored: f64, floor: f64) -> f64 {
    unfloored.max(floor)
}

/// Whether one neighbor blocks `u` (the per-neighbor clause of
/// Definition 6.1): `L_u − L^v_u > B^v_u`.
#[inline]
pub fn neighbor_blocks(l: f64, estimate: f64, budget: f64) -> bool {
    l - estimate > budget
}

/// Definition 6.1: `u` is *blocked* iff `Lmax_u > L_u` and some neighbor
/// cap has `L_u − L^v_u > B^v_u`.
#[inline]
pub fn is_blocked(l: f64, lmax: f64, caps: impl IntoIterator<Item = (f64, f64)>) -> bool {
    lmax > l
        && caps
            .into_iter()
            .any(|(estimate, budget)| neighbor_blocks(l, estimate, budget))
}

/// The `AdjustClock` advance target:
/// `min{Lmax_u, min_{v∈Γ}(L^v_u + B^v_u)}`, folded in cap order.
#[inline]
pub fn advance_target(lmax: f64, caps: impl IntoIterator<Item = (f64, f64)>) -> f64 {
    caps.into_iter().fold(lmax, |target, (estimate, budget)| {
        target.min(estimate + budget)
    })
}

/// Whether `AdjustClock` performs a discrete jump: the target strictly
/// exceeds the current logical clock (`L_u` never decreases).
#[inline]
pub fn should_jump(target: f64, l: f64) -> bool {
    target > l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_budget_floors_the_aging_curve() {
        assert_eq!(effective_budget(100.0, 20.0), 100.0, "fresh edge");
        assert_eq!(effective_budget(-5.0, 20.0), 20.0, "settled edge");
        assert_eq!(effective_budget(f64::NEG_INFINITY, 20.0), 20.0);
        // Weighted floors scale down, never up.
        assert_eq!(effective_budget(-5.0, 5.0), 5.0);
    }

    #[test]
    fn neighbor_blocks_is_a_strict_inequality() {
        assert!(neighbor_blocks(30.0, 9.0, 20.0)); // 21 > 20
        assert!(!neighbor_blocks(29.0, 9.0, 20.0)); // 20 > 20 fails
        assert!(!neighbor_blocks(5.0, 9.0, 20.0)); // ahead neighbors never block
    }

    #[test]
    fn is_blocked_requires_both_clauses() {
        let caps = [(0.0, 10.0), (100.0, 10.0)];
        // Lmax > L and the first cap blocks.
        assert!(is_blocked(50.0, 60.0, caps));
        // No headroom: Lmax == L.
        assert!(!is_blocked(50.0, 50.0, caps));
        // Headroom but nobody blocks.
        assert!(!is_blocked(5.0, 60.0, caps));
        // No neighbors at all.
        assert!(!is_blocked(5.0, 60.0, []));
    }

    #[test]
    fn advance_target_is_the_min_over_lmax_and_caps() {
        assert_eq!(advance_target(40.0, []), 40.0, "no caps: chase Lmax");
        assert_eq!(advance_target(40.0, [(10.0, 5.0), (100.0, 1.0)]), 15.0);
        assert_eq!(advance_target(12.0, [(10.0, 5.0)]), 12.0, "Lmax caps");
    }

    #[test]
    fn should_jump_only_on_strict_increase() {
        assert!(should_jump(10.0, 9.0));
        assert!(!should_jump(10.0, 10.0));
        assert!(!should_jump(9.0, 10.0), "L never decreases");
    }

    #[test]
    fn blocked_and_advance_agree_on_the_boundary() {
        // When a neighbor blocks exactly, the advance target equals the
        // cap and the node sits on the Definition 6.1 boundary: raising
        // Lmax past the cap makes it blocked, the target stays capped.
        let (l, est, b) = (25.0, 10.0, 14.0);
        assert!(neighbor_blocks(l, est, b)); // 15 > 14
        let target = advance_target(1e9, [(est, b)]);
        assert_eq!(target, 24.0);
        assert!(!should_jump(target, l), "a blocked node cannot advance");
        assert!(is_blocked(l, 1e9, [(est, b)]));
    }
}
