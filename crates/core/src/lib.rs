#![warn(missing_docs)]

//! # gcs-core
//!
//! The dynamic gradient clock synchronization algorithm of Kuhn, Locher and
//! Oshman (*Gradient Clock Synchronization in Dynamic Networks*, SPAA 2009,
//! Section 5 / Algorithm 2), plus the baselines it is compared against and
//! executable checkers for the invariants its analysis guarantees.
//!
//! ## The algorithm in one paragraph
//!
//! Every node `u` maintains a logical clock `L_u`, an estimate `Lmax_u` of
//! the maximum logical clock in the network, the set `Υ_u` of believed
//! neighbors and the subset `Γ_u ⊆ Υ_u` of neighbors heard from within the
//! last `ΔT′` subjective time. For each `v ∈ Γ_u` it stores the estimate
//! `L^v_u` of `v`'s clock and the hardware timestamp `C^v_u` of the moment
//! `v` (re)joined `Γ_u`. Nodes exchange `⟨L_u, Lmax_u⟩` every `ΔH`
//! subjective time. After every event, `AdjustClock` raises `L_u` as far as
//! possible subject to: never decrease, never exceed `Lmax_u`, and never
//! exceed `L^v_u + B(H_u − C^v_u)` for any `v ∈ Γ_u`, where the *budget*
//!
//! ```text
//! B(Δt) = max{ B0,  5·G(n) + (1+ρ)τ + B0 − B0/((1+ρ)τ) · Δt }
//! ```
//!
//! starts out larger than the global skew `G(n)` (a fresh edge constrains
//! nothing) and hardens linearly toward `B0` as the edge ages.
//!
//! ## Crate layout
//!
//! * [`params`] — [`AlgoParams`]: `ρ, T, D, ΔH, B0` plus every derived
//!   quantity of the analysis (`ΔT`, `ΔT′`, `τ`, `G(n)`, `W`, the dynamic
//!   local skew function of Corollary 6.13).
//! * [`budget`] — the budget function `B` in isolation, plus the shared
//!   [`BudgetTable`] curve sampling behind the compact automaton plane
//!   (bit-exact on its grid, exact-path fallback off it).
//! * [`gradient`] — [`GradientNode`], Algorithm 2 as a
//!   [`gcs_sim::Automaton`].
//! * [`baseline`] — [`baseline::MaxSyncNode`] (chase the max estimate
//!   immediately; the Srikanth–Toueg-style comparator) and the
//!   constant-budget variant obtained via
//!   [`BudgetPolicy::Constant`](params::BudgetPolicy) (the static gradient
//!   algorithm of Locher–Wattenhofer applied blindly to a dynamic graph).
//! * [`invariants`] — runtime checkers for Section 3.3's validity
//!   conditions and the skew bounds of Theorems 6.9 and 6.12.
//! * [`neighbors`] — flat sorted containers for the per-neighbor hot
//!   state ([`FlatMap`], [`IdSet`]), `O(degree)` memory per node.
//! * [`predicate`] — the Definition 6.1 blocked predicate and the
//!   `AdjustClock` advance rule as pure functions over plain values,
//!   shared bit-for-bit between [`GradientNode`] and the `gcs-mc`
//!   model checker.
//!
//! # Example
//!
//! The aging budget in isolation: a fresh edge starts above the global
//! skew bound (it constrains nothing), hardens linearly, and floors at
//! `B0` from the settle age onward:
//!
//! ```
//! use gcs_core::budget::{aging_budget, settle_age};
//!
//! let (b0, g, rho, tau) = (20.0, 100.0, 0.01, 5.0);
//! let fresh = aging_budget(0.0, b0, g, rho, tau);
//! assert!(fresh > g, "a brand-new edge must not constrain the clock");
//!
//! let settle = settle_age(b0, g, rho, tau);
//! assert!((aging_budget(settle, b0, g, rho, tau) - b0).abs() < 1e-9);
//! assert_eq!(aging_budget(settle + 1e6, b0, g, rho, tau), b0);
//! ```

pub mod baseline;
pub mod budget;
pub mod gradient;
pub mod invariants;
pub mod neighbors;
pub mod params;
pub mod predicate;

pub use budget::BudgetTable;
pub use gradient::{GradientNode, GradientShared, NeighborState};
pub use invariants::InvariantMonitor;
pub use neighbors::{FlatMap, IdSet};
pub use params::{AlgoParams, BudgetPolicy};
