//! Executable invariants from the paper's analysis.
//!
//! A [`InvariantMonitor`] consumes periodic snapshots of an execution and
//! checks:
//!
//! * **Validity (Section 3.3)**: every logical clock is strictly
//!   increasing and progresses at least at half the rate of real time
//!   (the algorithm in fact guarantees rate `≥ 1−ρ ≥ 1/2`).
//! * **Max-estimate sanity (Property 6.3)**: `Lmax_u ≥ L_u`.
//! * **Max-rate (Property 6.7)**: `Lmax = max_u Lmax_u` increases at rate
//!   at most `1+ρ` between snapshots.
//! * **Global skew (Theorem 6.9)**: `max_u L_u − min_u L_u ≤ G(n)`.
//!
//! The monitor accumulates violations instead of panicking so experiments
//! can report them; tests assert `violations().is_empty()`.

use crate::params::AlgoParams;
use gcs_clocks::Time;

/// One recorded violation.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Snapshot time at which the violation was observed.
    pub time: Time,
    /// Human-readable description.
    pub what: String,
}

/// Snapshot-based invariant checker.
#[derive(Clone, Debug)]
pub struct InvariantMonitor {
    params: AlgoParams,
    prev: Option<(Time, Vec<f64>, f64)>,
    violations: Vec<Violation>,
    max_global_skew_seen: f64,
    snapshots: u64,
    /// Numerical slack for floating-point comparisons.
    eps: f64,
}

impl InvariantMonitor {
    /// A monitor for executions under `params`.
    pub fn new(params: AlgoParams) -> Self {
        InvariantMonitor {
            params,
            prev: None,
            violations: Vec::new(),
            max_global_skew_seen: 0.0,
            snapshots: 0,
            eps: 1e-6,
        }
    }

    /// Feeds one snapshot: per-node logical clocks and max estimates at
    /// real time `t`. Snapshots must be fed in increasing time order.
    pub fn observe(&mut self, t: Time, logical: &[f64], lmax: &[f64]) {
        assert_eq!(logical.len(), lmax.len());
        self.snapshots += 1;

        // Property 6.3: Lmax_u >= L_u.
        for (i, (&l, &m)) in logical.iter().zip(lmax.iter()).enumerate() {
            if m < l - self.eps {
                self.violations.push(Violation {
                    time: t,
                    what: format!("node {i}: Lmax {m} < L {l}"),
                });
            }
        }

        // Theorem 6.9: global skew within G(n).
        let max_l = logical.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min_l = logical.iter().cloned().fold(f64::INFINITY, f64::min);
        let skew = max_l - min_l;
        self.max_global_skew_seen = self.max_global_skew_seen.max(skew);
        let g = self.params.global_skew_bound();
        if skew > g + self.eps {
            self.violations.push(Violation {
                time: t,
                what: format!("global skew {skew} exceeds G(n) = {g}"),
            });
        }

        let lmax_net = lmax.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if let Some((t0, prev_l, prev_lmax_net)) = &self.prev {
            let dt = (t - *t0).seconds();
            let rho = self.params.model.rho;
            for (i, (&l, &pl)) in logical.iter().zip(prev_l.iter()).enumerate() {
                let advance = l - pl;
                // Validity: strictly increasing, rate >= 1/2.
                if advance < 0.5 * dt - self.eps {
                    self.violations.push(Violation {
                        time: t,
                        what: format!("node {i}: clock advanced {advance} over {dt} (rate < 1/2)"),
                    });
                }
            }
            // Property 6.7: Lmax rate <= 1+ρ.
            let lmax_advance = lmax_net - prev_lmax_net;
            if lmax_advance > (1.0 + rho) * dt + self.eps {
                self.violations.push(Violation {
                    time: t,
                    what: format!("Lmax advanced {lmax_advance} over {dt} (rate > 1+ρ)"),
                });
            }
        }
        self.prev = Some((t, logical.to_vec(), lmax_net));
    }

    /// All violations observed so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Largest global skew seen across snapshots.
    pub fn max_global_skew(&self) -> f64 {
        self.max_global_skew_seen
    }

    /// Number of snapshots consumed.
    pub fn snapshots(&self) -> u64 {
        self.snapshots
    }

    /// Convenience: panic with a readable report if anything was violated.
    pub fn assert_clean(&self) {
        assert!(
            self.violations.is_empty(),
            "invariant violations:\n{}",
            self.violations
                .iter()
                .map(|v| format!("  [{}] {}", v.time, v.what))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_clocks::time::at;
    use gcs_sim::ModelParams;

    fn params() -> AlgoParams {
        AlgoParams::with_minimal_b0(ModelParams::new(0.01, 1.0, 2.0), 4, 0.5)
    }

    #[test]
    fn clean_run_has_no_violations() {
        let mut m = InvariantMonitor::new(params());
        for step in 0..10 {
            let t = step as f64;
            let l: Vec<f64> = (0..4).map(|i| t + i as f64 * 0.1).collect();
            let lm: Vec<f64> = l.iter().map(|x| x + 0.5).collect();
            m.observe(at(t), &l, &lm);
        }
        m.assert_clean();
        assert_eq!(m.snapshots(), 10);
        assert!((m.max_global_skew() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn detects_lmax_below_l() {
        let mut m = InvariantMonitor::new(params());
        m.observe(at(0.0), &[1.0, 1.0], &[0.5, 1.0]);
        assert_eq!(m.violations().len(), 1);
        assert!(m.violations()[0].what.contains("Lmax"));
    }

    #[test]
    fn detects_slow_clock() {
        let mut m = InvariantMonitor::new(params());
        m.observe(at(0.0), &[0.0, 0.0], &[0.0, 0.0]);
        // Node 1 advanced only 0.1 over 1.0 time: rate < 1/2.
        m.observe(at(1.0), &[1.0, 0.1], &[1.0, 1.0]);
        assert!(m.violations().iter().any(|v| v.what.contains("rate < 1/2")));
    }

    #[test]
    fn detects_global_skew_violation() {
        let p = params();
        let g = p.global_skew_bound();
        let mut m = InvariantMonitor::new(p);
        m.observe(at(0.0), &[0.0, g + 1.0], &[g + 1.0, g + 1.0]);
        assert!(m
            .violations()
            .iter()
            .any(|v| v.what.contains("global skew")));
    }

    #[test]
    fn detects_too_fast_lmax() {
        let mut m = InvariantMonitor::new(params());
        m.observe(at(0.0), &[0.0, 0.0], &[0.0, 0.0]);
        m.observe(at(1.0), &[1.0, 1.0], &[5.0, 1.0]);
        assert!(m.violations().iter().any(|v| v.what.contains("1+ρ")));
    }

    #[test]
    #[should_panic(expected = "invariant violations")]
    fn assert_clean_panics_on_violation() {
        let mut m = InvariantMonitor::new(params());
        m.observe(at(0.0), &[1.0], &[0.0]);
        m.assert_clean();
    }
}
