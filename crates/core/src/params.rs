//! Algorithm parameters and every derived constant of the analysis.

use gcs_sim::ModelParams;

/// Which budget function the node uses for its `Γ`-neighbors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BudgetPolicy {
    /// The paper's aging budget `B(Δt)` (Algorithm 2).
    Aging,
    /// A constant budget `B ≡ B0` — the static gradient algorithm of
    /// Locher–Wattenhofer \[13\] run unchanged on a dynamic graph. Used as a
    /// baseline: it enforces `B0` on brand-new edges immediately, which
    /// blocks the ahead endpoint and lets it fall arbitrarily far behind
    /// `Lmax` while a large-skew edge closes.
    Constant,
    /// An explicit linear budget `B(Δt) = max{B0, initial − slope·Δt}` —
    /// used by the ablation experiments to vary the fresh-edge headroom
    /// (the paper's `5G(n) + (1+ρ)τ + B0`) and the hardening rate (the
    /// paper's `B0/((1+ρ)τ)`) independently.
    Custom {
        /// Budget at edge age 0.
        initial: f64,
        /// Linear decay per subjective time unit.
        slope: f64,
    },
}

/// Parameters for [`GradientNode`](crate::gradient::GradientNode) and the
/// quantities derived from them in Section 5/6 of the paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AlgoParams {
    /// Environment constants `ρ, T, D`.
    pub model: ModelParams,
    /// Number of nodes `n` (known to all nodes, as the paper assumes).
    pub n: usize,
    /// Subjective resend interval `ΔH`.
    pub delta_h: f64,
    /// Stable per-edge skew budget `B0`.
    pub b0: f64,
    /// Budget policy (the paper's aging budget, or the constant baseline).
    pub policy: BudgetPolicy,
}

impl AlgoParams {
    /// Validated constructor for the paper's algorithm.
    ///
    /// Enforces the standing assumptions:
    /// * `D > max{T, ΔH/(1−ρ)}` (Section 5),
    /// * `B0 > 2(1+ρ)τ` (definition of `B`).
    pub fn new(model: ModelParams, n: usize, delta_h: f64, b0: f64) -> Self {
        Self::with_policy(model, n, delta_h, b0, BudgetPolicy::Aging)
    }

    /// Constructor selecting a budget policy (for baselines).
    pub fn with_policy(
        model: ModelParams,
        n: usize,
        delta_h: f64,
        b0: f64,
        policy: BudgetPolicy,
    ) -> Self {
        assert!(n >= 2, "need at least two nodes");
        assert!(
            delta_h.is_finite() && delta_h > 0.0,
            "resend interval ΔH must be > 0"
        );
        assert!(
            model.d > model.t && model.d > delta_h / (1.0 - model.rho),
            "paper assumes D > max(T, ΔH/(1−ρ)): D={}, T={}, ΔH/(1−ρ)={}",
            model.d,
            model.t,
            delta_h / (1.0 - model.rho)
        );
        let p = AlgoParams {
            model,
            n,
            delta_h,
            b0,
            policy,
        };
        assert!(
            b0 > 2.0 * (1.0 + model.rho) * p.tau(),
            "budget floor must satisfy B0 > 2(1+ρ)τ = {}",
            2.0 * (1.0 + model.rho) * p.tau()
        );
        p
    }

    /// Picks the smallest round `B0` above the paper's `2(1+ρ)τ` threshold
    /// (with 5% headroom) — convenient for experiments that only care about
    /// `n` and the model.
    pub fn with_minimal_b0(model: ModelParams, n: usize, delta_h: f64) -> Self {
        // Compute τ via a temporary (validation skipped by construction
        // order: τ depends only on model and ΔH).
        let tmp = AlgoParams {
            model,
            n,
            delta_h,
            b0: f64::MAX,
            policy: BudgetPolicy::Aging,
        };
        let b0 = (2.0 * (1.0 + model.rho) * tmp.tau() * 1.05).ceil();
        Self::new(model, n, delta_h, b0)
    }

    /// `ΔT = T + ΔH/(1−ρ)` — the longest real time between receipts on a
    /// live edge.
    pub fn delta_t(&self) -> f64 {
        self.model.t + self.delta_h / (1.0 - self.model.rho)
    }

    /// `ΔT′ = (1+ρ)·ΔT` — the subjective timeout after which a silent
    /// neighbor is dropped from `Γ`.
    pub fn delta_t_prime(&self) -> f64 {
        (1.0 + self.model.rho) * self.delta_t()
    }

    /// `τ = (1+ρ)/(1−ρ)·ΔT + T + D` — the estimate staleness bound: any
    /// `v ∈ Γ_u` sent a message within the last `τ` real time
    /// (Property 6.1).
    pub fn tau(&self) -> f64 {
        let rho = self.model.rho;
        (1.0 + rho) / (1.0 - rho) * self.delta_t() + self.model.t + self.model.d
    }

    /// `G(n) = ((1+ρ)T + 2ρD)(n−1)` — the global skew bound of
    /// Theorem 6.9.
    pub fn global_skew_bound(&self) -> f64 {
        let rho = self.model.rho;
        ((1.0 + rho) * self.model.t + 2.0 * rho * self.model.d) * (self.n as f64 - 1.0)
    }

    /// `W = (4·G(n)/B0 + 1)·τ` — once `v` blocks `u`, the edge has been in
    /// `Γ_u` for at least `W` (Lemma 6.10); also the stabilization horizon
    /// in the local skew bound.
    pub fn w(&self) -> f64 {
        (4.0 * self.global_skew_bound() / self.b0 + 1.0) * self.tau()
    }

    /// The budget `B(Δt)` for an edge whose `Γ`-membership is `Δt` old in
    /// subjective time (Section 5), or the constant `B0` under the
    /// [`BudgetPolicy::Constant`] baseline.
    pub fn budget(&self, dt: f64) -> f64 {
        match self.policy {
            BudgetPolicy::Aging => crate::budget::aging_budget(
                dt,
                self.b0,
                self.global_skew_bound(),
                self.model.rho,
                self.tau(),
            ),
            BudgetPolicy::Constant => self.b0,
            BudgetPolicy::Custom { initial, slope } => (initial - slope * dt.max(0.0)).max(self.b0),
        }
    }

    /// The budget *before* applying the floor `B0` — the decaying part
    /// only. Used by the weighted-edge extension
    /// ([`gradient`](crate::gradient)), where each edge gets its own floor
    /// `B0·w_e` (the paper's §7 weighted-graph approach: the weight plays
    /// the role of the edge's delay uncertainty). May be negative for very
    /// old edges; callers apply their own floor.
    pub fn budget_unfloored(&self, dt: f64) -> f64 {
        match self.policy {
            BudgetPolicy::Aging => {
                let t1 = (1.0 + self.model.rho) * self.tau();
                5.0 * self.global_skew_bound() + t1 + self.b0 - self.b0 / t1 * dt.max(0.0)
            }
            BudgetPolicy::Constant => f64::NEG_INFINITY,
            BudgetPolicy::Custom { initial, slope } => initial - slope * dt.max(0.0),
        }
    }

    /// Subjective age at which the aging budget reaches its floor `B0`:
    /// `(5G(n) + (1+ρ)τ)·(1+ρ)τ / B0`.
    pub fn budget_settle_age(&self) -> f64 {
        let t1 = (1.0 + self.model.rho) * self.tau();
        (5.0 * self.global_skew_bound() + t1) * t1 / self.b0
    }

    /// The dynamic local skew function of Corollary 6.13:
    /// `s(n, Δt) = B((1−ρ)(Δt − ΔT − D − W)⁺) + 2ρW` — an upper bound on
    /// the skew of any edge that has existed for `Δt` real time,
    /// independent of its initial skew.
    pub fn dynamic_local_skew(&self, dt_real: f64) -> f64 {
        let rho = self.model.rho;
        let aged = (1.0 - rho) * (dt_real - self.delta_t() - self.model.d - self.w());
        self.budget(aged.max(0.0)) + 2.0 * rho * self.w()
    }

    /// The stable local skew `s̄(n) = B0 + 2ρW` (limit of
    /// [`dynamic_local_skew`](Self::dynamic_local_skew) as `Δt → ∞`).
    pub fn stable_local_skew(&self) -> f64 {
        self.b0 + 2.0 * self.model.rho * self.w()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelParams {
        ModelParams::new(0.01, 1.0, 2.0)
    }

    fn params() -> AlgoParams {
        AlgoParams::with_minimal_b0(model(), 16, 0.5)
    }

    #[test]
    fn derived_quantities_match_formulas() {
        let p = params();
        let rho = 0.01;
        let dt = 1.0 + 0.5 / 0.99;
        assert!((p.delta_t() - dt).abs() < 1e-12);
        assert!((p.delta_t_prime() - 1.01 * dt).abs() < 1e-12);
        let tau = 1.01 / 0.99 * dt + 3.0;
        assert!((p.tau() - tau).abs() < 1e-12);
        let g = (1.01 + 2.0 * rho * 2.0) * 15.0;
        assert!((p.global_skew_bound() - g).abs() < 1e-12);
        let w = (4.0 * g / p.b0 + 1.0) * tau;
        assert!((p.w() - w).abs() < 1e-12);
    }

    #[test]
    fn minimal_b0_satisfies_constraint() {
        let p = params();
        assert!(p.b0 > 2.0 * 1.01 * p.tau());
    }

    #[test]
    fn budget_new_edge_exceeds_global_skew() {
        let p = params();
        // B(0) = 5G + (1+ρ)τ + B0 > G: a fresh edge never constrains.
        assert!(p.budget(0.0) > p.global_skew_bound());
    }

    #[test]
    fn budget_settles_to_b0() {
        let p = params();
        let settle = p.budget_settle_age();
        assert!((p.budget(settle) - p.b0).abs() < 1e-9);
        assert_eq!(p.budget(settle * 2.0), p.b0);
        // Just before settling it is still above B0.
        assert!(p.budget(settle * 0.99) > p.b0);
    }

    #[test]
    fn budget_is_non_increasing() {
        let p = params();
        let mut last = f64::INFINITY;
        let settle = p.budget_settle_age();
        for i in 0..200 {
            let dt = settle * i as f64 / 100.0;
            let b = p.budget(dt);
            assert!(b <= last + 1e-12);
            last = b;
        }
    }

    #[test]
    fn constant_policy_budget_is_flat() {
        let p = AlgoParams::with_policy(model(), 16, 0.5, params().b0, BudgetPolicy::Constant);
        assert_eq!(p.budget(0.0), p.b0);
        assert_eq!(p.budget(1e9), p.b0);
    }

    #[test]
    fn custom_policy_linear_decay_with_floor() {
        let b0 = params().b0;
        let p = AlgoParams::with_policy(
            model(),
            16,
            0.5,
            b0,
            BudgetPolicy::Custom {
                initial: 100.0,
                slope: 2.0,
            },
        );
        assert_eq!(p.budget(0.0), 100.0);
        assert_eq!(p.budget(10.0), 80.0);
        assert_eq!(p.budget(1e6), b0);
        // Floor kicks in exactly where the line crosses B0.
        let cross = (100.0 - b0) / 2.0;
        assert!((p.budget(cross) - b0).abs() < 1e-9);
    }

    #[test]
    fn dynamic_local_skew_decreasing_to_stable() {
        let p = params();
        // For very young edges the bound exceeds the global skew bound.
        assert!(p.dynamic_local_skew(0.0) > p.global_skew_bound());
        // It is non-increasing in edge age…
        let mut last = f64::INFINITY;
        for i in 0..100 {
            let s = p.dynamic_local_skew(i as f64 * p.w() / 10.0);
            assert!(s <= last + 1e-9);
            last = s;
        }
        // …and converges to B0 + 2ρW.
        let far = p.dynamic_local_skew(1e9);
        assert!((far - p.stable_local_skew()).abs() < 1e-9);
    }

    #[test]
    fn global_skew_bound_linear_in_n() {
        let a = AlgoParams::with_minimal_b0(model(), 10, 0.5).global_skew_bound();
        let b = AlgoParams::with_minimal_b0(model(), 19, 0.5).global_skew_bound();
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "B0 > 2(1+ρ)τ")]
    fn too_small_b0_rejected() {
        let _ = AlgoParams::new(model(), 16, 0.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "D > max")]
    fn too_large_delta_h_rejected() {
        // ΔH/(1−ρ) must stay below D = 2.
        let _ = AlgoParams::new(model(), 16, 2.5, 100.0);
    }
}
