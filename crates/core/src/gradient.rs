//! Algorithm 2 as a [`gcs_sim::Automaton`].
//!
//! The implementation follows the paper's event handlers line by line; the
//! only interpretation notes are:
//!
//! 1. **`L^v_u` refresh.** The pseudocode's indentation puts `L^v_u ← L_v`
//!    inside the `if v ∉ Γ_u` branch, but the analysis (Lemma 6.5:
//!    "upon receiving the message node u sets `L^v_u ← L_v(t_s)`", FIFO
//!    argument) requires the estimate to be refreshed on *every* receipt.
//!    We refresh on every receipt.
//! 2. **`Γ ⊆ Υ` on early messages.** Discovery is per-endpoint, so a
//!    message can arrive from a neighbor whose `discover(add)` is still in
//!    flight. To preserve the paper's stated invariant `Γ_u ⊆ Υ_u` we also
//!    insert the sender into `Υ_u` on receipt (receiving a message is proof
//!    the edge exists).
//! 3. All clock-valued state is stored as offsets from the hardware clock
//!    ([`ClockVar`]), so "between events, the variables are increased at
//!    the rate of u's hardware clock" holds exactly.
//!
//! Per-neighbor state (`Γ_u`, `Υ_u`, weights) lives in the flat sorted
//! containers of [`crate::neighbors`] rather than tree maps: the per-event
//! path (`AdjustClock` scan, estimate refresh, tick broadcast) walks
//! contiguous arrays, memory stays `O(degree)` per node even at the
//! `n = 65 536` scale of E11, and iteration order is ascending node id —
//! identical to the old `BTreeMap` order, so execution traces are
//! unchanged.

use crate::neighbors::{FlatMap, IdSet};
use crate::params::AlgoParams;
use crate::predicate;
use gcs_clocks::ClockVar;
use gcs_net::NodeId;
use gcs_sim::{Automaton, Context, LinkChange, LinkChangeKind, Message, TimerKind};
use std::collections::BTreeMap;

/// Per-neighbor state for `v ∈ Γ_u`.
#[derive(Clone, Copy, Debug)]
pub struct NeighborState {
    /// `C^v_u`: our hardware reading when `v` was last added to `Γ_u`.
    pub joined_hw: f64,
    /// `L^v_u`: estimate of `v`'s logical clock (grows at our rate).
    pub estimate: ClockVar,
}

/// One node running Algorithm 2.
#[derive(Clone, Debug)]
pub struct GradientNode {
    params: AlgoParams,
    /// `L_u`.
    l: ClockVar,
    /// `Lmax_u`.
    lmax: ClockVar,
    /// `Γ_u` with per-neighbor state.
    gamma: FlatMap<NeighborState>,
    /// `Υ_u`.
    upsilon: IdSet,
    /// Count of discrete jumps of `L_u` (diagnostics).
    jumps: u64,
    /// Per-neighbor edge weights for the §7 weighted-graph extension: the
    /// budget toward `v` floors at `B0·w` instead of `B0`. Missing entries
    /// default to weight 1 (the plain algorithm). In the companion-paper
    /// reading, the weight is the edge's relative delay uncertainty —
    /// e.g. a reference-broadcast link gets `w ≪ 1` and therefore a much
    /// tighter stable skew guarantee. Stored dense, indexed by node id.
    weights: Vec<f64>,
}

impl GradientNode {
    /// A node at time 0: `L_u = Lmax_u = H_u = 0`, no neighbors.
    pub fn new(params: AlgoParams) -> Self {
        GradientNode {
            params,
            l: ClockVar::zeroed(),
            lmax: ClockVar::zeroed(),
            gamma: FlatMap::new(),
            upsilon: IdSet::new(),
            jumps: 0,
            weights: Vec::new(),
        }
    }

    /// A node with per-neighbor edge weights (the weighted-graph extension
    /// sketched in the paper's conclusion; weights must be in `(0, 1]` so
    /// the standard analysis still upper-bounds every budget).
    pub fn with_weights(params: AlgoParams, weights: BTreeMap<NodeId, f64>) -> Self {
        let mut dense = Vec::new();
        for (&v, &w) in &weights {
            assert!(
                w > 0.0 && w <= 1.0,
                "edge weight toward {v:?} must be in (0, 1], got {w}"
            );
            if dense.len() <= v.index() {
                dense.resize(v.index() + 1, 1.0);
            }
            dense[v.index()] = w;
        }
        GradientNode {
            weights: dense,
            ..Self::new(params)
        }
    }

    /// The weight of the edge toward `v` (1.0 unless configured).
    pub fn weight_of(&self, v: NodeId) -> f64 {
        self.weights.get(v.index()).copied().unwrap_or(1.0)
    }

    /// The effective budget toward `v` at subjective edge age `dt`:
    /// `max{B0·w_v, unfloored B(dt)}`.
    fn budget_at(&self, v: NodeId, dt: f64) -> f64 {
        predicate::effective_budget(
            self.params.budget_unfloored(dt),
            self.params.b0 * self.weight_of(v),
        )
    }

    /// The parameters this node runs with.
    pub fn params(&self) -> &AlgoParams {
        &self.params
    }

    /// Current `Γ_u`.
    pub fn gamma(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.gamma.keys()
    }

    /// Current `Υ_u`.
    pub fn upsilon(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.upsilon.iter()
    }

    /// Per-neighbor state, if `v ∈ Γ_u`.
    pub fn neighbor_state(&self, v: NodeId) -> Option<&NeighborState> {
        self.gamma.get(v)
    }

    /// `B^v_u` — the current budget toward `v`, if `v ∈ Γ_u`.
    pub fn budget_for(&self, v: NodeId, hw: f64) -> Option<f64> {
        self.gamma
            .get(v)
            .map(|st| self.budget_at(v, hw - st.joined_hw))
    }

    /// `L^v_u` — the current estimate of `v`'s clock, if `v ∈ Γ_u`.
    pub fn estimate_of(&self, v: NodeId, hw: f64) -> Option<f64> {
        self.gamma.get(v).map(|st| st.estimate.value(hw))
    }

    /// The neighbor caps `(L^v_u, B^v_u)` for every `v ∈ Γ_u` at hardware
    /// reading `hw`, in ascending node-id order — exactly the tuples the
    /// pure [`predicate`] functions consume. The model checker rebuilds
    /// the Definition 6.1 predicate from this same iterator, so automaton
    /// and checker share one encoding.
    pub fn neighbor_caps(&self, hw: f64) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.gamma
            .iter()
            .map(move |(v, st)| (st.estimate.value(hw), self.budget_at(v, hw - st.joined_hw)))
    }

    /// Definition 6.1: `u` is *blocked* if `Lmax_u > L_u` and some
    /// `v ∈ Γ_u` has `L_u − L^v_u > B^v_u`.
    pub fn is_blocked(&self, hw: f64) -> bool {
        predicate::is_blocked(
            self.l.value(hw),
            self.lmax.value(hw),
            self.neighbor_caps(hw),
        )
    }

    /// A neighbor currently blocking `u`, if any.
    pub fn blocking_neighbor(&self, hw: f64) -> Option<NodeId> {
        let l = self.l.value(hw);
        if self.lmax.value(hw) <= l {
            return None;
        }
        self.gamma.iter().find_map(|(v, st)| {
            let b = self.budget_at(v, hw - st.joined_hw);
            predicate::neighbor_blocks(l, st.estimate.value(hw), b).then_some(v)
        })
    }

    /// Number of discrete clock jumps so far.
    pub fn jump_count(&self) -> u64 {
        self.jumps
    }

    /// Procedure `AdjustClock`:
    /// `L_u ← max{L_u, min{Lmax_u, min_{v∈Γ}(L^v_u + B(H_u − C^v_u))}}`.
    fn adjust_clock(&mut self, hw: f64) {
        let target = predicate::advance_target(self.lmax.value(hw), self.neighbor_caps(hw));
        if predicate::should_jump(target, self.l.value(hw)) {
            self.l.set(target, hw);
            self.jumps += 1;
        }
    }

    fn message(&self, hw: f64) -> Message {
        Message {
            logical: self.l.value(hw),
            max_estimate: self.lmax.value(hw),
        }
    }
}

impl Automaton for GradientNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.params.delta_h, TimerKind::Tick);
    }

    // Crash/restart with state loss: parameters and edge weights are
    // configuration, every clock and neighbor variable resets to the
    // time-0 state of [`GradientNode::new`].
    fn try_reboot(&self) -> Result<Self, gcs_sim::RebootUnsupported> {
        Ok(GradientNode {
            weights: self.weights.clone(),
            ..Self::new(self.params)
        })
    }

    // Lines 15–24 of Algorithm 2.
    fn on_receive(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Message) {
        let hw = ctx.hw;
        ctx.cancel_timer(TimerKind::Lost(from));
        self.upsilon.insert(from); // see module note 2
        match self.gamma.get_mut(from) {
            None => {
                // v joins Γ_u: C^v_u ← H_u, L^v_u ← L_v.
                self.gamma.insert(
                    from,
                    NeighborState {
                        joined_hw: hw,
                        estimate: ClockVar::with_value(msg.logical, hw),
                    },
                );
            }
            Some(st) => {
                // Refresh the estimate (module note 1); FIFO delivery makes
                // this the freshest information about v.
                st.estimate.overwrite(msg.logical, hw);
            }
        }
        // Line 21: Lmax_u ← max{Lmax_u, Lmax_v}.
        self.lmax.raise_to(msg.max_estimate, hw);
        self.adjust_clock(hw);
        ctx.set_timer(self.params.delta_t_prime(), TimerKind::Lost(from));
    }

    // Lines 1–10.
    fn on_discover(&mut self, ctx: &mut Context<'_>, change: LinkChange) {
        let other = change.edge.other(ctx.node);
        match change.kind {
            LinkChangeKind::Added => {
                ctx.send(other, self.message(ctx.hw));
                self.upsilon.insert(other);
            }
            LinkChangeKind::Removed => {
                self.gamma.remove(other);
                self.upsilon.remove(other);
            }
        }
        self.adjust_clock(ctx.hw);
    }

    // Lines 11–14 (lost) and 25–30 (tick).
    fn on_alarm(&mut self, ctx: &mut Context<'_>, kind: TimerKind) {
        match kind {
            TimerKind::Lost(v) => {
                self.gamma.remove(v);
                self.adjust_clock(ctx.hw);
            }
            TimerKind::Tick => {
                let msg = self.message(ctx.hw);
                for v in self.upsilon.iter() {
                    ctx.send(v, msg);
                }
                self.adjust_clock(ctx.hw);
                ctx.set_timer(self.params.delta_h, TimerKind::Tick);
            }
        }
    }

    fn logical_clock(&self, hw: f64) -> f64 {
        self.l.value(hw)
    }

    fn max_estimate(&self, hw: f64) -> f64 {
        self.lmax.value(hw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_clocks::Time;
    use gcs_net::{node, Edge};
    use gcs_sim::{Action, ModelParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> AlgoParams {
        AlgoParams::with_minimal_b0(ModelParams::new(0.01, 1.0, 2.0), 8, 0.5)
    }

    fn ctx_at<'a>(hw: f64, actions: &'a mut Vec<Action>, rng: &'a mut StdRng) -> Context<'a> {
        Context::new(node(0), Time::new(hw), hw, actions, rng)
    }

    #[test]
    fn starts_with_tick_timer() {
        let mut n = GradientNode::new(params());
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_start(&mut ctx_at(0.0, &mut actions, &mut rng));
        assert_eq!(
            actions,
            vec![Action::SetTimer {
                delta: 0.5,
                kind: TimerKind::Tick
            }]
        );
    }

    #[test]
    fn receive_installs_neighbor_and_estimate() {
        let mut n = GradientNode::new(params());
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_receive(
            &mut ctx_at(10.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 7.0,
                max_estimate: 12.0,
            },
        );
        assert_eq!(n.gamma().collect::<Vec<_>>(), vec![node(1)]);
        assert_eq!(n.upsilon().collect::<Vec<_>>(), vec![node(1)]);
        assert_eq!(n.estimate_of(node(1), 10.0), Some(7.0));
        // Estimate grows at our hardware rate.
        assert_eq!(n.estimate_of(node(1), 13.0), Some(10.0));
        assert_eq!(n.neighbor_state(node(1)).unwrap().joined_hw, 10.0);
        // Lmax was raised to 12 and L jumped to min(Lmax, est + B(0)).
        assert_eq!(n.max_estimate(10.0), 12.0);
        assert_eq!(n.logical_clock(10.0), 12.0); // B(0) huge => cap is Lmax
                                                 // lost timer armed with ΔT′.
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::SetTimer { kind: TimerKind::Lost(v), delta } if *v == node(1) && (*delta - params().delta_t_prime()).abs() < 1e-12
        )));
        assert!(actions.iter().any(
            |a| matches!(a, Action::CancelTimer { kind: TimerKind::Lost(v) } if *v == node(1))
        ));
    }

    #[test]
    fn budget_constrains_after_settling() {
        let p = params();
        let mut n = GradientNode::new(p);
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        // Neighbor joins at hw = 0 with estimate 0.
        n.on_receive(
            &mut ctx_at(0.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 0.0,
                max_estimate: 0.0,
            },
        );
        // Long afterwards (budget settled to B0), a huge Lmax arrives from
        // another neighbor; L may only rise to est(v) + B0.
        let hw = p.budget_settle_age() + 10.0;
        n.on_receive(
            &mut ctx_at(hw, &mut actions, &mut rng),
            node(2),
            Message {
                logical: 0.0,
                max_estimate: 1e6,
            },
        );
        // estimate of node 1 at hw grew to ~hw; cap = hw + B0 (node 2's
        // budget is fresh and huge, node 1's is settled at B0).
        let expect = hw + p.b0;
        assert!(
            (n.logical_clock(hw) - expect).abs() < 1e-9,
            "L = {}, expected {}",
            n.logical_clock(hw),
            expect
        );
        assert!(n.is_blocked(hw), "node should be blocked by node 1");
        assert_eq!(n.blocking_neighbor(hw), Some(node(1)));
    }

    #[test]
    fn adjust_without_neighbors_jumps_to_lmax() {
        let mut n = GradientNode::new(params());
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_receive(
            &mut ctx_at(5.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 3.0,
                max_estimate: 50.0,
            },
        );
        // Remove the neighbor via lost timer; AdjustClock then has no
        // Γ-constraint and L jumps to Lmax.
        n.on_alarm(
            &mut ctx_at(6.0, &mut actions, &mut rng),
            TimerKind::Lost(node(1)),
        );
        assert_eq!(n.gamma().count(), 0);
        assert_eq!(n.logical_clock(6.0), n.max_estimate(6.0));
    }

    #[test]
    fn discover_add_sends_current_state() {
        let mut n = GradientNode::new(params());
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_discover(
            &mut ctx_at(4.0, &mut actions, &mut rng),
            LinkChange {
                kind: LinkChangeKind::Added,
                edge: Edge::between(0, 3),
            },
        );
        assert_eq!(n.upsilon().collect::<Vec<_>>(), vec![node(3)]);
        assert!(matches!(
            actions[0],
            Action::Send { to, msg } if to == node(3) && msg.logical == 4.0
        ));
    }

    #[test]
    fn discover_remove_clears_both_sets() {
        let mut n = GradientNode::new(params());
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_receive(
            &mut ctx_at(1.0, &mut actions, &mut rng),
            node(2),
            Message {
                logical: 1.0,
                max_estimate: 1.0,
            },
        );
        n.on_discover(
            &mut ctx_at(2.0, &mut actions, &mut rng),
            LinkChange {
                kind: LinkChangeKind::Removed,
                edge: Edge::between(0, 2),
            },
        );
        assert_eq!(n.gamma().count(), 0);
        assert_eq!(n.upsilon().count(), 0);
    }

    #[test]
    fn tick_broadcasts_to_upsilon_and_rearms() {
        let mut n = GradientNode::new(params());
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        for i in 1..4 {
            n.on_discover(
                &mut ctx_at(0.0, &mut actions, &mut rng),
                LinkChange {
                    kind: LinkChangeKind::Added,
                    edge: Edge::between(0, i),
                },
            );
        }
        actions.clear();
        n.on_alarm(&mut ctx_at(1.0, &mut actions, &mut rng), TimerKind::Tick);
        let sends = actions
            .iter()
            .filter(|a| matches!(a, Action::Send { .. }))
            .count();
        assert_eq!(sends, 3);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                kind: TimerKind::Tick,
                ..
            }
        )));
    }

    #[test]
    fn rejoining_neighbor_resets_budget_age() {
        let p = params();
        let mut n = GradientNode::new(p);
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_receive(
            &mut ctx_at(0.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 0.0,
                max_estimate: 0.0,
            },
        );
        // Drop v from Γ via the lost alarm, then hear from it again much
        // later: C^v_u must be re-stamped (budget restarts from B(0)).
        n.on_alarm(
            &mut ctx_at(50.0, &mut actions, &mut rng),
            TimerKind::Lost(node(1)),
        );
        n.on_receive(
            &mut ctx_at(100.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 90.0,
                max_estimate: 120.0,
            },
        );
        assert_eq!(n.neighbor_state(node(1)).unwrap().joined_hw, 100.0);
        let b = n.budget_for(node(1), 100.0).unwrap();
        assert!((b - p.budget(0.0)).abs() < 1e-9);
    }

    #[test]
    fn weighted_edges_floor_at_scaled_b0() {
        let p = params();
        let mut n =
            GradientNode::with_weights(p, [(node(1), 0.25), (node(2), 1.0)].into_iter().collect());
        assert_eq!(n.weight_of(node(1)), 0.25);
        assert_eq!(n.weight_of(node(3)), 1.0); // default
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        for v in [1, 2] {
            n.on_receive(
                &mut ctx_at(0.0, &mut actions, &mut rng),
                node(v),
                Message {
                    logical: 0.0,
                    max_estimate: 0.0,
                },
            );
        }
        // Far beyond the settle age, the budgets floor at B0·w.
        let hw = p.budget_settle_age() * 2.0;
        let b1 = n.budget_for(node(1), hw).unwrap();
        let b2 = n.budget_for(node(2), hw).unwrap();
        assert!((b1 - 0.25 * p.b0).abs() < 1e-9, "weighted floor: {b1}");
        assert!((b2 - p.b0).abs() < 1e-9, "unit floor: {b2}");
        // At age 0 both budgets equal the (huge) fresh-edge value.
        let mut n2 = GradientNode::with_weights(p, [(node(1), 0.25)].into_iter().collect());
        n2.on_receive(
            &mut ctx_at(0.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 0.0,
                max_estimate: 0.0,
            },
        );
        assert!((n2.budget_for(node(1), 0.0).unwrap() - p.budget(0.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn oversized_weight_rejected() {
        let _ = GradientNode::with_weights(params(), [(node(1), 1.5)].into_iter().collect());
    }

    #[test]
    fn logical_clock_never_decreases_and_tracks_hw_between_events() {
        let mut n = GradientNode::new(params());
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_receive(
            &mut ctx_at(1.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 0.5,
                max_estimate: 9.0,
            },
        );
        let l1 = n.logical_clock(1.0);
        // Between events L grows exactly with hw.
        assert_eq!(n.logical_clock(3.5), l1 + 2.5);
        // A later event can only raise it further.
        n.on_receive(
            &mut ctx_at(4.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 2.0,
                max_estimate: 20.0,
            },
        );
        assert!(n.logical_clock(4.0) >= l1 + 3.0);
        assert!(n.jump_count() >= 1);
    }
}
