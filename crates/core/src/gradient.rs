//! Algorithm 2 as a [`gcs_sim::Automaton`].
//!
//! The implementation follows the paper's event handlers line by line; the
//! only interpretation notes are:
//!
//! 1. **`L^v_u` refresh.** The pseudocode's indentation puts `L^v_u ← L_v`
//!    inside the `if v ∉ Γ_u` branch, but the analysis (Lemma 6.5:
//!    "upon receiving the message node u sets `L^v_u ← L_v(t_s)`", FIFO
//!    argument) requires the estimate to be refreshed on *every* receipt.
//!    We refresh on every receipt.
//! 2. **`Γ ⊆ Υ` on early messages.** Discovery is per-endpoint, so a
//!    message can arrive from a neighbor whose `discover(add)` is still in
//!    flight. To preserve the paper's stated invariant `Γ_u ⊆ Υ_u` we also
//!    insert the sender into `Υ_u` on receipt (receiving a message is proof
//!    the edge exists).
//! 3. All clock-valued state is stored as offsets from the hardware clock
//!    ([`ClockVar`]), so "between events, the variables are increased at
//!    the rate of u's hardware clock" holds exactly.
//!
//! Per-neighbor state (`Γ_u`, `Υ_u`, weights) lives in the flat sorted
//! containers of [`crate::neighbors`] rather than tree maps: the per-event
//! path (`AdjustClock` scan, estimate refresh, tick broadcast) walks
//! contiguous arrays, memory stays `O(degree)` per node even at the
//! `n = 65 536` scale of E11, and iteration order is ascending node id —
//! identical to the old `BTreeMap` order, so execution traces are
//! unchanged.

use crate::budget::BudgetTable;
use crate::neighbors::{FlatMap, IdSet};
use crate::params::AlgoParams;
use crate::predicate;
use gcs_clocks::ClockVar;
use gcs_net::NodeId;
use gcs_sim::{Automaton, Context, LinkChange, LinkChangeKind, Message, TimerKind};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-neighbor state for `v ∈ Γ_u`.
#[derive(Clone, Copy, Debug)]
pub struct NeighborState {
    /// `C^v_u`: our hardware reading when `v` was last added to `Γ_u`.
    pub joined_hw: f64,
    /// `L^v_u`: estimate of `v`'s logical clock (grows at our rate).
    pub estimate: ClockVar,
}

/// Immutable configuration shared by every [`GradientNode`] of a run: the
/// algorithm parameters, the one sampled `B(·)` curve of the compact
/// automaton plane, and the idle-parking policy. One `Arc` replaces the
/// inline 72-byte `AlgoParams` copy (plus a per-node curve) in each of the
/// `n = 2^23` automata.
#[derive(Debug)]
pub struct GradientShared {
    params: AlgoParams,
    table: BudgetTable,
    park_idle: bool,
}

impl GradientShared {
    /// Builds the shared plane for `params`: the budget curve is sampled
    /// at quantum `ΔH/4` (the engine's event grid) out to the settle age,
    /// so steady-state edge ages resolve by table hit while anything
    /// off-grid falls back to the exact `budget_unfloored` path.
    pub fn new(params: AlgoParams) -> Self {
        let quantum = params.delta_h / 4.0;
        let settle = params.budget_settle_age();
        let len = if settle.is_finite() && settle > 0.0 {
            ((settle / quantum).ceil() as usize + 2).clamp(64, 4096)
        } else {
            64
        };
        GradientShared {
            params,
            table: BudgetTable::sample(quantum, len, |dt| params.budget_unfloored(dt)),
            park_idle: false,
        }
    }

    /// Enables idle parking: a node with empty `Υ_u` does not keep a tick
    /// timer armed and re-arms it on first contact (receive or
    /// discover-add). Protocol-invisible — an isolated node has `Γ_u = ∅`
    /// and `L_u = Lmax_u`, so its skipped ticks would neither send nor
    /// adjust anything — but it changes *event traces* (timer
    /// generations), so it is opt-in and default-off; existing recorded
    /// runs are untouched.
    pub fn with_idle_parking(mut self, on: bool) -> Self {
        self.park_idle = on;
        self
    }

    /// The algorithm parameters.
    pub fn params(&self) -> &AlgoParams {
        &self.params
    }

    /// The shared budget curve table.
    pub fn table(&self) -> &BudgetTable {
        &self.table
    }

    /// Whether idle parking is enabled.
    pub fn parks_idle(&self) -> bool {
        self.park_idle
    }

    /// The unfloored budget at subjective age `dt`: table hit when `dt`
    /// is exactly on the sampled grid (bit-identical by the
    /// [`BudgetTable`] contract), exact evaluation otherwise.
    #[inline]
    fn unfloored(&self, dt: f64) -> f64 {
        match self.table.lookup(dt) {
            Some(b) => b,
            None => self.params.budget_unfloored(dt),
        }
    }
}

/// One node running Algorithm 2.
#[derive(Clone, Debug)]
pub struct GradientNode {
    shared: Arc<GradientShared>,
    /// `L_u`.
    l: ClockVar,
    /// `Lmax_u`.
    lmax: ClockVar,
    /// `Γ_u` with per-neighbor state.
    gamma: FlatMap<NeighborState>,
    /// `Υ_u`.
    upsilon: IdSet,
    /// Count of discrete jumps of `L_u` (diagnostics).
    jumps: u64,
    /// Per-neighbor edge weights for the §7 weighted-graph extension: the
    /// budget toward `v` floors at `B0·w` instead of `B0`. `None` (the
    /// overwhelmingly common case) means every edge has weight 1 — the
    /// plain algorithm — at zero per-node cost; configured nodes carry a
    /// sparse sorted map of only the non-unit edges. In the
    /// companion-paper reading, the weight is the edge's relative delay
    /// uncertainty — e.g. a reference-broadcast link gets `w ≪ 1` and
    /// therefore a much tighter stable skew guarantee.
    weights: Option<Box<FlatMap<f64>>>,
    /// True while idle parking holds the tick timer disarmed.
    parked: bool,
}

impl GradientNode {
    /// A node at time 0: `L_u = Lmax_u = H_u = 0`, no neighbors.
    ///
    /// Builds a private [`GradientShared`]; scale scenarios should build
    /// one shared plane and use [`GradientNode::with_shared`] so the
    /// sampled curve is paid for once, not `n` times.
    pub fn new(params: AlgoParams) -> Self {
        Self::with_shared(Arc::new(GradientShared::new(params)))
    }

    /// A node over an existing shared plane (one `Arc` per run).
    pub fn with_shared(shared: Arc<GradientShared>) -> Self {
        GradientNode {
            shared,
            l: ClockVar::zeroed(),
            lmax: ClockVar::zeroed(),
            gamma: FlatMap::new(),
            upsilon: IdSet::new(),
            jumps: 0,
            weights: None,
            parked: false,
        }
    }

    /// A node with per-neighbor edge weights (the weighted-graph extension
    /// sketched in the paper's conclusion; weights must be in `(0, 1]` so
    /// the standard analysis still upper-bounds every budget).
    pub fn with_weights(params: AlgoParams, weights: BTreeMap<NodeId, f64>) -> Self {
        let mut sparse = FlatMap::new();
        for (&v, &w) in &weights {
            assert!(
                w > 0.0 && w <= 1.0,
                "edge weight toward {v:?} must be in (0, 1], got {w}"
            );
            sparse.insert(v, w);
        }
        GradientNode {
            weights: (!sparse.is_empty()).then(|| Box::new(sparse)),
            ..Self::new(params)
        }
    }

    /// The weight of the edge toward `v` (1.0 unless configured).
    pub fn weight_of(&self, v: NodeId) -> f64 {
        self.weights
            .as_ref()
            .and_then(|w| w.get(v).copied())
            .unwrap_or(1.0)
    }

    /// The effective budget toward `v` at subjective edge age `dt`:
    /// `max{B0·w_v, unfloored B(dt)}`.
    fn budget_at(&self, v: NodeId, dt: f64) -> f64 {
        predicate::effective_budget(
            self.shared.unfloored(dt),
            self.shared.params.b0 * self.weight_of(v),
        )
    }

    /// The parameters this node runs with.
    pub fn params(&self) -> &AlgoParams {
        &self.shared.params
    }

    /// The shared plane this node resolves budgets against.
    pub fn shared(&self) -> &Arc<GradientShared> {
        &self.shared
    }

    /// Current `Γ_u`.
    pub fn gamma(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.gamma.keys()
    }

    /// Current `Υ_u`.
    pub fn upsilon(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.upsilon.iter()
    }

    /// Per-neighbor state, if `v ∈ Γ_u`.
    pub fn neighbor_state(&self, v: NodeId) -> Option<&NeighborState> {
        self.gamma.get(v)
    }

    /// `B^v_u` — the current budget toward `v`, if `v ∈ Γ_u`.
    pub fn budget_for(&self, v: NodeId, hw: f64) -> Option<f64> {
        self.gamma
            .get(v)
            .map(|st| self.budget_at(v, hw - st.joined_hw))
    }

    /// `L^v_u` — the current estimate of `v`'s clock, if `v ∈ Γ_u`.
    pub fn estimate_of(&self, v: NodeId, hw: f64) -> Option<f64> {
        self.gamma.get(v).map(|st| st.estimate.value(hw))
    }

    /// The neighbor caps `(L^v_u, B^v_u)` for every `v ∈ Γ_u` at hardware
    /// reading `hw`, in ascending node-id order — exactly the tuples the
    /// pure [`predicate`] functions consume. The model checker rebuilds
    /// the Definition 6.1 predicate from this same iterator, so automaton
    /// and checker share one encoding.
    pub fn neighbor_caps(&self, hw: f64) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.gamma
            .iter()
            .map(move |(v, st)| (st.estimate.value(hw), self.budget_at(v, hw - st.joined_hw)))
    }

    /// Definition 6.1: `u` is *blocked* if `Lmax_u > L_u` and some
    /// `v ∈ Γ_u` has `L_u − L^v_u > B^v_u`.
    pub fn is_blocked(&self, hw: f64) -> bool {
        predicate::is_blocked(
            self.l.value(hw),
            self.lmax.value(hw),
            self.neighbor_caps(hw),
        )
    }

    /// A neighbor currently blocking `u`, if any.
    pub fn blocking_neighbor(&self, hw: f64) -> Option<NodeId> {
        let l = self.l.value(hw);
        if self.lmax.value(hw) <= l {
            return None;
        }
        self.gamma.iter().find_map(|(v, st)| {
            let b = self.budget_at(v, hw - st.joined_hw);
            predicate::neighbor_blocks(l, st.estimate.value(hw), b).then_some(v)
        })
    }

    /// Number of discrete clock jumps so far.
    pub fn jump_count(&self) -> u64 {
        self.jumps
    }

    /// Procedure `AdjustClock`:
    /// `L_u ← max{L_u, min{Lmax_u, min_{v∈Γ}(L^v_u + B(H_u − C^v_u))}}`.
    fn adjust_clock(&mut self, hw: f64) {
        let target = predicate::advance_target(self.lmax.value(hw), self.neighbor_caps(hw));
        if predicate::should_jump(target, self.l.value(hw)) {
            self.l.set(target, hw);
            self.jumps += 1;
        }
    }

    fn message(&self, hw: f64) -> Message {
        Message {
            logical: self.l.value(hw),
            max_estimate: self.lmax.value(hw),
        }
    }

    /// Re-arms the tick timer if idle parking had it disarmed. Called on
    /// first contact (receive, discover-add); a parked node has
    /// `Υ_u = ∅` and `L_u = Lmax_u`, so no tick was observable while
    /// parked.
    fn wake(&mut self, ctx: &mut Context<'_>) {
        if self.parked {
            self.parked = false;
            ctx.set_timer(self.shared.params.delta_h, TimerKind::Tick);
        }
    }

    /// Packs `Γ_u` and `Υ_u` into `out` and drains them, leaving a hollow
    /// node whose inline scalars (`L`, `Lmax`, jump count, parked flag)
    /// still answer [`Automaton::logical_clock`] exactly. Refuses (and
    /// leaves the node untouched) when edge weights are configured —
    /// weighted nodes are rare and stay hot. Returns whether it packed.
    ///
    /// Encoding (little-endian): `Γ` length (`u32`), then per neighbor
    /// `id:u32`, an age code for `C^v_u` — tag `1` + `u32` grid index
    /// when the join stamp sits exactly on the shared table's quantum
    /// grid, else tag `0` + raw `f64` bits — and the raw bits of the
    /// estimate offset; then `Υ` length (`u32`) and its ids.
    fn pack_cold_impl(&mut self, out: &mut Vec<u8>) -> bool {
        if self.weights.is_some() {
            return false;
        }
        let q = self.shared.table.quantum();
        out.extend_from_slice(&(self.gamma.len() as u32).to_le_bytes());
        for (v, st) in self.gamma.iter() {
            out.extend_from_slice(&(v.index() as u32).to_le_bytes());
            match hw_grid_code(q, st.joined_hw) {
                Some(k) => {
                    out.push(1);
                    out.extend_from_slice(&k.to_le_bytes());
                }
                None => {
                    out.push(0);
                    out.extend_from_slice(&st.joined_hw.to_bits().to_le_bytes());
                }
            }
            out.extend_from_slice(&st.estimate.offset().to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(self.upsilon.len() as u32).to_le_bytes());
        for v in self.upsilon.iter() {
            out.extend_from_slice(&(v.index() as u32).to_le_bytes());
        }
        self.gamma = FlatMap::new();
        self.upsilon = IdSet::new();
        true
    }

    /// Rebuilds `Γ_u` and `Υ_u` from a [`Self::pack_cold_impl`] blob.
    /// Exact inverse: grid-coded join stamps decode to the identical
    /// float by the quantum-reconstruction contract, raw-coded ones by
    /// bit transport.
    fn unpack_cold_impl(&mut self, bytes: &[u8]) {
        let q = self.shared.table.quantum();
        let mut r = ColdReader::new(bytes);
        let glen = r.u32() as usize;
        for _ in 0..glen {
            let id = NodeId::from_index(r.u32() as usize);
            let joined_hw = match r.u8() {
                1 => r.u32() as f64 * q,
                _ => f64::from_bits(r.u64()),
            };
            let offset = f64::from_bits(r.u64());
            // Entries were packed in ascending id order, so each insert
            // appends at the end of the flat map.
            self.gamma.insert(
                id,
                NeighborState {
                    joined_hw,
                    estimate: ClockVar::with_value(offset, 0.0),
                },
            );
        }
        let ulen = r.u32() as usize;
        for _ in 0..ulen {
            self.upsilon.insert(NodeId::from_index(r.u32() as usize));
        }
        r.finish();
    }
}

/// The `u32` grid code of `hw` on quantum `q`, if `k·q` reproduces `hw`
/// bit-for-bit (same reconstruction contract as
/// [`BudgetTable::grid_index`], but over the full `u32` index range so it
/// covers join *stamps*, not just ages).
fn hw_grid_code(q: f64, hw: f64) -> Option<u32> {
    let r = hw / q;
    if !(r >= 0.0 && r <= u32::MAX as f64) {
        return None;
    }
    let k = r.round();
    ((k * q).to_bits() == hw.to_bits()).then_some(k as u32)
}

/// Little-endian cursor over a cold blob; panics on truncation (a packed
/// blob is produced and consumed by the same code, so truncation is a
/// bug, not an input condition).
struct ColdReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ColdReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        ColdReader { bytes, pos: 0 }
    }

    fn take<const N: usize>(&mut self) -> [u8; N] {
        let out: [u8; N] = self.bytes[self.pos..self.pos + N].try_into().unwrap();
        self.pos += N;
        out
    }

    fn u8(&mut self) -> u8 {
        self.take::<1>()[0]
    }

    fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take())
    }

    fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take())
    }

    fn finish(self) {
        assert_eq!(self.pos, self.bytes.len(), "cold blob has trailing bytes");
    }
}

impl Automaton for GradientNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.shared.park_idle && self.upsilon.is_empty() {
            self.parked = true;
        } else {
            ctx.set_timer(self.shared.params.delta_h, TimerKind::Tick);
        }
    }

    // Crash/restart with state loss: parameters and edge weights are
    // configuration, every clock and neighbor variable resets to the
    // time-0 state of [`GradientNode::new`].
    fn try_reboot(&self) -> Result<Self, gcs_sim::RebootUnsupported> {
        Ok(GradientNode {
            weights: self.weights.clone(),
            ..Self::with_shared(self.shared.clone())
        })
    }

    // Lines 15–24 of Algorithm 2.
    fn on_receive(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Message) {
        let hw = ctx.hw;
        self.wake(ctx);
        ctx.cancel_timer(TimerKind::Lost(from));
        self.upsilon.insert(from); // see module note 2
        match self.gamma.get_mut(from) {
            None => {
                // v joins Γ_u: C^v_u ← H_u, L^v_u ← L_v.
                self.gamma.insert(
                    from,
                    NeighborState {
                        joined_hw: hw,
                        estimate: ClockVar::with_value(msg.logical, hw),
                    },
                );
            }
            Some(st) => {
                // Refresh the estimate (module note 1); FIFO delivery makes
                // this the freshest information about v.
                st.estimate.overwrite(msg.logical, hw);
            }
        }
        // Line 21: Lmax_u ← max{Lmax_u, Lmax_v}.
        self.lmax.raise_to(msg.max_estimate, hw);
        self.adjust_clock(hw);
        ctx.set_timer(self.shared.params.delta_t_prime(), TimerKind::Lost(from));
    }

    // Lines 1–10.
    fn on_discover(&mut self, ctx: &mut Context<'_>, change: LinkChange) {
        let other = change.edge.other(ctx.node);
        match change.kind {
            LinkChangeKind::Added => {
                self.wake(ctx);
                ctx.send(other, self.message(ctx.hw));
                self.upsilon.insert(other);
            }
            LinkChangeKind::Removed => {
                self.gamma.remove(other);
                self.upsilon.remove(other);
            }
        }
        self.adjust_clock(ctx.hw);
    }

    // Lines 11–14 (lost) and 25–30 (tick).
    fn on_alarm(&mut self, ctx: &mut Context<'_>, kind: TimerKind) {
        match kind {
            TimerKind::Lost(v) => {
                self.gamma.remove(v);
                self.adjust_clock(ctx.hw);
            }
            TimerKind::Tick => {
                let msg = self.message(ctx.hw);
                for v in self.upsilon.iter() {
                    ctx.send(v, msg);
                }
                self.adjust_clock(ctx.hw);
                if self.shared.park_idle && self.upsilon.is_empty() {
                    // Idle parking: an isolated node has Γ_u = ∅ (the
                    // Γ ⊆ Υ invariant) and L_u = Lmax_u, so further
                    // ticks would neither send nor adjust — stop
                    // re-arming until first contact wakes us.
                    self.parked = true;
                } else {
                    ctx.set_timer(self.shared.params.delta_h, TimerKind::Tick);
                }
            }
        }
    }

    fn logical_clock(&self, hw: f64) -> f64 {
        self.l.value(hw)
    }

    fn max_estimate(&self, hw: f64) -> f64 {
        self.lmax.value(hw)
    }

    // The compact-plane cold tier (PR 8): quiescence, pack, rehydrate.

    fn quiescent(&self) -> bool {
        self.gamma.is_empty() && self.upsilon.is_empty()
    }

    fn pack_cold(&mut self, out: &mut Vec<u8>) -> bool {
        self.pack_cold_impl(out)
    }

    fn unpack_cold(&mut self, bytes: &[u8]) {
        self.unpack_cold_impl(bytes);
    }

    fn heap_bytes(&self) -> usize {
        self.gamma.heap_bytes()
            + self.upsilon.heap_bytes()
            + self
                .weights
                .as_ref()
                .map(|w| std::mem::size_of::<FlatMap<f64>>() + w.heap_bytes())
                .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_clocks::Time;
    use gcs_net::{node, Edge};
    use gcs_sim::{Action, ModelParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> AlgoParams {
        AlgoParams::with_minimal_b0(ModelParams::new(0.01, 1.0, 2.0), 8, 0.5)
    }

    fn ctx_at<'a>(hw: f64, actions: &'a mut Vec<Action>, rng: &'a mut StdRng) -> Context<'a> {
        Context::new(node(0), Time::new(hw), hw, actions, rng)
    }

    #[test]
    fn starts_with_tick_timer() {
        let mut n = GradientNode::new(params());
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_start(&mut ctx_at(0.0, &mut actions, &mut rng));
        assert_eq!(
            actions,
            vec![Action::SetTimer {
                delta: 0.5,
                kind: TimerKind::Tick
            }]
        );
    }

    #[test]
    fn receive_installs_neighbor_and_estimate() {
        let mut n = GradientNode::new(params());
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_receive(
            &mut ctx_at(10.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 7.0,
                max_estimate: 12.0,
            },
        );
        assert_eq!(n.gamma().collect::<Vec<_>>(), vec![node(1)]);
        assert_eq!(n.upsilon().collect::<Vec<_>>(), vec![node(1)]);
        assert_eq!(n.estimate_of(node(1), 10.0), Some(7.0));
        // Estimate grows at our hardware rate.
        assert_eq!(n.estimate_of(node(1), 13.0), Some(10.0));
        assert_eq!(n.neighbor_state(node(1)).unwrap().joined_hw, 10.0);
        // Lmax was raised to 12 and L jumped to min(Lmax, est + B(0)).
        assert_eq!(n.max_estimate(10.0), 12.0);
        assert_eq!(n.logical_clock(10.0), 12.0); // B(0) huge => cap is Lmax
                                                 // lost timer armed with ΔT′.
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::SetTimer { kind: TimerKind::Lost(v), delta } if *v == node(1) && (*delta - params().delta_t_prime()).abs() < 1e-12
        )));
        assert!(actions.iter().any(
            |a| matches!(a, Action::CancelTimer { kind: TimerKind::Lost(v) } if *v == node(1))
        ));
    }

    #[test]
    fn budget_constrains_after_settling() {
        let p = params();
        let mut n = GradientNode::new(p);
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        // Neighbor joins at hw = 0 with estimate 0.
        n.on_receive(
            &mut ctx_at(0.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 0.0,
                max_estimate: 0.0,
            },
        );
        // Long afterwards (budget settled to B0), a huge Lmax arrives from
        // another neighbor; L may only rise to est(v) + B0.
        let hw = p.budget_settle_age() + 10.0;
        n.on_receive(
            &mut ctx_at(hw, &mut actions, &mut rng),
            node(2),
            Message {
                logical: 0.0,
                max_estimate: 1e6,
            },
        );
        // estimate of node 1 at hw grew to ~hw; cap = hw + B0 (node 2's
        // budget is fresh and huge, node 1's is settled at B0).
        let expect = hw + p.b0;
        assert!(
            (n.logical_clock(hw) - expect).abs() < 1e-9,
            "L = {}, expected {}",
            n.logical_clock(hw),
            expect
        );
        assert!(n.is_blocked(hw), "node should be blocked by node 1");
        assert_eq!(n.blocking_neighbor(hw), Some(node(1)));
    }

    #[test]
    fn adjust_without_neighbors_jumps_to_lmax() {
        let mut n = GradientNode::new(params());
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_receive(
            &mut ctx_at(5.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 3.0,
                max_estimate: 50.0,
            },
        );
        // Remove the neighbor via lost timer; AdjustClock then has no
        // Γ-constraint and L jumps to Lmax.
        n.on_alarm(
            &mut ctx_at(6.0, &mut actions, &mut rng),
            TimerKind::Lost(node(1)),
        );
        assert_eq!(n.gamma().count(), 0);
        assert_eq!(n.logical_clock(6.0), n.max_estimate(6.0));
    }

    #[test]
    fn discover_add_sends_current_state() {
        let mut n = GradientNode::new(params());
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_discover(
            &mut ctx_at(4.0, &mut actions, &mut rng),
            LinkChange {
                kind: LinkChangeKind::Added,
                edge: Edge::between(0, 3),
            },
        );
        assert_eq!(n.upsilon().collect::<Vec<_>>(), vec![node(3)]);
        assert!(matches!(
            actions[0],
            Action::Send { to, msg } if to == node(3) && msg.logical == 4.0
        ));
    }

    #[test]
    fn discover_remove_clears_both_sets() {
        let mut n = GradientNode::new(params());
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_receive(
            &mut ctx_at(1.0, &mut actions, &mut rng),
            node(2),
            Message {
                logical: 1.0,
                max_estimate: 1.0,
            },
        );
        n.on_discover(
            &mut ctx_at(2.0, &mut actions, &mut rng),
            LinkChange {
                kind: LinkChangeKind::Removed,
                edge: Edge::between(0, 2),
            },
        );
        assert_eq!(n.gamma().count(), 0);
        assert_eq!(n.upsilon().count(), 0);
    }

    #[test]
    fn tick_broadcasts_to_upsilon_and_rearms() {
        let mut n = GradientNode::new(params());
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        for i in 1..4 {
            n.on_discover(
                &mut ctx_at(0.0, &mut actions, &mut rng),
                LinkChange {
                    kind: LinkChangeKind::Added,
                    edge: Edge::between(0, i),
                },
            );
        }
        actions.clear();
        n.on_alarm(&mut ctx_at(1.0, &mut actions, &mut rng), TimerKind::Tick);
        let sends = actions
            .iter()
            .filter(|a| matches!(a, Action::Send { .. }))
            .count();
        assert_eq!(sends, 3);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                kind: TimerKind::Tick,
                ..
            }
        )));
    }

    #[test]
    fn rejoining_neighbor_resets_budget_age() {
        let p = params();
        let mut n = GradientNode::new(p);
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_receive(
            &mut ctx_at(0.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 0.0,
                max_estimate: 0.0,
            },
        );
        // Drop v from Γ via the lost alarm, then hear from it again much
        // later: C^v_u must be re-stamped (budget restarts from B(0)).
        n.on_alarm(
            &mut ctx_at(50.0, &mut actions, &mut rng),
            TimerKind::Lost(node(1)),
        );
        n.on_receive(
            &mut ctx_at(100.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 90.0,
                max_estimate: 120.0,
            },
        );
        assert_eq!(n.neighbor_state(node(1)).unwrap().joined_hw, 100.0);
        let b = n.budget_for(node(1), 100.0).unwrap();
        assert!((b - p.budget(0.0)).abs() < 1e-9);
    }

    #[test]
    fn weighted_edges_floor_at_scaled_b0() {
        let p = params();
        let mut n =
            GradientNode::with_weights(p, [(node(1), 0.25), (node(2), 1.0)].into_iter().collect());
        assert_eq!(n.weight_of(node(1)), 0.25);
        assert_eq!(n.weight_of(node(3)), 1.0); // default
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        for v in [1, 2] {
            n.on_receive(
                &mut ctx_at(0.0, &mut actions, &mut rng),
                node(v),
                Message {
                    logical: 0.0,
                    max_estimate: 0.0,
                },
            );
        }
        // Far beyond the settle age, the budgets floor at B0·w.
        let hw = p.budget_settle_age() * 2.0;
        let b1 = n.budget_for(node(1), hw).unwrap();
        let b2 = n.budget_for(node(2), hw).unwrap();
        assert!((b1 - 0.25 * p.b0).abs() < 1e-9, "weighted floor: {b1}");
        assert!((b2 - p.b0).abs() < 1e-9, "unit floor: {b2}");
        // At age 0 both budgets equal the (huge) fresh-edge value.
        let mut n2 = GradientNode::with_weights(p, [(node(1), 0.25)].into_iter().collect());
        n2.on_receive(
            &mut ctx_at(0.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 0.0,
                max_estimate: 0.0,
            },
        );
        assert!((n2.budget_for(node(1), 0.0).unwrap() - p.budget(0.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn oversized_weight_rejected() {
        let _ = GradientNode::with_weights(params(), [(node(1), 1.5)].into_iter().collect());
    }

    #[test]
    fn shared_table_hits_match_exact_budget_bitwise() {
        let p = params();
        let shared = GradientShared::new(p);
        let q = shared.table().quantum();
        // Every grid age must resolve to the exact evaluation bit-for-bit,
        // and off-grid ages must take the exact path (trivially equal).
        for k in 0..shared.table().len() {
            let dt = k as f64 * q;
            assert_eq!(
                shared.unfloored(dt).to_bits(),
                p.budget_unfloored(dt).to_bits(),
                "grid age {dt}"
            );
        }
        for dt in [0.01, 1.0 / 3.0, 7.7, 1e6, -0.5] {
            assert_eq!(
                shared.unfloored(dt).to_bits(),
                p.budget_unfloored(dt).to_bits(),
                "off-grid age {dt}"
            );
        }
        // The table must cover the whole pre-settle ramp.
        assert!(shared.table().len() as f64 * q >= p.budget_settle_age());
    }

    #[test]
    fn idle_parking_arms_no_tick_until_contact() {
        let shared = Arc::new(GradientShared::new(params()).with_idle_parking(true));
        let mut n = GradientNode::with_shared(shared);
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_start(&mut ctx_at(0.0, &mut actions, &mut rng));
        assert!(actions.is_empty(), "parked start must emit nothing");
        // First contact wakes the node: the tick timer is re-armed.
        n.on_discover(
            &mut ctx_at(2.0, &mut actions, &mut rng),
            LinkChange {
                kind: LinkChangeKind::Added,
                edge: Edge::between(0, 1),
            },
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                kind: TimerKind::Tick,
                ..
            }
        )));
        // Neighbor leaves; the next tick finds Υ empty and re-parks.
        n.on_discover(
            &mut ctx_at(3.0, &mut actions, &mut rng),
            LinkChange {
                kind: LinkChangeKind::Removed,
                edge: Edge::between(0, 1),
            },
        );
        actions.clear();
        n.on_alarm(&mut ctx_at(3.5, &mut actions, &mut rng), TimerKind::Tick);
        assert!(
            actions.is_empty(),
            "tick with empty Υ must neither send nor re-arm: {actions:?}"
        );
        // A receive also wakes.
        n.on_receive(
            &mut ctx_at(4.0, &mut actions, &mut rng),
            node(2),
            Message {
                logical: 1.0,
                max_estimate: 1.0,
            },
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                kind: TimerKind::Tick,
                ..
            }
        )));
    }

    #[test]
    fn cold_roundtrip_restores_identical_state() {
        let p = params();
        let mut n = GradientNode::new(p);
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        // One on-grid join stamp (0.125-multiples of ΔH/4) and one
        // off-grid stamp, so both age codes are exercised.
        n.on_receive(
            &mut ctx_at(1.0, &mut actions, &mut rng),
            node(3),
            Message {
                logical: 0.25,
                max_estimate: 9.0,
            },
        );
        n.on_receive(
            &mut ctx_at(2.0 + 1e-3, &mut actions, &mut rng),
            node(7),
            Message {
                logical: 1.75,
                max_estimate: 11.0,
            },
        );
        n.on_discover(
            &mut ctx_at(2.5, &mut actions, &mut rng),
            LinkChange {
                kind: LinkChangeKind::Added,
                edge: Edge::between(0, 9),
            },
        );
        let before = n.clone();
        let mut blob = Vec::new();
        assert!(n.pack_cold(&mut blob), "unweighted node must pack");
        assert!(n.quiescent(), "packed node is drained");
        assert_eq!(n.heap_bytes(), 0, "drained node holds no heap");
        assert_eq!(
            n.logical_clock(5.0).to_bits(),
            before.logical_clock(5.0).to_bits(),
            "inline clocks must survive the drain"
        );
        n.unpack_cold(&blob);
        let hw = 6.0;
        assert_eq!(
            n.upsilon().collect::<Vec<_>>(),
            before.upsilon().collect::<Vec<_>>()
        );
        let caps_a: Vec<_> = n.neighbor_caps(hw).collect();
        let caps_b: Vec<_> = before.neighbor_caps(hw).collect();
        assert_eq!(caps_a.len(), caps_b.len());
        for ((la, ba), (lb, bb)) in caps_a.iter().zip(&caps_b) {
            assert_eq!(la.to_bits(), lb.to_bits(), "estimate bits");
            assert_eq!(ba.to_bits(), bb.to_bits(), "budget bits");
        }
        for v in [node(3), node(7)] {
            assert_eq!(
                n.neighbor_state(v).unwrap().joined_hw.to_bits(),
                before.neighbor_state(v).unwrap().joined_hw.to_bits()
            );
        }
        assert_eq!(n.is_blocked(hw), before.is_blocked(hw));
    }

    #[test]
    fn weighted_nodes_refuse_to_pack() {
        let mut n = GradientNode::with_weights(params(), [(node(1), 0.25)].into_iter().collect());
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_receive(
            &mut ctx_at(0.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 0.0,
                max_estimate: 0.0,
            },
        );
        let mut blob = Vec::new();
        assert!(!n.pack_cold(&mut blob));
        assert!(blob.is_empty());
        assert_eq!(n.gamma().count(), 1, "refusal must not drain");
    }

    #[test]
    fn logical_clock_never_decreases_and_tracks_hw_between_events() {
        let mut n = GradientNode::new(params());
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_receive(
            &mut ctx_at(1.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 0.5,
                max_estimate: 9.0,
            },
        );
        let l1 = n.logical_clock(1.0);
        // Between events L grows exactly with hw.
        assert_eq!(n.logical_clock(3.5), l1 + 2.5);
        // A later event can only raise it further.
        n.on_receive(
            &mut ctx_at(4.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 2.0,
                max_estimate: 20.0,
            },
        );
        assert!(n.logical_clock(4.0) >= l1 + 3.0);
        assert!(n.jump_count() >= 1);
    }
}
