//! Baseline algorithms the paper's algorithm is compared against.
//!
//! * [`MaxSyncNode`] — pure max-estimate chasing (Srikanth–Toueg style
//!   \[18\]): asymptotically optimal *global* skew, but nodes jump to the
//!   freshest max estimate unconditionally, so a newly formed edge between
//!   far-apart nodes makes the behind endpoint jump by the full skew, which
//!   momentarily shows up on all of its *old* edges.
//! * Constant-budget gradient — run [`GradientNode`](crate::GradientNode)
//!   with [`BudgetPolicy::Constant`](crate::BudgetPolicy): the static
//!   algorithm of Locher–Wattenhofer \[13\] applied unchanged to a dynamic
//!   graph. A fresh high-skew edge then *blocks* its ahead endpoint
//!   immediately, dragging it (and transitively its whole cluster) behind
//!   `Lmax` while the skew closes — exactly the failure mode the paper's
//!   aging budget is designed to avoid.

pub mod max_sync;

pub use max_sync::MaxSyncNode;
