//! The max-chasing baseline.
//!
//! Every node floods `⟨L, Lmax⟩` every `ΔH` subjective time and sets
//! `L ← Lmax` after every event. This is the classical approach to optimal
//! global skew (cf. Srikanth–Toueg \[18\]); it provides *no* gradient
//! property: whatever skew exists between two nodes when an edge forms
//! between them is resolved by an instantaneous jump of the behind node,
//! which then propagates as a jump wave over its old edges.

use crate::neighbors::IdSet;
use gcs_clocks::ClockVar;
use gcs_net::NodeId;
use gcs_sim::{Automaton, Context, LinkChange, LinkChangeKind, Message, TimerKind};

/// One node of the max-chasing baseline.
#[derive(Clone, Debug)]
pub struct MaxSyncNode {
    delta_h: f64,
    l: ClockVar,
    lmax: ClockVar,
    upsilon: IdSet,
    jumps: u64,
}

impl MaxSyncNode {
    /// A node with resend interval `ΔH`.
    pub fn new(delta_h: f64) -> Self {
        assert!(delta_h > 0.0);
        MaxSyncNode {
            delta_h,
            l: ClockVar::zeroed(),
            lmax: ClockVar::zeroed(),
            upsilon: IdSet::new(),
            jumps: 0,
        }
    }

    /// Believed neighbors.
    pub fn upsilon(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.upsilon.iter()
    }

    /// Number of discrete jumps of `L` so far.
    pub fn jump_count(&self) -> u64 {
        self.jumps
    }

    fn chase(&mut self, hw: f64) {
        let lmax = self.lmax.value(hw);
        if lmax > self.l.value(hw) {
            self.l.set(lmax, hw);
            self.jumps += 1;
        }
    }

    fn message(&self, hw: f64) -> Message {
        Message {
            logical: self.l.value(hw),
            max_estimate: self.lmax.value(hw),
        }
    }
}

impl Automaton for MaxSyncNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.delta_h, TimerKind::Tick);
    }

    // Crash/restart with state loss: only the tick period is configuration.
    fn try_reboot(&self) -> Result<Self, gcs_sim::RebootUnsupported> {
        Ok(MaxSyncNode::new(self.delta_h))
    }

    fn on_receive(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Message) {
        self.upsilon.insert(from);
        self.lmax
            .raise_to(msg.max_estimate.max(msg.logical), ctx.hw);
        self.chase(ctx.hw);
    }

    fn on_discover(&mut self, ctx: &mut Context<'_>, change: LinkChange) {
        let other = change.edge.other(ctx.node);
        match change.kind {
            LinkChangeKind::Added => {
                ctx.send(other, self.message(ctx.hw));
                self.upsilon.insert(other);
            }
            LinkChangeKind::Removed => {
                self.upsilon.remove(other);
            }
        }
    }

    fn on_alarm(&mut self, ctx: &mut Context<'_>, kind: TimerKind) {
        if kind == TimerKind::Tick {
            let msg = self.message(ctx.hw);
            for v in self.upsilon.iter() {
                ctx.send(v, msg);
            }
            ctx.set_timer(self.delta_h, TimerKind::Tick);
        }
    }

    fn logical_clock(&self, hw: f64) -> f64 {
        self.l.value(hw)
    }

    fn max_estimate(&self, hw: f64) -> f64 {
        self.lmax.value(hw)
    }

    // Compact-plane cold tier: the baseline's only heap state is Υ, and
    // the inline clocks survive the drain. The baseline never parks its
    // tick timer, so the engine's eviction sweep (which requires no armed
    // timer) will not evict live MaxSync nodes — the encoding exists for
    // crashed ones and for symmetry with [`crate::GradientNode`].
    fn quiescent(&self) -> bool {
        self.upsilon.is_empty()
    }

    fn pack_cold(&mut self, out: &mut Vec<u8>) -> bool {
        out.extend_from_slice(&(self.upsilon.len() as u32).to_le_bytes());
        for v in self.upsilon.iter() {
            out.extend_from_slice(&(v.index() as u32).to_le_bytes());
        }
        self.upsilon = IdSet::new();
        true
    }

    fn unpack_cold(&mut self, bytes: &[u8]) {
        let n = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        assert_eq!(bytes.len(), 4 + 4 * n, "malformed cold blob");
        for i in 0..n {
            let at = 4 + 4 * i;
            let id = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            self.upsilon.insert(NodeId::from_index(id as usize));
        }
    }

    fn heap_bytes(&self) -> usize {
        self.upsilon.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_clocks::Time;
    use gcs_net::{node, Edge};
    use gcs_sim::Action;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx_at<'a>(hw: f64, actions: &'a mut Vec<Action>, rng: &'a mut StdRng) -> Context<'a> {
        Context::new(node(0), Time::new(hw), hw, actions, rng)
    }

    #[test]
    fn jumps_to_received_max_immediately() {
        let mut n = MaxSyncNode::new(0.5);
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_receive(
            &mut ctx_at(2.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 40.0,
                max_estimate: 50.0,
            },
        );
        assert_eq!(n.logical_clock(2.0), 50.0);
        assert_eq!(n.max_estimate(2.0), 50.0);
        assert_eq!(n.jump_count(), 1);
    }

    #[test]
    fn logical_equals_lmax_after_every_event() {
        let mut n = MaxSyncNode::new(0.5);
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        for (hw, lv) in [(1.0, 3.0), (2.0, 2.0), (3.0, 9.0)] {
            n.on_receive(
                &mut ctx_at(hw, &mut actions, &mut rng),
                node(1),
                Message {
                    logical: lv,
                    max_estimate: lv,
                },
            );
            assert_eq!(n.logical_clock(hw), n.max_estimate(hw));
        }
    }

    #[test]
    fn tick_floods_and_rearms() {
        let mut n = MaxSyncNode::new(0.5);
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_discover(
            &mut ctx_at(0.0, &mut actions, &mut rng),
            LinkChange {
                kind: LinkChangeKind::Added,
                edge: Edge::between(0, 1),
            },
        );
        actions.clear();
        n.on_alarm(&mut ctx_at(1.0, &mut actions, &mut rng), TimerKind::Tick);
        assert!(matches!(actions[0], Action::Send { to, .. } if to == node(1)));
        assert!(matches!(
            actions[1],
            Action::SetTimer {
                kind: TimerKind::Tick,
                ..
            }
        ));
    }

    #[test]
    fn removal_stops_sending() {
        let mut n = MaxSyncNode::new(0.5);
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_discover(
            &mut ctx_at(0.0, &mut actions, &mut rng),
            LinkChange {
                kind: LinkChangeKind::Added,
                edge: Edge::between(0, 1),
            },
        );
        n.on_discover(
            &mut ctx_at(1.0, &mut actions, &mut rng),
            LinkChange {
                kind: LinkChangeKind::Removed,
                edge: Edge::between(0, 1),
            },
        );
        actions.clear();
        n.on_alarm(&mut ctx_at(2.0, &mut actions, &mut rng), TimerKind::Tick);
        assert!(!actions.iter().any(|a| matches!(a, Action::Send { .. })));
    }

    #[test]
    fn cold_roundtrip_preserves_upsilon_and_clocks() {
        let mut n = MaxSyncNode::new(0.5);
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        for i in [4usize, 1, 9] {
            n.on_discover(
                &mut ctx_at(0.0, &mut actions, &mut rng),
                LinkChange {
                    kind: LinkChangeKind::Added,
                    edge: Edge::between(0, i),
                },
            );
        }
        n.on_receive(
            &mut ctx_at(1.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 7.0,
                max_estimate: 7.0,
            },
        );
        let before = n.clone();
        let mut blob = Vec::new();
        assert!(n.pack_cold(&mut blob));
        assert!(n.quiescent());
        assert_eq!(n.heap_bytes(), 0);
        assert_eq!(
            n.logical_clock(3.0).to_bits(),
            before.logical_clock(3.0).to_bits()
        );
        n.unpack_cold(&blob);
        assert_eq!(
            n.upsilon().collect::<Vec<_>>(),
            before.upsilon().collect::<Vec<_>>()
        );
        assert_eq!(
            n.max_estimate(2.0).to_bits(),
            before.max_estimate(2.0).to_bits()
        );
    }

    #[test]
    fn clock_never_decreases() {
        let mut n = MaxSyncNode::new(0.5);
        let mut actions = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        n.on_receive(
            &mut ctx_at(1.0, &mut actions, &mut rng),
            node(1),
            Message {
                logical: 10.0,
                max_estimate: 10.0,
            },
        );
        let before = n.logical_clock(1.0);
        // A stale (smaller) value cannot pull the clock down.
        n.on_receive(
            &mut ctx_at(1.5, &mut actions, &mut rng),
            node(2),
            Message {
                logical: 1.0,
                max_estimate: 1.0,
            },
        );
        assert!(n.logical_clock(1.5) >= before);
    }
}
