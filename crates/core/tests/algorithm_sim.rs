//! End-to-end tests: Algorithm 2 running in the simulator, checked against
//! the paper's theorems.

use gcs_clocks::time::at;
use gcs_clocks::DriftModel;
use gcs_clocks::ScheduleDrift;
use gcs_core::baseline::MaxSyncNode;
use gcs_core::{AlgoParams, BudgetPolicy, GradientNode, InvariantMonitor};
use gcs_net::schedule::add_at;
use gcs_net::{churn, generators, node, Edge, ScheduleSource, TopologySchedule};
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder, Simulator};

fn model() -> ModelParams {
    ModelParams::new(0.01, 1.0, 2.0)
}

fn global_skew<A: gcs_sim::Automaton>(sim: &Simulator<A>) -> f64 {
    let l = sim.logical_snapshot();
    let max = l.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = l.iter().cloned().fold(f64::INFINITY, f64::min);
    max - min
}

fn max_local_skew<A: gcs_sim::Automaton>(sim: &Simulator<A>) -> f64 {
    sim.graph()
        .edges()
        .map(|e| (sim.logical(e.lo()) - sim.logical(e.hi())).abs())
        .fold(0.0, f64::max)
}

/// Drives a gradient-node simulation while feeding an invariant monitor.
fn run_checked(
    sim: &mut Simulator<GradientNode>,
    params: AlgoParams,
    horizon: f64,
    sample_dt: f64,
) -> InvariantMonitor {
    let mut monitor = InvariantMonitor::new(params);
    let mut t = 0.0;
    while t < horizon {
        t = (t + sample_dt).min(horizon);
        sim.run_until(at(t));
        let logical = sim.logical_snapshot();
        let lmax: Vec<f64> = (0..sim.n()).map(|i| sim.max_estimate_of(node(i))).collect();
        monitor.observe(at(t), &logical, &lmax);
    }
    monitor
}

#[test]
fn static_path_respects_all_invariants() {
    let n = 16;
    let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
    let schedule = TopologySchedule::static_graph(n, generators::path(n));
    let mut sim = SimBuilder::topology(model(), ScheduleSource::new(schedule))
        .drift_model(DriftModel::SplitExtremes, 400.0)
        .delay(DelayStrategy::Max)
        .build_with(|_| GradientNode::new(params));
    let monitor = run_checked(&mut sim, params, 400.0, 1.0);
    monitor.assert_clean();
    assert!(monitor.max_global_skew() <= params.global_skew_bound());
}

#[test]
fn stable_edges_settle_below_dynamic_local_skew_bound() {
    let n = 16;
    let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
    let schedule = TopologySchedule::static_graph(n, generators::path(n));
    let horizon = 3.0 * (params.w() + params.delta_t() + params.model.d) + 50.0;
    let mut sim = SimBuilder::topology(model(), ScheduleSource::new(schedule))
        .drift_model(DriftModel::SplitExtremes, horizon)
        .delay(DelayStrategy::Max)
        .build_with(|_| GradientNode::new(params));
    sim.run_until(at(horizon));
    // All edges have existed since time 0, so Corollary 6.13 bounds their
    // skew by s(n, horizon) — which has converged to the stable skew.
    let bound = params.dynamic_local_skew(horizon);
    let measured = max_local_skew(&sim);
    assert!(
        measured <= bound + 1e-6,
        "local skew {measured} exceeds s(n, {horizon}) = {bound}"
    );
    assert!(
        (bound - params.stable_local_skew()).abs() < 1e-6,
        "bound should have settled"
    );
}

#[test]
fn ring_with_random_drift_and_delays_is_clean() {
    let n = 12;
    let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
    let schedule = TopologySchedule::static_graph(n, generators::ring(n));
    let mut sim = SimBuilder::topology(model(), ScheduleSource::new(schedule))
        .drift_model(DriftModel::RandomWalk { step: 5.0 }, 300.0)
        .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
        .seed(17)
        .build_with(|_| GradientNode::new(params));
    let monitor = run_checked(&mut sim, params, 300.0, 1.0);
    monitor.assert_clean();
}

#[test]
fn rotating_star_churn_is_clean() {
    // Heavy churn: the star hub migrates every 10 time units with overlap
    // 4 > T + D/2; the schedule is (T+D)=3-interval connected.
    let n = 8;
    let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
    let schedule = churn::rotating_star(n, 10.0, 4.0, 300.0);
    assert!(gcs_net::connectivity::is_interval_connected(
        &schedule,
        gcs_clocks::Duration::new(3.0),
        at(300.0)
    ));
    let mut sim = SimBuilder::topology(model(), ScheduleSource::new(schedule))
        .drift_model(DriftModel::SplitExtremes, 300.0)
        .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
        .seed(5)
        .build_with(|_| GradientNode::new(params));
    let monitor = run_checked(&mut sim, params, 300.0, 1.0);
    monitor.assert_clean();
}

#[test]
fn staggered_ring_churn_is_clean() {
    let n = 10;
    let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
    let schedule = churn::staggered_ring(n, 8.0, 2.0, 5.0, 250.0);
    let mut sim = SimBuilder::topology(model(), ScheduleSource::new(schedule))
        .drift_model(DriftModel::Alternating { period: 20.0 }, 250.0)
        .delay(DelayStrategy::Max)
        .build_with(|_| GradientNode::new(params));
    let monitor = run_checked(&mut sim, params, 250.0, 1.0);
    monitor.assert_clean();
}

/// The paper's headline dynamic scenario: a long path accumulates skew
/// between its endpoints, then a direct edge between them appears.
#[test]
fn new_bridge_edge_skew_decays_without_disturbing_old_edges() {
    let n = 24;
    let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
    let t_bridge = 150.0;
    let bridge = Edge::between(0, n - 1);
    let schedule = TopologySchedule::static_graph(n, generators::path(n))
        .with_extra_events(vec![add_at(t_bridge, bridge)]);
    let horizon = t_bridge + 3.0 * params.w() + 100.0;
    let mut sim = SimBuilder::topology(model(), ScheduleSource::new(schedule))
        .drift_model(DriftModel::SplitExtremes, horizon)
        .delay(DelayStrategy::Max)
        .build_with(|_| GradientNode::new(params));

    sim.run_until(at(t_bridge));
    let skew_at_formation = (sim.logical(node(0)) - sim.logical(node(n - 1))).abs();

    // Track the worst old-edge skew while the bridge closes.
    let mut worst_old_edge: f64 = 0.0;
    let mut t = t_bridge;
    while t < horizon {
        t += 1.0;
        sim.run_until(at(t));
        for e in generators::path(n) {
            worst_old_edge = worst_old_edge.max((sim.logical(e.lo()) - sim.logical(e.hi())).abs());
        }
    }
    let final_bridge_skew = (sim.logical(node(0)) - sim.logical(node(n - 1))).abs();

    // The bridge's skew must have closed to within the converged dynamic
    // local skew bound…
    let age = horizon - t_bridge;
    assert!(
        final_bridge_skew <= params.dynamic_local_skew(age) + 1e-6,
        "bridge skew {final_bridge_skew} vs bound {}",
        params.dynamic_local_skew(age)
    );
    // …and the old path edges never exceeded their (settled) bound.
    assert!(
        worst_old_edge <= params.stable_local_skew() + 1e-6,
        "old-edge skew {worst_old_edge} exceeded stable bound {}",
        params.stable_local_skew()
    );
    // Sanity: there actually was some skew to close (otherwise the test
    // proves nothing).
    assert!(
        skew_at_formation > 0.0,
        "expected nonzero endpoint skew at bridge formation"
    );
}

#[test]
fn max_sync_baseline_keeps_small_global_skew() {
    let n = 16;
    let schedule = TopologySchedule::static_graph(n, generators::path(n));
    let mut sim = SimBuilder::topology(model(), ScheduleSource::new(schedule))
        .drift_model(DriftModel::SplitExtremes, 300.0)
        .delay(DelayStrategy::Max)
        .build_with(|_| MaxSyncNode::new(0.5));
    sim.run_until(at(300.0));
    let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
    assert!(global_skew(&sim) <= params.global_skew_bound());
}

#[test]
fn constant_budget_baseline_drags_cluster_behind_lmax() {
    // Why the aging budget matters. Two clusters run disconnected for a
    // while: F = nodes 0..=11 (nodes 0..=10 at rate 1+ρ, node 11 — the
    // future bridge endpoint "m" — at 1−ρ) and S = nodes 12..=23 (rate
    // 1−ρ). During the disconnected phase F's max clock races ahead of S
    // by ≈ 2ρ·t. When the bridge {11, 12} forms, the fresh edge carries
    // that skew:
    //
    // * With the *constant* budget (static algorithm of [13]), node 11 is
    //   immediately blocked by its far-behind new neighbor and can no
    //   longer chase `Lmax` — its lag grows at ≈ 2ρ until S closes the gap
    //   in B0-sized staircase steps.
    // * With the paper's *aging* budget, the fresh edge imposes no
    //   constraint (B(0) > G(n)), so node 11 keeps tracking `Lmax` while S
    //   catches up gracefully.
    let rho = 0.1;
    let model = ModelParams::new(rho, 1.0, 2.0);
    let n = 24;
    let m = 11; // F-side bridge endpoint
    let t_bridge = 500.0;
    let horizon = t_bridge + 60.0;
    let bridge = Edge::between(m, m + 1);
    let cluster_edges = || {
        let mut edges: Vec<Edge> = (0..m).map(|i| Edge::between(i, i + 1)).collect();
        edges.extend((m + 1..n - 1).map(|i| Edge::between(i, i + 1)));
        edges
    };
    let run = |policy: BudgetPolicy| {
        let b0 = AlgoParams::with_minimal_b0(model, n, 0.5).b0;
        let params = AlgoParams::with_policy(model, n, 0.5, b0, policy);
        let clocks: Vec<_> = (0..n)
            .map(|i| {
                let rate = if i < m { 1.0 + rho } else { 1.0 - rho };
                gcs_clocks::HardwareClock::constant(rate, rho)
            })
            .collect();
        let schedule = TopologySchedule::static_graph(n, cluster_edges())
            .with_extra_events(vec![add_at(t_bridge, bridge)]);
        let mut sim = SimBuilder::topology(model, ScheduleSource::new(schedule))
            .drift(ScheduleDrift::new(clocks))
            .delay(DelayStrategy::Max)
            .build_with(|_| GradientNode::new(params));
        sim.run_until(at(t_bridge));
        let skew = sim.logical(node(0)) - sim.logical(node(n - 1));
        assert!(
            skew > 2.0 * params.b0,
            "setup: want bridge skew ≫ B0, got {skew} vs B0 {}",
            params.b0
        );
        // Worst lag of node m behind its own max estimate after bridging.
        let mut worst_lag: f64 = 0.0;
        let mut t = t_bridge;
        while t < horizon {
            t += 0.5;
            sim.run_until(at(t));
            let lag = sim.max_estimate_of(node(m)) - sim.logical(node(m));
            worst_lag = worst_lag.max(lag);
        }
        worst_lag
    };
    let lag_aging = run(BudgetPolicy::Aging);
    let lag_constant = run(BudgetPolicy::Constant);
    assert!(
        lag_constant > lag_aging + 1.0,
        "constant budget should visibly block the ahead endpoint: constant={lag_constant}, aging={lag_aging}"
    );
}

#[test]
fn gradient_runs_are_deterministic() {
    let n = 10;
    let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
    let run = || {
        let schedule = TopologySchedule::static_graph(n, generators::ring(n));
        let mut sim = SimBuilder::topology(model(), ScheduleSource::new(schedule))
            .drift_model(DriftModel::RandomWalk { step: 4.0 }, 120.0)
            .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
            .seed(99)
            .build_with(|_| GradientNode::new(params));
        sim.run_until(at(120.0));
        (sim.logical_snapshot(), *sim.stats())
    };
    let (l1, s1) = run();
    let (l2, s2) = run();
    assert_eq!(l1, l2);
    assert_eq!(s1, s2);
}

#[test]
fn logical_clocks_progress_at_least_half_rate() {
    // Spot-check validity directly on a churning topology.
    let n = 8;
    let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
    let schedule = churn::rotating_star(n, 12.0, 5.0, 200.0);
    let mut sim = SimBuilder::topology(model(), ScheduleSource::new(schedule))
        .drift_model(DriftModel::SplitExtremes, 200.0)
        .delay(DelayStrategy::Max)
        .build_with(|_| GradientNode::new(params));
    sim.run_until(at(100.0));
    let mid: Vec<f64> = sim.logical_snapshot();
    sim.run_until(at(200.0));
    let end: Vec<f64> = sim.logical_snapshot();
    for (i, (a, b)) in mid.iter().zip(end.iter()).enumerate() {
        let rate = (b - a) / 100.0;
        assert!(rate >= 0.5, "node {i} rate {rate} < 1/2");
        assert!(rate <= 1.0 + 0.01 + 1e-9, "node {i} rate {rate} > 1+ρ");
    }
}
