//! Property-based tests on the Algorithm 2 state machine.
//!
//! We drive a single [`GradientNode`] with arbitrary (but time-ordered)
//! event sequences and check that the paper's structural invariants hold
//! after every step:
//!
//! * the logical clock never decreases and never exceeds `Lmax`
//!   (Property 6.3),
//! * `Γ ⊆ Υ`,
//! * between events the clock grows exactly at the hardware rate,
//! * discrete jumps never overshoot the `AdjustClock` cap,
//! * the budget toward any neighbor never exceeds `B(0)` and never drops
//!   below `B0`.

use gcs_clocks::Time;
use gcs_core::{AlgoParams, GradientNode};
use gcs_net::{node, Edge, NodeId};
use gcs_sim::{
    Action, Automaton, Context, LinkChange, LinkChangeKind, Message, ModelParams, TimerKind,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Clone, Debug)]
enum Ev {
    Receive {
        from: usize,
        logical: f64,
        lmax: f64,
    },
    DiscoverAdd {
        other: usize,
    },
    DiscoverRemove {
        other: usize,
    },
    Lost {
        other: usize,
    },
    Tick,
}

fn arb_event() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (1usize..6, 0.0f64..500.0, 0.0f64..500.0).prop_map(|(from, a, b)| Ev::Receive {
            from,
            logical: a.min(b),
            lmax: a.max(b),
        }),
        (1usize..6).prop_map(|other| Ev::DiscoverAdd { other }),
        (1usize..6).prop_map(|other| Ev::DiscoverRemove { other }),
        (1usize..6).prop_map(|other| Ev::Lost { other }),
        Just(Ev::Tick),
    ]
}

fn params() -> AlgoParams {
    AlgoParams::with_minimal_b0(ModelParams::new(0.01, 1.0, 2.0), 8, 0.5)
}

fn apply(n: &mut GradientNode, hw: f64, ev: &Ev, actions: &mut Vec<Action>) {
    use rand::{rngs::StdRng, SeedableRng};
    actions.clear();
    let mut rng = StdRng::seed_from_u64(0);
    let mut ctx = Context::new(node(0), Time::new(hw), hw, actions, &mut rng);
    match *ev {
        Ev::Receive {
            from,
            logical,
            lmax,
        } => n.on_receive(
            &mut ctx,
            node(from),
            Message {
                logical,
                max_estimate: lmax,
            },
        ),
        Ev::DiscoverAdd { other } => n.on_discover(
            &mut ctx,
            LinkChange {
                kind: LinkChangeKind::Added,
                edge: Edge::between(0, other),
            },
        ),
        Ev::DiscoverRemove { other } => n.on_discover(
            &mut ctx,
            LinkChange {
                kind: LinkChangeKind::Removed,
                edge: Edge::between(0, other),
            },
        ),
        Ev::Lost { other } => n.on_alarm(&mut ctx, TimerKind::Lost(node(other))),
        Ev::Tick => n.on_alarm(&mut ctx, TimerKind::Tick),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn invariants_hold_under_arbitrary_event_sequences(
        events in prop::collection::vec((arb_event(), 0.01f64..3.0), 1..60)
    ) {
        let p = params();
        let mut n = GradientNode::new(p);
        let mut actions = Vec::new();
        let mut hw = 0.0f64;
        let mut prev_l = n.logical_clock(hw);
        for (ev, gap) in &events {
            // Between events the clock must grow exactly with hw.
            let mid = hw + gap / 2.0;
            prop_assert!((n.logical_clock(mid) - (prev_l + gap / 2.0)).abs() < 1e-9);
            hw += gap;
            let before = n.logical_clock(hw);
            apply(&mut n, hw, ev, &mut actions);
            let after = n.logical_clock(hw);
            // Never decreases at an event.
            prop_assert!(after >= before - 1e-9, "clock decreased: {before} -> {after}");
            // Never exceeds Lmax (Property 6.3).
            prop_assert!(after <= n.max_estimate(hw) + 1e-9,
                "L {after} exceeds Lmax {}", n.max_estimate(hw));
            // Γ ⊆ Υ.
            let gamma: BTreeSet<NodeId> = n.gamma().collect();
            let upsilon: BTreeSet<NodeId> = n.upsilon().collect();
            prop_assert!(gamma.is_subset(&upsilon), "Γ ⊄ Υ: {gamma:?} vs {upsilon:?}");
            // Budgets bounded between B0 and B(0).
            for v in n.gamma() {
                let b = n.budget_for(v, hw).unwrap();
                prop_assert!(b >= p.b0 - 1e-9 && b <= p.budget(0.0) + 1e-9);
            }
            prev_l = after;
        }
    }

    /// After AdjustClock, the clock equals the cap whenever it jumped:
    /// min(Lmax, min_v (est_v + B_v)) — and respects it always.
    #[test]
    fn adjust_clock_respects_cap(
        events in prop::collection::vec((arb_event(), 0.01f64..3.0), 1..40)
    ) {
        let p = params();
        let mut n = GradientNode::new(p);
        let mut actions = Vec::new();
        let mut hw = 0.0;
        for (ev, gap) in &events {
            hw += gap;
            apply(&mut n, hw, ev, &mut actions);
            let l = n.logical_clock(hw);
            let mut cap = n.max_estimate(hw);
            for v in n.gamma() {
                cap = cap.min(n.estimate_of(v, hw).unwrap() + n.budget_for(v, hw).unwrap());
            }
            // The clock may be above the Γ part of the cap only if it got
            // there by hardware growth while blocked, never by a jump at
            // this instant; but it must never exceed Lmax.
            prop_assert!(l <= n.max_estimate(hw) + 1e-9);
            // If u is not blocked and Lmax > L, AdjustClock would have
            // raised L to the cap: so after an event, either L == cap (up
            // to fp) or L >= cap (blocked by some neighbor).
            if l + 1e-9 < n.max_estimate(hw) {
                prop_assert!(l + 1e-9 >= cap,
                    "L {l} below cap {cap} but also below Lmax — AdjustClock missed a raise");
            }
        }
    }

    /// The blocked predicate agrees with Definition 6.1.
    #[test]
    fn blocked_predicate_consistent(
        events in prop::collection::vec((arb_event(), 0.01f64..3.0), 1..40)
    ) {
        let p = params();
        let mut n = GradientNode::new(p);
        let mut actions = Vec::new();
        let mut hw = 0.0;
        for (ev, gap) in &events {
            hw += gap;
            apply(&mut n, hw, ev, &mut actions);
            let l = n.logical_clock(hw);
            let manually_blocked = n.max_estimate(hw) > l
                && n.gamma().any(|v| {
                    l - n.estimate_of(v, hw).unwrap() > n.budget_for(v, hw).unwrap()
                });
            prop_assert_eq!(n.is_blocked(hw), manually_blocked);
            if manually_blocked {
                prop_assert!(n.blocking_neighbor(hw).is_some());
            }
        }
    }
}
