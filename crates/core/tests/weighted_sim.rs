//! Weighted-edge extension, end to end.
//!
//! The paper's conclusion sketches a weighted-graph view in which each
//! edge's weight is its delay uncertainty and tighter links get tighter
//! skew guarantees. Our extension floors the per-edge budget at `B0·w_e`.
//! The budgets only *bind* while skew is being absorbed (the closure
//! staircase after a merge steps by one budget per edge), so the visible
//! effect of down-weighting the old edges is: smaller peak skew on them
//! during the merge wave, paid for with a slower closure — exactly the
//! Theorem 4.1 tradeoff, now per edge.

use gcs_clocks::time::at;
use gcs_clocks::HardwareClock;
use gcs_clocks::ScheduleDrift;
use gcs_core::{AlgoParams, GradientNode};
use gcs_net::schedule::add_at;
use gcs_net::{node, Edge, NodeId, ScheduleSource, TopologySchedule};
use gcs_sim::{DelayStrategy, ModelParams, SimBuilder};
use std::collections::BTreeMap;

/// Cluster merge where all *old* edges carry weight `w` (the bridge stays
/// at weight 1); returns (peak old-edge skew, closure time).
fn run_merge_with_weight(w: f64) -> (f64, f64) {
    let rho = 0.1;
    let model = ModelParams::new(rho, 1.0, 2.0);
    let n = 16;
    let half = n / 2;
    let t_bridge = 300.0; // skew ≈ 2ρ·300 = 60
    let params = AlgoParams::with_minimal_b0(model, n, 0.5);
    let bridge = Edge::between(half - 1, half);
    let mut old_edges: Vec<Edge> = (0..half - 1).map(|i| Edge::between(i, i + 1)).collect();
    old_edges.extend((half..n - 1).map(|i| Edge::between(i, i + 1)));
    let schedule = TopologySchedule::static_graph(n, old_edges.clone())
        .with_extra_events(vec![add_at(t_bridge, bridge)]);
    let clocks: Vec<HardwareClock> = (0..n)
        .map(|i| HardwareClock::constant(if i < half - 1 { 1.0 + rho } else { 1.0 - rho }, rho))
        .collect();
    let weights_for = |i: usize| -> BTreeMap<NodeId, f64> {
        let mut m = BTreeMap::new();
        for e in &old_edges {
            if e.touches(node(i)) {
                m.insert(e.other(node(i)), w);
            }
        }
        m
    };
    let mut sim = SimBuilder::topology(model, ScheduleSource::new(schedule))
        .drift(ScheduleDrift::new(clocks))
        .delay(DelayStrategy::Max)
        .build_with(|i| GradientNode::with_weights(params, weights_for(i)));
    sim.run_until(at(t_bridge));
    let mut peak_old: f64 = 0.0;
    let mut closed_at = None;
    let horizon = t_bridge + 250.0;
    let mut t = t_bridge;
    while t < horizon {
        t += 0.5;
        sim.run_until(at(t));
        for e in &old_edges {
            peak_old = peak_old.max((sim.logical(e.lo()) - sim.logical(e.hi())).abs());
        }
        let bridge_skew = (sim.logical(bridge.lo()) - sim.logical(bridge.hi())).abs();
        if bridge_skew <= 1.5 * params.b0 {
            closed_at.get_or_insert(t - t_bridge);
        } else {
            closed_at = None;
        }
    }
    (
        peak_old,
        closed_at.expect("bridge should close within the horizon"),
    )
}

#[test]
fn down_weighted_old_edges_absorb_less_skew_but_close_slower() {
    let (peak_unit, close_unit) = run_merge_with_weight(1.0);
    let (peak_tight, close_tight) = run_merge_with_weight(0.3);
    // The staircase steps shrink with the weight…
    assert!(
        peak_tight < 0.6 * peak_unit,
        "weighted old edges should carry much less peak skew: {peak_tight} vs {peak_unit}"
    );
    // …and the closure is correspondingly slower (the per-edge tradeoff).
    assert!(
        close_tight > close_unit,
        "tighter budgets must slow the closure: {close_tight} vs {close_unit}"
    );
}

#[test]
fn unit_weights_reproduce_plain_algorithm() {
    // GradientNode::with_weights(…, all 1.0) must behave identically to
    // GradientNode::new.
    let model = ModelParams::new(0.01, 1.0, 2.0);
    let n = 8;
    let params = AlgoParams::with_minimal_b0(model, n, 0.5);
    let run = |weighted: bool| {
        let schedule = TopologySchedule::static_graph(n, gcs_net::generators::ring(n));
        let mut sim = SimBuilder::topology(model, ScheduleSource::new(schedule))
            .drift_model(gcs_clocks::DriftModel::SplitExtremes, 100.0)
            .delay(DelayStrategy::Max)
            .build_with(|i| {
                if weighted {
                    let mut w = BTreeMap::new();
                    w.insert(node((i + 1) % n), 1.0);
                    w.insert(node((i + n - 1) % n), 1.0);
                    GradientNode::with_weights(params, w)
                } else {
                    GradientNode::new(params)
                }
            });
        sim.run_until(at(100.0));
        sim.logical_snapshot()
    };
    assert_eq!(run(false), run(true));
}
