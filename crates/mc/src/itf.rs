//! ITF-style JSON traces: the model checker's interchange format.
//!
//! Every violation (and any healthy run on request) exports as a single
//! JSON document in the spirit of the Informal Trace Format: a `#meta`
//! header, a `params` block carrying the *complete* scenario
//! configuration, a `vars` list, and a `states` array of per-instant
//! snapshots. The `params` block makes the trace self-contained: the
//! delays in global send order plus the scheduled churn/fault events are
//! exactly the nondeterminism of a run, so [`crate::replay`] can rebuild
//! the whole execution inside the real engine and check it against the
//! recorded `states` bit for bit.
//!
//! No serde: the workspace is offline-vendored without it, so this module
//! hand-rolls a writer and a minimal recursive-descent JSON parser. All
//! `f64`s are written with Rust's shortest round-tripping representation
//! (`{:?}`), which `str::parse::<f64>()` recovers exactly — the
//! write → parse → write fixpoint is part of the test suite.
//!
//! Traces record the paper's model constants and `B0` explicitly;
//! replay reconstructs `AlgoParams` with the default aging budget policy
//! (the policy the engine-facing algorithm runs). Traces exported from
//! baseline-policy mutants are for human inspection, not engine replay.

use crate::model::{InstantState, Scenario, SendRecord};
use std::fmt::Write as _;

/// One scheduled topology change in a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceTopology {
    /// Event time.
    pub time: f64,
    /// `true` = add, `false` = remove.
    pub add: bool,
    /// Lower endpoint index.
    pub lo: u32,
    /// Higher endpoint index.
    pub hi: u32,
}

/// One scheduled fault in a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceFault {
    /// Event time.
    pub time: f64,
    /// `true` = restart, `false` = crash.
    pub restart: bool,
    /// Target node index.
    pub node: u32,
}

/// One resolved live-edge send delay, in global send order.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceDelay {
    /// Sender index.
    pub from: u32,
    /// Receiver index.
    pub to: u32,
    /// The chosen delay in `[0, T]`.
    pub delay: f64,
}

/// A complete, self-contained, replayable model-checker trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Scenario name.
    pub name: String,
    /// Node count.
    pub n: usize,
    /// Drift bound `ρ`.
    pub rho: f64,
    /// Message delay bound `T`.
    pub t: f64,
    /// Discovery bound `D`.
    pub d: f64,
    /// Resend interval `ΔH`.
    pub delta_h: f64,
    /// Budget floor `B0`.
    pub b0: f64,
    /// Per-node constant hardware rates.
    pub rates: Vec<f64>,
    /// Initial edges as `(lo, hi)` index pairs, sorted.
    pub initial_edges: Vec<(u32, u32)>,
    /// Scheduled churn.
    pub topology: Vec<TraceTopology>,
    /// Scheduled faults.
    pub faults: Vec<TraceFault>,
    /// Every live-edge send's resolved delay, in global send order.
    pub delays: Vec<TraceDelay>,
    /// Run horizon.
    pub horizon: f64,
    /// Per-instant `(time, L, Lmax)` snapshots, strictly increasing time.
    pub states: Vec<InstantState>,
    /// The violation message, absent for healthy traces.
    pub violation: Option<String>,
}

impl Trace {
    /// Packages a finished run: the scenario configuration, the sends the
    /// decider resolved, and the snapshots the observer collected.
    pub fn build(
        sc: &Scenario,
        sends: &[SendRecord],
        states: Vec<InstantState>,
        violation: Option<String>,
    ) -> Self {
        Trace {
            name: sc.name.clone(),
            n: sc.algo.n,
            rho: sc.algo.model.rho,
            t: sc.algo.model.t,
            d: sc.algo.model.d,
            delta_h: sc.algo.delta_h,
            b0: sc.algo.b0,
            rates: sc.rates.clone(),
            initial_edges: sc
                .initial_edges
                .iter()
                .map(|e| (e.lo().index() as u32, e.hi().index() as u32))
                .collect(),
            topology: sc
                .topology
                .iter()
                .map(|ev| TraceTopology {
                    time: ev.time.seconds(),
                    add: ev.kind == gcs_net::TopologyEventKind::Add,
                    lo: ev.edge.lo().index() as u32,
                    hi: ev.edge.hi().index() as u32,
                })
                .collect(),
            faults: sc
                .faults
                .iter()
                .map(|ev| {
                    let (restart, node) = match ev.kind {
                        gcs_sim::FaultKind::Crash { node } => (false, node),
                        gcs_sim::FaultKind::Restart { node } => (true, node),
                        _ => unreachable!("validated scenarios carry crash/restart only"),
                    };
                    TraceFault {
                        time: ev.time.seconds(),
                        restart,
                        node: node.index() as u32,
                    }
                })
                .collect(),
            delays: sends
                .iter()
                .map(|s| TraceDelay {
                    from: s.from.index() as u32,
                    to: s.to.index() as u32,
                    delay: s.delay,
                })
                .collect(),
            horizon: sc.horizon,
            states,
            violation,
        }
    }

    /// Serializes to ITF-style JSON (stable field order, 2-space indent).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n  \"#meta\": {\n    \"format\": \"ITF\",\n    \"source\": \"gcs-mc\",\n");
        let _ = writeln!(
            s,
            "    \"description\": {}\n  }},",
            json_str(&format!("model-checker trace of scenario {}", self.name))
        );
        s.push_str("  \"params\": {\n");
        let _ = writeln!(s, "    \"name\": {},", json_str(&self.name));
        let _ = writeln!(s, "    \"n\": {},", self.n);
        for (key, v) in [
            ("rho", self.rho),
            ("t", self.t),
            ("d", self.d),
            ("delta_h", self.delta_h),
            ("b0", self.b0),
            ("horizon", self.horizon),
        ] {
            let _ = writeln!(s, "    \"{key}\": {},", json_f64(v));
        }
        let _ = writeln!(s, "    \"rates\": {},", json_f64_array(&self.rates));
        let _ = write!(s, "    \"initial_edges\": [");
        for (i, (lo, hi)) in self.initial_edges.iter().enumerate() {
            let _ = write!(s, "{}[{lo}, {hi}]", if i == 0 { "" } else { ", " });
        }
        s.push_str("],\n");
        let _ = write!(s, "    \"topology\": [");
        for (i, ev) in self.topology.iter().enumerate() {
            let _ = write!(
                s,
                "{}{{\"time\": {}, \"add\": {}, \"lo\": {}, \"hi\": {}}}",
                if i == 0 { "" } else { ", " },
                json_f64(ev.time),
                ev.add,
                ev.lo,
                ev.hi
            );
        }
        s.push_str("],\n");
        let _ = write!(s, "    \"faults\": [");
        for (i, ev) in self.faults.iter().enumerate() {
            let _ = write!(
                s,
                "{}{{\"time\": {}, \"restart\": {}, \"node\": {}}}",
                if i == 0 { "" } else { ", " },
                json_f64(ev.time),
                ev.restart,
                ev.node
            );
        }
        s.push_str("],\n");
        let _ = write!(s, "    \"delays\": [");
        for (i, d) in self.delays.iter().enumerate() {
            let _ = write!(
                s,
                "{}{{\"from\": {}, \"to\": {}, \"delay\": {}}}",
                if i == 0 { "" } else { ", " },
                d.from,
                d.to,
                json_f64(d.delay)
            );
        }
        s.push_str("]\n  },\n");
        s.push_str("  \"vars\": [\"time\", \"logical\", \"lmax\"],\n");
        s.push_str("  \"states\": [\n");
        for (i, st) in self.states.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"#meta\": {{\"index\": {i}}}, \"time\": {}, \"logical\": {}, \"lmax\": {}}}",
                json_f64(st.time),
                json_f64_array(&st.logical),
                json_f64_array(&st.lmax)
            );
            s.push_str(if i + 1 == self.states.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        s.push_str("  ]");
        if let Some(v) = &self.violation {
            let _ = write!(s, ",\n  \"violation\": {}", json_str(v));
        }
        s.push_str("\n}\n");
        s
    }

    /// Parses a trace previously produced by [`Trace::to_json`] (or any
    /// structurally equivalent JSON document).
    pub fn from_json(text: &str) -> Result<Trace, String> {
        let value = Json::parse(text)?;
        let root = value.as_obj("trace root")?;
        let params = root.field("params")?.as_obj("params")?;
        let states = root
            .field("states")?
            .as_arr("states")?
            .iter()
            .map(|st| {
                let st = st.as_obj("state")?;
                Ok(InstantState {
                    time: st.field("time")?.as_f64("time")?,
                    logical: st.field("logical")?.as_f64_array("logical")?,
                    lmax: st.field("lmax")?.as_f64_array("lmax")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Trace {
            name: params.field("name")?.as_str("name")?.to_string(),
            n: params.field("n")?.as_f64("n")? as usize,
            rho: params.field("rho")?.as_f64("rho")?,
            t: params.field("t")?.as_f64("t")?,
            d: params.field("d")?.as_f64("d")?,
            delta_h: params.field("delta_h")?.as_f64("delta_h")?,
            b0: params.field("b0")?.as_f64("b0")?,
            rates: params.field("rates")?.as_f64_array("rates")?,
            initial_edges: params
                .field("initial_edges")?
                .as_arr("initial_edges")?
                .iter()
                .map(|pair| {
                    let pair = pair.as_arr("edge pair")?;
                    if pair.len() != 2 {
                        return Err("edge pair must have two endpoints".into());
                    }
                    Ok((
                        pair[0].as_f64("edge lo")? as u32,
                        pair[1].as_f64("edge hi")? as u32,
                    ))
                })
                .collect::<Result<Vec<_>, String>>()?,
            topology: params
                .field("topology")?
                .as_arr("topology")?
                .iter()
                .map(|ev| {
                    let ev = ev.as_obj("topology event")?;
                    Ok(TraceTopology {
                        time: ev.field("time")?.as_f64("time")?,
                        add: ev.field("add")?.as_bool("add")?,
                        lo: ev.field("lo")?.as_f64("lo")? as u32,
                        hi: ev.field("hi")?.as_f64("hi")? as u32,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            faults: params
                .field("faults")?
                .as_arr("faults")?
                .iter()
                .map(|ev| {
                    let ev = ev.as_obj("fault event")?;
                    Ok(TraceFault {
                        time: ev.field("time")?.as_f64("time")?,
                        restart: ev.field("restart")?.as_bool("restart")?,
                        node: ev.field("node")?.as_f64("node")? as u32,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            delays: params
                .field("delays")?
                .as_arr("delays")?
                .iter()
                .map(|d| {
                    let d = d.as_obj("delay record")?;
                    Ok(TraceDelay {
                        from: d.field("from")?.as_f64("from")? as u32,
                        to: d.field("to")?.as_f64("to")? as u32,
                        delay: d.field("delay")?.as_f64("delay")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            horizon: params.field("horizon")?.as_f64("horizon")?,
            states,
            violation: match root.0.iter().find(|(k, _)| k == "violation") {
                Some((_, v)) => Some(v.as_str("violation")?.to_string()),
                None => None,
            },
        })
    }
}

fn json_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "traces carry finite values only");
    format!("{v:?}")
}

fn json_f64_array(vs: &[f64]) -> String {
    let mut s = String::from("[");
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&json_f64(*v));
    }
    s.push(']');
    s
}

fn json_str(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

/// A parsed JSON value (exactly the subset the writer emits).
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(JsonObj),
}

/// Object fields in document order (duplicate keys rejected at access).
#[derive(Clone, Debug, PartialEq)]
struct JsonObj(Vec<(String, Json)>);

impl JsonObj {
    fn field(&self, key: &str) -> Result<&Json, String> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field `{key}`"))
    }
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    fn as_obj(&self, what: &str) -> Result<&JsonObj, String> {
        match self {
            Json::Obj(o) => Ok(o),
            _ => Err(format!("{what}: expected object")),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(a) => Ok(a),
            _ => Err(format!("{what}: expected array")),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(v) => Ok(*v),
            _ => Err(format!("{what}: expected number")),
        }
    }

    fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(v) => Ok(*v),
            _ => Err(format!("{what}: expected bool")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(v) => Ok(v),
            _ => Err(format!("{what}: expected string")),
        }
    }

    fn as_f64_array(&self, what: &str) -> Result<Vec<f64>, String> {
        self.as_arr(what)?.iter().map(|v| v.as_f64(what)).collect()
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid keyword at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(JsonObj(fields)));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(JsonObj(fields)));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                        }
                        _ => return Err(format!("unknown escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b)?;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
    }
}

fn utf8_len(first: u8) -> Result<usize, String> {
    match first {
        0x00..=0x7f => Ok(1),
        0xc0..=0xdf => Ok(2),
        0xe0..=0xef => Ok(3),
        0xf0..=0xf7 => Ok(4),
        _ => Err("invalid UTF-8 lead byte".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            name: "sample \"quoted\" — unicode".into(),
            n: 3,
            rho: 0.05,
            t: 1.0,
            d: 2.0,
            delta_h: 0.5,
            b0: 7.0,
            rates: vec![1.05, 1.0, 0.95],
            initial_edges: vec![(0, 1), (1, 2)],
            topology: vec![TraceTopology {
                time: 0.7,
                add: false,
                lo: 0,
                hi: 1,
            }],
            faults: vec![TraceFault {
                time: 0.6,
                restart: false,
                node: 0,
            }],
            delays: vec![
                TraceDelay {
                    from: 0,
                    to: 1,
                    delay: 0.0,
                },
                TraceDelay {
                    from: 1,
                    to: 0,
                    delay: 1.0,
                },
            ],
            horizon: 1.3,
            states: vec![
                InstantState {
                    time: 0.0,
                    logical: vec![0.0, 0.0, 0.0],
                    lmax: vec![0.0, 0.0, 0.0],
                },
                InstantState {
                    time: 0.5250000000000001,
                    logical: vec![0.55125e0, 0.525, 0.49875],
                    lmax: vec![0.55125, 0.525, 0.49875],
                },
            ],
            violation: Some("t=0.5 node=0: Property 6.3 violated".into()),
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let trace = sample();
        let json = trace.to_json();
        let back = Trace::from_json(&json).expect("parse");
        assert_eq!(trace, back);
        assert_eq!(json, back.to_json(), "write → parse → write fixpoint");
    }

    #[test]
    fn healthy_trace_omits_violation() {
        let mut trace = sample();
        trace.violation = None;
        let json = trace.to_json();
        assert!(!json.contains("violation"));
        assert_eq!(Trace::from_json(&json).unwrap(), trace);
    }

    #[test]
    fn f64_bits_survive_the_round_trip() {
        let mut trace = sample();
        // Adversarial values: subnormal-adjacent, long mantissas, exact
        // binary fractions.
        trace.rates = vec![1.0 / 3.0, 0.1 + 0.2, f64::MIN_POSITIVE, 1e-300];
        let back = Trace::from_json(&trace.to_json()).unwrap();
        for (a, b) in trace.rates.iter().zip(&back.rates) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(Trace::from_json("{").is_err());
        assert!(Trace::from_json("[]").is_err());
        assert!(Trace::from_json("{\"params\": 3}").is_err());
        let valid = sample().to_json();
        assert!(Trace::from_json(&valid[..valid.len() - 3]).is_err());
    }
}
